file(REMOVE_RECURSE
  "CMakeFiles/barnes_hut_test.dir/barnes_hut_test.cpp.o"
  "CMakeFiles/barnes_hut_test.dir/barnes_hut_test.cpp.o.d"
  "barnes_hut_test"
  "barnes_hut_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barnes_hut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
