# Empty dependencies file for barnes_hut_test.
# This may be replaced when dependencies are built.
