file(REMOVE_RECURSE
  "CMakeFiles/error_handling_test.dir/error_handling_test.cpp.o"
  "CMakeFiles/error_handling_test.dir/error_handling_test.cpp.o.d"
  "error_handling_test"
  "error_handling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_handling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
