file(REMOVE_RECURSE
  "CMakeFiles/serializer_property_test.dir/serializer_property_test.cpp.o"
  "CMakeFiles/serializer_property_test.dir/serializer_property_test.cpp.o.d"
  "serializer_property_test"
  "serializer_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serializer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
