# Empty dependencies file for lang_cholesky_test.
# This may be replaced when dependencies are built.
