file(REMOVE_RECURSE
  "CMakeFiles/lang_cholesky_test.dir/lang_cholesky_test.cpp.o"
  "CMakeFiles/lang_cholesky_test.dir/lang_cholesky_test.cpp.o.d"
  "lang_cholesky_test"
  "lang_cholesky_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_cholesky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
