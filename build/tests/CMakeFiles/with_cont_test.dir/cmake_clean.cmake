file(REMOVE_RECURSE
  "CMakeFiles/with_cont_test.dir/with_cont_test.cpp.o"
  "CMakeFiles/with_cont_test.dir/with_cont_test.cpp.o.d"
  "with_cont_test"
  "with_cont_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/with_cont_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
