# Empty dependencies file for with_cont_test.
# This may be replaced when dependencies are built.
