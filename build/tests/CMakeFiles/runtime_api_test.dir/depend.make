# Empty dependencies file for runtime_api_test.
# This may be replaced when dependencies are built.
