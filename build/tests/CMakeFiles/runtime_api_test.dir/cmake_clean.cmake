file(REMOVE_RECURSE
  "CMakeFiles/runtime_api_test.dir/runtime_api_test.cpp.o"
  "CMakeFiles/runtime_api_test.dir/runtime_api_test.cpp.o.d"
  "runtime_api_test"
  "runtime_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
