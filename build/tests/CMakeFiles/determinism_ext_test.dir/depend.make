# Empty dependencies file for determinism_ext_test.
# This may be replaced when dependencies are built.
