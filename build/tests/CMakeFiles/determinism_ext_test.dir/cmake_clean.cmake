file(REMOVE_RECURSE
  "CMakeFiles/determinism_ext_test.dir/determinism_ext_test.cpp.o"
  "CMakeFiles/determinism_ext_test.dir/determinism_ext_test.cpp.o.d"
  "determinism_ext_test"
  "determinism_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinism_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
