file(REMOVE_RECURSE
  "CMakeFiles/water_test.dir/water_test.cpp.o"
  "CMakeFiles/water_test.dir/water_test.cpp.o.d"
  "water_test"
  "water_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
