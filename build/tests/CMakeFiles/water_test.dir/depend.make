# Empty dependencies file for water_test.
# This may be replaced when dependencies are built.
