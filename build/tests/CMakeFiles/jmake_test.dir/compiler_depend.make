# Empty compiler generated dependencies file for jmake_test.
# This may be replaced when dependencies are built.
