file(REMOVE_RECURSE
  "CMakeFiles/jmake_test.dir/jmake_test.cpp.o"
  "CMakeFiles/jmake_test.dir/jmake_test.cpp.o.d"
  "jmake_test"
  "jmake_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jmake_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
