# Empty compiler generated dependencies file for bench_network_shapes.
# This may be replaced when dependencies are built.
