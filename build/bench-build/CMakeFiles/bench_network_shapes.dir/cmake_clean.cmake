file(REMOVE_RECURSE
  "../bench/bench_network_shapes"
  "../bench/bench_network_shapes.pdb"
  "CMakeFiles/bench_network_shapes.dir/bench_network_shapes.cpp.o"
  "CMakeFiles/bench_network_shapes.dir/bench_network_shapes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
