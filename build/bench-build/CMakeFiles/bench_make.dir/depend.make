# Empty dependencies file for bench_make.
# This may be replaced when dependencies are built.
