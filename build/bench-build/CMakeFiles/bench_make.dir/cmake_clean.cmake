file(REMOVE_RECURSE
  "../bench/bench_make"
  "../bench/bench_make.pdb"
  "CMakeFiles/bench_make.dir/bench_make.cpp.o"
  "CMakeFiles/bench_make.dir/bench_make.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_make.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
