file(REMOVE_RECURSE
  "../bench/bench_pipeline_backsubst"
  "../bench/bench_pipeline_backsubst.pdb"
  "CMakeFiles/bench_pipeline_backsubst.dir/bench_pipeline_backsubst.cpp.o"
  "CMakeFiles/bench_pipeline_backsubst.dir/bench_pipeline_backsubst.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_backsubst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
