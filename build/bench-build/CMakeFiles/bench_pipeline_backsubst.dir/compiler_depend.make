# Empty compiler generated dependencies file for bench_pipeline_backsubst.
# This may be replaced when dependencies are built.
