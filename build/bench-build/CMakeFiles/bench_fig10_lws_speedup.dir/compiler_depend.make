# Empty compiler generated dependencies file for bench_fig10_lws_speedup.
# This may be replaced when dependencies are built.
