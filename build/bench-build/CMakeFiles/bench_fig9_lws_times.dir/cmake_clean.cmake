file(REMOVE_RECURSE
  "../bench/bench_fig9_lws_times"
  "../bench/bench_fig9_lws_times.pdb"
  "CMakeFiles/bench_fig9_lws_times.dir/bench_fig9_lws_times.cpp.o"
  "CMakeFiles/bench_fig9_lws_times.dir/bench_fig9_lws_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_lws_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
