# Empty compiler generated dependencies file for bench_fig9_lws_times.
# This may be replaced when dependencies are built.
