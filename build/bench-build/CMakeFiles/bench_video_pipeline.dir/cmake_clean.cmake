file(REMOVE_RECURSE
  "../bench/bench_video_pipeline"
  "../bench/bench_video_pipeline.pdb"
  "CMakeFiles/bench_video_pipeline.dir/bench_video_pipeline.cpp.o"
  "CMakeFiles/bench_video_pipeline.dir/bench_video_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_video_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
