file(REMOVE_RECURSE
  "../bench/bench_format"
  "../bench/bench_format.pdb"
  "CMakeFiles/bench_format.dir/bench_format.cpp.o"
  "CMakeFiles/bench_format.dir/bench_format.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
