# Empty compiler generated dependencies file for bench_format.
# This may be replaced when dependencies are built.
