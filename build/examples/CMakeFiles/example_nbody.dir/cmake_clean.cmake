file(REMOVE_RECURSE
  "CMakeFiles/example_nbody.dir/nbody.cpp.o"
  "CMakeFiles/example_nbody.dir/nbody.cpp.o.d"
  "nbody"
  "nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
