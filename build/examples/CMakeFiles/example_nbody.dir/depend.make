# Empty dependencies file for example_nbody.
# This may be replaced when dependencies are built.
