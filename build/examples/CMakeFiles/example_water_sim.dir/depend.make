# Empty dependencies file for example_water_sim.
# This may be replaced when dependencies are built.
