file(REMOVE_RECURSE
  "CMakeFiles/example_water_sim.dir/water_sim.cpp.o"
  "CMakeFiles/example_water_sim.dir/water_sim.cpp.o.d"
  "water_sim"
  "water_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_water_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
