# Empty dependencies file for example_parallel_make.
# This may be replaced when dependencies are built.
