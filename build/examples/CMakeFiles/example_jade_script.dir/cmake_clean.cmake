file(REMOVE_RECURSE
  "CMakeFiles/example_jade_script.dir/jade_script.cpp.o"
  "CMakeFiles/example_jade_script.dir/jade_script.cpp.o.d"
  "jade_script"
  "jade_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_jade_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
