# Empty compiler generated dependencies file for example_jade_script.
# This may be replaced when dependencies are built.
