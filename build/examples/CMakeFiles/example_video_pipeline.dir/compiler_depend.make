# Empty compiler generated dependencies file for example_video_pipeline.
# This may be replaced when dependencies are built.
