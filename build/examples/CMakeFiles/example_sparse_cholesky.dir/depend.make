# Empty dependencies file for example_sparse_cholesky.
# This may be replaced when dependencies are built.
