file(REMOVE_RECURSE
  "CMakeFiles/example_sparse_cholesky.dir/sparse_cholesky.cpp.o"
  "CMakeFiles/example_sparse_cholesky.dir/sparse_cholesky.cpp.o.d"
  "sparse_cholesky"
  "sparse_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sparse_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
