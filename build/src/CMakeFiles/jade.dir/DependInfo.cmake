
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jade/apps/backsubst.cpp" "src/CMakeFiles/jade.dir/jade/apps/backsubst.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/apps/backsubst.cpp.o.d"
  "/root/repo/src/jade/apps/barnes_hut.cpp" "src/CMakeFiles/jade.dir/jade/apps/barnes_hut.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/apps/barnes_hut.cpp.o.d"
  "/root/repo/src/jade/apps/cholesky.cpp" "src/CMakeFiles/jade.dir/jade/apps/cholesky.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/apps/cholesky.cpp.o.d"
  "/root/repo/src/jade/apps/jmake.cpp" "src/CMakeFiles/jade.dir/jade/apps/jmake.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/apps/jmake.cpp.o.d"
  "/root/repo/src/jade/apps/spd_matrix.cpp" "src/CMakeFiles/jade.dir/jade/apps/spd_matrix.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/apps/spd_matrix.cpp.o.d"
  "/root/repo/src/jade/apps/video.cpp" "src/CMakeFiles/jade.dir/jade/apps/video.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/apps/video.cpp.o.d"
  "/root/repo/src/jade/apps/water.cpp" "src/CMakeFiles/jade.dir/jade/apps/water.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/apps/water.cpp.o.d"
  "/root/repo/src/jade/core/access.cpp" "src/CMakeFiles/jade.dir/jade/core/access.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/core/access.cpp.o.d"
  "/root/repo/src/jade/core/object.cpp" "src/CMakeFiles/jade.dir/jade/core/object.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/core/object.cpp.o.d"
  "/root/repo/src/jade/core/queues.cpp" "src/CMakeFiles/jade.dir/jade/core/queues.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/core/queues.cpp.o.d"
  "/root/repo/src/jade/core/runtime.cpp" "src/CMakeFiles/jade.dir/jade/core/runtime.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/core/runtime.cpp.o.d"
  "/root/repo/src/jade/core/task.cpp" "src/CMakeFiles/jade.dir/jade/core/task.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/core/task.cpp.o.d"
  "/root/repo/src/jade/engine/engine.cpp" "src/CMakeFiles/jade.dir/jade/engine/engine.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/engine/engine.cpp.o.d"
  "/root/repo/src/jade/engine/serial_engine.cpp" "src/CMakeFiles/jade.dir/jade/engine/serial_engine.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/engine/serial_engine.cpp.o.d"
  "/root/repo/src/jade/engine/sim_engine.cpp" "src/CMakeFiles/jade.dir/jade/engine/sim_engine.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/engine/sim_engine.cpp.o.d"
  "/root/repo/src/jade/engine/thread_engine.cpp" "src/CMakeFiles/jade.dir/jade/engine/thread_engine.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/engine/thread_engine.cpp.o.d"
  "/root/repo/src/jade/engine/timeline.cpp" "src/CMakeFiles/jade.dir/jade/engine/timeline.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/engine/timeline.cpp.o.d"
  "/root/repo/src/jade/lang/interp.cpp" "src/CMakeFiles/jade.dir/jade/lang/interp.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/lang/interp.cpp.o.d"
  "/root/repo/src/jade/lang/lexer.cpp" "src/CMakeFiles/jade.dir/jade/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/lang/lexer.cpp.o.d"
  "/root/repo/src/jade/lang/parser.cpp" "src/CMakeFiles/jade.dir/jade/lang/parser.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/lang/parser.cpp.o.d"
  "/root/repo/src/jade/mach/machine.cpp" "src/CMakeFiles/jade.dir/jade/mach/machine.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/mach/machine.cpp.o.d"
  "/root/repo/src/jade/mach/presets.cpp" "src/CMakeFiles/jade.dir/jade/mach/presets.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/mach/presets.cpp.o.d"
  "/root/repo/src/jade/net/crossbar.cpp" "src/CMakeFiles/jade.dir/jade/net/crossbar.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/net/crossbar.cpp.o.d"
  "/root/repo/src/jade/net/hypercube.cpp" "src/CMakeFiles/jade.dir/jade/net/hypercube.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/net/hypercube.cpp.o.d"
  "/root/repo/src/jade/net/mesh.cpp" "src/CMakeFiles/jade.dir/jade/net/mesh.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/net/mesh.cpp.o.d"
  "/root/repo/src/jade/net/network.cpp" "src/CMakeFiles/jade.dir/jade/net/network.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/net/network.cpp.o.d"
  "/root/repo/src/jade/net/shared_bus.cpp" "src/CMakeFiles/jade.dir/jade/net/shared_bus.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/net/shared_bus.cpp.o.d"
  "/root/repo/src/jade/sched/policies.cpp" "src/CMakeFiles/jade.dir/jade/sched/policies.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/sched/policies.cpp.o.d"
  "/root/repo/src/jade/sim/event_queue.cpp" "src/CMakeFiles/jade.dir/jade/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/sim/event_queue.cpp.o.d"
  "/root/repo/src/jade/sim/process.cpp" "src/CMakeFiles/jade.dir/jade/sim/process.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/sim/process.cpp.o.d"
  "/root/repo/src/jade/sim/simulation.cpp" "src/CMakeFiles/jade.dir/jade/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/sim/simulation.cpp.o.d"
  "/root/repo/src/jade/store/directory.cpp" "src/CMakeFiles/jade.dir/jade/store/directory.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/store/directory.cpp.o.d"
  "/root/repo/src/jade/store/local_store.cpp" "src/CMakeFiles/jade.dir/jade/store/local_store.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/store/local_store.cpp.o.d"
  "/root/repo/src/jade/support/error.cpp" "src/CMakeFiles/jade.dir/jade/support/error.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/support/error.cpp.o.d"
  "/root/repo/src/jade/support/log.cpp" "src/CMakeFiles/jade.dir/jade/support/log.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/support/log.cpp.o.d"
  "/root/repo/src/jade/support/rng.cpp" "src/CMakeFiles/jade.dir/jade/support/rng.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/support/rng.cpp.o.d"
  "/root/repo/src/jade/support/stats.cpp" "src/CMakeFiles/jade.dir/jade/support/stats.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/support/stats.cpp.o.d"
  "/root/repo/src/jade/types/type_desc.cpp" "src/CMakeFiles/jade.dir/jade/types/type_desc.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/types/type_desc.cpp.o.d"
  "/root/repo/src/jade/types/wire.cpp" "src/CMakeFiles/jade.dir/jade/types/wire.cpp.o" "gcc" "src/CMakeFiles/jade.dir/jade/types/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
