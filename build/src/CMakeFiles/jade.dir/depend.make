# Empty dependencies file for jade.
# This may be replaced when dependencies are built.
