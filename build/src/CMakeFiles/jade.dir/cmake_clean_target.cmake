file(REMOVE_RECURSE
  "libjade.a"
)
