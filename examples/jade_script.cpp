// The mini Jade language front end, end to end: runs a Jade script — by
// default the paper's Figure 6 sparse Cholesky factor() — on a simulated
// message-passing cluster, then verifies the factorization.
//
//   ./jade_script [n] [machines]
//   ./jade_script --file program.jade    (runs a script with no bindings
//                                         except `out`, a 16-double object)
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "jade/apps/cholesky.hpp"
#include "jade/lang/interp.hpp"
#include "jade/lang/parser.hpp"
#include "jade/mach/presets.hpp"

namespace {

const char* kFactorScript = R"JADE(
// Sparse Cholesky factorization — the paper's Figure 6, in Jade script.
for (var i = 0; i < n; i = i + 1) {
  withonly { rd_wr(c[i]); rd(r); rd(cp); } do (i) {
    // InternalUpdate(c, r, i)
    var d = sqrt(c[i][0]);
    c[i][0] = d;
    for (var k = 1; k < len(c[i]); k = k + 1)
      c[i][k] = c[i][k] / d;
  }
  for (var k = cp[i]; k < cp[i + 1]; k = k + 1) {
    var j = r[k];  // dynamically resolved: which column to update
    withonly { rd_wr(c[j]); rd(c[i]); rd(r); rd(cp); } do (i, j) {
      // ExternalUpdate(c, r, i, r[j])
      var p = cp[i];
      while (r[p] != j) p = p + 1;
      var lji = c[i][1 + (p - cp[i])];
      c[j][0] = c[j][0] - lji * lji;
      var q = cp[j];
      var t = p + 1;
      while (t < cp[i + 1]) {
        var row = r[t];
        while (r[q] < row) q = q + 1;
        c[j][1 + (q - cp[j])] =
            c[j][1 + (q - cp[j])] - lji * c[i][1 + (t - cp[i])];
        t = t + 1;
      }
    }
  }
}
)JADE";

int run_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::ostringstream src;
  src << in.rdbuf();
  jade::Runtime rt;
  jade::lang::Environment env;
  auto out = rt.alloc<double>(16, "out");
  env.bind("out", out);
  jade::lang::run_program(rt, jade::lang::parse(src.str()), env);
  const auto v = rt.get(out);
  std::printf("out:");
  for (double x : v) std::printf(" %g", x);
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 && std::strcmp(argv[1], "--file") == 0)
    return run_file(argv[2]);

  using namespace jade;
  using namespace jade::apps;
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const int machines = argc > 2 ? std::atoi(argv[2]) : 4;

  const SparseMatrix a = make_spd(n, 6.0 / n, 11);
  auto expect = a;
  factor_serial(expect);

  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ipsc860(machines);
  Runtime rt(std::move(cfg));
  auto jm = upload_matrix(rt, a);

  lang::Environment env;
  env.bind("c", jm.cols);
  env.bind("r", jm.row_idx_obj);
  env.bind("cp", jm.col_ptr_obj);
  env.bind_scalar("n", a.n);

  std::printf("running the Figure 6 factor() script: n=%d, nnz=%zu, "
              "%d simulated iPSC/860 nodes\n",
              a.n, a.nnz(), machines);
  lang::run_program(rt, lang::parse(kFactorScript), env);

  const auto got = download_matrix(rt, jm);
  double max_diff = 0;
  for (int i = 0; i < a.n; ++i)
    for (std::size_t k = 0; k < got.cols[i].size(); ++k)
      max_diff = std::max(max_diff,
                          std::abs(got.cols[i][k] - expect.cols[i][k]));
  std::printf("tasks created: %llu   virtual time: %.4f s\n",
              static_cast<unsigned long long>(rt.stats().tasks_created),
              rt.sim_duration());
  std::printf("max |script - serial factor| = %g %s\n", max_diff,
              max_diff == 0 ? "(bit-identical)" : "(MISMATCH)");
  return max_diff == 0 ? 0 : 1;
}
