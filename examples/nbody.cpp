// Barnes-Hut N-body — one of the paper's Section 7 kernels.
//
//   ./nbody [bodies] [machines] [timesteps]
//
// Per timestep: a serial task builds the quadtree, parallel tasks walk it
// per body group (the shared tree replicates to every machine that reads
// it), and a serial task integrates.  Run on the simulated iPSC/860 and
// compared against the serial reference.
#include <cstdio>
#include <cstdlib>

#include "jade/apps/barnes_hut.hpp"
#include "jade/mach/presets.hpp"

int main(int argc, char** argv) {
  using namespace jade;
  using namespace jade::apps;

  BhConfig bc;
  bc.bodies = argc > 1 ? std::atoi(argv[1]) : 2048;
  bc.groups = 32;
  bc.timesteps = argc > 3 ? std::atoi(argv[3]) : 3;
  const int machines = argc > 2 ? std::atoi(argv[2]) : 8;

  auto expect = make_bodies(bc);
  bh_run_serial(bc, expect);

  auto run_on = [&](int m) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::dash(m);
    Runtime rt(std::move(cfg));
    auto w = upload_bh(rt, bc, make_bodies(bc));
    rt.run([&](TaskContext& ctx) { bh_run_jade(ctx, w); });
    const auto got = download_bh(rt, w);
    if (got.pos != expect.pos) {
      std::printf("RESULT MISMATCH on %d machines\n", m);
      std::exit(1);
    }
    return std::pair{rt.sim_duration(), rt.stats().object_copies};
  };

  std::printf("Barnes-Hut: %d bodies, %d groups, %d steps (DASH shared memory)\n",
              bc.bodies, bc.groups, bc.timesteps);
  const auto [t1, c1] = run_on(1);
  const auto [tn, cn] = run_on(machines);
  std::printf("  t(1)=%.3f s   t(%d)=%.3f s   speedup=%.2f\n", t1, machines,
              tn, t1 / tn);
  std::printf("  tree replications at %d machines: %llu object copies\n",
              machines, static_cast<unsigned long long>(cn));
  std::printf("  results identical to the serial reference\n");
  (void)c1;
  return 0;
}
