// Quickstart: the Jade programming model in one file.
//
// A Jade program is a sequential program plus access declarations.  You
// allocate shared objects, then write ordinary code that wraps chunks of
// work in ctx.withonly(spec, body).  The runtime extracts the parallelism:
// tasks whose declared accesses do not conflict run concurrently, and every
// execution produces exactly the serial result.
//
//   ./quickstart [serial|thread|sim]
#include <cstdio>
#include <cstring>
#include <numeric>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"

constexpr int kN = 1 << 16;
constexpr int kChunks = 8;

int main(int argc, char** argv) {
  jade::RuntimeConfig cfg;
  const char* mode = argc > 1 ? argv[1] : "thread";
  if (std::strcmp(mode, "serial") == 0) {
    cfg.engine = jade::EngineKind::kSerial;
  } else if (std::strcmp(mode, "sim") == 0) {
    cfg.engine = jade::EngineKind::kSim;
    cfg.cluster = jade::presets::ipsc860(4);  // simulated 4-node cube
  } else {
    cfg.engine = jade::EngineKind::kThread;
    cfg.threads = 4;
  }
  jade::Runtime rt(std::move(cfg));

  // Shared objects: two input vectors, per-chunk partial dot products, and
  // a result cell.
  auto a = rt.alloc<double>(kN, "a");
  auto b = rt.alloc<double>(kN, "b");
  auto result = rt.alloc<double>(1, "result");
  std::vector<jade::SharedRef<double>> partials;
  for (int c = 0; c < kChunks; ++c)
    partials.push_back(rt.alloc<double>(1, "partial" + std::to_string(c)));

  rt.run([&](jade::TaskContext& ctx) {
    // Fill the inputs: two independent tasks (disjoint writes -> parallel).
    ctx.withonly([&](jade::AccessDecl& d) { d.wr(a); },
                 [a](jade::TaskContext& t) {
                   auto v = t.write(a);
                   for (std::size_t i = 0; i < v.size(); ++i)
                     v[i] = 1.0 + static_cast<double>(i % 7);
                 });
    ctx.withonly([&](jade::AccessDecl& d) { d.wr(b); },
                 [b](jade::TaskContext& t) {
                   auto v = t.write(b);
                   for (std::size_t i = 0; i < v.size(); ++i)
                     v[i] = 2.0 - static_cast<double>(i % 3);
                 });

    // Partial dot products: read-shared inputs, disjoint outputs.
    for (int c = 0; c < kChunks; ++c) {
      auto p = partials[c];
      ctx.withonly(
          [&](jade::AccessDecl& d) {
            d.rd(a);
            d.rd(b);
            d.wr(p);
          },
          [a, b, p, c](jade::TaskContext& t) {
            t.charge(2.0 * kN / kChunks);  // cost model for simulation
            auto va = t.read(a);
            auto vb = t.read(b);
            double sum = 0;
            for (int i = c * (kN / kChunks); i < (c + 1) * (kN / kChunks);
                 ++i)
              sum += va[i] * vb[i];
            t.write(p)[0] = sum;
          });
    }

    // Reduction: waits for every partial automatically.
    ctx.withonly(
        [&](jade::AccessDecl& d) {
          for (auto& p : partials) d.rd(p);
          d.wr(result);
        },
        [partials, result](jade::TaskContext& t) {
          double sum = 0;
          for (auto& p : partials) sum += t.read(p)[0];
          t.write(result)[0] = sum;
        });
  });

  std::printf("engine=%s  dot(a,b) = %.1f\n", mode, rt.get(result)[0]);
  std::printf("tasks created: %llu\n",
              static_cast<unsigned long long>(rt.stats().tasks_created));
  if (rt.sim_duration() > 0)
    std::printf("virtual time: %.6f s\n", rt.sim_duration());
  return 0;
}
