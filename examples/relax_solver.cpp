// Constraint-relaxation solver: weighted-Jacobi sweeps over a 2-D grid,
// strip-parallel, with the halo rows read through deferred (df_rd)
// declarations that each sweep converts and retires mid-body.
//
//   $ relax_solver
//
// demonstrates:
//   - SoA strip payloads whose row sweeps vectorize (kernels_soa.cpp)
//   - per-iteration with-continuation traffic: convert a neighbor strip to
//     rd, copy one halo row, retire it with no_rd — the next iteration's
//     writer of that strip unblocks while this sweep is still computing
//   - the pipelining payoff, measured in simulated virtual time: the same
//     program with plain rd halos serializes iteration boundaries harder
#include <cstdio>

#include "jade/apps/relax.hpp"
#include "jade/mach/presets.hpp"

using namespace jade;
using namespace jade::apps;

namespace {

double run_sim(const RelaxConfig& config, int machines, double* residual) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::dash(machines);
  Runtime rt(std::move(cfg));
  auto w = upload_relax(rt, config, make_relax(config));
  rt.run([&](TaskContext& ctx) { relax_run_jade(ctx, w); });
  if (residual != nullptr) *residual = relax_residual(download_relax(rt, w));
  return rt.sim_duration();
}

}  // namespace

int main() {
  RelaxConfig config;
  config.rows = 128;
  config.cols = 128;
  config.strips = 8;
  config.iterations = 32;

  RelaxState serial = make_relax(config);
  const double before = relax_residual(serial);
  relax_run_serial(config, serial);
  std::printf("grid %dx%d, %d strips, %d sweeps (omega=%.2f)\n", config.rows,
              config.cols, config.strips, config.iterations, config.omega);
  std::printf("defect max |x - avg(neighbors)|: %.5f -> %.5f\n\n", before,
              relax_residual(serial));

  std::printf("%-9s %-12s %-12s %s\n", "machines", "pipelined", "plain rd",
              "overlap gain");
  for (int machines : {1, 2, 4, 8}) {
    RelaxConfig pipelined = config;
    pipelined.pipelined = true;
    RelaxConfig plain = config;
    plain.pipelined = false;
    double check = 0;
    const double t_pipe = run_sim(pipelined, machines, &check);
    const double t_plain = run_sim(plain, machines, nullptr);
    if (check != relax_residual(serial)) {
      std::printf("MISMATCH against the serial reference\n");
      return 1;
    }
    std::printf("%-9d %-12.6f %-12.6f %.2fx\n", machines, t_pipe, t_plain,
                t_plain / t_pipe);
  }
  std::printf("\nevery configuration reproduced the serial grid exactly\n");
  return 0;
}
