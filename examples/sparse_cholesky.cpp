// Sparse Cholesky factorization + pipelined triangular solve — the paper's
// Section 3/4 running example, end to end.
//
//   ./sparse_cholesky [n] [density] [machines]
//
// Factors a random sparse SPD matrix on a simulated iPSC/860, overlapping
// the forward substitution with the factorization via deferred access
// declarations (with-cont), then verifies the solution against a known
// vector and prints runtime statistics.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "jade/apps/backsubst.hpp"
#include "jade/apps/cholesky.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/rng.hpp"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 256;
  const double density = argc > 2 ? std::atof(argv[2]) : 0.04;
  const int machines = argc > 3 ? std::atoi(argv[3]) : 8;

  using namespace jade;
  using namespace jade::apps;

  const SparseMatrix a = make_spd(n, density, /*seed=*/2024);
  std::printf("matrix: n=%d, nnz=%zu (density target %.3f)\n", a.n, a.nnz(),
              density);

  // Build the right-hand side from a known solution.
  Rng rng(7);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (double& v : x_true) v = rng.next_double(-1, 1);
  const std::vector<double> b = spd_multiply(a, x_true);

  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ipsc860(machines);
  Runtime rt(std::move(cfg));

  auto jm = upload_matrix(rt, a);
  auto x = rt.alloc_init<double>(b, "x");
  rt.run([&](TaskContext& ctx) {
    factor_jade(ctx, jm);
    // Created while factor tasks are still pending: df_rd lets the solve
    // start immediately and synchronize column by column.
    forward_solve_jade(ctx, jm, x, /*pipelined=*/true);
    backward_solve_jade(ctx, jm, x);
  });

  const auto got = rt.get(x);
  double max_err = 0;
  for (int i = 0; i < n; ++i)
    max_err = std::max(max_err, std::abs(got[i] - x_true[i]));

  const auto& s = rt.stats();
  std::printf("max |x - x_true|     : %.3e\n", max_err);
  std::printf("tasks created        : %llu\n",
              static_cast<unsigned long long>(s.tasks_created));
  std::printf("object moves/copies  : %llu / %llu\n",
              static_cast<unsigned long long>(s.object_moves),
              static_cast<unsigned long long>(s.object_copies));
  std::printf("messages (bytes)     : %llu (%llu)\n",
              static_cast<unsigned long long>(s.messages),
              static_cast<unsigned long long>(s.bytes_sent));
  std::printf("virtual time on %d-node iPSC/860: %.4f s\n", machines,
              rt.sim_duration());
  return max_err < 1e-6 ? 0 : 1;
}
