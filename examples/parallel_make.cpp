// Parallel make (paper Section 7.1): a dependence-driven build where the
// available concurrency "depends on the makefile and on the modification
// dates of the files it accesses".
//
//   ./parallel_make [sources] [machines]
//
// Builds a project-shaped makefile (sources -> objects -> library ->
// binaries) from scratch, then does an incremental rebuild after touching a
// third of the sources, printing how many commands ran and the virtual
// build times.
#include <cstdio>
#include <cstdlib>

#include "jade/apps/jmake.hpp"
#include "jade/mach/presets.hpp"

int main(int argc, char** argv) {
  using namespace jade;
  using namespace jade::apps;

  const int sources = argc > 1 ? std::atoi(argv[1]) : 16;
  const int machines = argc > 2 ? std::atoi(argv[2]) : 8;

  auto run_build = [&](const Makefile& mf, const char* label) {
    const BuildResult expect = make_serial(mf);
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::ideal(machines);
    Runtime rt(std::move(cfg));
    auto jm = upload_make(rt, mf);
    int commands = 0;
    rt.run([&](TaskContext& ctx) { make_jade(ctx, jm, &commands); });
    const BuildResult got = download_make(rt, jm);
    if (got.hash != expect.hash || commands != expect.commands_run) {
      std::printf("BUILD MISMATCH\n");
      std::exit(1);
    }
    std::printf("  %-18s commands=%3d   virtual time=%7.3f s\n", label,
                commands, rt.sim_duration());
    return expect.mtime;
  };

  std::printf("project: %d sources -> objects -> library -> 4 binaries, "
              "%d machines\n",
              sources, machines);
  Makefile mf = project_makefile(sources, 4);
  const auto built_mtimes = run_build(mf, "full build");

  // Incremental rebuild: touch ~1/3 of the sources.
  mf.initial_mtime = built_mtimes;
  touch_sources(mf, 1.0 / 3.0, /*seed=*/42);
  run_build(mf, "incremental");

  // Nothing to do.
  Makefile fresh = project_makefile(sources, 4);
  fresh.initial_mtime = built_mtimes;
  run_build(fresh, "up to date");
  return 0;
}
