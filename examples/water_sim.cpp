// LWS liquid water simulation across the paper's three platforms.
//
//   ./water_sim [molecules] [timesteps] [machines]
//
// Runs the same Jade program, unmodified, on simulated DASH (shared
// memory), iPSC/860 (hypercube) and Mica (Ethernet) clusters — the paper's
// portability claim in action — and prints the virtual running time on
// each, plus the uniprocessor time for speedup context.
#include <cstdio>
#include <cstdlib>

#include "jade/apps/water.hpp"
#include "jade/mach/presets.hpp"

int main(int argc, char** argv) {
  using namespace jade;
  using namespace jade::apps;

  WaterConfig wc;
  wc.molecules = argc > 1 ? std::atoi(argv[1]) : 600;
  wc.groups = 24;
  wc.timesteps = argc > 2 ? std::atoi(argv[2]) : 2;
  const int machines = argc > 3 ? std::atoi(argv[3]) : 8;

  const WaterState initial = make_water(wc);
  auto expect = initial;
  water_run_serial(wc, expect);
  std::printf("LWS: %d molecules, %d groups, %d timesteps, %d machines\n",
              wc.molecules, wc.groups, wc.timesteps, machines);

  struct Platform {
    const char* name;
    ClusterConfig (*make)(int);
  };
  const Platform platforms[] = {
      {"dash (shared memory)", presets::dash},
      {"ipsc860 (hypercube)", presets::ipsc860},
      {"mica (ethernet+pvm)", presets::mica},
  };

  for (const Platform& p : platforms) {
    auto run_on = [&](int m) {
      RuntimeConfig cfg;
      cfg.engine = EngineKind::kSim;
      cfg.cluster = p.make(m);
      Runtime rt(std::move(cfg));
      auto w = upload_water(rt, wc, initial);
      rt.run([&](TaskContext& ctx) { water_run_jade(ctx, w); });
      const auto got = download_water(rt, w);
      if (got.pos != expect.pos) {
        std::printf("  %s: RESULT MISMATCH\n", p.name);
        std::exit(1);
      }
      return rt.sim_duration();
    };
    const double t1 = run_on(1);
    const double tn = run_on(machines);
    std::printf("  %-22s t(1)=%8.2f s   t(%d)=%8.2f s   speedup=%.2f\n",
                p.name, t1, machines, tn, t1 / tn);
  }
  std::printf("all platforms produced the identical (serial) result\n");
  return 0;
}
