// Digital image processing on the simulated HRV workstation (paper
// Section 7.2): a SPARC frame source captures frames; i860 accelerators
// transform them.  Frames cross an endianness boundary on every hop, so the
// runtime's data-format conversion runs on each transfer.
//
//   ./video_pipeline [frames] [accelerators]
#include <cstdio>
#include <cstdlib>

#include "jade/apps/video.hpp"
#include "jade/mach/presets.hpp"

int main(int argc, char** argv) {
  using namespace jade;
  using namespace jade::apps;

  VideoConfig vc;
  vc.frames = argc > 1 ? std::atoi(argv[1]) : 48;
  vc.width = 96;
  vc.height = 64;
  const int accelerators = argc > 2 ? std::atoi(argv[2]) : 3;

  const auto expect = video_serial(vc);

  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::hrv(accelerators);
  Runtime rt(std::move(cfg));
  auto v = upload_video(rt, vc);
  rt.run([&](TaskContext& ctx) { video_jade(ctx, v, accelerators); });

  if (download_video(rt, v) != expect) {
    std::printf("FRAME CHECKSUM MISMATCH\n");
    return 1;
  }

  const auto& s = rt.stats();
  const double t = rt.sim_duration();
  std::printf("HRV pipeline: %d frames %dx%d, %d accelerator(s)\n",
              vc.frames, vc.width, vc.height, accelerators);
  std::printf("  virtual time      : %.4f s (%.1f frames/s)\n", t,
              vc.frames / t);
  std::printf("  format conversions: %llu scalars (SPARC<->i860)\n",
              static_cast<unsigned long long>(s.scalars_converted));
  std::printf("  object moves      : %llu, messages %llu\n",
              static_cast<unsigned long long>(s.object_moves),
              static_cast<unsigned long long>(s.messages));
  std::printf("  all %d frames transformed correctly\n", vc.frames);
  return 0;
}
