// Cluster demo: one Jade program, four real worker processes.
//
// The same program text runs twice — first on SerialEngine (the semantic
// reference), then on ClusterEngine, where the coordinator forks four
// workers and drives them over Unix-domain sockets.  Task bodies are
// *registered* (BodyRegistry) because closures cannot cross a process
// boundary; cluster::spawn makes that portable, falling back to ordinary
// closures on in-process engines.
//
//   $ cluster_demo
//
// demonstrates:
//   - read fan-out: the source array ships to each worker once, later
//     tasks on that worker reuse the cached copy (shipped-version protocol)
//   - a commuting accumulator serialized by the coordinator's token table
//   - per-worker pids: the tasks really did run in different processes
#include <cstdio>
#include <string>
#include <vector>

#include "jade/cluster/cluster_engine.hpp"
#include "jade/cluster/registry.hpp"
#include "jade/core/runtime.hpp"

using namespace jade;
using cluster::get_ref;
using cluster::put_ref;

namespace {

// Each worker records its own OS pid into the output slot, proving the
// task crossed a process boundary.
const int kSumSlice = cluster::BodyRegistry::instance().ensure(
    "demo.sum_slice", [](TaskContext& t, WireReader& r) {
      const auto src = get_ref<double>(r);
      const auto dst = get_ref<double>(r);
      const std::uint32_t lo = r.get_u32();
      const std::uint32_t hi = r.get_u32();
      const auto in = t.read(src);
      double sum = 0;
      for (std::uint32_t i = lo; i < hi; ++i) sum += in[i];
      auto out = t.write(dst);
      out[0] = sum;
      out[1] = static_cast<double>(getpid());
      out[2] = static_cast<double>(t.machine());
    });

const int kTally = cluster::BodyRegistry::instance().ensure(
    "demo.tally", [](TaskContext& t, WireReader& r) {
      const auto acc = get_ref<double>(r);
      const double v = r.get_f64();
      t.commute(acc)[0] += v;
    });

double run_program(Runtime& rt, const char* label) {
  constexpr int kSlices = 8;
  constexpr int kElems = 1 << 14;
  std::vector<double> data(kElems);
  for (int i = 0; i < kElems; ++i) data[static_cast<std::size_t>(i)] = 0.001 * i;
  auto src = rt.alloc_init<double>(data, "src");
  auto acc = rt.alloc<double>(1, "acc");
  std::vector<SharedRef<double>> parts;
  for (int s = 0; s < kSlices; ++s)
    parts.push_back(rt.alloc<double>(3, "part" + std::to_string(s)));

  rt.run([&](TaskContext& ctx) {
    const std::uint32_t step = kElems / kSlices;
    for (int s = 0; s < kSlices; ++s) {
      WireWriter args;
      put_ref(args, src);
      put_ref(args, parts[static_cast<std::size_t>(s)]);
      args.put_u32(s * step);
      args.put_u32((s + 1) * step);
      cluster::spawn(ctx, kSumSlice, std::move(args), [&](AccessDecl& d) {
        d.rd(src);
        d.wr(parts[static_cast<std::size_t>(s)]);
      });
      WireWriter targs;
      put_ref(targs, acc);
      targs.put_f64(1.0);
      cluster::spawn(ctx, kTally, std::move(targs),
                     [&](AccessDecl& d) { d.cm(acc); });
    }
  });

  double total = 0;
  std::printf("%s:\n", label);
  for (int s = 0; s < kSlices; ++s) {
    const std::vector<double> p = rt.get(parts[static_cast<std::size_t>(s)]);
    total += p[0];
    std::printf("  slice %d  sum=%10.2f  pid=%-7.0f machine=%.0f\n", s, p[0],
                p[1], p[2]);
  }
  std::printf("  tally (commute): %.0f of %d tasks\n", rt.get(acc)[0],
              kSlices);
  std::printf("  total %.2f   tasks=%llu  wire messages=%llu  payload=%llu B\n",
              total, static_cast<unsigned long long>(rt.stats().tasks_created),
              static_cast<unsigned long long>(rt.stats().messages),
              static_cast<unsigned long long>(rt.stats().payload_bytes));
  return total;
}

}  // namespace

int main() {
  RuntimeConfig serial;
  serial.engine = EngineKind::kSerial;
  Runtime ref(serial);
  const double expect = run_program(ref, "SerialEngine (reference)");

  RuntimeConfig cfg;
  cfg.engine = EngineKind::kCluster;
  cfg.cluster_proc.workers = 4;
  cfg.cluster_proc.spares = 1;
  Runtime rt(cfg);
  std::printf("\ncoordinator pid %d forks %d workers + %d spare\n\n", getpid(),
              cfg.cluster_proc.workers, cfg.cluster_proc.spares);
  const double got = run_program(rt, "ClusterEngine (4 processes)");

  if (got != expect) {
    std::printf("\nMISMATCH: serial %.6f vs cluster %.6f\n", expect, got);
    return 1;
  }
  std::printf("\ncluster result matches the serial reference\n");
  return 0;
}
