// JadeServer demo: many independent Jade programs on one shared engine.
//
// The paper's model is one program per runtime.  JadeServer keeps a single
// ThreadEngine resident and serves a mixed population of tenants, each with
// the full programming model (own objects, withonly tasks, serial
// semantics) but isolated from the others: objects are tenant-tagged, task
// quotas are fair-shared by weight, one tenant's failure or cancellation
// never disturbs its neighbours.
//
// The mix below: "cholesky" sessions factor sparse SPD matrices (the
// paper's Section 6 workload), "jmake" sessions run the parallel make of
// Section 7.1, "pipeline" sessions run a stage chain, and "burst" sessions
// fan out microtasks.  One session deliberately throws (contained failure)
// and one is force-cancelled mid-run; everything else completes, is
// verified against its serial reference, and the per-tenant stats are
// printed at the end.
//
//   ./server_demo
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "jade/apps/cholesky.hpp"
#include "jade/apps/jmake.hpp"
#include "jade/server/server.hpp"
#include "jade/support/stats.hpp"

using namespace jade;
using server::JadeServer;
using server::Session;
using server::SessionState;

namespace {

/// Stage chain: each stage reads its predecessor's cell and writes its own.
void submit_pipeline(const std::shared_ptr<Session>& s, int stages) {
  std::vector<SharedRef<std::int64_t>> cells;
  for (int i = 0; i <= stages; ++i)
    cells.push_back(s->alloc<std::int64_t>(1, "cell" + std::to_string(i)));
  s->submit([cells, stages](TaskContext& ctx) {
    auto first = cells[0];
    ctx.withonly([&](AccessDecl& d) { d.wr(first); },
                 [first](TaskContext& t) { t.write(first)[0] = 1; });
    for (int i = 0; i < stages; ++i) {
      auto in = cells[static_cast<std::size_t>(i)];
      auto outc = cells[static_cast<std::size_t>(i) + 1];
      ctx.withonly(
          [&](AccessDecl& d) {
            d.rd(in);
            d.wr(outc);
          },
          [in, outc](TaskContext& t) {
            t.write(outc)[0] = t.read(in)[0] * 2 + 1;
          });
    }
  });
}

/// Microtask fan-out onto one commutative accumulator.
void submit_burst(const std::shared_ptr<Session>& s, int tasks) {
  auto acc = s->alloc<std::int64_t>(1, "acc");
  s->submit([acc, tasks](TaskContext& ctx) {
    for (int k = 0; k < tasks; ++k)
      ctx.withonly([&](AccessDecl& d) { d.cm(acc); },
                   [acc](TaskContext& t) { t.commute(acc)[0] += 1; });
  });
}

}  // namespace

int main() {
  server::ServerConfig cfg;
  cfg.runtime.engine = EngineKind::kThread;
  cfg.runtime.threads = 4;
  cfg.admission.max_active_sessions = 32;
  cfg.admission.max_queued_sessions = 64;
  cfg.quota_pool = 96;  // live-task slots fair-shared by session weight
  JadeServer srv(cfg);

  std::vector<std::shared_ptr<Session>> sessions;
  auto open = [&](const std::string& name, double weight) {
    auto s = srv.open_session(name, {.weight = weight});
    if (s == nullptr) {
      std::fprintf(stderr, "session %s rejected\n", name.c_str());
      std::exit(1);
    }
    sessions.push_back(s);
    return s;
  };

  // The mixed population: heavy Cholesky factorizations, parallel makes,
  // mid-weight pipelines, light microtask bursts.  The app inputs are
  // uploaded through the shared Runtime (kSharedTenant objects), and each
  // session's tasks carry its tenant id regardless.
  std::vector<apps::JadeSparse> matrices;
  std::vector<apps::SparseMatrix> expected;
  for (int i = 0; i < 2; ++i) {
    const auto a =
        apps::make_spd(96, 6.0 / 96, 11 + static_cast<std::uint64_t>(i));
    auto want = a;
    apps::factor_serial(want);
    matrices.push_back(apps::upload_matrix(srv.runtime(), a));
    expected.push_back(std::move(want));
    auto s = open("cholesky" + std::to_string(i), 4.0);
    const apps::JadeSparse jm = matrices.back();
    s->submit([jm](TaskContext& ctx) { apps::factor_jade(ctx, jm); });
  }
  std::vector<apps::JadeMake> builds;
  std::vector<std::unique_ptr<int>> commands;
  for (int i = 0; i < 2; ++i) {
    auto mf = apps::project_makefile(12, 3);
    apps::touch_sources(mf, 0.5, 7 + static_cast<std::uint64_t>(i));
    builds.push_back(apps::upload_make(srv.runtime(), mf));
    commands.push_back(std::make_unique<int>(0));
    auto s = open("jmake" + std::to_string(i), 2.0);
    const apps::JadeMake jm = builds.back();
    int* ran = commands.back().get();
    s->submit(
        [jm, ran](TaskContext& ctx) { apps::make_jade(ctx, jm, ran); });
  }
  for (int i = 0; i < 4; ++i)
    submit_pipeline(open("pipeline" + std::to_string(i), 2.0), 24);
  for (int i = 0; i < 8; ++i)
    submit_burst(open("burst" + std::to_string(i), 1.0), 64);

  // One tenant whose body throws: the failure is contained to its session.
  auto faulty = open("faulty", 1.0);
  faulty->submit([](TaskContext& ctx) {
    ctx.withonly([](AccessDecl&) {}, [](TaskContext&) {
      throw std::runtime_error("tenant bug: divide by cucumber");
    });
  });

  // One tenant force-cancelled mid-run: its remaining tasks unwind.
  auto victim = open("victim", 1.0);
  TenantCtl* vctl = &victim->ctl();
  victim->submit([vctl](TaskContext& ctx) {
    for (int k = 0;
         k < 1000000 && !vctl->cancelled.load(std::memory_order_relaxed); ++k)
      ctx.withonly([](AccessDecl&) {}, [](TaskContext&) {});
  });
  victim->cancel();

  std::printf("serving %zu sessions on one ThreadEngine (quota pool %llu)\n",
              sessions.size(),
              static_cast<unsigned long long>(cfg.quota_pool));

  TextTable table(
      {"session", "state", "created", "completed", "cancelled", "max_live",
       "latency_s"});
  for (const auto& s : sessions) {
    const SessionState st = s->wait();
    const auto stats = s->stats();
    table.add_row({s->name(), server::session_state_name(st),
                   std::to_string(stats.tasks_created),
                   std::to_string(stats.tasks_completed),
                   std::to_string(stats.tasks_cancelled),
                   std::to_string(stats.max_live),
                   format_double(stats.latency_seconds, 4)});
    if (st == SessionState::kFailed) {
      try {
        s->rethrow_failure();
      } catch (const std::exception& e) {
        std::printf("contained failure in %s: %s\n", s->name().c_str(),
                    e.what());
      }
    }
    s->close();
  }
  table.print(std::cout);

  // Verify the app tenants against their serial references.
  for (std::size_t i = 0; i < matrices.size(); ++i) {
    const auto got = apps::download_matrix(srv.runtime(), matrices[i]);
    double diff = 0;
    for (std::size_t c = 0; c < got.cols.size(); ++c)
      for (std::size_t k = 0; k < got.cols[c].size(); ++k)
        diff = std::max(diff,
                        std::abs(got.cols[c][k] - expected[i].cols[c][k]));
    std::printf("cholesky%zu max |jade - serial| = %g\n", i, diff);
  }
  for (std::size_t i = 0; i < builds.size(); ++i) {
    const auto serial = apps::make_serial(builds[i].mf);
    std::printf("jmake%zu commands run: %d (serial: %d)\n", i, *commands[i],
                serial.commands_run);
  }
  std::printf("all sessions drained; engine served them with %zu still "
              "active (expect 0)\n",
              srv.active_sessions());
  return 0;
}
