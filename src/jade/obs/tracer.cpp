#include "jade/obs/tracer.hpp"

namespace jade::obs {

void Tracer::attach(TraceSink* sink, Clock clock) {
  sink_ = sink;
  clock_ = std::move(clock);
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::emit(EventKind kind, Subsystem cat, const char* name,
                  std::uint64_t id, MachineId machine, SimTime ts,
                  double value, std::string detail) {
  TraceEvent ev;
  ev.kind = kind;
  ev.cat = cat;
  ev.name = name;
  ev.id = id;
  ev.machine = machine;
  ev.ts = ts;
  ev.value = value;
  ev.detail = std::move(detail);
  if (wall_) {
    ev.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - epoch_)
                     .count();
  }
  sink_->record(std::move(ev));
}

}  // namespace jade::obs
