#include "jade/obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <vector>

#include "jade/support/error.hpp"
#include "jade/support/stats.hpp"

namespace jade::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Virtual seconds -> microseconds, fixed precision (sub-ns resolution),
/// locale-independent.
std::string ts_us(SimTime seconds) {
  return format_double(seconds * 1e6, 3);
}

const char* phase_of(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanBegin: return "b";
    case EventKind::kSpanEnd: return "e";
    case EventKind::kInstant: return "i";
    case EventKind::kCounter: return "C";
  }
  return "i";
}

void write_event(std::ostream& os, const TraceEvent& ev,
                 const ChromeTraceOptions& options) {
  const int tid = ev.machine + 1;  // -1 (no machine) -> tid 0, the host track
  os << "{\"ph\":\"" << phase_of(ev.kind) << "\",\"cat\":\""
     << subsystem_name(ev.cat) << "\",\"name\":\"" << json_escape(ev.name)
     << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << ts_us(ev.ts);
  if (ev.kind == EventKind::kSpanBegin || ev.kind == EventKind::kSpanEnd)
    os << ",\"id\":\"0x" << std::hex << ev.id << std::dec << "\"";
  if (ev.kind == EventKind::kInstant) os << ",\"s\":\"t\"";
  // args
  os << ",\"args\":{";
  bool first = true;
  auto arg = [&](const std::string& kv) {
    if (!first) os << ",";
    os << kv;
    first = false;
  };
  if (ev.kind == EventKind::kCounter)
    arg("\"value\":" + format_double(ev.value, 6));
  else if (ev.value != 0)
    arg("\"value\":" + format_double(ev.value, 6));
  if (!ev.detail.empty())
    arg("\"detail\":\"" + json_escape(ev.detail) + "\"");
  if (ev.kind == EventKind::kInstant || ev.kind == EventKind::kSpanBegin)
    arg("\"id\":" + std::to_string(ev.id));
  if (options.include_wall_clock && ev.wall_ms != 0)
    arg("\"wall_ms\":" + format_double(ev.wall_ms, 3));
  os << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events,
                        const ChromeTraceOptions& options) {
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const TraceEvent& ev : events) ordered.push_back(&ev);
  std::sort(ordered.begin(), ordered.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->ts != b->ts) return a->ts < b->ts;
              return a->seq < b->seq;
            });

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Track metadata: name the process and every machine track that appears.
  os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\""
     << json_escape(options.process_name) << "\"}}";
  std::set<int> tids;
  for (const TraceEvent* ev : ordered) tids.insert(ev->machine + 1);
  for (int tid : tids) {
    const std::string label =
        tid == 0 ? "host" : "machine " + std::to_string(tid - 1);
    os << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"name\":\"" << label << "\"}}";
  }
  for (const TraceEvent* ev : ordered) {
    os << ",\n";
    write_event(os, *ev, options);
  }
  os << "\n]}\n";
}

void write_chrome_trace_file(const std::string& path,
                             const TraceRecorder& recorder,
                             const ChromeTraceOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw ConfigError("cannot open trace output file: " + path);
  const auto events = recorder.snapshot();
  write_chrome_trace(out, events, options);
}

std::string trace_text_summary(std::span<const TraceEvent> events) {
  // (category, name) -> count; spans counted once at their end.
  std::map<std::pair<std::string, std::string>, std::uint64_t> counts;
  for (const TraceEvent& ev : events) {
    if (ev.kind == EventKind::kSpanBegin) continue;
    ++counts[{subsystem_name(ev.cat), ev.name}];
  }
  TextTable table({"category", "event", "count"});
  for (const auto& [key, n] : counts)
    table.add_row({key.first, key.second, std::to_string(n)});
  std::ostringstream os;
  table.print(os);
  return os.str();
}

}  // namespace jade::obs
