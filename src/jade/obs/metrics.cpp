#include "jade/obs/metrics.hpp"

#include <cmath>
#include <ostream>

#include "jade/support/error.hpp"

namespace jade::obs {

namespace {
int bucket_index(double x) {
  if (x < Histogram::kMin) return 0;
  const int i =
      static_cast<int>(std::ceil(std::log2(x / Histogram::kMin)));
  return std::clamp(i, 0, Histogram::kBuckets - 1);
}
}  // namespace

void Histogram::observe(double x) {
  JADE_ASSERT_MSG(x >= 0, "Histogram samples must be non-negative");
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  ++buckets_[static_cast<std::size_t>(bucket_index(x))];
}

double Histogram::bucket_floor(int i) {
  return i <= 0 ? 0.0 : kMin * std::exp2(i - 1);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (static_cast<double>(seen + n) >= target) {
      const double lo = std::max(bucket_floor(i), min_);
      const double hi = std::min(kMin * std::exp2(i), max_);
      const double frac =
          n ? (target - static_cast<double>(seen)) / static_cast<double>(n)
            : 0.0;
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += n;
  }
  return max_;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        Kind kind) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    Entry& e = order_[it->second];
    JADE_ASSERT_MSG(e.kind == kind,
                    "metric re-registered as a different kind");
    return e;
  }
  Entry e;
  e.name = std::string(name);
  e.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      e.index = counters_.size();
      counters_.emplace_back();
      break;
    case Kind::kGauge:
      e.index = gauges_.size();
      gauges_.emplace_back();
      break;
    case Kind::kHistogram:
      e.index = histograms_.size();
      histograms_.emplace_back();
      break;
  }
  by_name_.emplace(e.name, order_.size());
  order_.push_back(std::move(e));
  return order_.back();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return counters_[find_or_create(name, Kind::kCounter).index];
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return gauges_[find_or_create(name, Kind::kGauge).index];
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histograms_[find_or_create(name, Kind::kHistogram).index];
}

bool MetricsRegistry::has(std::string_view name) const {
  return by_name_.contains(std::string(name));
}

CounterSet MetricsRegistry::counters(std::string_view prefix) const {
  CounterSet out;
  for (const Entry& e : order_) {
    if (!prefix.empty() &&
        std::string_view(e.name).substr(0, prefix.size()) != prefix)
      continue;
    if (e.kind == Kind::kCounter)
      out.add(e.name, counters_[e.index].value());
    else if (e.kind == Kind::kGauge)
      out.add(e.name, static_cast<std::uint64_t>(gauges_[e.index].value()));
  }
  return out;
}

void MetricsRegistry::print_summary(std::ostream& os) const {
  TextTable scalars({"metric", "value"});
  bool have_scalar = false;
  for (const Entry& e : order_) {
    if (e.kind == Kind::kCounter) {
      scalars.add_row({e.name, std::to_string(counters_[e.index].value())});
      have_scalar = true;
    } else if (e.kind == Kind::kGauge) {
      scalars.add_row({e.name, format_double(gauges_[e.index].value(), 6)});
      have_scalar = true;
    }
  }
  if (have_scalar) scalars.print(os);

  TextTable dists({"histogram", "count", "mean", "p50", "p95", "max"});
  bool have_dist = false;
  for (const Entry& e : order_) {
    if (e.kind != Kind::kHistogram) continue;
    const Histogram& h = histograms_[e.index];
    dists.add_row({e.name, std::to_string(h.count()),
                   format_double(h.mean(), 6), format_double(h.quantile(0.5), 6),
                   format_double(h.quantile(0.95), 6),
                   format_double(h.max(), 6)});
    have_dist = true;
  }
  if (have_dist) dists.print(os);
}

}  // namespace jade::obs
