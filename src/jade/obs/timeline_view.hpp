// Task timelines: the one TaskTimeline type, its text Gantt renderer, and
// the trace-derived rebuild.
//
// SimEngine records TaskTimeline rows directly (opt-in via
// SchedPolicy::record_timeline) — the tooling behind the Figure 7
// walkthrough output and schedule debugging.  timeline_from_trace rebuilds
// the same records from the engine-category trace events ("task.created" /
// "task.dispatched" / "task.body_start" instants plus the "task" span end),
// so the in-engine recorder and the structured trace share one source of
// truth.  A task killed by fault injection and re-dispatched contributes
// its *last* attempt's dispatch/body-start times — the same thing the
// in-engine recorder captures.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "jade/obs/event.hpp"
#include "jade/support/time.hpp"

namespace jade {

struct TaskTimeline {
  std::uint64_t task_id = 0;
  std::string name;
  MachineId machine = -1;
  SimTime created = 0;     ///< withonly executed (serial creation point)
  SimTime dispatched = 0;  ///< assigned to a machine context
  SimTime body_start = 0;  ///< objects fetched, dispatch overhead paid
  SimTime completed = 0;
  double charged_work = 0;

  SimTime queue_wait() const { return dispatched - created; }
  SimTime fetch_wait() const { return body_start - dispatched; }
  SimTime execution() const { return completed - body_start; }
};

/// Renders one row per machine; each column is a time bucket, marked '#'
/// when some task body was executing there and '.' when a task was resident
/// but fetching.  Deterministic, monospace, for terminal output.
std::string render_gantt(const std::vector<TaskTimeline>& timeline,
                         int machines, SimTime end, int width = 72);

/// Per-machine body-residency over [0, end]: the summed execution() spans
/// of tasks resident on each machine, as a fraction of end.  A span covers
/// CPU time plus any waiting the body did, so with k task contexts per
/// machine the value can approach k; the per-machine CPU-busy fractions are
/// RuntimeStats::machine_busy_seconds / finish_time.
std::vector<double> machine_utilization(
    const std::vector<TaskTimeline>& timeline, int machines, SimTime end);

namespace obs {

/// One TaskTimeline per completed "task" span, in completion order (the
/// order the in-engine recorder appends).  Events of other categories are
/// ignored, so the full mixed stream can be passed directly.
std::vector<TaskTimeline> timeline_from_trace(
    std::span<const TraceEvent> events);

}  // namespace obs
}  // namespace jade
