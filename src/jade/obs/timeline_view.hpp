// Trace-derived task timelines.
//
// Rebuilds the per-task TaskTimeline records (engine/timeline.hpp) from the
// engine-category trace events, so the Figure 7 Gantt tooling and the
// structured trace share one source of truth: "task.created" /
// "task.dispatched" / "task.body_start" instants plus the "task" span end.
// A task killed by fault injection and re-dispatched contributes its *last*
// attempt's dispatch/body-start times — the same thing the in-engine
// recorder captures.
#pragma once

#include <span>
#include <vector>

#include "jade/engine/timeline.hpp"
#include "jade/obs/event.hpp"

namespace jade::obs {

/// One TaskTimeline per completed "task" span, in completion order (the
/// order the in-engine recorder appends).  Events of other categories are
/// ignored, so the full mixed stream can be passed directly.
std::vector<TaskTimeline> timeline_from_trace(
    std::span<const TraceEvent> events);

}  // namespace jade::obs
