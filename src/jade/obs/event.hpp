// The observability event model (obs/).
//
// Every subsystem narrates its behavior as a stream of typed events: spans
// (an interval with a begin and an end, correlated by id), instants (a point
// occurrence), and counters (a sampled value).  Events carry the engine's
// virtual timestamp — SimEngine's deterministic clock, so two runs with the
// same seed produce the same stream — plus an optional wall-clock timestamp
// for the real-parallelism engines, where virtual time does not exist.
//
// Event names form a fixed taxonomy (docs/OBSERVABILITY.md): dotted,
// lower-case, rooted at the emitting subsystem ("task.body_start",
// "net.xfer", "store.move", "sched.place", "ft.crash").  Names are static
// string literals so recording an event never allocates for the name.
#pragma once

#include <cstdint>
#include <string>

#include "jade/support/time.hpp"

namespace jade::obs {

enum class EventKind : std::uint8_t {
  kSpanBegin,  ///< interval opens (matched to kSpanEnd by (cat, name, id))
  kSpanEnd,    ///< interval closes
  kInstant,    ///< point event
  kCounter,    ///< sampled value (`value` field)
};

/// The emitting subsystem — the Chrome exporter's category, and the prefix
/// convention for metric names.
enum class Subsystem : std::uint8_t {
  kEngine,  ///< task lifecycle, throttling, inlining
  kNet,     ///< interconnect models (send/deliver/drop/retransmit)
  kStore,   ///< object directory + local stores (fetch/replicate/invalidate)
  kSched,   ///< placement decisions
  kFt,      ///< fault injection & recovery
  kApp,     ///< application-level events (benches, examples)
};

const char* subsystem_name(Subsystem cat);

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  Subsystem cat = Subsystem::kEngine;
  /// Event type from the taxonomy.  Must point at static storage.
  const char* name = "";
  /// Correlation id: task id for task spans, a per-model message sequence
  /// number for network spans, the ObjectId for store events.
  std::uint64_t id = 0;
  /// Machine the event is attributed to (-1: no machine, e.g. host-side).
  MachineId machine = -1;
  /// Virtual time (SimEngine) or the engine's logical/wall clock, seconds.
  SimTime ts = 0;
  /// Wall-clock milliseconds since the tracer attached; 0 unless wall-clock
  /// capture is enabled (it is off by default — it breaks determinism).
  double wall_ms = 0;
  /// Counter value, span payload (e.g. charged work, bytes).
  double value = 0;
  /// Free-form detail (task name, placement explanation).  May be empty.
  std::string detail;
  /// Recorder-assigned sequence number: the deterministic total order of
  /// recording, used to break timestamp ties in exports.
  std::uint64_t seq = 0;
};

}  // namespace jade::obs
