// Tracer — the emission facade every instrumented subsystem holds.
//
// Zero-cost when disabled: a detached tracer is a null sink pointer, and
// every emit method is a single branch on it.  Call sites that would build a
// detail string first must guard with `if (tracer.enabled())` so the string
// work is also skipped.
//
// Timestamps come from a clock callback the owning engine installs
// (SimEngine: the virtual clock; ThreadEngine: wall seconds since attach;
// SerialEngine: a logical event counter).  The *_at variants take an
// explicit timestamp for events whose time is known but is not "now" — a
// network model scheduling an arrival emits the delivery end at the
// arrival's future virtual time.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <utility>

#include "jade/obs/sink.hpp"

namespace jade::obs {

class Tracer {
 public:
  using Clock = std::function<SimTime()>;

  /// Connects the tracer; a null `sink` detaches it.  `clock` supplies the
  /// `ts` of events emitted without an explicit timestamp.
  void attach(TraceSink* sink, Clock clock);
  void detach() { sink_ = nullptr; }

  /// Also stamp events with wall-clock milliseconds since attach.  Off by
  /// default: wall time makes exports non-deterministic.
  void set_wall_clock(bool on) { wall_ = on; }
  bool wall_clock() const { return wall_; }

  bool enabled() const { return sink_ != nullptr; }
  TraceSink* sink() { return sink_; }

  void span_begin(Subsystem cat, const char* name, std::uint64_t id,
                  MachineId machine, std::string detail = {}) {
    if (sink_) emit(EventKind::kSpanBegin, cat, name, id, machine, now(), 0,
                    std::move(detail));
  }
  void span_begin_at(SimTime ts, Subsystem cat, const char* name,
                     std::uint64_t id, MachineId machine,
                     std::string detail = {}) {
    if (sink_) emit(EventKind::kSpanBegin, cat, name, id, machine, ts, 0,
                    std::move(detail));
  }
  void span_end(Subsystem cat, const char* name, std::uint64_t id,
                MachineId machine, double value = 0,
                std::string detail = {}) {
    if (sink_) emit(EventKind::kSpanEnd, cat, name, id, machine, now(), value,
                    std::move(detail));
  }
  void span_end_at(SimTime ts, Subsystem cat, const char* name,
                   std::uint64_t id, MachineId machine, double value = 0,
                   std::string detail = {}) {
    if (sink_) emit(EventKind::kSpanEnd, cat, name, id, machine, ts, value,
                    std::move(detail));
  }
  void instant(Subsystem cat, const char* name, std::uint64_t id,
               MachineId machine, double value = 0,
               std::string detail = {}) {
    if (sink_) emit(EventKind::kInstant, cat, name, id, machine, now(), value,
                    std::move(detail));
  }
  void instant_at(SimTime ts, Subsystem cat, const char* name,
                  std::uint64_t id, MachineId machine, double value = 0,
                  std::string detail = {}) {
    if (sink_) emit(EventKind::kInstant, cat, name, id, machine, ts, value,
                    std::move(detail));
  }
  void counter(Subsystem cat, const char* name, MachineId machine,
               double value) {
    if (sink_) emit(EventKind::kCounter, cat, name, 0, machine, now(), value,
                    {});
  }

 private:
  SimTime now() const { return clock_ ? clock_() : 0; }
  void emit(EventKind kind, Subsystem cat, const char* name,
            std::uint64_t id, MachineId machine, SimTime ts, double value,
            std::string detail);

  TraceSink* sink_ = nullptr;
  Clock clock_;
  bool wall_ = false;
  std::chrono::steady_clock::time_point epoch_{};
};

}  // namespace jade::obs
