// TraceSink — where emitted events go — and TraceRecorder, the standard
// in-memory ring-buffered sink.
//
// The recorder keeps the newest `capacity` events: observability must never
// turn a long run into an OOM, so when the ring fills the oldest events are
// dropped and counted (exports report the loss rather than hiding it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "jade/obs/event.hpp"

namespace jade::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Takes ownership of one event.  Called from whichever thread emits —
  /// sinks used with ThreadEngine must be thread-safe (TraceRecorder is).
  virtual void record(TraceEvent ev) = 0;
};

class TraceRecorder : public TraceSink {
 public:
  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  void record(TraceEvent ev) override;

  /// Events currently held, oldest first (seq order).  A copy: the ring may
  /// keep rolling while the caller exports.
  std::vector<TraceEvent> snapshot() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Lifetime totals (recorded counts drops too).
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  void clear();

  static constexpr std::size_t kDefaultCapacity = 1 << 20;

 private:
  mutable std::mutex mu_;
  std::deque<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace jade::obs
