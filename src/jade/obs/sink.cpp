#include "jade/obs/sink.hpp"

#include "jade/support/error.hpp"

namespace jade::obs {

const char* subsystem_name(Subsystem cat) {
  switch (cat) {
    case Subsystem::kEngine: return "engine";
    case Subsystem::kNet: return "net";
    case Subsystem::kStore: return "store";
    case Subsystem::kSched: return "sched";
    case Subsystem::kFt: return "ft";
    case Subsystem::kApp: return "app";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  JADE_ASSERT_MSG(capacity >= 1, "TraceRecorder capacity must be >= 1");
}

void TraceRecorder::record(TraceEvent ev) {
  std::lock_guard<std::mutex> lock(mu_);
  ev.seq = next_seq_++;
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  // seq keeps counting: a cleared recorder still orders later events after
  // earlier ones, and `recorded()` stays a lifetime total.
}

}  // namespace jade::obs
