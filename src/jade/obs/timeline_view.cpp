#include "jade/obs/timeline_view.hpp"

#include <cstring>
#include <unordered_map>

namespace jade::obs {

std::vector<TaskTimeline> timeline_from_trace(
    std::span<const TraceEvent> events) {
  struct Partial {
    SimTime created = 0;
    SimTime dispatched = 0;
    SimTime body_start = 0;
    std::string name;
  };
  std::unordered_map<std::uint64_t, Partial> open;
  std::vector<TaskTimeline> out;
  for (const TraceEvent& ev : events) {
    if (ev.cat != Subsystem::kEngine) continue;
    if (std::strcmp(ev.name, "task.created") == 0) {
      Partial& p = open[ev.id];
      p.created = ev.ts;
      p.name = ev.detail;
    } else if (std::strcmp(ev.name, "task.dispatched") == 0) {
      open[ev.id].dispatched = ev.ts;  // last attempt wins (ft re-dispatch)
    } else if (std::strcmp(ev.name, "task.body_start") == 0) {
      open[ev.id].body_start = ev.ts;
    } else if (ev.kind == EventKind::kSpanEnd &&
               std::strcmp(ev.name, "task") == 0) {
      const Partial& p = open[ev.id];
      out.push_back(TaskTimeline{ev.id, p.name, ev.machine, p.created,
                                 p.dispatched, p.body_start, ev.ts,
                                 ev.value});
    }
  }
  return out;
}

}  // namespace jade::obs
