#include "jade/obs/timeline_view.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_map>

#include "jade/support/error.hpp"

namespace jade {

std::string render_gantt(const std::vector<TaskTimeline>& timeline,
                         int machines, SimTime end, int width) {
  JADE_ASSERT(machines >= 1 && width >= 8);
  if (end <= 0) end = 1;
  std::vector<std::string> rows(static_cast<std::size_t>(machines),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  auto col = [&](SimTime t) {
    const auto c = static_cast<int>(t / end * width);
    return std::clamp(c, 0, width - 1);
  };
  for (const TaskTimeline& t : timeline) {
    if (t.machine < 0 || t.machine >= machines) continue;
    std::string& row = rows[static_cast<std::size_t>(t.machine)];
    for (int c = col(t.dispatched); c <= col(t.body_start); ++c)
      if (row[static_cast<std::size_t>(c)] == ' ')
        row[static_cast<std::size_t>(c)] = '.';
    for (int c = col(t.body_start); c <= col(t.completed); ++c)
      row[static_cast<std::size_t>(c)] = '#';
  }
  std::ostringstream os;
  os << "time 0 .. " << end << " s   ('#' executing, '.' fetching)\n";
  for (int m = 0; m < machines; ++m)
    os << "m" << m << " |" << rows[static_cast<std::size_t>(m)] << "|\n";
  return os.str();
}

std::vector<double> machine_utilization(
    const std::vector<TaskTimeline>& timeline, int machines, SimTime end) {
  std::vector<double> busy(static_cast<std::size_t>(machines), 0.0);
  for (const TaskTimeline& t : timeline)
    if (t.machine >= 0 && t.machine < machines)
      busy[static_cast<std::size_t>(t.machine)] += t.execution();
  if (end > 0)
    for (double& b : busy) b /= end;
  return busy;
}

namespace obs {

std::vector<TaskTimeline> timeline_from_trace(
    std::span<const TraceEvent> events) {
  struct Partial {
    SimTime created = 0;
    SimTime dispatched = 0;
    SimTime body_start = 0;
    std::string name;
  };
  std::unordered_map<std::uint64_t, Partial> open;
  std::vector<TaskTimeline> out;
  for (const TraceEvent& ev : events) {
    if (ev.cat != Subsystem::kEngine) continue;
    if (std::strcmp(ev.name, "task.created") == 0) {
      Partial& p = open[ev.id];
      p.created = ev.ts;
      p.name = ev.detail;
    } else if (std::strcmp(ev.name, "task.dispatched") == 0) {
      open[ev.id].dispatched = ev.ts;  // last attempt wins (ft re-dispatch)
    } else if (std::strcmp(ev.name, "task.body_start") == 0) {
      open[ev.id].body_start = ev.ts;
    } else if (ev.kind == EventKind::kSpanEnd &&
               std::strcmp(ev.name, "task") == 0) {
      const Partial& p = open[ev.id];
      out.push_back(TaskTimeline{ev.id, p.name, ev.machine, p.created,
                                 p.dispatched, p.body_start, ev.ts,
                                 ev.value});
    }
  }
  return out;
}

}  // namespace obs
}  // namespace jade
