// MetricsRegistry — named counters, gauges, and log-bucketed histograms.
//
// One uniform, insertion-ordered view of everything a run accumulated,
// subsuming the flat RuntimeStats fields: engines publish those as named
// metrics at the end of run() (see publish_runtime_stats in engine.hpp),
// and additionally feed distribution metrics — task queue-wait, fetch-wait,
// message latency — that a flat counter bag cannot hold.
//
// Naming convention (docs/OBSERVABILITY.md): dotted, lower-case, rooted at
// the owning subsystem, e.g. "engine.tasks_created", "net.message_latency",
// "ft.tasks_requeued".
//
// Metric objects returned by the find-or-create accessors are
// reference-stable for the registry's lifetime, so hot paths look a metric
// up once and keep the reference.  Counters are atomic (ThreadEngine
// workers bump them concurrently); gauges and histograms must be updated
// under the caller's synchronization (every current call site already holds
// the engine lock or is single-threaded).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "jade/support/stats.hpp"

namespace jade::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double delta) { v_ += delta; }
  double value() const { return v_; }

 private:
  double v_ = 0;
};

/// Log-bucketed histogram for non-negative samples spanning many orders of
/// magnitude (latencies from microseconds to minutes, sizes from bytes to
/// megabytes).  Bucket i holds samples in [kMin * 2^(i-1), kMin * 2^i);
/// samples below kMin land in bucket 0, above the top in the last bucket.
/// Quantiles are estimated by linear interpolation within the bucket.
class Histogram {
 public:
  static constexpr double kMin = 1e-9;
  static constexpr int kBuckets = 96;  ///< covers kMin .. kMin * 2^96

  void observe(double x);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Estimated q-quantile (q in [0,1]); exact at the recorded min/max.
  double quantile(double q) const;

  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)];
  }
  /// Lower bound of bucket i's range.
  static double bucket_floor(int i);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricsScope;

class MetricsRegistry {
 public:
  /// Find-or-create, insertion-ordered.  A name identifies exactly one
  /// metric kind; asking for the same name as a different kind throws.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// A namespaced view: scope("tenant.7.").counter("tasks") names
  /// "tenant.7.tasks".  See MetricsScope below.
  MetricsScope scope(std::string prefix);

  bool has(std::string_view name) const;
  std::size_t size() const { return order_.size(); }

  /// Counter values (and gauges, rounded down) as an ordered CounterSet —
  /// the benches' uniform "name = value" view.  `prefix` filters (e.g.
  /// "ft." for the fault/recovery counters); empty takes everything.
  CounterSet counters(std::string_view prefix = {}) const;

  /// Deterministic text summary: one table of counters/gauges, one of
  /// histogram statistics (count/mean/p50/p95/max).
  void print_summary(std::ostream& os) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::size_t index;  ///< into the kind's storage deque
  };

  Entry& find_or_create(std::string_view name, Kind kind);

  // Deques: reference stability on growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> order_;
  std::unordered_map<std::string, std::size_t> by_name_;  ///< into order_
};

/// A prefix-qualified view of a registry, for per-namespace metric families
/// ("tenant.<id>.*", "session.<id>.*") without hot-path string assembly: the
/// prefix is composed once and each lookup appends the leaf name into a
/// buffer owned by the scope, then truncates back.  Returned references have
/// registry lifetime — callers look up once and keep the reference, exactly
/// as with the registry itself.  Not thread-safe (one scratch buffer); scopes
/// are cheap, so give each thread or owner its own.
class MetricsScope {
 public:
  MetricsScope(MetricsRegistry& registry, std::string prefix)
      : registry_(&registry),
        buf_(std::move(prefix)),
        prefix_len_(buf_.size()) {}

  Counter& counter(std::string_view leaf) {
    return registry_->counter(qualify(leaf));
  }
  Gauge& gauge(std::string_view leaf) {
    return registry_->gauge(qualify(leaf));
  }
  Histogram& histogram(std::string_view leaf) {
    return registry_->histogram(qualify(leaf));
  }

  std::string_view prefix() const {
    return std::string_view(buf_).substr(0, prefix_len_);
  }
  MetricsRegistry& registry() { return *registry_; }

 private:
  std::string_view qualify(std::string_view leaf) {
    buf_.resize(prefix_len_);
    buf_.append(leaf);
    return buf_;
  }

  MetricsRegistry* registry_;
  std::string buf_;  ///< prefix + scratch tail for the current lookup
  std::size_t prefix_len_;
};

inline MetricsScope MetricsRegistry::scope(std::string prefix) {
  return MetricsScope(*this, std::move(prefix));
}

}  // namespace jade::obs
