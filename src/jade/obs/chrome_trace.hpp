// Chrome trace-event / Perfetto JSON exporter, plus a deterministic text
// summary of a trace.
//
// The output is the Trace Event Format's JSON-object form
// ({"traceEvents":[...]}): load it at chrome://tracing or ui.perfetto.dev.
// Mapping:
//   * spans    -> async begin/end pairs ("ph":"b"/"e"), correlated by id —
//                 async rather than duration events because Jade spans on
//                 one machine legitimately overlap (multiple task contexts);
//   * instants -> "ph":"i" (thread scope);
//   * counters -> "ph":"C";
//   * one metadata record names each machine's track.
// pid is always 1 (one simulated cluster); tid is machine + 1 (tid 1 =
// machine 0; events with no machine land on tid 0, the "host" track).
// Timestamps are virtual seconds scaled to microseconds.
//
// Determinism: events are ordered by (ts, seq) with a locale-independent
// fixed-precision number format, so two runs that record the same stream —
// e.g. two SimEngine runs with the same seed — export byte-identical files.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "jade/obs/sink.hpp"

namespace jade::obs {

struct ChromeTraceOptions {
  std::string process_name = "jade";
  /// Emit each event's wall_ms as an arg (non-deterministic; off by
  /// default).  Only meaningful when the tracer captured wall clocks.
  bool include_wall_clock = false;
};

void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events,
                        const ChromeTraceOptions& options = {});

/// Convenience: snapshot + write to a file.  Throws ConfigError when the
/// file cannot be opened.
void write_chrome_trace_file(const std::string& path,
                             const TraceRecorder& recorder,
                             const ChromeTraceOptions& options = {});

/// Deterministic text summary: per (category, event name), the number of
/// occurrences (spans counted once, by their end event).
std::string trace_text_summary(std::span<const TraceEvent> events);

/// JSON string escaping (exposed for tests).
std::string json_escape(std::string_view s);

}  // namespace jade::obs
