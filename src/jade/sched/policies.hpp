// Scheduling policy knobs and selection heuristics.
//
// Section 5 lists the optimizations the Jade implementation applies; each
// has a knob here so the ablation bench (bench_ablation) can measure it:
//   * Dynamic Load Balancing      — idle machines pull ready tasks
//   * Matching Exploited w/ Available Concurrency — task-creation throttling
//   * Enhancing Locality          — prefer machines already holding a task's
//                                   objects
//   * Hiding Latency with Concurrency — multiple task contexts per machine,
//                                   so one task's object fetches overlap
//                                   another task's execution (Figure 7(f))
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "jade/core/object.hpp"
#include "jade/store/directory.hpp"
#include "jade/support/time.hpp"

namespace jade {

/// Suppression of excess task creation (Section 3.3, Figure 7(e)): when the
/// number of created-but-incomplete tasks exceeds high_water, the creating
/// task is suspended (or, in ThreadEngine, made to execute ready tasks
/// inline) until the backlog drains to low_water.  Serial semantics makes
/// this deadlock-free: a task never waits for a later task.
struct ThrottleConfig {
  bool enabled = false;
  std::uint64_t high_water = 512;
  std::uint64_t low_water = 256;
};

/// Communication-protocol optimizations (SimEngine data-movement path).
/// Each flag gates one payload- or message-saving mechanism; all default on.
/// bench_comm_protocol measures the all-off ("legacy") protocol against the
/// defaults.  Every mechanism preserves serial semantics and determinism.
struct CommConfig {
  /// Concurrent readers of the same remote object share one payload
  /// transfer, and a task's multi-object fetch travels as one batched
  /// request per owner machine.
  bool combine_requests = true;
  /// A machine whose dropped replica still matches the object's data
  /// version revalidates it with a control round-trip instead of re-paying
  /// the payload transfer.
  bool reuse_replicas = true;
  /// A writer invalidating n>1 replica holders sends one multicast control
  /// message instead of n unicasts.
  bool coalesce_invalidations = true;
  /// Cache the byte-swapped representation per (object, data version) so
  /// repeated cross-endian transfers of clean data convert once.
  bool cache_conversions = true;
  /// Issue transfers for deferred read declarations at dispatch, so the
  /// payload is resident (or in flight) before the task's first with_cont.
  bool prefetch_deferred = true;
};

/// Speculative task execution (Specx-style run-ahead with deterministic
/// rollback).  When workers sit idle and a pending task's only unresolved
/// predecessors hold *write* declarations that have not yet touched the
/// contested objects, the engine may dispatch it speculatively against
/// snapshot-isolated buffers.  At predecessor retirement the Serializer is
/// the commit check: if no conflicting write materialized the speculation
/// commits (its buffered writes become the canonical bytes, in serial
/// order); otherwise it aborts — buffers discarded, charge rewound, task
/// re-run normally when actually enabled.  All-off (`enabled = false`)
/// preserves legacy behavior to the byte (no new trace events, no state).
struct SpecConfig {
  bool enabled = false;
  /// Max simultaneously live speculations (the speculation budget).
  int max_live = 8;
  /// Per-object conflict-history throttle: after this many aborted
  /// speculations contested on an object, stop speculating past it.
  int conflict_limit = 2;
  /// How far down the pending backlog the candidate scan looks.
  std::size_t window = 32;
};

struct SchedPolicy {
  /// Resident task slots per machine; >1 lets object fetches for one task
  /// overlap execution of another (latency hiding).
  int contexts_per_machine = 2;
  /// Prefer placing tasks where their objects already live.
  bool locality = true;
  /// Record a per-task TaskTimeline (SimEngine; see obs/timeline_view.hpp).
  bool record_timeline = false;
  ThrottleConfig throttle;
  CommConfig comm;
  SpecConfig spec;
};

/// Why a placement decision went the way it did: every machine that had a
/// free context, with the locality-score inputs the heuristic compared.
/// Filled only when a caller asks (tracing); the hot path passes nullptr.
struct PlacementExplain {
  struct Candidate {
    MachineId machine = -1;
    std::size_t resident_bytes = 0;  ///< declared-object bytes already on it
    int free_contexts = 0;
  };
  std::vector<Candidate> candidates;  ///< machine-index order
  MachineId chosen = -1;

  /// The inverse decision (pick_task_for_machine, ClusterEngine dispatch):
  /// which of several ready tasks an idle machine took.  Candidates are
  /// window indices into the caller's task list, with the locality score
  /// each was compared on; `candidates`/`chosen` above stay untouched.
  struct TaskCandidate {
    std::size_t index = 0;           ///< caller's candidate-window index
    std::size_t resident_bytes = 0;  ///< declared bytes resident on machine
  };
  std::vector<TaskCandidate> task_candidates;  ///< window order
  std::size_t chosen_index = static_cast<std::size_t>(-1);
};

/// Picks the machine to run a ready task on, among machines with free
/// contexts, or -1 if none qualifies.
///
/// With locality on: the machine holding the most bytes of the task's
/// declared objects wins; ties prefer the creating machine, then more free
/// contexts, then the lowest index (deterministic).  With locality off:
/// most free contexts (pure load balancing), ties to lowest index.
///
/// `explain`, when non-null, receives the full candidate set and the choice.
MachineId pick_machine_for_task(const ObjectDirectory& dir,
                                std::span<const ObjectId> objects,
                                std::span<const int> free_contexts,
                                bool locality, MachineId creator,
                                PlacementExplain* explain = nullptr);

/// Picks which of several ready tasks an idle machine should take: with
/// locality on, the task with the most resident bytes on `machine`; ties
/// (and locality off) fall to the oldest task (FIFO, serial-order friendly).
/// `object_lists[i]` are the declared objects of ready task i.  Returns the
/// winning index, or SIZE_MAX if `object_lists` is empty.
///
/// `explain`, when non-null, receives the scored window
/// (PlacementExplain::task_candidates) and the winning index.
std::size_t pick_task_for_machine(
    const ObjectDirectory& dir,
    std::span<const std::vector<ObjectId>> object_lists, MachineId machine,
    bool locality, PlacementExplain* explain = nullptr);

/// Home re-election after a crash: the lowest-indexed surviving machine that
/// already holds a copy of `obj` (its replica becomes the authoritative
/// copy, so re-homing costs a control message, not a data transfer).
/// Returns -1 if no up machine holds a copy.  `machine_up` is a 0/1 mask.
MachineId pick_rehome_machine(const ObjectDirectory& dir, ObjectId obj,
                              std::span<const std::uint8_t> machine_up);

/// Target for restoring a sole-copy object from stable storage: the
/// (salt mod up_count)-th surviving machine, spreading restore load across
/// survivors deterministically.  Returns -1 if no machine is up.
MachineId pick_restore_machine(std::span<const std::uint8_t> machine_up,
                               std::uint64_t salt);

}  // namespace jade
