#include "jade/sched/policies.hpp"

#include <limits>

namespace jade {

MachineId pick_machine_for_task(const ObjectDirectory& dir,
                                std::span<const ObjectId> objects,
                                std::span<const int> free_contexts,
                                bool locality, MachineId creator,
                                PlacementExplain* explain) {
  MachineId best = -1;
  std::size_t best_bytes = 0;
  int best_free = 0;
  bool best_is_creator = false;
  if (explain != nullptr) {
    explain->candidates.clear();
    explain->chosen = -1;
  }

  for (MachineId m = 0; m < static_cast<MachineId>(free_contexts.size());
       ++m) {
    if (free_contexts[m] <= 0) continue;
    const std::size_t bytes =
        locality ? dir.bytes_scoreable(objects, m) : 0;
    if (explain != nullptr)
      explain->candidates.push_back({m, bytes, free_contexts[m]});
    // The creator preference is part of the locality heuristic (tasks reuse
    // objects their creator touched); with locality off it is pure load
    // balancing.
    const bool is_creator = locality && m == creator;
    const int free = free_contexts[m];

    bool better;
    if (best == -1) {
      better = true;
    } else if (bytes != best_bytes) {
      better = bytes > best_bytes;
    } else if (is_creator != best_is_creator) {
      better = is_creator;
    } else if (free != best_free) {
      better = free > best_free;
    } else {
      better = false;  // lowest index wins ties
    }
    if (better) {
      best = m;
      best_bytes = bytes;
      best_free = free;
      best_is_creator = is_creator;
    }
  }
  if (explain != nullptr) explain->chosen = best;
  return best;
}

std::size_t pick_task_for_machine(
    const ObjectDirectory& dir,
    std::span<const std::vector<ObjectId>> object_lists, MachineId machine,
    bool locality, PlacementExplain* explain) {
  if (explain != nullptr) {
    explain->task_candidates.clear();
    explain->chosen_index = std::numeric_limits<std::size_t>::max();
  }
  if (object_lists.empty()) return std::numeric_limits<std::size_t>::max();
  std::size_t best = 0;
  std::size_t best_bytes =
      locality ? dir.bytes_scoreable(object_lists[0], machine) : 0;
  if (explain != nullptr)
    explain->task_candidates.push_back({0, best_bytes});
  for (std::size_t i = 1; i < object_lists.size(); ++i) {
    const std::size_t bytes =
        locality ? dir.bytes_scoreable(object_lists[i], machine) : 0;
    if (explain != nullptr) explain->task_candidates.push_back({i, bytes});
    if (locality && bytes > best_bytes) {  // strict: FIFO wins ties
      best = i;
      best_bytes = bytes;
    }
  }
  if (explain != nullptr) explain->chosen_index = best;
  return best;
}

MachineId pick_rehome_machine(const ObjectDirectory& dir, ObjectId obj,
                              std::span<const std::uint8_t> machine_up) {
  for (MachineId m : dir.holders(obj)) {
    if (static_cast<std::size_t>(m) < machine_up.size() && machine_up[m])
      return m;
  }
  return -1;
}

MachineId pick_restore_machine(std::span<const std::uint8_t> machine_up,
                               std::uint64_t salt) {
  std::uint64_t up = 0;
  for (std::uint8_t b : machine_up) up += b ? 1 : 0;
  if (up == 0) return -1;
  std::uint64_t skip = salt % up;
  for (std::size_t m = 0; m < machine_up.size(); ++m) {
    if (!machine_up[m]) continue;
    if (skip == 0) return static_cast<MachineId>(m);
    --skip;
  }
  return -1;  // unreachable
}

}  // namespace jade
