#include "jade/sched/governor.hpp"

#include <algorithm>

#include "jade/support/error.hpp"

namespace jade {

TaskNode* CommuteTokenTable::holder(ObjectId obj) const {
  auto it = holder_.find(obj);
  return it == holder_.end() ? nullptr : it->second;
}

bool CommuteTokenTable::try_acquire(ObjectId obj, TaskNode* task) {
  auto it = holder_.find(obj);
  if (it == holder_.end()) {
    holder_.emplace(obj, task);
    held_[task].push_back(obj);
    return true;
  }
  return it->second == task;
}

void CommuteTokenTable::enqueue_waiter(ObjectId obj, TaskNode* task) {
  waiters_[obj].push_back(task);
}

bool CommuteTokenTable::release(ObjectId obj, TaskNode* task,
                                TaskNode** next_holder) {
  if (next_holder != nullptr) *next_holder = nullptr;
  auto h = holder_.find(obj);
  if (h == holder_.end() || h->second != task) return false;
  auto held = held_.find(task);
  JADE_ASSERT(held != held_.end());
  auto pos = std::find(held->second.begin(), held->second.end(), obj);
  JADE_ASSERT(pos != held->second.end());
  held->second.erase(pos);
  if (held->second.empty()) held_.erase(held);
  auto w = waiters_.find(obj);
  if (w != waiters_.end() && !w->second.empty()) {
    TaskNode* next = w->second.front();
    w->second.pop_front();
    h->second = next;
    held_[next].push_back(obj);
    if (next_holder != nullptr) *next_holder = next;
  } else {
    holder_.erase(h);
  }
  return true;
}

const std::vector<ObjectId>& CommuteTokenTable::held(TaskNode* task) const {
  static const std::vector<ObjectId> kNone;
  auto it = held_.find(task);
  return it == held_.end() ? kNone : it->second;
}

void CommuteTokenTable::remove_waiter(TaskNode* task) {
  for (auto& [obj, waiters] : waiters_) {
    auto it = std::find(waiters.begin(), waiters.end(), task);
    if (it != waiters.end()) waiters.erase(it);
  }
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> fair_share_windows(
    std::uint64_t pool, const std::vector<double>& weights,
    std::uint64_t min_window) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(weights.size());
  if (weights.empty()) return out;
  if (min_window == 0) min_window = 1;
  double total = 0;
  for (double w : weights) total += std::max(w, 0.0);
  for (double w : weights) {
    std::uint64_t hi = min_window;
    if (total > 0 && w > 0) {
      const double share = static_cast<double>(pool) * (w / total);
      hi = std::max(min_window, static_cast<std::uint64_t>(share));
    }
    const std::uint64_t lo = std::max(min_window, hi / 2);
    out.emplace_back(hi, lo);
  }
  return out;
}

}  // namespace jade
