// Concurrency governors shared by every engine.
//
// Two mechanisms used to live twice — once in SimEngine, once in
// ThreadEngine — with the copies slowly diverging:
//
//   * CommuteTokenTable — commuting-update exclusivity (the Section 4.3
//     extension): commuters may execute in any order but their accesses are
//     mutually exclusive, so a task takes an object's token at its first
//     commute accessor and holds it until completion (or an early no_cm).
//     SimEngine queues waiters FIFO and hands the token over explicitly;
//     ThreadEngine's waiters sleep on a condition variable and race for the
//     freed token, so it never enqueues.  Both policies are expressible
//     against this one table.
//   * ThrottleGate — suppression of excess task creation (Section 3.3,
//     Figure 7(e)): the water-mark predicates plus the suspension/give-up
//     accounting, folded into RuntimeStats at the end of run().
//
// Neither component synchronizes: the caller brings its own discipline
// (SimEngine is single-threaded; ThreadEngine calls under mu_).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "jade/core/object.hpp"
#include "jade/sched/policies.hpp"

namespace jade {

class TaskNode;

/// Ownership + FIFO wait queues for commute tokens.  Holders are tracked
/// per object and per task (a completing or killed task returns every token
/// it still holds); the per-task held list preserves acquisition order.
class CommuteTokenTable {
 public:
  /// The current holder of `obj`'s token, or nullptr when free.
  TaskNode* holder(ObjectId obj) const;

  /// Takes the token if it is free (true), confirms an existing hold
  /// (true), or reports another holder (false — the caller waits).
  bool try_acquire(ObjectId obj, TaskNode* task);

  /// Queues `task` for `obj`'s token; release() hands it over FIFO.
  void enqueue_waiter(ObjectId obj, TaskNode* task);

  /// Returns `task`'s hold on `obj`.  False (a no-op) when `task` is not
  /// the holder.  The token passes to the oldest waiter, if any — reported
  /// through `next_holder` so the caller can resume it — and is freed
  /// otherwise.
  bool release(ObjectId obj, TaskNode* task, TaskNode** next_holder = nullptr);

  /// The tokens `task` holds, in acquisition order (empty when none).
  const std::vector<ObjectId>& held(TaskNode* task) const;

  /// Drops `task` from every wait queue (a killed task's unwind path).
  void remove_waiter(TaskNode* task);

 private:
  std::unordered_map<ObjectId, TaskNode*> holder_;
  std::unordered_map<ObjectId, std::deque<TaskNode*>> waiters_;
  std::unordered_map<TaskNode*, std::vector<ObjectId>> held_;
};

/// Water-mark predicates and accounting for task-creation throttling.  The
/// gate owns the suspension/give-up counters (the engines publish them into
/// RuntimeStats when run() ends); the engine owns the waiting itself, which
/// is engine-specific (SimEngine parks a sim process, ThreadEngine sleeps
/// on a condition variable with a deadlock-escape give-up).
class ThrottleGate {
 public:
  explicit ThrottleGate(ThrottleConfig config) : config_(config) {}

  bool enabled() const { return config_.enabled; }

  /// True when creation must pause: throttling is on and the unstarted
  /// backlog exceeds the high-water mark.
  bool should_throttle(std::uint64_t backlog) const {
    return config_.enabled && backlog > config_.high_water;
  }

  /// True once the backlog has drained to the low-water mark (the resume
  /// condition for a suspended creator).
  bool backlog_drained(std::uint64_t backlog) const {
    return backlog <= config_.low_water;
  }

  void note_suspension() { ++suspensions_; }
  void note_giveup() { ++giveups_; }
  std::uint64_t suspensions() const { return suspensions_; }
  std::uint64_t giveups() const { return giveups_; }

 private:
  ThrottleConfig config_;
  std::uint64_t suspensions_ = 0;
  std::uint64_t giveups_ = 0;
};

}  // namespace jade
