// Concurrency governors shared by every engine.
//
// Two mechanisms used to live twice — once in SimEngine, once in
// ThreadEngine — with the copies slowly diverging:
//
//   * CommuteTokenTable — commuting-update exclusivity (the Section 4.3
//     extension): commuters may execute in any order but their accesses are
//     mutually exclusive, so a task takes an object's token at its first
//     commute accessor and holds it until completion (or an early no_cm).
//     SimEngine queues waiters FIFO and hands the token over explicitly;
//     ThreadEngine's waiters sleep on a condition variable and race for the
//     freed token, so it never enqueues.  Both policies are expressible
//     against this one table.
//   * ThrottleGate — suppression of excess task creation (Section 3.3,
//     Figure 7(e)): the water-mark predicates plus the suspension/give-up
//     accounting, folded into RuntimeStats at the end of run().
//
// Neither component synchronizes: the caller brings its own discipline
// (SimEngine is single-threaded; ThreadEngine calls under mu_).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "jade/core/object.hpp"
#include "jade/core/tenant.hpp"
#include "jade/sched/policies.hpp"

namespace jade {

class TaskNode;

/// Ownership + FIFO wait queues for commute tokens.  Holders are tracked
/// per object and per task (a completing or killed task returns every token
/// it still holds); the per-task held list preserves acquisition order.
class CommuteTokenTable {
 public:
  /// The current holder of `obj`'s token, or nullptr when free.
  TaskNode* holder(ObjectId obj) const;

  /// Takes the token if it is free (true), confirms an existing hold
  /// (true), or reports another holder (false — the caller waits).
  bool try_acquire(ObjectId obj, TaskNode* task);

  /// Queues `task` for `obj`'s token; release() hands it over FIFO.
  void enqueue_waiter(ObjectId obj, TaskNode* task);

  /// Returns `task`'s hold on `obj`.  False (a no-op) when `task` is not
  /// the holder.  The token passes to the oldest waiter, if any — reported
  /// through `next_holder` so the caller can resume it — and is freed
  /// otherwise.
  bool release(ObjectId obj, TaskNode* task, TaskNode** next_holder = nullptr);

  /// The tokens `task` holds, in acquisition order (empty when none).
  const std::vector<ObjectId>& held(TaskNode* task) const;

  /// Drops `task` from every wait queue (a killed task's unwind path).
  void remove_waiter(TaskNode* task);

 private:
  std::unordered_map<ObjectId, TaskNode*> holder_;
  std::unordered_map<ObjectId, std::deque<TaskNode*>> waiters_;
  std::unordered_map<TaskNode*, std::vector<ObjectId>> held_;
};

/// Water-mark predicates and accounting for task-creation throttling.  The
/// gate owns the suspension/give-up counters (the engines publish them into
/// RuntimeStats when run() ends); the engine owns the waiting itself, which
/// is engine-specific (SimEngine parks a sim process, ThreadEngine sleeps
/// on a condition variable with a deadlock-escape give-up).
class ThrottleGate {
 public:
  explicit ThrottleGate(ThrottleConfig config) : config_(config) {}

  bool enabled() const { return config_.enabled; }

  /// True when creation must pause: throttling is on and the unstarted
  /// backlog exceeds the high-water mark.
  bool should_throttle(std::uint64_t backlog) const {
    return config_.enabled && backlog > config_.high_water;
  }

  /// True once the backlog has drained to the low-water mark (the resume
  /// condition for a suspended creator).
  bool backlog_drained(std::uint64_t backlog) const {
    return backlog <= config_.low_water;
  }

  /// Per-tenant analogue of should_throttle: creation by a tenant task must
  /// pause while the tenant's live-task count exceeds its quota window.
  /// Quota 0 disables the gate for that tenant.  Works even when global
  /// throttling is off — quotas are the server's lever, not the program's.
  bool tenant_gated(const TenantCtl& ctl) const {
    const std::uint64_t hi = ctl.quota_hi.load(std::memory_order_relaxed);
    return hi != 0 && ctl.live.load(std::memory_order_relaxed) > hi;
  }

  /// Per-tenant analogue of backlog_drained.
  bool tenant_drained(const TenantCtl& ctl) const {
    return ctl.live.load(std::memory_order_relaxed) <=
           ctl.quota_lo.load(std::memory_order_relaxed);
  }

  void note_suspension() { ++suspensions_; }
  void note_giveup() { ++giveups_; }
  std::uint64_t suspensions() const { return suspensions_; }
  std::uint64_t giveups() const { return giveups_; }

  /// Zeroes the accounting for a fresh run on a reused engine.
  void reset_counters() {
    suspensions_ = 0;
    giveups_ = 0;
  }

 private:
  ThrottleConfig config_;
  std::uint64_t suspensions_ = 0;
  std::uint64_t giveups_ = 0;
};

/// Budget and conflict-history accounting for speculative execution
/// (SchedPolicy::spec).  Owns the speculation counters the engines publish
/// into RuntimeStats when run() ends, the live-speculation budget, and the
/// per-object abort history that stops the engine re-speculating past
/// objects that keep conflicting.  Like ThrottleGate, the governor never
/// synchronizes — SimEngine is single-threaded, ThreadEngine calls under
/// mu_ — and never touches unordered iteration on a decision path (the
/// abort history is keyed lookups only), so decisions are deterministic.
class SpeculationGovernor {
 public:
  explicit SpeculationGovernor(SpecConfig config) : config_(config) {}

  bool enabled() const { return config_.enabled; }
  const SpecConfig& config() const { return config_; }

  /// True while the live-speculation budget has room.
  bool can_start() const {
    return config_.enabled && live_ < config_.max_live;
  }

  /// True when `obj`'s abort history says to stop speculating past it.
  bool object_throttled(ObjectId obj) const {
    auto it = conflict_history_.find(obj);
    return it != conflict_history_.end() &&
           it->second >= config_.conflict_limit;
  }

  void note_start() {
    ++live_;
    ++started_;
  }
  void note_commit() {
    --live_;
    ++committed_;
  }
  /// An abort charges every contested object's conflict history and books
  /// the discarded shadow bytes + charge units as waste.
  void note_abort(const std::vector<ObjectId>& contested,
                  std::uint64_t wasted_bytes, double wasted_work) {
    --live_;
    ++aborted_;
    wasted_bytes_ += wasted_bytes;
    wasted_work_ += wasted_work;
    for (ObjectId obj : contested) ++conflict_history_[obj];
  }
  void note_denied() { ++denied_; }

  int live() const { return live_; }
  std::uint64_t started() const { return started_; }
  std::uint64_t committed() const { return committed_; }
  std::uint64_t aborted() const { return aborted_; }
  std::uint64_t denied() const { return denied_; }
  std::uint64_t wasted_bytes() const { return wasted_bytes_; }
  double wasted_work() const { return wasted_work_; }

  /// Zeroes accounting and history for a fresh run on a reused engine.
  void reset_counters() {
    started_ = committed_ = aborted_ = denied_ = 0;
    wasted_bytes_ = 0;
    wasted_work_ = 0;
    conflict_history_.clear();
  }

 private:
  SpecConfig config_;
  int live_ = 0;
  std::uint64_t started_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t denied_ = 0;
  std::uint64_t wasted_bytes_ = 0;
  double wasted_work_ = 0;
  std::unordered_map<ObjectId, int> conflict_history_;
};

/// Splits a pool of live-task slots among tenants in proportion to their
/// weights, returning one (quota_hi, quota_lo) window per weight.  Every
/// window is at least `min_window` slots — a starvation floor: the sum may
/// then exceed the pool, which only means the engine's backlog arbitrates
/// at the margin, never that a tenant stops dead.  quota_lo is half of
/// quota_hi (clamped to the floor), mirroring the global gate's hysteresis.
/// Zero/negative weights get the floor.  Empty input returns empty.
std::vector<std::pair<std::uint64_t, std::uint64_t>> fair_share_windows(
    std::uint64_t pool, const std::vector<double>& weights,
    std::uint64_t min_window);

}  // namespace jade
