#include "jade/model/profiler.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "jade/mach/presets.hpp"
#include "jade/model/trace_reader.hpp"

namespace jade::model {

namespace {

constexpr double kProbeOps = 1.0e7;

/// Contention-free shared-memory platform wide enough that tasks almost
/// never wait for a machine: completion time ≈ critical path.
ClusterConfig wide_platform(int machines) {
  ClusterConfig c;
  c.name = "profile-wide";
  c.net = NetKind::kSharedMemory;
  MachineDesc m;
  m.kind = MachineKind::kCpu;
  m.ops_per_second = kProbeOps;
  for (int i = 0; i < machines; ++i) {
    m.name = "wide" + std::to_string(i);
    c.machines.push_back(m);
  }
  c.task_dispatch_overhead = 0;
  c.task_create_overhead = 0;
  return c;
}

RuntimeConfig sim_config(ClusterConfig cluster) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = std::move(cluster);
  return cfg;
}

}  // namespace

WorkloadFeatures profile_workload(const WorkloadFn& workload,
                                  const ProfileOptions& opts) {
  WorkloadFeatures f;

  // 1. Wide probe: the dependence-chain floor.
  {
    RuntimeConfig cfg = sim_config(wide_platform(opts.wide_machines));
    cfg.sched.contexts_per_machine = 2;
    Runtime rt(cfg);
    workload(rt);
    f.critical_path_work = rt.stats().finish_time * kProbeOps;
  }

  // 2. Comm profile: graph shape + locality-placed data demand, extracted
  // from the Chrome-trace export the way an archived BENCH trace would be.
  double comm_finish = 0;
  {
    RuntimeConfig cfg = sim_config(presets::ideal(opts.machines));
    cfg.obs.trace = true;
    Runtime rt(cfg);
    workload(rt);
    std::stringstream trace_json;
    rt.write_chrome_trace(trace_json);
    const std::vector<obs::TraceEvent> events =
        read_chrome_trace(trace_json);
    const RunProfile p = extract_profile(events, rt.stats());
    f.tasks = p.tasks;
    f.total_work = p.total_work;
    f.mean_grain = p.mean_grain;
    f.max_grain = p.max_grain;
    f.fanout = p.fanout;
    f.root_fanout = p.root_fanout;
    f.max_queue_depth = p.max_queue_depth;
    f.payload_bytes = p.payload_bytes;
    f.messages = p.messages;
    comm_finish = p.finish_time;
  }

  // 3. Locality off: what load-balancing-only placement would move.
  {
    RuntimeConfig cfg = sim_config(presets::ideal(opts.machines));
    cfg.sched.locality = false;
    Runtime rt(cfg);
    workload(rt);
    f.payload_bytes_nolocal = static_cast<double>(rt.stats().payload_bytes);
    f.messages_nolocal = static_cast<double>(rt.stats().messages);
  }

  // 4. Spec probe: does run-ahead shorten the conservative chains here?
  if (opts.probe_speculation) {
    RuntimeConfig cfg = sim_config(presets::ideal(opts.machines));
    cfg.sched.spec.enabled = true;
    Runtime rt(cfg);
    workload(rt);
    const double spec_finish = rt.stats().finish_time;
    f.spec_speedup = (rt.stats().spec_committed > 0 && spec_finish > 0)
                         ? comm_finish / spec_finish
                         : 1.0;
  }

  if (f.critical_path_work > 0)
    f.avg_parallelism = f.total_work / f.critical_path_work;
  f.valid = true;
  return f;
}

}  // namespace jade::model
