// Planner — the pluggable policy-decision seam (docs/MODEL.md).
//
// Every scattered policy decision the engines used to hard-wire routes
// through this interface: placement scoring (machine-for-task and
// task-for-machine), work-stealing claim explanation, and whole-policy
// planning (contexts, locality, throttle windows, comm gates, speculation
// budgets).  SimEngine, ThreadEngine, and ClusterEngine all hold a Planner;
// the default HeuristicPlanner reproduces the legacy heuristics to the byte
// (same choices, same trace detail strings), so a run that never sets
// RuntimeConfig::planner is indistinguishable from the pre-seam engines.
//
// ModelPlanner (model_planner.hpp) is the interesting implementation: it
// predicts completion time with a trace-fitted CostModel and searches the
// policy space before the run starts.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "jade/mach/machine.hpp"
#include "jade/model/features.hpp"
#include "jade/sched/policies.hpp"
#include "jade/store/directory.hpp"

namespace jade::model {

/// Inputs to a machine-for-task placement decision (SimEngine dispatch).
struct PlacementQuery {
  std::span<const ObjectId> objects;      ///< the task's declared objects
  std::span<const int> free_contexts;     ///< per machine, index order
  bool locality = true;                   ///< already platform-adjusted
  MachineId creator = 0;                  ///< where the withonly executed
};

/// Inputs to a task-for-machine selection (ClusterEngine dispatch).
struct SelectQuery {
  std::span<const std::vector<ObjectId>> object_lists;  ///< per ready task
  MachineId machine = 0;
  bool locality = true;
};

class Planner {
 public:
  virtual ~Planner() = default;

  /// Identifies the planner in logs/benches ("heuristic", "model", ...).
  virtual const char* name() const = 0;

  /// Picks the machine a ready task should run on, among machines with free
  /// contexts; -1 when none qualifies.  `explain`, when non-null, receives
  /// every candidate and the choice (callers pass it only when tracing).
  virtual MachineId place_task(const ObjectDirectory& dir,
                               const PlacementQuery& q,
                               PlacementExplain* explain = nullptr) const = 0;

  /// Picks which ready task an idle machine should take (window indices into
  /// `q.object_lists`); SIZE_MAX when the window is empty.
  virtual std::size_t select_task(const ObjectDirectory& dir,
                                  const SelectQuery& q,
                                  PlacementExplain* explain = nullptr)
      const = 0;

  /// Explains a work-stealing claim (ThreadEngine): there is no directory to
  /// score, so the candidates are the live worker slots with their queue
  /// depths and `chosen` is the claiming worker.  Only called when tracing.
  virtual void explain_claim(std::span<const int> queue_depths,
                             MachineId chosen,
                             PlacementExplain* explain) const;

  /// Plans the whole policy for a run on `cluster`, starting from the
  /// caller's `base` knobs.  The default is the identity: hand-set knobs
  /// pass through untouched.  ModelPlanner searches the policy space here.
  virtual SchedPolicy plan_policy(const ClusterConfig& cluster,
                                  const SchedPolicy& base) const {
    (void)cluster;
    return base;
  }
};

/// The legacy heuristics behind the seam: delegates to
/// pick_machine_for_task / pick_task_for_machine (sched/policies.cpp),
/// byte-identical choices and explains.
class HeuristicPlanner : public Planner {
 public:
  const char* name() const override { return "heuristic"; }
  MachineId place_task(const ObjectDirectory& dir, const PlacementQuery& q,
                       PlacementExplain* explain) const override;
  std::size_t select_task(const ObjectDirectory& dir, const SelectQuery& q,
                          PlacementExplain* explain) const override;
};

/// Process-wide shared default planner (a HeuristicPlanner); engines fall
/// back to it when RuntimeConfig::planner is unset.
std::shared_ptr<const Planner> default_planner();

/// Renders a machine-for-task explain in the exact layout SimEngine has
/// always emitted in its "sched.place" events:
///   "chosen=N m0:bytes=B,free=F m1:bytes=B,free=F ..."
/// (trace byte-compatibility depends on this format; see
/// obs_trace_determinism_test).
std::string format_placement_explain(const PlacementExplain& explain);

/// Renders a task-for-machine explain ("sched.place" on ClusterEngine):
///   "chosen=T wM t<id>:bytes=B t<id>:bytes=B ..."
/// `task_ids[i]` is the task id of window candidate i.
std::string format_task_select_explain(
    const PlacementExplain& explain, MachineId machine,
    std::span<const std::uint64_t> task_ids);

}  // namespace jade::model
