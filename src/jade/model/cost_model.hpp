// CostModel — a compositional analytical performance model, trace-fitted.
//
// Extra-P's compositional idea, specialized to this runtime: completion time
// decomposes into a handful of analytically derived terms — critical-path
// floor, aggregate-compute floor, task-management overhead, interconnect
// occupancy — each computed from *per-pattern features* (WorkloadFeatures,
// measured once on a cheap profile platform) and the *target*
// (ClusterConfig, SchedPolicy) pair.  Coefficients calibrating the terms
// against reality are fitted from recorded runs by deterministic weighted
// least squares (relative-error weighting, Gaussian elimination with partial
// pivoting) — the same observations always produce bit-identical
// coefficients, so a fitted model is as reproducible as the traces it came
// from.
//
//   T(f, cluster, policy) ≈ c0·max(compute, comm)
//                         + c1·min(compute, comm)   [contexts == 1]
//                         + c2·min(compute, comm)   [contexts >= 2]
//                         + c3
//
// where compute = max(critical path / spec speedup, work / aggregate ops)
//                 + dispatch & creation overheads,
//       comm    = topology-aware occupancy of the bytes/messages the
//                 profile says the workload moves (locality-dependent).
// With one task context per machine nothing overlaps, so the smaller of the
// two terms is paid nearly in full (c1 ≈ 1); with latency hiding it mostly
// disappears (c2 ≈ small).  The fit learns exactly these weights.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "jade/mach/machine.hpp"
#include "jade/model/features.hpp"
#include "jade/sched/policies.hpp"

namespace jade::model {

/// One calibration point: a really-executed run and what the model will be
/// asked to reproduce.
struct Observation {
  WorkloadFeatures features;
  ClusterConfig cluster;
  SchedPolicy policy;
  double actual_seconds = 0;  ///< SimEngine virtual completion time
};

class CostModel {
 public:
  static constexpr std::size_t kTerms = 4;

  /// The analytic basis for one (features, platform, policy) triple, in
  /// seconds (see the header comment for the terms).
  static std::array<double, kTerms> basis(const WorkloadFeatures& f,
                                          const ClusterConfig& cluster,
                                          const SchedPolicy& policy);

  /// Interconnect occupancy (seconds) of moving `bytes` in `messages` over
  /// the config's topology — a throughput-style bound with a per-topology
  /// concurrency factor (shared media serialize, switched fabrics spread).
  static double comm_seconds(const ClusterConfig& cluster, double bytes,
                             double messages);

  /// Fits the coefficients against recorded runs.  Deterministic: the same
  /// observation list yields bit-identical coefficients.  Observations with
  /// non-positive actual time are ignored; throws ConfigError when fewer
  /// observations than terms remain.
  void fit(std::span<const Observation> observations);

  bool fitted() const { return fitted_; }
  std::span<const double> coefficients() const { return coef_; }

  /// Predicted completion time (virtual seconds) for the triple.  Requires
  /// a fitted model (ConfigError otherwise).
  double predict(const WorkloadFeatures& f, const ClusterConfig& cluster,
                 const SchedPolicy& policy) const;

 private:
  std::array<double, kTerms> coef_{};
  bool fitted_ = false;
};

}  // namespace jade::model
