// Profiler — measures WorkloadFeatures from cheap deterministic runs.
//
// One call runs the workload a handful of times on canonical SimEngine
// platforms and composes the per-run extractions (trace_reader.hpp) into the
// platform-independent feature vector the CostModel consumes:
//
//   1. wide probe     — a huge contention-free shared-memory platform with
//                       zero task-management overheads; virtual completion
//                       time approaches the critical path, so
//                       critical_path_work = finish_time · ops_per_second.
//   2. comm profile   — an ideal-network message-passing platform, locality
//                       on, tracing on; the Chrome-trace export is parsed
//                       back through read_chrome_trace (the on-disk path is
//                       exercised on purpose) and yields task counts, grain
//                       distribution, fan-out, backlog depth, and the
//                       locality-placed data demand.
//   3. locality-off   — the same platform with locality scoring disabled;
//                       its stats give the no-locality data demand.
//   4. spec probe     — (optional) the comm platform with speculation on;
//                       the completion-time ratio off/on is spec_speedup.
//
// Every run is a fresh Runtime, so the workload closure must be
// self-contained (allocate, run, optionally verify) and deterministic.
#pragma once

#include <functional>

#include "jade/core/runtime.hpp"
#include "jade/model/features.hpp"

namespace jade::model {

struct ProfileOptions {
  /// Width of the message-passing profile platform (comm + spec probes).
  int machines = 8;
  /// Width of the critical-path probe.  Parallelism beyond this saturates
  /// the estimate at total_work / wide_machines (still an upper bound on
  /// per-machine serialization, so predictions stay sane).
  int wide_machines = 256;
  /// Take the extra speculation run (skip for spec-irrelevant workloads).
  bool probe_speculation = true;
};

/// A self-contained Jade program: allocate objects, run, read back.
using WorkloadFn = std::function<void(Runtime&)>;

/// Profiles `workload` (several fresh SimEngine runs, see header comment)
/// and returns the composed feature vector with `valid = true`.
WorkloadFeatures profile_workload(const WorkloadFn& workload,
                                  const ProfileOptions& opts = {});

}  // namespace jade::model
