#include "jade/model/planner.hpp"

namespace jade::model {

void Planner::explain_claim(std::span<const int> queue_depths,
                            MachineId chosen,
                            PlacementExplain* explain) const {
  explain->candidates.clear();
  explain->chosen = chosen;
  for (MachineId m = 0; m < static_cast<MachineId>(queue_depths.size()); ++m)
    explain->candidates.push_back({m, 0, queue_depths[m]});
}

MachineId HeuristicPlanner::place_task(const ObjectDirectory& dir,
                                       const PlacementQuery& q,
                                       PlacementExplain* explain) const {
  return pick_machine_for_task(dir, q.objects, q.free_contexts, q.locality,
                               q.creator, explain);
}

std::size_t HeuristicPlanner::select_task(const ObjectDirectory& dir,
                                          const SelectQuery& q,
                                          PlacementExplain* explain) const {
  return pick_task_for_machine(dir, q.object_lists, q.machine, q.locality,
                               explain);
}

std::shared_ptr<const Planner> default_planner() {
  static const std::shared_ptr<const Planner> kDefault =
      std::make_shared<HeuristicPlanner>();
  return kDefault;
}

std::string format_placement_explain(const PlacementExplain& explain) {
  std::string detail = "chosen=" + std::to_string(explain.chosen);
  for (const PlacementExplain::Candidate& c : explain.candidates) {
    detail += " m" + std::to_string(c.machine) + ":bytes=" +
              std::to_string(c.resident_bytes) +
              ",free=" + std::to_string(c.free_contexts);
  }
  return detail;
}

std::string format_task_select_explain(
    const PlacementExplain& explain, MachineId machine,
    std::span<const std::uint64_t> task_ids) {
  const std::size_t chosen = explain.chosen_index;
  std::string detail =
      "chosen=" + (chosen < task_ids.size()
                       ? std::to_string(task_ids[chosen])
                       : std::string("-1"));
  detail += " w" + std::to_string(machine);
  for (const PlacementExplain::TaskCandidate& c : explain.task_candidates) {
    detail += " t" +
              (c.index < task_ids.size() ? std::to_string(task_ids[c.index])
                                         : std::to_string(c.index)) +
              ":bytes=" + std::to_string(c.resident_bytes);
  }
  return detail;
}

}  // namespace jade::model
