#include "jade/model/trace_reader.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>

#include "jade/support/error.hpp"

namespace jade::model {

// --- feature extraction ------------------------------------------------------

RunProfile extract_profile(std::span<const obs::TraceEvent> events,
                           const RuntimeStats& stats) {
  RunProfile p;
  p.total_work = stats.total_charged_work;
  p.payload_bytes = static_cast<double>(stats.payload_bytes);
  p.messages = static_cast<double>(stats.messages);
  p.finish_time = stats.finish_time;

  // Deterministic replay order: timestamp, then recording sequence.
  std::vector<const obs::TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const obs::TraceEvent& ev : events) ordered.push_back(&ev);
  std::sort(ordered.begin(), ordered.end(),
            [](const obs::TraceEvent* a, const obs::TraceEvent* b) {
              if (a->ts != b->ts) return a->ts < b->ts;
              return a->seq < b->seq;
            });

  // The root task is the first "task.created" the run emits; every later
  // creation is a real task.  Parent attribution: a creation on machine m is
  // charged to the *oldest* body still open there.  Under latency hiding a
  // freshly dispatched child can start on its creator's machine while the
  // creator is still spawning; the creator — root, or a spawner task whose
  // ancestors have already retired — is the body that has been open longest,
  // not the one that started last.
  std::uint64_t root_id = 0;
  bool saw_root = false;
  std::map<MachineId, std::vector<std::uint64_t>> running;  ///< open bodies,
                                                            ///< start order
  std::map<std::uint64_t, std::uint64_t> children;  ///< parent id -> count
  std::uint64_t created = 0;
  std::uint64_t grains_n = 0;
  double grain_sum = 0;
  std::int64_t backlog = 0;

  for (const obs::TraceEvent* ev : ordered) {
    if (std::strcmp(ev->name, "task.created") == 0) {
      if (!saw_root) {
        saw_root = true;
        root_id = ev->id;
        continue;  // the root is the program, not a task of it
      }
      ++created;
      ++backlog;
      p.max_queue_depth =
          std::max(p.max_queue_depth, static_cast<double>(backlog));
      auto it = running.find(ev->machine);
      const std::uint64_t parent =
          it != running.end() && !it->second.empty() ? it->second.front()
                                                     : root_id;
      ++children[parent];
    } else if (std::strcmp(ev->name, "task.dispatched") == 0) {
      if (saw_root && ev->id != root_id && backlog > 0) --backlog;
    } else if (std::strcmp(ev->name, "task.body_start") == 0) {
      running[ev->machine].push_back(ev->id);
    } else if (ev->kind == obs::EventKind::kSpanEnd &&
               std::strcmp(ev->name, "task") == 0) {
      auto& open = running[ev->machine];
      open.erase(std::remove(open.begin(), open.end(), ev->id), open.end());
      if (saw_root && ev->id == root_id) continue;
      ++grains_n;
      grain_sum += ev->value;
      p.max_grain = std::max(p.max_grain, ev->value);
    }
  }

  p.tasks = static_cast<double>(created);
  if (grains_n > 0) p.mean_grain = grain_sum / static_cast<double>(grains_n);

  std::uint64_t root_children = 0;
  std::uint64_t other_children = 0;
  std::uint64_t spawners = 0;
  for (const auto& [parent, n] : children) {
    if (parent == root_id) {
      root_children = n;
    } else {
      other_children += n;
      ++spawners;
    }
  }
  p.root_fanout = static_cast<double>(root_children);
  if (spawners > 0)
    p.fanout =
        static_cast<double>(other_children) / static_cast<double>(spawners);
  return p;
}

// --- Chrome-trace JSON ingestion --------------------------------------------
//
// A minimal recursive-descent parser for the subset of JSON our exporter
// emits (objects, arrays, strings, numbers, booleans).  Not a general JSON
// library — but it fully covers write_chrome_trace output, which is the
// only dialect it is asked to read.

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size())
      throw ProtocolError("trace JSON: trailing content at byte " +
                          std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ProtocolError("trace JSON: " + what + " at byte " +
                        std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", [] (JsonValue& v) {
        v.kind = JsonValue::Kind::kBool; v.boolean = true; });
      case 'f': return keyword("false", [] (JsonValue& v) {
        v.kind = JsonValue::Kind::kBool; v.boolean = false; });
      case 'n': return keyword("null", [] (JsonValue&) {});
      default: return number();
    }
  }

  template <typename Fill>
  JsonValue keyword(const char* word, Fill fill) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) fail("bad keyword");
    pos_ += len;
    JsonValue v;
    fill(v);
    return v;
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': v.string.push_back('"'); break;
        case '\\': v.string.push_back('\\'); break;
        case '/': v.string.push_back('/'); break;
        case 'n': v.string.push_back('\n'); break;
        case 'r': v.string.push_back('\r'); break;
        case 't': v.string.push_back('\t'); break;
        case 'b': v.string.push_back('\b'); break;
        case 'f': v.string.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The exporter only \u-escapes control bytes (< 0x20).
          v.string.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

/// TraceEvent::name must point at static storage; parsed names are interned
/// in a process-lifetime pool (bounded by the taxonomy's size in practice).
const char* intern_name(const std::string& name) {
  static std::mutex mu;
  static std::set<std::string> pool;
  std::lock_guard<std::mutex> lock(mu);
  return pool.insert(name).first->c_str();
}

obs::Subsystem subsystem_from(const std::string& cat) {
  if (cat == "engine") return obs::Subsystem::kEngine;
  if (cat == "net") return obs::Subsystem::kNet;
  if (cat == "store") return obs::Subsystem::kStore;
  if (cat == "sched") return obs::Subsystem::kSched;
  if (cat == "ft") return obs::Subsystem::kFt;
  return obs::Subsystem::kApp;
}

}  // namespace

std::vector<obs::TraceEvent> read_chrome_trace(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonParser parser(std::move(buf).str());
  const JsonValue doc = parser.parse();
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray)
    throw ProtocolError("trace JSON: missing traceEvents array");

  std::vector<obs::TraceEvent> out;
  out.reserve(events->array.size());
  std::uint64_t seq = 0;
  for (const JsonValue& ev : events->array) {
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString)
      throw ProtocolError("trace JSON: event without ph");
    obs::TraceEvent e;
    if (ph->string == "b") e.kind = obs::EventKind::kSpanBegin;
    else if (ph->string == "e") e.kind = obs::EventKind::kSpanEnd;
    else if (ph->string == "i") e.kind = obs::EventKind::kInstant;
    else if (ph->string == "C") e.kind = obs::EventKind::kCounter;
    else continue;  // metadata ("M") and anything newer
    if (const JsonValue* cat = ev.find("cat"))
      e.cat = subsystem_from(cat->string);
    if (const JsonValue* name = ev.find("name"))
      e.name = intern_name(name->string);
    if (const JsonValue* tid = ev.find("tid"))
      e.machine = static_cast<MachineId>(tid->number) - 1;
    if (const JsonValue* ts = ev.find("ts")) e.ts = ts->number * 1e-6;
    if (const JsonValue* args = ev.find("args")) {
      if (const JsonValue* value = args->find("value"))
        e.value = value->number;
      if (const JsonValue* detail = args->find("detail"))
        e.detail = detail->string;
      if (const JsonValue* id = args->find("id"))
        e.id = static_cast<std::uint64_t>(id->number);
    }
    // Span ends carry the correlation id only as the hex "id" field.
    if (e.id == 0) {
      if (const JsonValue* id = ev.find("id");
          id != nullptr && id->kind == JsonValue::Kind::kString &&
          id->string.rfind("0x", 0) == 0)
        e.id = std::strtoull(id->string.c_str() + 2, nullptr, 16);
    }
    e.seq = seq++;  // exporter order == (ts, seq) order by construction
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<obs::TraceEvent> read_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ProtocolError("cannot open trace file: " + path);
  return read_chrome_trace(in);
}

}  // namespace jade::model
