// TraceReader — turns recorded runs back into model inputs.
//
// Two entry points, both feeding the same extractor:
//   * in-memory:  extract_profile(events, stats) over a TraceRecorder
//     snapshot (the cheap path the profiler uses);
//   * on-disk:    read_chrome_trace(...) parses one of our deterministic
//     Chrome-trace JSON exports (obs/chrome_trace.cpp is the writer this
//     parser mirrors) back into TraceEvents, so archived BENCH traces can be
//     re-fit without re-running anything.
//
// The extraction walks the task-lifecycle events ("task.created",
// "task.dispatched", "task.body_start", "task" spans) and computes the
// graph-shape half of WorkloadFeatures: grain distribution, fan-out, peak
// ready backlog.  Data-demand counters (payload bytes, messages) come from
// RuntimeStats — the coherence layer already counts them exactly.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "jade/core/stats.hpp"
#include "jade/model/features.hpp"
#include "jade/obs/event.hpp"

namespace jade::model {

/// Raw per-run extraction (one run = one platform+policy): the graph-shape
/// features plus the run's own outcome numbers.  The profiler composes
/// several of these into one WorkloadFeatures.
struct RunProfile {
  double tasks = 0;            ///< tasks created, root excluded
  double total_work = 0;       ///< charge units (stats)
  double mean_grain = 0;
  double max_grain = 0;
  double fanout = 0;           ///< mean children per spawning non-root task
  double root_fanout = 0;      ///< children attributed to the root
  double max_queue_depth = 0;  ///< peak created-but-undispatched backlog
  double payload_bytes = 0;    ///< stats.payload_bytes
  double messages = 0;         ///< stats.messages
  double finish_time = 0;      ///< stats.finish_time (virtual seconds)
};

/// Extracts a RunProfile from an event snapshot plus the run's stats.
RunProfile extract_profile(std::span<const obs::TraceEvent> events,
                           const RuntimeStats& stats);

/// Parses a Chrome-trace JSON export produced by obs::write_chrome_trace
/// back into TraceEvents (metadata records are skipped; timestamps convert
/// from microseconds back to seconds).  Throws ProtocolError on malformed
/// input.  Event names are interned (the TraceEvent contract wants static
/// storage), so repeated ingestion does not grow memory per call.
std::vector<obs::TraceEvent> read_chrome_trace(std::istream& in);
std::vector<obs::TraceEvent> read_chrome_trace_file(const std::string& path);

}  // namespace jade::model
