#include "jade/model/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "jade/support/error.hpp"

namespace jade::model {

namespace {

/// Aggregate and peak machine speeds of the target platform.
struct Ops {
  double aggregate = 0;
  double peak = 0;
};

Ops ops_of(const ClusterConfig& cluster) {
  Ops o;
  for (const MachineDesc& m : cluster.machines) {
    o.aggregate += m.ops_per_second;
    o.peak = std::max(o.peak, m.ops_per_second);
  }
  if (o.aggregate <= 0) o.aggregate = 1;
  if (o.peak <= 0) o.peak = 1;
  return o;
}

}  // namespace

double CostModel::comm_seconds(const ClusterConfig& cluster, double bytes,
                               double messages) {
  if (cluster.shared_memory() || (bytes <= 0 && messages <= 0)) return 0;
  const double m = std::max(1.0, static_cast<double>(cluster.machine_count()));
  switch (cluster.net) {
    case NetKind::kSharedBus:
      // One medium: every byte and every message interrupt serialize.
      return bytes / cluster.bus.bytes_per_second +
             messages * cluster.bus.latency;
    case NetKind::kHypercube: {
      // log2(m)·m/2 links; disjoint pairs keep ~m/2 transfers in flight.
      const double concurrency = std::max(1.0, m / 2.0);
      const double hops = std::max(1.0, std::log2(m) / 2.0);  // mean distance
      return bytes / (cluster.cube.bytes_per_second * concurrency) +
             messages * (cluster.cube.startup + hops * cluster.cube.per_hop);
    }
    case NetKind::kCrossbar:
      // Non-blocking switch: per-link bandwidth times one in-flight transfer
      // per machine pair, bounded by the receivers.
      return bytes / (cluster.xbar.bytes_per_second * m) +
             messages * cluster.xbar.latency;
    case NetKind::kMesh: {
      // 2-D mesh, XY routing: bisection limits concurrency to ~sqrt(m).
      const double concurrency = std::max(1.0, std::sqrt(m));
      return bytes / (cluster.mesh.bytes_per_second * concurrency) +
             messages *
                 (cluster.mesh.startup + cluster.mesh.per_hop * std::sqrt(m));
    }
    case NetKind::kIdeal:
      return bytes / (cluster.ideal.bytes_per_second * m) +
             messages * cluster.ideal.latency;
    case NetKind::kSharedMemory:
      return 0;
  }
  return 0;
}

std::array<double, CostModel::kTerms> CostModel::basis(
    const WorkloadFeatures& f, const ClusterConfig& cluster,
    const SchedPolicy& policy) {
  const Ops ops = ops_of(cluster);
  const double m = std::max(1.0, static_cast<double>(cluster.machine_count()));

  // Serial floor: the dependence chain, relaxed by speculative run-ahead
  // when the policy enables it and the profile saw speculation pay off.
  double crit = f.critical_path_work / ops.peak;
  if (policy.spec.enabled && f.spec_speedup > 1.0) crit /= f.spec_speedup;

  // Throughput floor: all work spread over all machines.
  const double work_par = f.total_work / ops.aggregate;

  // Task management: dispatch runs on every machine's runtime lane;
  // creation runs on the creators' lanes, which parallelize only as far as
  // the creating tasks themselves do (a root-driven flood creates serially).
  const double dispatch = f.tasks * cluster.task_dispatch_overhead / m;
  const double creator_par =
      f.root_fanout > 0
          ? std::clamp(f.tasks / f.root_fanout, 1.0, m)
          : 1.0;
  const double create = f.tasks * cluster.task_create_overhead / creator_par;

  const double compute =
      std::max(crit, work_par) + dispatch + create;

  // Data motion demand: what the profile measured with the same placement
  // heuristics, priced on the target interconnect.  Locality off moves the
  // no-locality demand instead.
  const bool locality = policy.locality && !cluster.shared_memory();
  const double bytes = locality ? f.payload_bytes : f.payload_bytes_nolocal;
  const double msgs = locality ? f.messages : f.messages_nolocal;
  const double comm = comm_seconds(cluster, bytes, msgs);

  const double hi = std::max(compute, comm);
  const double lo = std::min(compute, comm);
  const bool hiding = policy.contexts_per_machine > 1;
  return {hi, hiding ? 0.0 : lo, hiding ? lo : 0.0, 1.0};
}

void CostModel::fit(std::span<const Observation> observations) {
  constexpr std::size_t n = kTerms;
  // Weighted normal equations: minimizing sum((pred - actual) / actual)^2
  // makes small and large runs count equally — the validation gate is
  // *relative* error.
  std::array<std::array<double, n>, n> ata{};
  std::array<double, n> atb{};
  std::size_t used = 0;
  for (const Observation& ob : observations) {
    if (ob.actual_seconds <= 0) continue;
    const std::array<double, n> x = basis(ob.features, ob.cluster, ob.policy);
    const double w = 1.0 / (ob.actual_seconds * ob.actual_seconds);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) ata[i][j] += w * x[i] * x[j];
      atb[i] += w * x[i] * ob.actual_seconds;
    }
    ++used;
  }
  if (used < n)
    throw ConfigError("CostModel::fit needs at least " + std::to_string(n) +
                      " observations with positive completion time, got " +
                      std::to_string(used));

  // Ridge floor: basis columns can vanish (e.g. no contexts=1 run in the
  // training set); a tiny diagonal keeps elimination stable and pins the
  // unidentified coefficient near zero — deterministically.
  for (std::size_t i = 0; i < n; ++i) ata[i][i] += 1e-9;

  // Gaussian elimination with partial pivoting — fixed operation order, so
  // identical inputs give bit-identical coefficients.
  std::array<std::size_t, n> row{};
  for (std::size_t i = 0; i < n; ++i) row[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(ata[row[r]][col]) > std::fabs(ata[row[pivot]][col]))
        pivot = r;
    std::swap(row[col], row[pivot]);
    const double diag = ata[row[col]][col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = ata[row[r]][col] / diag;
      for (std::size_t c = col; c < n; ++c)
        ata[row[r]][c] -= factor * ata[row[col]][c];
      atb[row[r]] -= factor * atb[row[col]];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double acc = atb[row[i]];
    for (std::size_t c = i + 1; c < n; ++c) acc -= ata[row[i]][c] * coef_[c];
    coef_[i] = acc / ata[row[i]][i];
  }
  fitted_ = true;
}

double CostModel::predict(const WorkloadFeatures& f,
                          const ClusterConfig& cluster,
                          const SchedPolicy& policy) const {
  if (!fitted_)
    throw ConfigError("CostModel::predict called before fit()");
  const std::array<double, kTerms> x = basis(f, cluster, policy);
  double t = 0;
  for (std::size_t i = 0; i < kTerms; ++i) t += coef_[i] * x[i];
  return std::max(t, 0.0);
}

}  // namespace jade::model
