// WorkloadFeatures — the per-pattern feature vector the model layer works on.
//
// Extracted by the TraceReader (trace_reader.hpp) from a *profile run*: a
// cheap deterministic SimEngine execution of the workload on a canonical
// contention-free platform.  The features are properties of the task graph
// and its data demand, deliberately independent of the *target* platform and
// policy — the CostModel (cost_model.hpp) combines them with a
// (ClusterConfig, SchedPolicy) pair to predict completion time, so one
// profile serves every candidate configuration the tuner explores.
#pragma once

#include <cstdint>

namespace jade::model {

struct WorkloadFeatures {
  bool valid = false;  ///< extracted from a real profile (all-zero otherwise)

  // --- task-graph shape ----------------------------------------------------
  double tasks = 0;           ///< tasks created (root excluded)
  double total_work = 0;      ///< sum of charge() units over all tasks
  double mean_grain = 0;      ///< total_work / tasks
  double max_grain = 0;       ///< largest single-task charge
  /// Mean children spawned per task that spawned any (fan-out; 0 when the
  /// graph is a root-only flood, in which case `root_fanout` carries it).
  double fanout = 0;
  double root_fanout = 0;     ///< tasks created directly by the root
  /// Charge() units along the longest dependence chain, inferred from the
  /// wide-profile run: virtual completion time on a contention-free platform
  /// with more contexts than tasks approaches the critical path.
  double critical_path_work = 0;
  /// total_work / critical_path_work — average exploitable parallelism.
  double avg_parallelism = 0;

  // --- data demand (message-passing profile platform, locality on) ---------
  double payload_bytes = 0;    ///< object-data bytes moved on the profile
  double messages = 0;         ///< network messages on the profile
  double declared_bytes = 0;   ///< bytes under declared objects, summed/task
  /// Same demand with locality scoring disabled — the tuner's estimate of
  /// what turning `SchedPolicy::locality` off costs in data motion.
  double payload_bytes_nolocal = 0;
  double messages_nolocal = 0;

  // --- dynamic behaviour ---------------------------------------------------
  double max_queue_depth = 0;  ///< peak created-but-undispatched backlog
  /// Completion-time ratio of the profile run with speculation off vs on
  /// (>1: run-ahead shortens the conservative-write chains; 1 when
  /// speculation never fires, 0 when no speculation profile was taken).
  double spec_speedup = 0;
};

}  // namespace jade::model
