#include "jade/model/model_planner.hpp"

namespace jade::model {

std::vector<SchedPolicy> ModelPlanner::candidate_policies(
    const SchedPolicy& base) {
  std::vector<SchedPolicy> out;
  out.push_back(base);  // candidate 0: the hand-set knobs, untouched
  for (const int contexts : {1, 2, 4}) {
    for (const bool locality : {true, false}) {
      for (const bool spec : {false, true}) {
        SchedPolicy p = base;
        p.contexts_per_machine = contexts;
        p.locality = locality;
        p.spec.enabled = spec;
        if (p.contexts_per_machine == base.contexts_per_machine &&
            p.locality == base.locality &&
            p.spec.enabled == base.spec.enabled)
          continue;  // identical to candidate 0
        out.push_back(p);
      }
    }
  }
  return out;
}

SchedPolicy ModelPlanner::plan_policy(const ClusterConfig& cluster,
                                      const SchedPolicy& base) const {
  if (!model_.fitted() || !features_.valid) return base;

  const std::vector<SchedPolicy> candidates = candidate_policies(base);
  const double base_pred = model_.predict(features_, cluster, base);
  SchedPolicy best = base;
  double best_pred = base_pred;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double pred = model_.predict(features_, cluster, candidates[i]);
    // Strict < keeps the earliest (most base-like) winner on exact ties.
    if (pred < best_pred) {
      best_pred = pred;
      best = candidates[i];
    }
  }
  // Within the margin the prediction error could swamp the gain: keep the
  // hand-set policy (the tuner then *matches* the default by construction).
  if (best_pred >= (1.0 - margin_) * base_pred) return base;
  return best;
}

}  // namespace jade::model
