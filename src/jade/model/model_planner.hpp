// ModelPlanner — policy auto-tuning through the fitted CostModel.
//
// A Planner whose plan_policy enumerates a deterministic candidate grid
// (task contexts, locality scoring, speculation) around the caller's base
// SchedPolicy, predicts each candidate's completion time on the target
// platform with the fitted model, and returns the winner — but only when
// the predicted gain clears a safety margin; within the margin the hand-set
// base policy passes through untouched, so the tuner never loses to the
// defaults by trusting a borderline prediction.
//
// Per-decision placement (place_task / select_task) inherits the heuristic
// implementations: the model operates at whole-run granularity, where its
// features live; the per-task locality heuristics are already near-optimal
// and byte-stable.
#pragma once

#include <utility>
#include <vector>

#include "jade/model/cost_model.hpp"
#include "jade/model/planner.hpp"

namespace jade::model {

class ModelPlanner : public HeuristicPlanner {
 public:
  /// `model` must already be fitted and `features` valid — plan_policy
  /// degrades to the identity (base passes through) otherwise.  `margin` is
  /// the fractional predicted improvement a candidate must clear to replace
  /// the base policy.
  ModelPlanner(CostModel model, WorkloadFeatures features,
               double margin = 0.10)
      : model_(std::move(model)),
        features_(features),
        margin_(margin) {}

  const char* name() const override { return "model"; }

  SchedPolicy plan_policy(const ClusterConfig& cluster,
                          const SchedPolicy& base) const override;

  /// The candidate grid plan_policy scores, in its deterministic search
  /// order (the base policy is always candidate 0).
  static std::vector<SchedPolicy> candidate_policies(const SchedPolicy& base);

  /// Model prediction for one concrete (platform, policy) pair — the bench
  /// harness uses this to report what the tuner believed.
  double predict(const ClusterConfig& cluster, const SchedPolicy& policy)
      const {
    return model_.predict(features_, cluster, policy);
  }

  const CostModel& model() const { return model_; }
  const WorkloadFeatures& features() const { return features_; }

 private:
  CostModel model_;
  WorkloadFeatures features_;
  double margin_;
};

}  // namespace jade::model
