#include "jade/mach/presets.hpp"

namespace jade::presets {

namespace {
MachineDesc cpu(std::string name, double ops, Endian endian) {
  MachineDesc m;
  m.name = std::move(name);
  m.kind = MachineKind::kCpu;
  m.endian = endian;
  m.ops_per_second = ops;
  return m;
}
}  // namespace

ClusterConfig dash(int processors) {
  ClusterConfig c;
  c.name = "dash";
  c.net = NetKind::kSharedMemory;
  for (int i = 0; i < processors; ++i)
    c.machines.push_back(
        cpu("dash" + std::to_string(i), 1.0e7, Endian::kLittle));
  // Shared-memory Jade only synchronizes; task management is cheap.
  c.task_dispatch_overhead = 80e-6;
  c.task_create_overhead = 40e-6;
  return c;
}

ClusterConfig ipsc860(int nodes) {
  ClusterConfig c;
  c.name = "ipsc860";
  c.net = NetKind::kHypercube;
  for (int i = 0; i < nodes; ++i)
    c.machines.push_back(
        cpu("i860-" + std::to_string(i), 1.5e7, Endian::kLittle));
  c.task_dispatch_overhead = 250e-6;
  c.task_create_overhead = 80e-6;
  return c;
}

ClusterConfig mica(int boards) {
  ClusterConfig c;
  c.name = "mica";
  c.net = NetKind::kSharedBus;
  for (int i = 0; i < boards; ++i)
    c.machines.push_back(
        cpu("elc" + std::to_string(i), 0.7e7, Endian::kBig));
  // PVM over UDP: expensive messaging and task management.
  c.task_dispatch_overhead = 900e-6;
  c.task_create_overhead = 150e-6;
  return c;
}

ClusterConfig hetero_workstations(int machines) {
  ClusterConfig c;
  c.name = "hetero-net";
  c.net = NetKind::kSharedBus;
  for (int i = 0; i < machines; ++i) {
    if (i % 2 == 0)
      c.machines.push_back(
          cpu("mips" + std::to_string(i), 1.2e7, Endian::kLittle));
    else
      c.machines.push_back(
          cpu("sparc" + std::to_string(i), 0.8e7, Endian::kBig));
  }
  c.task_dispatch_overhead = 900e-6;
  c.task_create_overhead = 150e-6;
  return c;
}

ClusterConfig hrv(int accelerators) {
  ClusterConfig c;
  c.name = "hrv";
  c.net = NetKind::kCrossbar;
  MachineDesc sparc = cpu("sparc-host", 0.8e7, Endian::kBig);
  sparc.kind = MachineKind::kFrameSource;
  c.machines.push_back(sparc);
  for (int i = 0; i < accelerators; ++i) {
    MachineDesc acc =
        cpu("i860-acc" + std::to_string(i), 2.5e7, Endian::kLittle);
    acc.kind = MachineKind::kAccelerator;
    c.machines.push_back(acc);
  }
  c.task_dispatch_overhead = 120e-6;
  c.task_create_overhead = 60e-6;
  return c;
}

ClusterConfig mesh(int nodes) {
  ClusterConfig c = ipsc860(nodes);  // same nodes, different wires
  c.name = "mesh";
  c.net = NetKind::kMesh;
  return c;
}

ClusterConfig ideal(int machines) {
  ClusterConfig c;
  c.name = "ideal";
  c.net = NetKind::kIdeal;
  for (int i = 0; i < machines; ++i)
    c.machines.push_back(cpu("m" + std::to_string(i), 1.0e7,
                             Endian::kLittle));
  c.task_dispatch_overhead = 50e-6;
  c.task_create_overhead = 20e-6;
  return c;
}

}  // namespace jade::presets
