#include "jade/mach/machine.hpp"

#include "jade/support/error.hpp"

namespace jade {

std::unique_ptr<NetworkModel> ClusterConfig::make_network() const {
  const int n = machine_count();
  switch (net) {
    case NetKind::kSharedMemory:
      // Shared-memory platforms never schedule transfers; a zero-cost ideal
      // net stands in so the engine code path stays uniform.
      return std::make_unique<IdealNet>(0.0, 1e18);
    case NetKind::kSharedBus:
      return std::make_unique<SharedBusNet>(bus);
    case NetKind::kHypercube:
      return std::make_unique<HypercubeNet>(n, cube);
    case NetKind::kCrossbar:
      return std::make_unique<CrossbarNet>(n, xbar);
    case NetKind::kMesh:
      return std::make_unique<MeshNet>(n, mesh);
    case NetKind::kIdeal:
      return std::make_unique<IdealNet>(ideal.latency,
                                        ideal.bytes_per_second);
  }
  throw ConfigError("unknown NetKind");
}

void ClusterConfig::validate() const {
  if (machines.empty())
    throw ConfigError("cluster '" + name + "' has no machines");
  if (machines.size() > static_cast<std::size_t>(kMaxMachines))
    throw ConfigError("cluster '" + name + "' has more than " +
                      std::to_string(kMaxMachines) +
                      " machines (kMaxMachines sanity ceiling)");
  for (const MachineDesc& m : machines)
    if (m.ops_per_second <= 0)
      throw ConfigError("machine '" + m.name +
                        "' has non-positive ops_per_second");
  if (task_dispatch_overhead < 0 || task_create_overhead < 0 ||
      conversion_seconds_per_scalar < 0)
    throw ConfigError("cluster '" + name + "' has negative overhead");
}

}  // namespace jade
