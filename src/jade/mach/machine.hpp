// Machine and cluster descriptions.
//
// A ClusterConfig is the SimEngine's model of one of the paper's platforms:
// a set of machines (each with its own speed, byte order and role) plus an
// interconnect and the runtime overhead constants.  Section 7 lists the real
// systems these model: the Stanford DASH and SGI 4D/240S (shared memory),
// the Intel iPSC/860 (hypercube message passing), Mica (Sparc ELCs on
// Ethernet under PVM), mixed SPARC/MIPS workstation networks, and the Sun
// HRV workstation (SPARC + i860 accelerators).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "jade/net/crossbar.hpp"
#include "jade/net/hypercube.hpp"
#include "jade/net/mesh.hpp"
#include "jade/net/network.hpp"
#include "jade/net/shared_bus.hpp"
#include "jade/support/time.hpp"
#include "jade/types/type_desc.hpp"

namespace jade {

/// What a machine is for.  Tasks may be pinned to machines (Section 4.5);
/// the video-pipeline application pins capture to the frame source and
/// transforms to accelerators, as the paper's HRV application does.
enum class MachineKind : std::uint8_t {
  kCpu,
  kAccelerator,  ///< fast compute, e.g. the HRV's i860 graphics units
  kFrameSource,  ///< owns the camera / frame grabber
};

struct MachineDesc {
  std::string name;
  MachineKind kind = MachineKind::kCpu;
  Endian endian = Endian::kLittle;
  /// Abstract work units retired per second; task charge() units divide by
  /// this to give virtual execution time.
  double ops_per_second = 1.0e7;
};

/// Fail-stop liveness (ft/).  A machine is up until its scheduled crash,
/// after which it never comes back (recovery re-runs its work elsewhere
/// rather than rebooting it).
enum class MachineStatus : std::uint8_t { kUp, kCrashed };

struct MachineHealth {
  MachineStatus status = MachineStatus::kUp;
  SimTime crashed_at = 0;   ///< ground truth (the injector's clock)
  SimTime detected_at = 0;  ///< when the failure detector declared it dead
  bool up() const { return status == MachineStatus::kUp; }
};

enum class NetKind : std::uint8_t {
  kSharedMemory,  ///< no object motion; hardware keeps memory coherent
  kSharedBus,     ///< single shared Ethernet (Mica)
  kHypercube,     ///< iPSC/860-style point-to-point cube
  kCrossbar,      ///< non-blocking switch (workstation nets, HRV)
  kMesh,          ///< 2-D mesh with XY routing (DASH fabric, Paragon era)
  kIdeal,         ///< contention-free baseline for ablations
};

struct IdealNetConfig {
  SimTime latency = 10e-6;
  double bytes_per_second = 100e6;
};

struct ClusterConfig {
  std::string name = "cluster";
  std::vector<MachineDesc> machines;
  NetKind net = NetKind::kSharedMemory;

  SharedBusConfig bus;
  HypercubeConfig cube;
  CrossbarConfig xbar;
  MeshConfig mesh;
  IdealNetConfig ideal;

  /// Runtime cost, in seconds on the executing machine, of dispatching one
  /// task (dequeue, access-spec bookkeeping, local translation setup).
  SimTime task_dispatch_overhead = 150e-6;
  /// Runtime cost, in seconds on the creating machine, of executing a
  /// withonly construct (building the spec, inserting queue records).
  SimTime task_create_overhead = 60e-6;
  /// Per-scalar cost of heterogeneous data-format conversion on receive.
  SimTime conversion_seconds_per_scalar = 40e-9;
  /// Size of runtime control messages (task dispatch, object requests...).
  std::size_t control_message_bytes = 64;

  bool shared_memory() const { return net == NetKind::kSharedMemory; }
  int machine_count() const { return static_cast<int>(machines.size()); }

  /// Instantiates the interconnect model this config describes.
  std::unique_ptr<NetworkModel> make_network() const;

  /// Throws ConfigError on inconsistencies (no machines, too many, ...).
  void validate() const;
};

}  // namespace jade
