// Platform presets modelling the systems of Section 7.
//
// Machine speeds and overheads are order-of-magnitude calibrations of the
// 1992 hardware (MIPS R3000 DASH nodes, i860 cube nodes, Sparc ELC boards);
// EXPERIMENTS.md compares the *shapes* these produce against the paper's
// figures, not absolute seconds.
#pragma once

#include "jade/mach/machine.hpp"

namespace jade::presets {

/// Stanford DASH: shared-memory multiprocessor, up to 32 processors.
ClusterConfig dash(int processors);

/// Intel iPSC/860: homogeneous hypercube message-passing machine.
ClusterConfig ipsc860(int nodes);

/// Mica: Sparc ELC boards on a single shared Ethernet, PVM transport.
ClusterConfig mica(int boards);

/// Heterogeneous workstation network: alternating MIPS (little-endian) and
/// SPARC (big-endian) machines of different speeds on shared Ethernet —
/// exercises dynamic load balancing and data-format conversion together.
ClusterConfig hetero_workstations(int machines);

/// Sun HRV workstation: one SPARC frame-source plus i860 accelerators on a
/// fast internal interconnect, with opposite byte orders.
ClusterConfig hrv(int accelerators);

/// 2-D mesh message-passing machine (the Paragon/T3D-era topology; also
/// the shape of DASH's remote-access fabric).  Same nodes as the iPSC/860
/// preset, different wires — for interconnect-shape comparisons.
ClusterConfig mesh(int nodes);

/// Contention-free homogeneous cluster for ablation baselines.
ClusterConfig ideal(int machines);

}  // namespace jade::presets
