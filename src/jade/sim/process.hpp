// Cooperative simulated processes.
//
// SimEngine must let an *unmodified* task body pause in virtual time in the
// middle of its execution — that is exactly what a `with-cont` that converts
// a deferred right does (Section 4.2).  C++ cannot suspend a plain function,
// so each simulated activity runs on its own OS thread, with a strict
// handoff protocol guaranteeing that at most one thread (either the
// simulation coordinator or a single process) runs at any instant.  The
// result behaves like coroutines with full stacks: deterministic, and host
// parallelism plays no role in the simulated timing.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "jade/support/time.hpp"

namespace jade {

class Simulation;

/// One cooperative activity.  Created via Simulation::spawn; never run
/// directly.
class Process {
 public:
  enum class State : std::uint8_t {
    kCreated,   ///< thread not yet started
    kRunning,   ///< owns the simulation (coordinator is waiting)
    kParked,    ///< waiting to be resumed
    kDone,      ///< body returned; thread joined or joinable
  };

  Process(Simulation* sim, std::string name, std::function<void()> body);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  State state() const { return state_; }

  /// Number of times this process has been unparked; used to detect stale
  /// resume events (each parked period has exactly one designated waker).
  std::uint64_t epoch() const { return epoch_; }

  /// True once Simulation::abort gave up on this process: pending spawn and
  /// resume events for it become no-ops instead of stale-resume errors.
  bool abandoned() const { return abandoned_; }

 private:
  friend class Simulation;

  /// Starts the underlying thread and runs the body until it first parks or
  /// finishes.  Called by the coordinator.
  void start();

  /// Hands control to this (parked) process until it parks again or
  /// finishes.  Called by the coordinator.
  void run_until_parked();

  /// Called from inside the process: yields control back to the coordinator
  /// and blocks until resumed.
  void park();

  void thread_main();
  void join();

  Simulation* sim_;
  std::string name_;
  std::function<void()> body_;
  std::thread thread_;

  std::mutex mutex_;
  std::condition_variable cv_;
  State state_ = State::kCreated;
  bool go_ = false;          ///< process may run
  bool yielded_ = false;     ///< process has handed control back
  bool abort_requested_ = false;  ///< next unpark unwinds instead of running
  bool abandoned_ = false;        ///< scheduled events for this process no-op
  std::uint64_t epoch_ = 0;
  std::exception_ptr error_;  ///< exception escaping the body, rethrown in run()
};

}  // namespace jade
