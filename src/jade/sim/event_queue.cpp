#include "jade/sim/event_queue.hpp"

#include "jade/support/error.hpp"

namespace jade {

void EventQueue::schedule(SimTime t, Callback fn) {
  heap_.push(Entry{t, next_seq_++, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  JADE_ASSERT(!heap_.empty());
  return heap_.top().time;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  JADE_ASSERT(!heap_.empty());
  // priority_queue::top() is const; the callback must be moved out, so we
  // const_cast the owned entry (safe: it is popped immediately after).
  auto& top = const_cast<Entry&>(heap_.top());
  std::pair<SimTime, Callback> out{top.time, std::move(top.fn)};
  heap_.pop();
  return out;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace jade
