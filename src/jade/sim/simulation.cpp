#include "jade/sim/simulation.hpp"

#include <sstream>

#include "jade/support/error.hpp"

namespace jade {

Simulation::Simulation() = default;

Simulation::~Simulation() {
  // Cooperatively unwind any process that is still parked (this happens when
  // run() threw, or when an engine is destroyed mid-flight).
  tearing_down_ = true;
  for (auto& p : processes_) {
    if (p->state() == Process::State::kParked) p->run_until_parked();
  }
  // Threads for kCreated processes were never launched; ~Process joins the
  // rest.
}

void Simulation::schedule(SimTime t, std::function<void()> fn) {
  JADE_ASSERT_MSG(t >= now_, "event scheduled in the virtual past");
  queue_.schedule(t, std::move(fn));
}

Process* Simulation::spawn(std::string name, std::function<void()> body) {
  return spawn_at(now_, std::move(name), std::move(body));
}

Process* Simulation::spawn_at(SimTime at, std::string name,
                              std::function<void()> body) {
  processes_.push_back(
      std::make_unique<Process>(this, std::move(name), std::move(body)));
  Process* p = processes_.back().get();
  schedule(at, [this, p] {
    if (p->abandoned()) return;  // aborted before it ever started
    run_process(p);
  });
  return p;
}

void Simulation::park() {
  Process* p = current_;
  JADE_ASSERT_MSG(p != nullptr, "park() called outside any process");
  current_ = nullptr;
  p->park();
  current_ = p;
}

void Simulation::resume_at(Process* p, SimTime t) {
  JADE_ASSERT(p != nullptr);
  JADE_ASSERT_MSG(p->state() != Process::State::kDone,
                  "resume of a finished process");
  const std::uint64_t expected = p->epoch();
  schedule(t, [this, p, expected] {
    if (p->abandoned()) return;  // the waker lost a race with fault injection
    JADE_ASSERT_MSG(p->state() == Process::State::kParked &&
                        p->epoch() == expected,
                    "stale resume for process " + p->name());
    run_process(p);
  });
}

void Simulation::advance(SimTime dt) {
  JADE_ASSERT(dt >= 0);
  Process* p = current_;
  JADE_ASSERT_MSG(p != nullptr, "advance() called outside any process");
  resume_at(p, now_ + dt);
  park();
}

void Simulation::abort(Process* p) {
  JADE_ASSERT(p != nullptr);
  JADE_ASSERT_MSG(p != current_, "a process cannot abort itself");
  switch (p->state()) {
    case Process::State::kCreated:
      p->abandoned_ = true;  // thread never launched; spawn event no-ops
      break;
    case Process::State::kParked:
      p->abort_requested_ = true;
      p->abandoned_ = true;
      run_process(p);  // its park() throws; the stack unwinds right now
      break;
    default:
      JADE_ASSERT_MSG(false, "abort of a running or finished process");
  }
}

void Simulation::run_process(Process* p) {
  Process* prev = current_;
  current_ = p;
  if (p->state() == Process::State::kCreated) {
    p->start();
  } else {
    p->run_until_parked();
  }
  current_ = prev;
  if (p->error_ && !first_error_) {
    first_error_ = p->error_;
    p->error_ = nullptr;
  }
  // Reap finished processes promptly: long simulations spawn one process
  // per task, and unjoined threads hold kernel resources until joined.
  if (p->state() == Process::State::kDone) p->join();
}

void Simulation::run() {
  JADE_ASSERT_MSG(!running_, "Simulation::run is not reentrant");
  running_ = true;
  while (!queue_.empty() && !first_error_) {
    auto [t, fn] = queue_.pop();
    now_ = t;
    fn();
    ++events_executed_;
  }
  running_ = false;
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
  if (parked_count() > 0) {
    std::ostringstream os;
    os << "simulation stalled: " << parked_count()
       << " process(es) parked with no pending events:";
    for (const auto& p : processes_)
      if (p->state() == Process::State::kParked) os << ' ' << p->name();
    throw InternalError(os.str());
  }
}

std::size_t Simulation::parked_count() const {
  std::size_t n = 0;
  for (const auto& p : processes_)
    if (p->state() == Process::State::kParked) ++n;
  return n;
}

}  // namespace jade
