// Deterministic discrete-event queue.
//
// Events are ordered by (virtual time, insertion sequence), so simultaneous
// events fire in the order they were scheduled.  Determinism here is what
// makes whole SimEngine executions bit-reproducible, which in turn lets the
// property tests compare simulated runs against serial semantics exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "jade/support/time.hpp"

namespace jade {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` to run at virtual time `t` (>= current pop time).
  void schedule(SimTime t, Callback fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; queue must be non-empty.
  SimTime next_time() const;

  /// Removes and returns the earliest event's callback along with its time.
  std::pair<SimTime, Callback> pop();

  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace jade
