#include "jade/sim/process.hpp"

#include "jade/sim/simulation.hpp"
#include "jade/support/error.hpp"

namespace jade {

namespace {
/// Thrown inside a process thread to unwind its stack when the simulation
/// tears down while the process is parked.  Never escapes thread_main.
struct ProcessAborted {};
}  // namespace

Process::Process(Simulation* sim, std::string name,
                 std::function<void()> body)
    : sim_(sim), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() { join(); }

void Process::start() {
  JADE_ASSERT(state_ == State::kCreated);
  thread_ = std::thread([this] { thread_main(); });
  // The thread begins life "parked" at its initial wait; hand control over.
  run_until_parked();
}

void Process::thread_main() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return go_; });
    go_ = false;
    ++epoch_;
    state_ = State::kRunning;
  }
  try {
    body_();
  } catch (const ProcessAborted&) {
    // Cooperative teardown: nothing to record.
  } catch (...) {
    error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = State::kDone;
    yielded_ = true;
  }
  cv_.notify_all();
}

void Process::run_until_parked() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    JADE_ASSERT(state_ == State::kCreated || state_ == State::kParked);
    go_ = true;
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return yielded_; });
  yielded_ = false;
}

void Process::park() {
  std::unique_lock<std::mutex> lock(mutex_);
  state_ = State::kParked;
  yielded_ = true;
  cv_.notify_all();
  cv_.wait(lock, [this] { return go_; });
  go_ = false;
  ++epoch_;
  if (sim_->tearing_down() || abort_requested_) throw ProcessAborted{};
  state_ = State::kRunning;
}

void Process::join() {
  if (thread_.joinable()) thread_.join();
}

}  // namespace jade
