// The discrete-event simulation coordinator.
//
// Owns the virtual clock, the event queue and all processes.  Exactly one
// thread runs at a time: the coordinator pops events in (time, sequence)
// order; an event is either a plain callback or a "resume process P" action,
// which hands control to P's thread until P parks again.  Because scheduling
// order is deterministic and host threads never run concurrently, an entire
// simulation is a deterministic function of its inputs.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "jade/sim/event_queue.hpp"
#include "jade/sim/process.hpp"
#include "jade/support/time.hpp"

namespace jade {

class Simulation {
 public:
  Simulation();
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedules a plain event.  Callable from the coordinator or from inside
  /// a process (the handoff protocol makes this race-free).
  void schedule(SimTime t, std::function<void()> fn);
  void schedule_in(SimTime dt, std::function<void()> fn) {
    schedule(now_ + dt, std::move(fn));
  }

  /// Creates a process whose body starts running at time `at` (default: now).
  /// The body runs on its own thread under the cooperative handoff protocol.
  Process* spawn(std::string name, std::function<void()> body);
  Process* spawn_at(SimTime at, std::string name, std::function<void()> body);

  /// From inside a process: blocks until some other activity resumes it.
  /// The caller must have arranged exactly one future resume.
  void park();

  /// Schedules process `p` (currently parked, or parking imminently at this
  /// virtual time) to resume at time `t` (default now).  Exactly one resume
  /// may be pending per parked period.
  void resume(Process* p) { resume_at(p, now_); }
  void resume_at(Process* p, SimTime t);

  /// From inside a process: advances that process's local activity by `dt`
  /// of virtual time (schedules its own resume and parks).
  void advance(SimTime dt);

  /// Kills a process that is not currently running (fault injection): a
  /// parked process unwinds its stack immediately (its park() throws); a
  /// created-but-unstarted process never starts.  Either way the process is
  /// marked abandoned, so events already scheduled for it become no-ops —
  /// including the one pending resume a parked process was owed.
  void abort(Process* p);

  /// The process currently running, or nullptr when called from an event
  /// callback / outside run().
  Process* current() const { return current_; }

  /// Runs until no events remain.  Throws InternalError if processes remain
  /// parked with no pending events (simulated deadlock), and rethrows the
  /// first exception that escaped a process body.
  void run();

  /// Number of processes that are parked (not done); used for deadlock
  /// diagnostics and by tests.
  std::size_t parked_count() const;

  /// Total events executed; a cheap progress / cost metric for benches.
  std::uint64_t events_executed() const { return events_executed_; }

  /// True while the destructor is unwinding parked processes; park() turns
  /// into a cooperative stack unwind when set.
  bool tearing_down() const { return tearing_down_; }

 private:
  friend class Process;

  /// Hands control to `p` (starting its thread on first use) until it parks
  /// or finishes, stashing any exception that escaped its body.
  void run_process(Process* p);

  EventQueue queue_;
  SimTime now_ = 0;
  Process* current_ = nullptr;
  std::vector<std::unique_ptr<Process>> processes_;
  std::uint64_t events_executed_ = 0;
  bool running_ = false;
  bool tearing_down_ = false;
  std::exception_ptr first_error_;
};

}  // namespace jade
