#include "jade/cluster/channel.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace jade::cluster {

Channel::~Channel() { close(); }

void Channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Channel::set_nonblocking() {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  JADE_ASSERT(flags >= 0);
  JADE_ASSERT(::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0);
}

bool Channel::send(FrameType type, std::vector<std::byte> payload) {
  const std::vector<std::byte> frame = encode_frame(type, std::move(payload));
  std::lock_guard<std::mutex> lock(send_mu_);
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET: the coordinator is gone
    }
    off += static_cast<std::size_t>(n);
  }
  ++tx_frames_;
  tx_bytes_ += frame.size();
  return true;
}

std::optional<Frame> Channel::recv() {
  // Read exactly one frame: header first, then the payload it declares.
  auto read_exact = [&](std::byte* dst, std::size_t want) -> bool {
    std::size_t got = 0;
    while (got < want) {
      const ssize_t n = ::recv(fd_, dst + got, want - got, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // EOF — peer died; mid-frame EOF included
      got += static_cast<std::size_t>(n);
    }
    return true;
  };

  std::byte header[kFrameHeaderBytes];
  if (!read_exact(header, kFrameHeaderBytes)) return std::nullopt;
  Frame f;
  const std::uint32_t len = decode_frame_header(header, f.type);
  f.payload.resize(len);
  if (len > 0 && !read_exact(f.payload.data(), len)) return std::nullopt;
  ++rx_frames_;
  rx_bytes_ += kFrameHeaderBytes + len;
  return f;
}

void Channel::queue(FrameType type, std::vector<std::byte> payload) {
  const std::vector<std::byte> frame = encode_frame(type, std::move(payload));
  outbox_.insert(outbox_.end(), frame.begin(), frame.end());
  ++tx_frames_;
  tx_bytes_ += frame.size();
}

bool Channel::flush() {
  if (fd_ < 0) return false;
  while (outbox_pos_ < outbox_.size()) {
    const ssize_t n = ::send(fd_, outbox_.data() + outbox_pos_,
                             outbox_.size() - outbox_pos_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    outbox_pos_ += static_cast<std::size_t>(n);
  }
  outbox_.clear();
  outbox_pos_ = 0;
  return true;
}

bool Channel::drain(std::vector<Frame>& out) {
  if (fd_ < 0) return false;
  std::byte chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;  // ECONNRESET etc: peer died
    }
    if (n == 0) {
      // EOF: any partial frame in rxbuf_ died with the peer.
      parse_frames(out);
      return false;
    }
    rxbuf_.insert(rxbuf_.end(), chunk, chunk + n);
  }
  parse_frames(out);
  return true;
}

void Channel::parse_frames(std::vector<Frame>& out) {
  std::size_t pos = 0;
  while (rxbuf_.size() - pos >= kFrameHeaderBytes) {
    Frame f;
    const std::uint32_t len = decode_frame_header(rxbuf_.data() + pos, f.type);
    if (rxbuf_.size() - pos < kFrameHeaderBytes + len) break;
    const std::byte* p = rxbuf_.data() + pos + kFrameHeaderBytes;
    f.payload.assign(p, p + len);
    out.push_back(std::move(f));
    pos += kFrameHeaderBytes + len;
    ++rx_frames_;
    rx_bytes_ += kFrameHeaderBytes + len;
  }
  rxbuf_.erase(rxbuf_.begin(), rxbuf_.begin() + static_cast<long>(pos));
}

}  // namespace jade::cluster
