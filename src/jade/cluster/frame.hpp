// Cluster wire protocol: framing and message types.
//
// Every message on a coordinator<->worker link travels as one frame:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//        0     4  magic     0x4A434C31 ("JCL1", little-endian u32)
//        4     1  version   kFrameVersion
//        5     1  type      FrameType
//        6     2  reserved  must be zero
//        8     4  payload length (bytes; <= kMaxPayload)
//       12     n  payload   message encoded with WireWriter
//
// The payload encodings reuse the canonical little-endian WireWriter /
// WireReader format the simulated transport already speaks (types/wire.hpp).
// Decoding is defensive: a frame from a crashing worker may be garbage, so
// every decode failure — bad magic, unknown version or type, truncated or
// oversized payload, trailing bytes — surfaces as ProtocolError, never UB.
// (WireReader itself throws InternalError on truncation because in-process
// messages are runtime-generated; unpack() translates, because these bytes
// crossed a process boundary.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jade/core/object.hpp"
#include "jade/support/error.hpp"
#include "jade/support/time.hpp"
#include "jade/types/wire.hpp"

namespace jade::cluster {

inline constexpr std::uint32_t kFrameMagic = 0x4A434C31;  // "1LCJ" on the wire
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Payload ceiling: large enough for any object payload batch we ship,
/// small enough that a garbage length field cannot trigger a huge alloc.
inline constexpr std::uint32_t kMaxPayload = 1u << 30;

enum class FrameType : std::uint8_t {
  kHello = 1,       ///< worker -> coordinator: first frame after fork
  kActivate = 2,    ///< coordinator -> worker: you are machine m of n
  kDispatch = 3,    ///< coordinator -> worker: run this task
  kSpawn = 4,       ///< worker -> coordinator: task created a child
  kWithCont = 5,    ///< worker -> coordinator: with_cont spec update
  kWithContAck = 6, ///< coordinator -> worker: conversion granted / failed
  kAcquire = 7,     ///< worker -> coordinator: accessor acquisition
  kAcquireAck = 8,  ///< coordinator -> worker: acquisition granted / failed
  kDone = 9,        ///< worker -> coordinator: task finished, with writebacks
  kTaskError = 10,  ///< worker -> coordinator: task body threw
  kHeartbeat = 11,  ///< worker -> coordinator: liveness
  kCoherence = 12,  ///< coordinator -> worker: coherence control traffic
  kObjFetch = 13,   ///< coordinator -> worker: send me your copy of obj
  kObjData = 14,    ///< worker -> coordinator: reply to kObjFetch
  kShutdown = 15,   ///< coordinator -> worker: exit cleanly
};
inline constexpr std::uint8_t kMaxFrameType = 15;

/// One decoded frame.
struct Frame {
  FrameType type;
  std::vector<std::byte> payload;
};

/// Encodes a frame header + payload into one contiguous buffer.
std::vector<std::byte> encode_frame(FrameType type,
                                    std::vector<std::byte> payload);

/// Validates a frame header (first kFrameHeaderBytes of `buf`); returns the
/// payload length.  Throws ProtocolError on any malformation.
std::uint32_t decode_frame_header(const std::byte* buf, FrameType& type);

// --- message payloads ------------------------------------------------------
// Every message has `void encode(WireWriter&) const` and
// `static X decode(WireReader&)`.  pack()/unpack() below add the
// whole-buffer discipline (unpack requires the reader to be fully consumed).

/// Error taxonomy carried across the process boundary: the worker cannot
/// ship an exception object, so acks carry a code + message and the peer
/// re-throws the matching jade error type.
enum class ErrorCode : std::uint8_t {
  kGeneric = 0,
  kUndeclaredAccess = 1,
  kSpecUpdate = 2,
  kHierarchy = 3,
  kTenantIsolation = 4,
  kConfig = 5,
  kUnrecoverable = 6,
  kInternal = 7,
  kProtocol = 8,
};

/// Maps a caught jade exception to its wire code (kGeneric for foreign
/// exceptions).
ErrorCode classify_error(const std::exception& e);

/// Re-throws the jade error type matching `code` with `what`.
[[noreturn]] void rethrow_error(ErrorCode code, const std::string& what);

struct HelloMsg {
  std::int64_t pid = 0;
  void encode(WireWriter& w) const;
  static HelloMsg decode(WireReader& r);
};

struct ActivateMsg {
  MachineId machine = -1;
  std::int32_t machines = 0;  ///< cluster size (active workers)
  double heartbeat_interval = 0.025;  ///< wall seconds between heartbeats
  void encode(WireWriter& w) const;
  static ActivateMsg decode(WireReader& r);
};

/// One object's rights + (optionally) its current payload, as shipped with
/// a dispatch or a with-cont/acquire grant.
struct ObjectShip {
  ObjectId obj = kInvalidObject;
  std::uint8_t immediate = 0;
  std::uint8_t deferred = 0;
  std::uint64_t bytes = 0;  ///< object size (payload may be elided)
  bool has_payload = false;
  std::vector<std::byte> payload;
  void encode(WireWriter& w) const;
  static ObjectShip decode(WireReader& r);
};

struct DispatchMsg {
  std::uint64_t task = 0;
  std::int32_t body = -1;  ///< BodyRegistry index
  std::string name;
  std::vector<std::byte> args;
  std::vector<ObjectShip> objects;
  void encode(WireWriter& w) const;
  static DispatchMsg decode(WireReader& r);
};

/// One object's requested rights in a spawn or with-cont.
struct ReqMsg {
  ObjectId obj = kInvalidObject;
  std::uint8_t add_immediate = 0;
  std::uint8_t add_deferred = 0;
  std::uint8_t remove = 0;
  void encode(WireWriter& w) const;
  static ReqMsg decode(WireReader& r);
};

struct SpawnMsg {
  std::uint64_t parent = 0;
  std::int32_t body = -1;
  std::string name;
  MachineId placement = -1;
  std::vector<std::byte> args;
  std::vector<ReqMsg> requests;
  void encode(WireWriter& w) const;
  static SpawnMsg decode(WireReader& r);
};

/// A with-cont request; retire requests for objects the worker dirtied
/// carry the final bytes back (the coordinator's canonical copy must be
/// current before successors read it).
struct WithContItem {
  ReqMsg req;
  bool has_payload = false;
  std::vector<std::byte> payload;
  void encode(WireWriter& w) const;
  static WithContItem decode(WireReader& r);
};

struct WithContMsg {
  std::uint64_t task = 0;
  std::vector<WithContItem> items;
  void encode(WireWriter& w) const;
  static WithContMsg decode(WireReader& r);
};

struct WithContAckMsg {
  std::uint64_t task = 0;
  bool ok = true;
  ErrorCode error_code = ErrorCode::kGeneric;
  std::string error;
  std::vector<ObjectShip> objects;  ///< post-conversion rights (+ payloads)
  void encode(WireWriter& w) const;
  static WithContAckMsg decode(WireReader& r);
};

struct AcquireMsg {
  std::uint64_t task = 0;
  ObjectId obj = kInvalidObject;
  std::uint8_t mode = 0;
  void encode(WireWriter& w) const;
  static AcquireMsg decode(WireReader& r);
};

struct AcquireAckMsg {
  std::uint64_t task = 0;
  ObjectId obj = kInvalidObject;
  bool ok = true;
  ErrorCode error_code = ErrorCode::kGeneric;
  std::string error;
  bool has_payload = false;
  std::vector<std::byte> payload;
  void encode(WireWriter& w) const;
  static AcquireAckMsg decode(WireReader& r);
};

/// Task completion: final bytes of every object the task still holds write
/// rights on (objects retired early shipped their bytes with the with-cont).
struct DoneMsg {
  struct Write {
    ObjectId obj = kInvalidObject;
    std::vector<std::byte> payload;
  };
  std::uint64_t task = 0;
  double charged = 0;
  std::vector<Write> writes;
  void encode(WireWriter& w) const;
  static DoneMsg decode(WireReader& r);
};

struct TaskErrorMsg {
  std::uint64_t task = 0;
  ErrorCode code = ErrorCode::kGeneric;
  std::string what;
  void encode(WireWriter& w) const;
  static TaskErrorMsg decode(WireReader& r);
};

struct HeartbeatMsg {
  MachineId machine = -1;
  std::uint64_t seq = 0;
  void encode(WireWriter& w) const;
  static HeartbeatMsg decode(WireReader& r);
};

/// Coherence control traffic as seen by the socket transport: the transport
/// is below the protocol, so it carries opaque control-byte counts, not
/// object identities.
struct CoherenceMsg {
  MachineId from = -1;
  MachineId to = -1;
  std::uint64_t bytes = 0;
  void encode(WireWriter& w) const;
  static CoherenceMsg decode(WireReader& r);
};

struct ObjFetchMsg {
  ObjectId obj = kInvalidObject;
  void encode(WireWriter& w) const;
  static ObjFetchMsg decode(WireReader& r);
};

struct ObjDataMsg {
  ObjectId obj = kInvalidObject;
  std::vector<std::byte> payload;
  void encode(WireWriter& w) const;
  static ObjDataMsg decode(WireReader& r);
};

struct ShutdownMsg {
  void encode(WireWriter& w) const;
  static ShutdownMsg decode(WireReader& r);
};

/// Encodes a message into a payload buffer.
template <typename M>
std::vector<std::byte> pack(const M& msg) {
  WireWriter w;
  msg.encode(w);
  return w.take();
}

/// Decodes a message from a frame payload.  Truncation and trailing garbage
/// both raise ProtocolError: a frame must contain exactly one message.
template <typename M>
M unpack(const std::vector<std::byte>& payload) {
  WireReader r(payload);
  M msg;
  try {
    msg = M::decode(r);
  } catch (const InternalError& e) {
    throw ProtocolError(std::string("malformed cluster message: ") + e.what());
  }
  if (!r.done())
    throw ProtocolError("cluster message has " +
                        std::to_string(r.remaining()) + " trailing bytes");
  return msg;
}

}  // namespace jade::cluster
