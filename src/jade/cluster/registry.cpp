#include "jade/cluster/registry.hpp"

#include "jade/engine/engine.hpp"
#include "jade/support/error.hpp"

namespace jade::cluster {

BodyRegistry& BodyRegistry::instance() {
  static BodyRegistry registry;
  return registry;
}

int BodyRegistry::ensure(const std::string& name, RegisteredBody body) {
  const int existing = find(name);
  if (existing >= 0) return existing;
  entries_.push_back({name, std::move(body)});
  return static_cast<int>(entries_.size()) - 1;
}

int BodyRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].name == name) return static_cast<int>(i);
  return -1;
}

const RegisteredBody& BodyRegistry::body(int index) const {
  if (index < 0 || index >= size())
    throw ConfigError("unknown registered body index " +
                      std::to_string(index) +
                      " (register bodies before starting the cluster)");
  return entries_[static_cast<std::size_t>(index)].body;
}

const std::string& BodyRegistry::name(int index) const {
  if (index < 0 || index >= size())
    throw ConfigError("unknown registered body index " + std::to_string(index));
  return entries_[static_cast<std::size_t>(index)].name;
}

void spawn(TaskContext& ctx, int body, WireWriter args,
           const TaskContext::SpecFn& spec, std::string name,
           MachineId placement) {
  // Validate the index eagerly in every mode — a typo'd id should fail at
  // the spawn site, not inside a worker process.
  BodyRegistry::instance().body(body);

  AccessDecl decl;
  spec(decl);

  if (auto* rs = dynamic_cast<RegisteredSpawner*>(&ctx.engine())) {
    rs->spawn_registered(ctx.node(), decl.requests(), body,
                         args.take(), std::move(name), placement);
    return;
  }

  // Portable fallback: wrap the registered body in an ordinary closure so
  // the same program runs on Serial/Thread/Sim engines.  The blob is shared
  // (not copied per execution) because BodyFn is copyable.
  auto blob = std::make_shared<std::vector<std::byte>>(args.take());
  TaskContext::BodyFn closure = [body, blob](TaskContext& t) {
    WireReader r(*blob);
    BodyRegistry::instance().body(body)(t, r);
  };
  ctx.engine().spawn(ctx.node(), decl.requests(), std::move(closure),
                     std::move(name), placement);
}

void spawn(TaskContext& ctx, const std::string& body_name, WireWriter args,
           const TaskContext::SpecFn& spec, std::string name,
           MachineId placement) {
  const int body = BodyRegistry::instance().find(body_name);
  if (body < 0)
    throw ConfigError("no registered body named '" + body_name + "'");
  spawn(ctx, body, std::move(args), spec, std::move(name), placement);
}

}  // namespace jade::cluster
