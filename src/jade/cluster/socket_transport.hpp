// SocketTransport — the CoherenceTransport of a real multi-process cluster.
//
// The CoherenceProtocol (store/coherence.hpp) decides what travels; this
// transport realizes its control traffic as kCoherence frames on the
// coordinator's worker channels.  Payload bytes do NOT travel here — the
// coordinator owns every object's canonical buffer, and payloads ride inside
// dispatch/ack/done frames where the engine can pair them with the rights
// they license.  What the protocol's unicast/multicast calls buy on this
// platform is (a) the invalidation/revalidation control messages workers
// observe (tests assert on them) and (b) the wire accounting in
// RuntimeStats, kept consistent with the simulated engines.
//
// Time: a real cluster has no virtual clock, so now() is wall seconds from
// a monotonic epoch and unicast "arrival" is immediate — the return value
// feeds stats, not a simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "jade/cluster/channel.hpp"
#include "jade/obs/tracer.hpp"
#include "jade/store/coherence.hpp"

namespace jade::cluster {

class SocketTransport : public CoherenceTransport {
 public:
  /// `clock` supplies now(); `tracer` may be null.  Channels attach per
  /// machine id as workers come up (and detach — null — when they die).
  SocketTransport(std::function<SimTime()> clock, obs::Tracer* tracer)
      : clock_(std::move(clock)), tracer_(tracer) {}

  void set_channel(MachineId m, Channel* ch);

  SimTime now() const override { return clock_(); }

  SimTime unicast(MachineId from, MachineId to, std::size_t bytes,
                  SimTime at) override;

  SimTime multicast(MachineId from, std::span<const MachineId> targets,
                    std::size_t bytes, SimTime at) override;

  /// Control frames queued so far (the engine publishes this).
  std::uint64_t control_frames() const { return control_frames_; }

 private:
  std::function<SimTime()> clock_;
  obs::Tracer* tracer_;
  std::vector<Channel*> channels_;  ///< indexed by MachineId; null = dead
  std::uint64_t control_frames_ = 0;
};

}  // namespace jade::cluster
