// Worker process — one "machine" of the multi-process cluster.
//
// The coordinator forks each worker with one end of a socketpair.  The
// worker sends Hello, waits for Activate (its machine id), starts a
// heartbeat thread, then serves Dispatch frames in a loop: it runs the
// named registered body against its local byte store and reports Done (or
// TaskError).  All serializer/governor state lives in the coordinator; the
// worker's acquire/with_cont/spawn calls become RPCs on the socket.
//
// The worker's object store is an append-only map ObjectId -> bytes: a
// dispatch or an ack may carry a payload (the coordinator ships bytes only
// when the worker's copy is stale — the shipped-version protocol in
// cluster_engine.cpp), and the worker never evicts.  Accessor pointers stay
// valid for a task's lifetime because vector heap storage is stable across
// map rehashes.
#pragma once

#include "jade/support/time.hpp"

namespace jade::cluster {

/// Entry point of a worker process: speaks the cluster protocol on `fd`
/// until Shutdown or EOF, then _exit(0)s (never returns — a forked child
/// must not unwind into the parent's atexit handlers).
[[noreturn]] void worker_main(int fd);

}  // namespace jade::cluster
