#include "jade/cluster/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "jade/cluster/channel.hpp"
#include "jade/cluster/frame.hpp"
#include "jade/cluster/registry.hpp"
#include "jade/engine/engine.hpp"
#include "jade/support/error.hpp"

namespace jade::cluster {
namespace {

/// Engine facade inside a worker process.  One task runs at a time; every
/// serializer-relevant operation (acquire, with_cont, spawn) is an RPC to
/// the coordinator.  Interleaved coordinator frames (coherence notices,
/// object-fetch probes) are served while waiting for an ack.
class WorkerEngine : public Engine, public RegisteredSpawner {
 public:
  WorkerEngine(Channel& ch, MachineId machine, int machines)
      : ch_(ch), machine_(machine), machines_(machines) {}

  // --- per-object execution state -----------------------------------------
  struct ObjectState {
    std::uint8_t immediate = 0;
    std::uint8_t deferred = 0;
    std::uint64_t bytes = 0;
    bool cm_confirmed = false;  ///< commute token confirmed by an RPC
    bool wrote = false;         ///< local copy diverged; owes a writeback
  };

  /// Runs one dispatched task; sends Done or TaskError.
  void run_task(const DispatchMsg& msg) {
    task_id_ = msg.task;
    charged_ = 0;
    spawned_ = false;
    states_.clear();
    ship_order_.clear();
    for (const ObjectShip& s : msg.objects) {
      ObjectState st;
      st.immediate = s.immediate;
      st.deferred = s.deferred;
      st.bytes = s.bytes;
      states_[s.obj] = st;
      ship_order_.push_back(s.obj);
      auto& buf = bytes_[s.obj];
      if (s.has_payload)
        buf = s.payload;
      else if (buf.size() != s.bytes)
        buf.assign(s.bytes, std::byte{0});
    }

    TaskNode node;  // local stand-in; serializer state lives coordinator-side
    node.assigned_machine = machine_;
    TaskContext ctx(this, &node);
    try {
      WireReader args(msg.args);
      BodyRegistry::instance().body(msg.body)(ctx, args);
    } catch (const std::exception& e) {
      TaskErrorMsg err;
      err.task = task_id_;
      err.code = classify_error(e);
      err.what = e.what();
      if (!ch_.send(FrameType::kTaskError, pack(err))) _exit(0);
      return;
    }

    DoneMsg done;
    done.task = task_id_;
    done.charged = charged_;
    for (ObjectId obj : ship_order_) {
      const ObjectState& st = states_[obj];
      if (!st.wrote) continue;
      done.writes.push_back({obj, bytes_[obj]});
    }
    if (!ch_.send(FrameType::kDone, pack(done))) _exit(0);
  }

  /// Serves one coordinator-initiated frame (legal between tasks and while
  /// a task waits for an ack).  Returns false on Shutdown.
  bool serve(const Frame& f) {
    switch (f.type) {
      case FrameType::kCoherence: {
        (void)unpack<CoherenceMsg>(f.payload);  // control notice; accounted
        ++coherence_notices_;
        return true;
      }
      case FrameType::kObjFetch: {
        const auto req = unpack<ObjFetchMsg>(f.payload);
        ObjDataMsg reply;
        reply.obj = req.obj;
        auto it = bytes_.find(req.obj);
        if (it != bytes_.end()) reply.payload = it->second;
        if (!ch_.send(FrameType::kObjData, pack(reply))) _exit(0);
        return true;
      }
      case FrameType::kShutdown:
        return false;
      default:
        throw ProtocolError("worker received unexpected frame type " +
                            std::to_string(static_cast<int>(f.type)));
    }
  }

  std::uint64_t coherence_notices() const { return coherence_notices_; }

  // --- Engine interface ----------------------------------------------------

  ObjectId allocate(TypeDescriptor, std::string, MachineId) override {
    throw ConfigError("cluster tasks cannot allocate shared objects");
  }
  void put_bytes(ObjectId, std::span<const std::byte>) override {
    throw ConfigError("put_bytes is host-side only");
  }
  std::vector<std::byte> get_bytes(ObjectId) override {
    throw ConfigError("get_bytes is host-side only");
  }
  const ObjectInfo& object_info(ObjectId) const override {
    throw ConfigError("object_info is unavailable inside a cluster worker");
  }
  void set_object_tenant(ObjectId, TenantId) override {
    throw ConfigError("tenants are host-side only");
  }
  void run(std::function<void(TaskContext&)>) override {
    throw ConfigError("run() is host-side only");
  }

  void spawn(TaskNode*, const std::vector<AccessRequest>&,
             TaskContext::BodyFn, std::string, MachineId,
             TenantCtl*) override {
    throw ConfigError(
        "cluster task bodies must create children with cluster::spawn "
        "(closures cannot cross process boundaries)");
  }

  void spawn_registered(TaskNode*, const std::vector<AccessRequest>& requests,
                        int body, std::vector<std::byte> args,
                        std::string name, MachineId placement) override {
    SpawnMsg msg;
    msg.parent = task_id_;
    msg.body = body;
    msg.name = std::move(name);
    msg.placement = placement;
    msg.args = std::move(args);
    // The child runs, serially, *at this point* inside the parent — it must
    // observe every byte the parent has written so far.  Flush the parent's
    // dirty copies of the objects the child declares; the payloads ride the
    // spawn message and land in the coordinator's canonical buffers before
    // the child can be dispatched anywhere.
    for (const AccessRequest& req : requests) {
      ReqMsg q;
      q.obj = req.obj;
      q.add_immediate = req.add_immediate;
      q.add_deferred = req.add_deferred;
      q.remove = req.remove;
      msg.requests.push_back(q);
    }
    // Dirty payloads travel as a zero-bit with-cont flush *ahead of* the
    // spawn (same socket, ordered delivery): the coordinator updates its
    // canonical buffers, so however it later places the child, the child
    // reads current bytes.
    WithContMsg wc;
    wc.task = task_id_;
    for (const AccessRequest& req : requests) {
      auto it = states_.find(req.obj);
      if (it == states_.end() || !it->second.wrote) continue;
      WithContItem item;
      item.req.obj = req.obj;  // zero bits: pure payload flush
      item.has_payload = true;
      item.payload = bytes_[req.obj];
      wc.items.push_back(std::move(item));
      it->second.wrote = false;
    }
    if (!wc.items.empty()) {
      if (!ch_.send(FrameType::kWithCont, pack(wc))) _exit(0);
      const WithContAckMsg ack = await_with_cont_ack();
      if (!ack.ok) rethrow_error(ack.error_code, ack.error);
    }
    if (!ch_.send(FrameType::kSpawn, pack(msg))) _exit(0);
    spawned_ = true;
  }

  void with_cont(TaskNode*,
                 const std::vector<AccessRequest>& requests) override {
    WithContMsg msg;
    msg.task = task_id_;
    for (const AccessRequest& req : requests) {
      WithContItem item;
      item.req.obj = req.obj;
      item.req.add_immediate = req.add_immediate;
      item.req.add_deferred = req.add_deferred;
      item.req.remove = req.remove;
      // Retiring a write/commute right publishes the final bytes: the
      // successor the retirement unblocks will read the coordinator's
      // canonical copy.
      auto it = states_.find(req.obj);
      if ((req.remove & (access::kWrite | access::kCommute)) != 0 &&
          it != states_.end() && it->second.wrote) {
        item.has_payload = true;
        item.payload = bytes_[req.obj];
        it->second.wrote = false;
      }
      msg.items.push_back(std::move(item));
    }
    if (!ch_.send(FrameType::kWithCont, pack(msg))) _exit(0);
    const WithContAckMsg ack = await_with_cont_ack();
    if (!ack.ok) rethrow_error(ack.error_code, ack.error);
    for (const ObjectShip& s : ack.objects) {
      auto& st = states_[s.obj];
      st.immediate = s.immediate;
      st.deferred = s.deferred;
      st.bytes = s.bytes;
      if ((s.immediate & access::kCommute) == 0) st.cm_confirmed = false;
      if (s.has_payload) {
        bytes_[s.obj] = s.payload;
      } else {
        auto& buf = bytes_[s.obj];
        if (buf.size() != s.bytes) buf.assign(s.bytes, std::byte{0});
      }
      bool known = false;
      for (ObjectId o : ship_order_) known |= (o == s.obj);
      if (!known) ship_order_.push_back(s.obj);
    }
  }

  std::byte* acquire_bytes(TaskNode*, ObjectId obj,
                           std::uint8_t mode) override {
    auto it = states_.find(obj);
    // Fast path: the right is held immediately, no commute token is pending
    // confirmation, and the task has not spawned children (a child's record
    // sits ahead of the parent's, so post-spawn accesses must consult the
    // serializer).
    const bool covered =
        it != states_.end() && (it->second.immediate & mode) == mode;
    const bool cm_ok = (mode & access::kCommute) == 0 ||
                       (it != states_.end() && it->second.cm_confirmed);
    if (covered && cm_ok && !spawned_) {
      if (mode & (access::kWrite | access::kCommute)) it->second.wrote = true;
      return bytes_[obj].data();
    }

    AcquireMsg msg;
    msg.task = task_id_;
    msg.obj = obj;
    msg.mode = mode;
    if (!ch_.send(FrameType::kAcquire, pack(msg))) _exit(0);
    for (;;) {
      std::optional<Frame> f = ch_.recv();
      if (!f) _exit(0);
      if (f->type == FrameType::kAcquireAck) {
        const auto ack = unpack<AcquireAckMsg>(f->payload);
        if (ack.task != task_id_ || ack.obj != obj)
          throw ProtocolError("acquire ack for the wrong task/object");
        if (!ack.ok) rethrow_error(ack.error_code, ack.error);
        auto& st = states_[obj];
        st.immediate |= mode;
        if (ack.has_payload) bytes_[obj] = ack.payload;
        if (mode & access::kCommute) st.cm_confirmed = true;
        if (mode & (access::kWrite | access::kCommute)) st.wrote = true;
        auto bit = bytes_.find(obj);
        JADE_ASSERT_MSG(bit != bytes_.end() && !bit->second.empty(),
                        "acquire granted with no local bytes");
        return bit->second.data();
      }
      if (!serve(*f)) _exit(0);
    }
  }

  void charge(TaskNode*, double units) override { charged_ += units; }
  int machine_count() const override { return machines_; }
  MachineId machine_of(TaskNode*) const override { return machine_; }

 private:
  WithContAckMsg await_with_cont_ack() {
    for (;;) {
      std::optional<Frame> f = ch_.recv();
      if (!f) _exit(0);
      if (f->type == FrameType::kWithContAck) {
        auto ack = unpack<WithContAckMsg>(f->payload);
        if (ack.task != task_id_)
          throw ProtocolError("with-cont ack for the wrong task");
        return ack;
      }
      if (!serve(*f)) _exit(0);
    }
  }

  Channel& ch_;
  MachineId machine_;
  int machines_;
  /// Worker-global object bytes, never evicted.  Vector heap storage is
  /// pointer-stable across map rehashes, so accessor pointers survive later
  /// insertions.
  std::unordered_map<ObjectId, std::vector<std::byte>> bytes_;
  std::unordered_map<ObjectId, ObjectState> states_;  ///< current task only
  std::vector<ObjectId> ship_order_;  ///< deterministic writeback order
  std::uint64_t task_id_ = 0;
  double charged_ = 0;
  bool spawned_ = false;
  std::uint64_t coherence_notices_ = 0;
};

/// Heartbeat sender: one frame per interval until stopped.
class Heartbeat {
 public:
  Heartbeat(Channel& ch, MachineId machine, double interval)
      : thread_([this, &ch, machine, interval] {
          std::uint64_t seq = 0;
          std::unique_lock<std::mutex> lock(mu_);
          while (!stop_) {
            lock.unlock();
            HeartbeatMsg hb;
            hb.machine = machine;
            hb.seq = seq++;
            if (!ch.send(FrameType::kHeartbeat, pack(hb))) break;
            lock.lock();
            cv_.wait_for(lock,
                         std::chrono::duration<double>(interval),
                         [this] { return stop_; });
          }
        }) {}

  ~Heartbeat() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

void worker_main(int fd) {
  // The coordinator may vanish at any moment; writes to a dead socket must
  // return EPIPE, not kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  Channel ch(fd);
  HelloMsg hello;
  hello.pid = static_cast<std::int64_t>(::getpid());
  if (!ch.send(FrameType::kHello, pack(hello))) _exit(0);

  // Wait for activation; spares sit here until a worker dies (or shutdown).
  ActivateMsg act;
  for (;;) {
    std::optional<Frame> f = ch.recv();
    if (!f) _exit(0);
    if (f->type == FrameType::kShutdown) _exit(0);
    if (f->type == FrameType::kActivate) {
      act = unpack<ActivateMsg>(f->payload);
      break;
    }
    // Anything else before activation is a coordinator bug.
    _exit(1);
  }

  WorkerEngine engine(ch, act.machine, act.machines);
  {
    Heartbeat heartbeat(ch, act.machine, act.heartbeat_interval);
    for (;;) {
      std::optional<Frame> f = ch.recv();
      if (!f) break;  // coordinator died or closed the link
      if (f->type == FrameType::kDispatch) {
        engine.run_task(unpack<DispatchMsg>(f->payload));
        continue;
      }
      if (!engine.serve(*f)) break;  // Shutdown
    }
  }  // joins the heartbeat thread
  _exit(0);
}

}  // namespace jade::cluster
