// ClusterEngine configuration.
//
// Lives in its own light header so RuntimeConfig can embed the options
// without pulling the whole multi-process engine (sockets, fork) into every
// translation unit that configures a runtime.
#pragma once

#include "jade/support/time.hpp"

namespace jade::cluster {

struct Options {
  /// Worker processes executing task bodies (the cluster's "machines").
  int workers = 4;
  /// Pre-forked idle processes kept in reserve; when a worker dies one is
  /// activated under the dead worker's machine id.  Forking after the
  /// coordinator has started threads is not safe, so spares must exist
  /// up front.
  int spares = 1;
  /// Wall-clock seconds between worker heartbeats to the coordinator.
  SimTime heartbeat_interval = 0.025;
  /// Heartbeat intervals a worker may miss before the detector suspects it.
  int miss_threshold = 4;
  /// Replace a dead worker with a spare (when one is available).  Off, the
  /// dead machine id stays dark and its tasks re-run elsewhere.
  bool restart_workers = true;
};

}  // namespace jade::cluster
