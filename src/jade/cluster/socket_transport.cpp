#include "jade/cluster/socket_transport.hpp"

namespace jade::cluster {

void SocketTransport::set_channel(MachineId m, Channel* ch) {
  JADE_ASSERT(m >= 0);
  if (static_cast<std::size_t>(m) >= channels_.size())
    channels_.resize(static_cast<std::size_t>(m) + 1, nullptr);
  channels_[static_cast<std::size_t>(m)] = ch;
}

SimTime SocketTransport::unicast(MachineId from, MachineId to,
                                 std::size_t bytes, SimTime at) {
  Channel* ch = (to >= 0 && static_cast<std::size_t>(to) < channels_.size())
                    ? channels_[static_cast<std::size_t>(to)]
                    : nullptr;
  if (ch != nullptr && !ch->closed()) {
    CoherenceMsg msg;
    msg.from = from;
    msg.to = to;
    msg.bytes = bytes;
    ch->queue(FrameType::kCoherence, pack(msg));
    ++control_frames_;
  }
  if (tracer_ != nullptr && tracer_->enabled())
    tracer_->instant_at(at, obs::Subsystem::kNet, "net.xfer", 0, to,
                        static_cast<double>(bytes));
  return at;
}

SimTime SocketTransport::multicast(MachineId from,
                                   std::span<const MachineId> targets,
                                   std::size_t bytes, SimTime at) {
  SimTime last = at;
  for (MachineId to : targets) last = unicast(from, to, bytes, at);
  return last;
}

}  // namespace jade::cluster
