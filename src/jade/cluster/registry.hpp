// BodyRegistry + cluster::spawn — task bodies that cross process boundaries.
//
// A std::function cannot travel to another process, so cluster programs name
// their task bodies: each body is registered once (by every process, before
// the engine forks — fork inherits the registry) and referred to on the wire
// by its registry index.  Arguments travel as a WireWriter blob the body
// decodes on arrival; shared data travels as SharedRefs reconstructed from
// (ObjectId, count) pairs inside the blob via RefMaker.
//
// cluster::spawn() is the portable entry point: on a ClusterEngine (or a
// WorkerEngine inside a worker process) it sends the registered body id; on
// any other engine it wraps the registered body in an ordinary closure — so
// one program text runs on SerialEngine for verification and on the cluster
// for real, which is how the demo/bench/tests check serial equivalence.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "jade/core/access.hpp"
#include "jade/core/object.hpp"
#include "jade/core/task.hpp"
#include "jade/types/wire.hpp"

namespace jade::cluster {

/// A registered task body: TaskContext plus the argument blob reader.
using RegisteredBody = std::function<void(TaskContext&, WireReader&)>;

/// Process-wide name -> body table.  Registration must happen before the
/// ClusterEngine starts its workers (the fork snapshots the table); the
/// engine checks and throws ConfigError on a body id a worker doesn't have.
class BodyRegistry {
 public:
  static BodyRegistry& instance();

  /// Registers `body` under `name`; returns its index.  Idempotent by name
  /// (re-registration returns the existing index and keeps the first body),
  /// so file-scope registration helpers can run in any order.
  int ensure(const std::string& name, RegisteredBody body);

  /// Index of `name`, or -1.
  int find(const std::string& name) const;

  const RegisteredBody& body(int index) const;
  const std::string& name(int index) const;
  int size() const { return static_cast<int>(entries_.size()); }

 private:
  struct Entry {
    std::string name;
    RegisteredBody body;
  };
  std::vector<Entry> entries_;
};

/// Implemented by ClusterEngine and WorkerEngine: spawn a child running a
/// registered body.  cluster::spawn dispatches here when the engine supports
/// it and falls back to a closure otherwise.
class RegisteredSpawner {
 public:
  virtual ~RegisteredSpawner() = default;
  virtual void spawn_registered(TaskNode* parent,
                                const std::vector<AccessRequest>& requests,
                                int body, std::vector<std::byte> args,
                                std::string name, MachineId placement) = 0;
};

/// Reconstructs typed SharedRefs from wire-carried (id, count) pairs inside
/// worker processes (SharedRef's constructor is private; this is the
/// sanctioned back door for the cluster layer).
struct RefMaker {
  template <typename T>
  static SharedRef<T> make(ObjectId id, std::size_t count) {
    return SharedRef<T>(id, count);
  }
};

/// Writes a ref as (id, count) — the wire form RefMaker reverses.
template <typename T>
void put_ref(WireWriter& w, const SharedRef<T>& ref) {
  w.put_u64(ref.id());
  w.put_u64(ref.count());
}

template <typename T>
SharedRef<T> get_ref(WireReader& r) {
  const ObjectId id = r.get_u64();
  const std::size_t count = r.get_u64();
  return RefMaker::make<T>(id, count);
}

/// Spawns a child task running registered body `body` with `args`.  Portable:
/// engines implementing RegisteredSpawner get the wire form; any other
/// engine gets a closure that re-decodes the same blob, preserving identical
/// semantics (and letting SerialEngine verify cluster programs).
void spawn(TaskContext& ctx, int body, WireWriter args,
           const TaskContext::SpecFn& spec, std::string name = "",
           MachineId placement = -1);

/// Name-based convenience (looks the body up, throws ConfigError if absent).
void spawn(TaskContext& ctx, const std::string& body_name, WireWriter args,
           const TaskContext::SpecFn& spec, std::string name = "",
           MachineId placement = -1);

}  // namespace jade::cluster
