// Channel — one framed byte stream over a Unix-domain socket.
//
// The coordinator and each worker share a socketpair.  Both ends speak the
// frame format of frame.hpp, but their I/O disciplines differ:
//
//   * Workers block.  A worker has nothing useful to do while it waits for
//     the coordinator, so send() loops until the frame is fully written
//     (under a mutex — the heartbeat thread shares the socket) and recv()
//     blocks for the next frame.
//   * The coordinator must never block on one worker while another has
//     traffic, so its channels are non-blocking: queue() appends to an
//     outbox, flush() writes as much as the socket accepts, and drain()
//     parses every complete frame the kernel has buffered.  The poll() loop
//     in ClusterEngine drives both.
//
// EOF handling: a closed peer is a *liveness* event (the worker died), not a
// protocol error — recv()/drain() report it as a clean close even when it
// cuts a frame in half.  Garbage on a live stream (bad magic, absurd length)
// is ProtocolError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "jade/cluster/frame.hpp"

namespace jade::cluster {

class Channel {
 public:
  explicit Channel(int fd) : fd_(fd) {}
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  int fd() const { return fd_; }
  bool closed() const { return fd_ < 0; }
  void close();

  /// Switches the socket to non-blocking mode (coordinator side).
  void set_nonblocking();

  // --- blocking discipline (worker side) -----------------------------------

  /// Writes one whole frame; thread-safe (body thread + heartbeat thread).
  /// Returns false when the peer is gone (EPIPE/ECONNRESET) — the worker's
  /// cue to exit.
  bool send(FrameType type, std::vector<std::byte> payload);

  /// Blocks for the next frame.  nullopt on clean close (EOF, even
  /// mid-frame — the peer process died); ProtocolError on garbage.
  std::optional<Frame> recv();

  // --- non-blocking discipline (coordinator side) --------------------------

  /// Appends a frame to the outbox; flush() moves it to the kernel.
  void queue(FrameType type, std::vector<std::byte> payload);

  /// Writes queued bytes until the socket would block or the outbox drains.
  /// Returns false when the peer is gone.
  bool flush();

  bool want_write() const { return !outbox_.empty(); }

  /// Reads until the socket would block, appending every complete frame to
  /// `out`.  Returns false on EOF / reset (peer died); a partial frame in
  /// the buffer at EOF is discarded, not an error.  Garbage frames raise
  /// ProtocolError.
  bool drain(std::vector<Frame>& out);

  // --- accounting ----------------------------------------------------------
  std::uint64_t tx_frames() const { return tx_frames_; }
  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }

 private:
  /// Parses complete frames out of rxbuf_ into `out`; returns false (leaving
  /// the tail for the next read) when the buffer holds only a partial frame.
  void parse_frames(std::vector<Frame>& out);

  int fd_;
  std::mutex send_mu_;  ///< blocking sends only
  std::vector<std::byte> outbox_;
  std::size_t outbox_pos_ = 0;  ///< bytes of outbox_ already written
  std::vector<std::byte> rxbuf_;
  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
};

}  // namespace jade::cluster
