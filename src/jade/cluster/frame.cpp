#include "jade/cluster/frame.hpp"

#include <cstring>

namespace jade::cluster {

std::vector<std::byte> encode_frame(FrameType type,
                                    std::vector<std::byte> payload) {
  JADE_ASSERT_MSG(payload.size() <= kMaxPayload, "frame payload too large");
  WireWriter w;
  w.reserve(kFrameHeaderBytes + payload.size());
  w.put_u32(kFrameMagic);
  w.put_u8(kFrameVersion);
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_u16(0);  // reserved
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::byte> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::uint32_t decode_frame_header(const std::byte* buf, FrameType& type) {
  WireReader r({buf, kFrameHeaderBytes});
  const std::uint32_t magic = r.get_u32();
  if (magic != kFrameMagic)
    throw ProtocolError("bad frame magic 0x" + std::to_string(magic));
  const std::uint8_t version = r.get_u8();
  if (version != kFrameVersion)
    throw ProtocolError("unsupported frame version " +
                        std::to_string(version));
  const std::uint8_t t = r.get_u8();
  if (t < 1 || t > kMaxFrameType)
    throw ProtocolError("unknown frame type " + std::to_string(t));
  const std::uint16_t reserved = r.get_u16();
  if (reserved != 0)
    throw ProtocolError("nonzero reserved field in frame header");
  const std::uint32_t len = r.get_u32();
  if (len > kMaxPayload)
    throw ProtocolError("frame payload length " + std::to_string(len) +
                        " exceeds limit");
  type = static_cast<FrameType>(t);
  return len;
}

ErrorCode classify_error(const std::exception& e) {
  if (dynamic_cast<const UndeclaredAccessError*>(&e))
    return ErrorCode::kUndeclaredAccess;
  if (dynamic_cast<const SpecUpdateError*>(&e)) return ErrorCode::kSpecUpdate;
  if (dynamic_cast<const HierarchyViolationError*>(&e))
    return ErrorCode::kHierarchy;
  if (dynamic_cast<const TenantIsolationError*>(&e))
    return ErrorCode::kTenantIsolation;
  if (dynamic_cast<const ConfigError*>(&e)) return ErrorCode::kConfig;
  if (dynamic_cast<const UnrecoverableError*>(&e))
    return ErrorCode::kUnrecoverable;
  if (dynamic_cast<const ProtocolError*>(&e)) return ErrorCode::kProtocol;
  if (dynamic_cast<const InternalError*>(&e)) return ErrorCode::kInternal;
  return ErrorCode::kGeneric;
}

void rethrow_error(ErrorCode code, const std::string& what) {
  switch (code) {
    case ErrorCode::kUndeclaredAccess:
      throw UndeclaredAccessError(what);
    case ErrorCode::kSpecUpdate:
      throw SpecUpdateError(what);
    case ErrorCode::kHierarchy:
      throw HierarchyViolationError(what);
    case ErrorCode::kTenantIsolation:
      throw TenantIsolationError(what);
    case ErrorCode::kConfig:
      throw ConfigError(what);
    case ErrorCode::kUnrecoverable:
      throw UnrecoverableError(what);
    case ErrorCode::kProtocol:
      throw ProtocolError(what);
    case ErrorCode::kInternal:
      throw InternalError(what);
    case ErrorCode::kGeneric:
      break;
  }
  throw JadeError(what);
}

// --- encode/decode ---------------------------------------------------------

namespace {

void put_payload(WireWriter& w, bool has, const std::vector<std::byte>& p) {
  w.put_u8(has ? 1 : 0);
  if (has) w.put_bytes(p);
}

void get_payload(WireReader& r, bool& has, std::vector<std::byte>& p) {
  has = r.get_u8() != 0;
  if (has) p = r.get_bytes();
}

/// Pre-allocation guard for wire-carried element counts: a garbage count
/// must hit the truncation check, not a giant reserve().  Every element
/// consumes at least one byte, so `remaining` bounds any honest count.
std::uint32_t checked_count(const WireReader& r, std::uint32_t n) {
  if (n > r.remaining())
    throw ProtocolError("cluster message count " + std::to_string(n) +
                        " exceeds remaining payload");
  return n;
}

}  // namespace

void HelloMsg::encode(WireWriter& w) const { w.put_i64(pid); }
HelloMsg HelloMsg::decode(WireReader& r) { return {r.get_i64()}; }

void ActivateMsg::encode(WireWriter& w) const {
  w.put_i64(machine);
  w.put_i64(machines);
  w.put_f64(heartbeat_interval);
}
ActivateMsg ActivateMsg::decode(WireReader& r) {
  ActivateMsg m;
  m.machine = static_cast<MachineId>(r.get_i64());
  m.machines = static_cast<std::int32_t>(r.get_i64());
  m.heartbeat_interval = r.get_f64();
  return m;
}

void ObjectShip::encode(WireWriter& w) const {
  w.put_u64(obj);
  w.put_u8(immediate);
  w.put_u8(deferred);
  w.put_u64(bytes);
  put_payload(w, has_payload, payload);
}
ObjectShip ObjectShip::decode(WireReader& r) {
  ObjectShip s;
  s.obj = r.get_u64();
  s.immediate = r.get_u8();
  s.deferred = r.get_u8();
  s.bytes = r.get_u64();
  get_payload(r, s.has_payload, s.payload);
  return s;
}

void DispatchMsg::encode(WireWriter& w) const {
  w.put_u64(task);
  w.put_i64(body);
  w.put_string(name);
  w.put_bytes(args);
  w.put_u32(static_cast<std::uint32_t>(objects.size()));
  for (const ObjectShip& s : objects) s.encode(w);
}
DispatchMsg DispatchMsg::decode(WireReader& r) {
  DispatchMsg m;
  m.task = r.get_u64();
  m.body = static_cast<std::int32_t>(r.get_i64());
  m.name = r.get_string();
  m.args = r.get_bytes();
  const std::uint32_t n = checked_count(r, r.get_u32());
  m.objects.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    m.objects.push_back(ObjectShip::decode(r));
  return m;
}

void ReqMsg::encode(WireWriter& w) const {
  w.put_u64(obj);
  w.put_u8(add_immediate);
  w.put_u8(add_deferred);
  w.put_u8(remove);
}
ReqMsg ReqMsg::decode(WireReader& r) {
  ReqMsg m;
  m.obj = r.get_u64();
  m.add_immediate = r.get_u8();
  m.add_deferred = r.get_u8();
  m.remove = r.get_u8();
  return m;
}

void SpawnMsg::encode(WireWriter& w) const {
  w.put_u64(parent);
  w.put_i64(body);
  w.put_string(name);
  w.put_i64(placement);
  w.put_bytes(args);
  w.put_u32(static_cast<std::uint32_t>(requests.size()));
  for (const ReqMsg& q : requests) q.encode(w);
}
SpawnMsg SpawnMsg::decode(WireReader& r) {
  SpawnMsg m;
  m.parent = r.get_u64();
  m.body = static_cast<std::int32_t>(r.get_i64());
  m.name = r.get_string();
  m.placement = static_cast<MachineId>(r.get_i64());
  m.args = r.get_bytes();
  const std::uint32_t n = checked_count(r, r.get_u32());
  m.requests.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.requests.push_back(ReqMsg::decode(r));
  return m;
}

void WithContItem::encode(WireWriter& w) const {
  req.encode(w);
  put_payload(w, has_payload, payload);
}
WithContItem WithContItem::decode(WireReader& r) {
  WithContItem it;
  it.req = ReqMsg::decode(r);
  get_payload(r, it.has_payload, it.payload);
  return it;
}

void WithContMsg::encode(WireWriter& w) const {
  w.put_u64(task);
  w.put_u32(static_cast<std::uint32_t>(items.size()));
  for (const WithContItem& it : items) it.encode(w);
}
WithContMsg WithContMsg::decode(WireReader& r) {
  WithContMsg m;
  m.task = r.get_u64();
  const std::uint32_t n = checked_count(r, r.get_u32());
  m.items.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    m.items.push_back(WithContItem::decode(r));
  return m;
}

void WithContAckMsg::encode(WireWriter& w) const {
  w.put_u64(task);
  w.put_u8(ok ? 1 : 0);
  w.put_u8(static_cast<std::uint8_t>(error_code));
  w.put_string(error);
  w.put_u32(static_cast<std::uint32_t>(objects.size()));
  for (const ObjectShip& s : objects) s.encode(w);
}
WithContAckMsg WithContAckMsg::decode(WireReader& r) {
  WithContAckMsg m;
  m.task = r.get_u64();
  m.ok = r.get_u8() != 0;
  m.error_code = static_cast<ErrorCode>(r.get_u8());
  m.error = r.get_string();
  const std::uint32_t n = checked_count(r, r.get_u32());
  m.objects.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    m.objects.push_back(ObjectShip::decode(r));
  return m;
}

void AcquireMsg::encode(WireWriter& w) const {
  w.put_u64(task);
  w.put_u64(obj);
  w.put_u8(mode);
}
AcquireMsg AcquireMsg::decode(WireReader& r) {
  AcquireMsg m;
  m.task = r.get_u64();
  m.obj = r.get_u64();
  m.mode = r.get_u8();
  return m;
}

void AcquireAckMsg::encode(WireWriter& w) const {
  w.put_u64(task);
  w.put_u64(obj);
  w.put_u8(ok ? 1 : 0);
  w.put_u8(static_cast<std::uint8_t>(error_code));
  w.put_string(error);
  put_payload(w, has_payload, payload);
}
AcquireAckMsg AcquireAckMsg::decode(WireReader& r) {
  AcquireAckMsg m;
  m.task = r.get_u64();
  m.obj = r.get_u64();
  m.ok = r.get_u8() != 0;
  m.error_code = static_cast<ErrorCode>(r.get_u8());
  m.error = r.get_string();
  get_payload(r, m.has_payload, m.payload);
  return m;
}

void DoneMsg::encode(WireWriter& w) const {
  w.put_u64(task);
  w.put_f64(charged);
  w.put_u32(static_cast<std::uint32_t>(writes.size()));
  for (const Write& wr : writes) {
    w.put_u64(wr.obj);
    w.put_bytes(wr.payload);
  }
}
DoneMsg DoneMsg::decode(WireReader& r) {
  DoneMsg m;
  m.task = r.get_u64();
  m.charged = r.get_f64();
  const std::uint32_t n = checked_count(r, r.get_u32());
  m.writes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Write wr;
    wr.obj = r.get_u64();
    wr.payload = r.get_bytes();
    m.writes.push_back(std::move(wr));
  }
  return m;
}

void TaskErrorMsg::encode(WireWriter& w) const {
  w.put_u64(task);
  w.put_u8(static_cast<std::uint8_t>(code));
  w.put_string(what);
}
TaskErrorMsg TaskErrorMsg::decode(WireReader& r) {
  TaskErrorMsg m;
  m.task = r.get_u64();
  m.code = static_cast<ErrorCode>(r.get_u8());
  m.what = r.get_string();
  return m;
}

void HeartbeatMsg::encode(WireWriter& w) const {
  w.put_i64(machine);
  w.put_u64(seq);
}
HeartbeatMsg HeartbeatMsg::decode(WireReader& r) {
  HeartbeatMsg m;
  m.machine = static_cast<MachineId>(r.get_i64());
  m.seq = r.get_u64();
  return m;
}

void CoherenceMsg::encode(WireWriter& w) const {
  w.put_i64(from);
  w.put_i64(to);
  w.put_u64(bytes);
}
CoherenceMsg CoherenceMsg::decode(WireReader& r) {
  CoherenceMsg m;
  m.from = static_cast<MachineId>(r.get_i64());
  m.to = static_cast<MachineId>(r.get_i64());
  m.bytes = r.get_u64();
  return m;
}

void ObjFetchMsg::encode(WireWriter& w) const { w.put_u64(obj); }
ObjFetchMsg ObjFetchMsg::decode(WireReader& r) { return {r.get_u64()}; }

void ObjDataMsg::encode(WireWriter& w) const {
  w.put_u64(obj);
  w.put_bytes(payload);
}
ObjDataMsg ObjDataMsg::decode(WireReader& r) {
  ObjDataMsg m;
  m.obj = r.get_u64();
  m.payload = r.get_bytes();
  return m;
}

void ShutdownMsg::encode(WireWriter&) const {}
ShutdownMsg ShutdownMsg::decode(WireReader&) { return {}; }

}  // namespace jade::cluster
