// ClusterEngine — Jade on real processes.
//
// The coordinator (this engine, in the host process) forks N worker
// processes connected by Unix-domain socketpairs and drives them through the
// cluster wire protocol (frame.hpp).  All semantic state is coordinator-side:
// the Serializer orders declarations, the CommuteTokenTable serializes
// commuters, the ThrottleGate paces the root, the ObjectDirectory +
// CoherenceProtocol (over a SocketTransport) book object motion, and the
// FailureDetector turns missing heartbeats into recovery.  Workers execute
// registered task bodies against local byte copies and RPC back for
// anything serializer-relevant.
//
// Data movement is governed by a shipped-version map, not by the directory:
// for every (object, worker) the coordinator records the data version it
// last shipped or received; a dispatch/grant attaches the payload iff that
// version is stale.  The directory still runs the full Section 5 protocol
// (moves, replicas, invalidations) for placement decisions and stats, but
// correctness never depends on its metadata being exact — the version map
// is the physical truth.
//
// Failure semantics: each worker heartbeats the coordinator; the sweep
// (ft/failure_detector.hpp) suspects silent workers, a waitpid confirms
// death, and the victim's running task — if it never spawned or ran a
// with-cont — is rewound (Serializer::abort_attempt) and re-dispatched to a
// survivor, with a pre-forked spare taking over the dead machine id.  A
// non-restartable victim aborts the run with UnrecoverableError.
#pragma once

#include <sys/types.h>

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "jade/cluster/channel.hpp"
#include "jade/cluster/frame.hpp"
#include "jade/cluster/options.hpp"
#include "jade/cluster/registry.hpp"
#include "jade/cluster/socket_transport.hpp"
#include "jade/engine/engine.hpp"
#include "jade/ft/failure_detector.hpp"
#include "jade/model/planner.hpp"
#include "jade/sched/governor.hpp"
#include "jade/sched/policies.hpp"
#include "jade/store/coherence.hpp"
#include "jade/store/directory.hpp"

namespace jade::cluster {

class ClusterEngine : public Engine,
                      public RegisteredSpawner,
                      private SerializerListener {
 public:
  explicit ClusterEngine(Options options, SchedPolicy sched = {},
                         bool enforce_hierarchy = true,
                         std::shared_ptr<const model::Planner> planner =
                             nullptr);
  ~ClusterEngine() override;

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  // --- Engine --------------------------------------------------------------
  ObjectId allocate(TypeDescriptor type, std::string name,
                    MachineId home) override;
  void put_bytes(ObjectId obj, std::span<const std::byte> data) override;
  std::vector<std::byte> get_bytes(ObjectId obj) override;
  const ObjectInfo& object_info(ObjectId obj) const override;
  void set_object_tenant(ObjectId obj, TenantId tenant) override;
  void run(std::function<void(TaskContext&)> root_body) override;
  void spawn(TaskNode* parent, const std::vector<AccessRequest>& requests,
             TaskContext::BodyFn body, std::string name, MachineId placement,
             TenantCtl* tenant) override;
  void with_cont(TaskNode* task,
                 const std::vector<AccessRequest>& requests) override;
  std::byte* acquire_bytes(TaskNode* task, ObjectId obj,
                           std::uint8_t mode) override;
  void charge(TaskNode* task, double units) override;
  int machine_count() const override { return options_.workers; }
  MachineId machine_of(TaskNode* task) const override;
  void enable_tracing(const ObsConfig& config) override;

  // --- RegisteredSpawner ---------------------------------------------------
  void spawn_registered(TaskNode* parent,
                        const std::vector<AccessRequest>& requests, int body,
                        std::vector<std::byte> args, std::string name,
                        MachineId placement) override;

  // --- introspection (tests, benches) --------------------------------------

  /// OS pid of the worker currently serving machine `m` (-1 when dark).
  /// Lets the fault-injection tests SIGKILL a real worker.
  pid_t worker_pid(MachineId m) const;

  /// Pulls `obj`'s bytes from a worker whose copy the version map says is
  /// current and compares them to the canonical buffer; true when they
  /// match (or no worker holds a current copy).  Only legal between runs.
  bool debug_probe(ObjectId obj);

  const ObjectDirectory& directory() const { return directory_; }

 private:
  // --- structures ----------------------------------------------------------
  struct TaskRec {
    int body = -1;
    std::vector<std::byte> args;
    /// Objects whose data version this attempt already bumped
    /// (CoherenceProtocol::first_write_invalidate books through it).
    std::vector<ObjectId> dirtied;
    /// A task is restartable after a crash only while it is a pure leaf:
    /// no child spawned, no with-cont (including payload flushes) executed.
    bool restartable = true;
  };

  struct WorkerSlot {
    MachineId machine = -1;  ///< -1: spare awaiting activation
    pid_t pid = -1;
    std::unique_ptr<Channel> channel;
    bool eof = false;     ///< socket closed; death pending confirmation
    bool dead = false;    ///< confirmed exited
    TaskNode* running = nullptr;
    double busy_since = 0;
  };

  /// One worker- or root-initiated RPC parked on the serializer or on a
  /// commute token.
  struct PendingRpc {
    enum class Kind { kAcquire, kWithCont } kind = Kind::kAcquire;
    enum class Stage { kSerializer, kToken } stage = Stage::kSerializer;
    MachineId worker = -1;  ///< -1: the root thread
    ObjectId obj = kInvalidObject;
    std::uint8_t mode = 0;
    std::vector<AccessRequest> requests;  ///< with-cont only
  };

  // --- SerializerListener (record only; never re-enters the serializer) ----
  void on_task_ready(TaskNode* task) override;
  void on_task_unblocked(TaskNode* task) override;

  // --- lifecycle -----------------------------------------------------------
  void ensure_workers_started();
  void shutdown_workers();
  double wall_now() const;
  void wake_event_loop();

  // --- event loop (run()'s calling thread) ---------------------------------
  void event_loop();
  bool exit_condition_locked() const;
  void handle_frame_locked(int slot, const Frame& f);
  void sweep_locked();

  // --- frame handlers (mu_ held) -------------------------------------------
  void handle_spawn_locked(int slot, const SpawnMsg& msg);
  void handle_with_cont_locked(int slot, const WithContMsg& msg);
  void handle_acquire_locked(int slot, const AcquireMsg& msg);
  void handle_done_locked(int slot, const DoneMsg& msg);
  void handle_task_error_locked(int slot, const TaskErrorMsg& msg);

  // --- dispatch / completion (mu_ held) ------------------------------------
  void pump_locked();
  void dispatch_locked(TaskNode* task, int slot);
  void finish_task_locked(TaskNode* task);
  void drain_unblocked_locked();
  void release_tokens_locked(TaskNode* task);
  void grant_token_locked(TaskNode* next, ObjectId obj);

  // --- RPC continuation (mu_ held) -----------------------------------------
  void continue_acquire_locked(TaskNode* task, PendingRpc& rpc);
  void grant_acquire_locked(TaskNode* task, const PendingRpc& rpc);
  void finish_with_cont_locked(TaskNode* task, const PendingRpc& rpc);

  // --- data movement (mu_ held) --------------------------------------------
  bool shipped_current(ObjectId obj, MachineId m) const;
  void set_shipped(ObjectId obj, MachineId m);
  /// Applies a worker's writeback payload to the canonical buffer, bumps
  /// the data version, and marks every other worker's copy stale.
  void apply_writeback_locked(ObjectId obj, std::span<const std::byte> data,
                              MachineId from);
  /// Root-side write acquisition: invalidate replicas, notify, dirty.
  void root_write_locked(ObjectId obj);
  /// Attaches rights + (if stale on `w`) payload for one object.
  ObjectShip make_ship_locked(TaskNode* task, ObjectId obj, MachineId w,
                              TaskRec& rec);

  // --- failure handling (mu_ held) -----------------------------------------
  void handle_worker_death_locked(int slot);
  void abort_run_locked(std::exception_ptr error);

  int slot_of_machine(MachineId m) const;
  std::vector<std::uint8_t> machine_up_mask() const;

  // --- configuration & construction-time services --------------------------
  Options options_;
  SchedPolicy sched_;
  /// Task-for-machine selection routes through the policy seam
  /// (docs/MODEL.md); defaults to the shared HeuristicPlanner.
  std::shared_ptr<const model::Planner> planner_;
  Serializer serializer_;
  ObjectTable objects_;
  ObjectDirectory directory_;
  SocketTransport transport_;
  std::unique_ptr<CoherenceProtocol> coherence_;
  CommuteTokenTable tokens_;
  ThrottleGate throttle_;
  std::unique_ptr<FailureDetector> detector_;

  // --- process state -------------------------------------------------------
  bool started_ = false;
  std::vector<WorkerSlot> slots_;  ///< workers then spares
  int self_pipe_[2] = {-1, -1};
  std::chrono::steady_clock::time_point epoch_;

  // --- run state (guarded by mu_) ------------------------------------------
  mutable std::mutex mu_;
  std::condition_variable root_cv_;
  std::deque<TaskNode*> ready_;
  std::vector<TaskNode*> unblocked_;
  std::unordered_map<TaskNode*, TaskRec> recs_;
  std::unordered_map<TaskNode*, PendingRpc> pending_;
  /// Data version last shipped to / received from each (object, worker).
  std::unordered_map<ObjectMachineKey, std::uint64_t, ObjectMachineKeyHash>
      shipped_;
  bool root_done_ = false;
  bool root_unblocked_ = false;
  bool root_token_ready_ = false;
  bool aborting_ = false;
  std::exception_ptr first_error_;
  MachineId alloc_rr_ = 0;

  // --- cluster counters (published as cluster.* metrics) -------------------
  std::uint64_t dispatches_ = 0;
  std::uint64_t payload_bytes_shipped_ = 0;
  std::uint64_t writeback_bytes_ = 0;
  std::uint64_t rpc_acquires_ = 0;
  std::uint64_t rpc_with_conts_ = 0;
  std::uint64_t rpc_spawns_ = 0;
  std::uint64_t heartbeats_ = 0;
  std::uint64_t worker_deaths_ = 0;
  std::uint64_t workers_respawned_ = 0;
};

}  // namespace jade::cluster
