#include "jade/cluster/cluster_engine.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "jade/cluster/worker.hpp"
#include "jade/support/error.hpp"

namespace jade::cluster {

namespace {

/// Dispatch-window depth when matching ready tasks to an idle worker; deep
/// enough for locality to matter, shallow enough to stay serial-order-ish.
constexpr std::size_t kPickWindow = 32;

std::exception_ptr capture_error(ErrorCode code, const std::string& what) {
  try {
    rethrow_error(code, what);
  } catch (...) {
    return std::current_exception();
  }
}

}  // namespace

ClusterEngine::ClusterEngine(Options options, SchedPolicy sched,
                             bool enforce_hierarchy,
                             std::shared_ptr<const model::Planner> planner)
    : options_(options),
      sched_(sched),
      planner_(planner != nullptr ? std::move(planner)
                                  : model::default_planner()),
      serializer_(this, enforce_hierarchy),
      directory_(options.workers),
      transport_([this] { return wall_now(); }, &tracer_),
      throttle_(sched.throttle),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.spares < 0)
    throw ConfigError("cluster spares must be non-negative");
  if (options_.heartbeat_interval <= 0)
    throw ConfigError("cluster heartbeat_interval must be positive");
  if (options_.miss_threshold < 1)
    throw ConfigError("cluster miss_threshold must be at least 1");
  // Workers run on one homogeneous host, so conversions never fire; the
  // protocol still wants the endian table shaped like the cluster.
  coherence_ = std::make_unique<CoherenceProtocol>(
      transport_, directory_, objects_,
      std::vector<Endian>(static_cast<std::size_t>(options_.workers),
                          Endian::kLittle),
      CoherenceConfig{sched_.comm, 64, 0.0}, stats_, &tracer_);
  serializer_.set_tenant_oracle(
      [this](ObjectId obj) { return objects_.info(obj).tenant; });
  // A worker can die with coordinator frames still queued toward it.
  ::signal(SIGPIPE, SIG_IGN);
}

ClusterEngine::~ClusterEngine() {
  shutdown_workers();
  if (self_pipe_[0] >= 0) ::close(self_pipe_[0]);
  if (self_pipe_[1] >= 0) ::close(self_pipe_[1]);
}

double ClusterEngine::wall_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void ClusterEngine::wake_event_loop() {
  if (self_pipe_[1] >= 0) {
    const char b = 'w';
    [[maybe_unused]] ssize_t n = ::write(self_pipe_[1], &b, 1);
  }
}

// --- lifecycle --------------------------------------------------------------

void ClusterEngine::ensure_workers_started() {
  if (started_) return;
  if (::pipe2(self_pipe_, O_NONBLOCK | O_CLOEXEC) != 0)
    throw ConfigError("cluster: pipe2 failed");

  const int total = options_.workers + options_.spares;
  slots_.resize(static_cast<std::size_t>(total));
  std::vector<int> parent_fds;
  for (int i = 0; i < total; ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
      throw ConfigError("cluster: socketpair failed");
    const pid_t pid = ::fork();
    if (pid < 0) throw ConfigError("cluster: fork failed");
    if (pid == 0) {
      // Child: drop every coordinator-side fd we inherited, then become a
      // worker.  worker_main never returns (it _exit()s).
      ::close(sv[0]);
      for (int fd : parent_fds) ::close(fd);
      ::close(self_pipe_[0]);
      ::close(self_pipe_[1]);
      worker_main(sv[1]);
    }
    ::close(sv[1]);
    parent_fds.push_back(sv[0]);
    slots_[static_cast<std::size_t>(i)].pid = pid;
    slots_[static_cast<std::size_t>(i)].channel =
        std::make_unique<Channel>(sv[0]);
  }

  // Handshake while the channels still block: every worker says Hello.
  for (WorkerSlot& slot : slots_) {
    const auto hello = slot.channel->recv();
    if (!hello || hello->type != FrameType::kHello)
      throw ConfigError("cluster: worker failed to start");
    const HelloMsg msg = unpack<HelloMsg>(hello->payload);
    if (msg.pid != static_cast<std::int64_t>(slot.pid))
      throw ProtocolError("cluster: worker hello pid mismatch");
    slot.channel->set_nonblocking();
  }

  // The first `workers` processes become machines 0..W-1; the rest are
  // spares that stay parked in their pre-activation wait loop.
  for (int m = 0; m < options_.workers; ++m) {
    WorkerSlot& slot = slots_[static_cast<std::size_t>(m)];
    slot.machine = m;
    ActivateMsg act;
    act.machine = m;
    act.machines = options_.workers;
    act.heartbeat_interval = options_.heartbeat_interval;
    slot.channel->queue(FrameType::kActivate, pack(act));
    while (slot.channel->want_write())
      if (!slot.channel->flush())
        throw ConfigError("cluster: worker died during activation");
    transport_.set_channel(m, slot.channel.get());
  }

  // Detector slot 0 is the coordinator itself (never suspected); worker m
  // reports as detector machine m + 1.
  detector_ = std::make_unique<FailureDetector>(options_.workers + 1,
                                                options_.heartbeat_interval,
                                                options_.miss_threshold);
  started_ = true;
}

void ClusterEngine::shutdown_workers() {
  if (!started_) return;
  for (WorkerSlot& slot : slots_) {
    if (slot.channel && !slot.channel->closed() && !slot.dead) {
      slot.channel->queue(FrameType::kShutdown, pack(ShutdownMsg{}));
      slot.channel->flush();  // best effort; EOF also makes workers exit
    }
    if (slot.channel) slot.channel->close();
  }
  for (WorkerSlot& slot : slots_) {
    if (slot.pid <= 0 || slot.dead) continue;
    int st = 0;
    bool reaped = false;
    for (int i = 0; i < 200 && !reaped; ++i) {
      if (::waitpid(slot.pid, &st, WNOHANG) == slot.pid) reaped = true;
      else ::usleep(5000);
    }
    if (!reaped) {
      ::kill(slot.pid, SIGKILL);
      ::waitpid(slot.pid, &st, 0);
    }
    slot.dead = true;
  }
  started_ = false;
}

int ClusterEngine::slot_of_machine(MachineId m) const {
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const WorkerSlot& slot = slots_[s];
    if (slot.machine == m && !slot.dead && !slot.eof && slot.channel &&
        !slot.channel->closed())
      return static_cast<int>(s);
  }
  return -1;
}

std::vector<std::uint8_t> ClusterEngine::machine_up_mask() const {
  std::vector<std::uint8_t> up(static_cast<std::size_t>(options_.workers), 0);
  for (const WorkerSlot& slot : slots_)
    if (slot.machine >= 0 && !slot.dead && !slot.eof)
      up[static_cast<std::size_t>(slot.machine)] = 1;
  return up;
}

// --- Engine: objects --------------------------------------------------------

ObjectId ClusterEngine::allocate(TypeDescriptor type, std::string name,
                                 MachineId home) {
  std::lock_guard<std::mutex> lock(mu_);
  const ObjectId id = objects_.add(type, std::move(name));
  const MachineId h = home >= 0 ? home % options_.workers
                                : (alloc_rr_++ % options_.workers);
  directory_.add_object(objects_.info(id), h);
  return id;
}

void ClusterEngine::put_bytes(ObjectId obj, std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!directory_.known(obj))
    throw ConfigError("put_bytes on unknown object " + std::to_string(obj));
  if (data.size() != directory_.object_bytes(obj))
    throw ConfigError("put_bytes size mismatch on object " +
                      std::to_string(obj));
  directory_.invalidate_replicas(obj);
  std::memcpy(directory_.data(obj), data.data(), data.size());
  // The data version advances, so every worker's shipped copy goes stale
  // and the next dispatch re-ships the payload.
  directory_.mark_dirty(obj);
}

std::vector<std::byte> ClusterEngine::get_bytes(ObjectId obj) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto view = directory_.data_view(obj);
  return std::vector<std::byte>(view.begin(), view.end());
}

const ObjectInfo& ClusterEngine::object_info(ObjectId obj) const {
  return objects_.info(obj);
}

void ClusterEngine::set_object_tenant(ObjectId obj, TenantId tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  objects_.set_tenant(obj, tenant);
}

// --- Engine: execution ------------------------------------------------------

void ClusterEngine::run(std::function<void(TaskContext&)> root_body) {
  ensure_workers_started();
  double run_start = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    serializer_.reset();
    ready_.clear();
    unblocked_.clear();
    recs_.clear();
    pending_.clear();
    tokens_ = CommuteTokenTable{};
    throttle_.reset_counters();
    aborting_ = false;
    first_error_ = nullptr;
    root_done_ = false;
    root_unblocked_ = false;
    root_token_ready_ = false;
    stats_ = RuntimeStats{};
    stats_.machine_busy_seconds.assign(
        static_cast<std::size_t>(options_.workers), 0.0);
    dispatches_ = payload_bytes_shipped_ = writeback_bytes_ = 0;
    rpc_acquires_ = rpc_with_conts_ = rpc_spawns_ = heartbeats_ = 0;
    run_start = wall_now();
    // Heartbeats queued up between runs were never drained; reset the
    // detector's idea of "recently heard" so a stale table cannot suspect
    // the whole cluster at the first sweep.
    for (const WorkerSlot& slot : slots_)
      if (slot.machine >= 0 && !slot.dead && !slot.eof)
        detector_->heartbeat_received(slot.machine + 1, run_start);
  }

  std::thread root_thread([&] {
    try {
      TaskContext ctx(this, serializer_.root());
      root_body(ctx);
      std::lock_guard<std::mutex> lock(mu_);
      release_tokens_locked(serializer_.root());
      if (!aborting_) {
        serializer_.complete_task(serializer_.root());
        drain_unblocked_locked();
        pump_locked();
      }
      root_done_ = true;
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      abort_run_locked(std::current_exception());
      root_done_ = true;
    }
    wake_event_loop();
  });

  event_loop();
  root_thread.join();

  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.finish_time = wall_now() - run_start;
    stats_.tasks_created = serializer_.tasks_created();
    stats_.throttle_suspensions = throttle_.suspensions();
    stats_.heartbeats_sent = heartbeats_;
    // Real wire accounting replaces the protocol's modeled counts: frames
    // and bytes that actually crossed the sockets, both directions.
    stats_.messages = 0;
    stats_.bytes_sent = 0;
    for (const WorkerSlot& slot : slots_) {
      if (!slot.channel) continue;
      stats_.messages += slot.channel->tx_frames() + slot.channel->rx_frames();
      stats_.bytes_sent += slot.channel->tx_bytes() + slot.channel->rx_bytes();
    }
    stats_.payload_bytes = payload_bytes_shipped_ + writeback_bytes_;
    publish_runtime_stats();
    metrics_.counter("cluster.dispatches").set(dispatches_);
    metrics_.counter("cluster.payload_bytes_shipped")
        .set(payload_bytes_shipped_);
    metrics_.counter("cluster.writeback_bytes").set(writeback_bytes_);
    metrics_.counter("cluster.rpc_acquires").set(rpc_acquires_);
    metrics_.counter("cluster.rpc_with_conts").set(rpc_with_conts_);
    metrics_.counter("cluster.rpc_spawns").set(rpc_spawns_);
    metrics_.counter("cluster.heartbeats").set(heartbeats_);
    metrics_.counter("cluster.worker_deaths").set(worker_deaths_);
    metrics_.counter("cluster.workers_respawned").set(workers_respawned_);
    metrics_.counter("cluster.control_frames").set(transport_.control_frames());
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

// --- event loop -------------------------------------------------------------

bool ClusterEngine::exit_condition_locked() const {
  if (!root_done_) return false;
  if (aborting_) {
    for (const WorkerSlot& slot : slots_)
      if (slot.running != nullptr && !slot.eof && !slot.dead) return false;
    return true;
  }
  return serializer_.outstanding() == 0;
}

void ClusterEngine::event_loop() {
  std::vector<pollfd> pfds;
  std::vector<int> pslot;
  const int timeout_ms = std::max(
      1, static_cast<int>(options_.heartbeat_interval * 1000.0 / 2.0));
  for (;;) {
    pfds.clear();
    pslot.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (exit_condition_locked()) return;
      pfds.push_back({self_pipe_[0], POLLIN, 0});
      pslot.push_back(-1);
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        WorkerSlot& slot = slots_[s];
        if (slot.dead || slot.eof || !slot.channel || slot.channel->closed())
          continue;
        short events = POLLIN;
        if (slot.channel->want_write()) events |= POLLOUT;
        pfds.push_back({slot.channel->fd(), events, 0});
        pslot.push_back(static_cast<int>(s));
      }
    }

    ::poll(pfds.data(), pfds.size(), timeout_ms);

    std::lock_guard<std::mutex> lock(mu_);
    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (::read(self_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      const int s = pslot[i];
      WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
      if (slot.dead || !slot.channel || slot.channel->closed()) continue;
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        std::vector<Frame> frames;
        bool open = true;
        try {
          open = slot.channel->drain(frames);
        } catch (...) {
          // Garbage from a babbling worker: surface the ProtocolError and
          // treat the link as dead.
          abort_run_locked(std::current_exception());
          slot.eof = true;
        }
        for (const Frame& f : frames) {
          try {
            handle_frame_locked(s, f);
          } catch (...) {
            abort_run_locked(std::current_exception());
            slot.eof = true;
            break;
          }
        }
        if (!open) slot.eof = true;
      }
      if (!slot.eof && slot.channel->want_write())
        if (!slot.channel->flush()) slot.eof = true;
    }
    sweep_locked();
  }
}

void ClusterEngine::sweep_locked() {
  const double now = wall_now();
  // sweep() flags newly silent machines; we then act on every standing
  // suspicion (not just new ones) so a death whose waitpid was not yet
  // conclusive is retried next sweep instead of being lost.
  const std::vector<MachineId> fresh = detector_->sweep(now);
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    WorkerSlot& slot = slots_[s];
    if (slot.dead || slot.pid <= 0) continue;
    const bool suspected =
        slot.machine >= 0 && detector_->suspected(slot.machine + 1);
    if (!slot.eof && !suspected) continue;
    int st = 0;
    const pid_t r = ::waitpid(slot.pid, &st, WNOHANG);
    if (r == slot.pid) {
      handle_worker_death_locked(static_cast<int>(s));
    } else if (slot.eof) {
      // The socket closed but the process lingers (wedged or exiting):
      // finish the job and recover.
      ::kill(slot.pid, SIGKILL);
      ::waitpid(slot.pid, &st, 0);
      handle_worker_death_locked(static_cast<int>(s));
    } else if (std::find(fresh.begin(), fresh.end(), slot.machine + 1) !=
               fresh.end()) {
      ++stats_.false_suspicions;  // alive, just late — congestion
    }
  }
}

// --- frame handling ---------------------------------------------------------

void ClusterEngine::handle_frame_locked(int s, const Frame& f) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
  switch (f.type) {
    case FrameType::kHeartbeat: {
      const HeartbeatMsg msg = unpack<HeartbeatMsg>(f.payload);
      if (slot.machine >= 0 && msg.machine == slot.machine) {
        detector_->heartbeat_received(slot.machine + 1, wall_now());
        ++heartbeats_;
      }
      return;
    }
    case FrameType::kDone:
      handle_done_locked(s, unpack<DoneMsg>(f.payload));
      return;
    case FrameType::kTaskError:
      handle_task_error_locked(s, unpack<TaskErrorMsg>(f.payload));
      return;
    case FrameType::kSpawn:
      handle_spawn_locked(s, unpack<SpawnMsg>(f.payload));
      return;
    case FrameType::kWithCont:
      handle_with_cont_locked(s, unpack<WithContMsg>(f.payload));
      return;
    case FrameType::kAcquire:
      handle_acquire_locked(s, unpack<AcquireMsg>(f.payload));
      return;
    case FrameType::kObjData:
      return;  // late debug-probe reply; stale, drop
    default:
      throw ProtocolError("unexpected frame type " +
                          std::to_string(static_cast<int>(f.type)) +
                          " from worker machine " +
                          std::to_string(slot.machine));
  }
}

void ClusterEngine::handle_spawn_locked(int s, const SpawnMsg& msg) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
  TaskNode* parent = slot.running;
  if (parent == nullptr || parent->id() != msg.parent)
    throw ProtocolError("spawn for a task not running on machine " +
                        std::to_string(slot.machine));
  ++rpc_spawns_;
  // A task that spawned can no longer be transparently re-executed: a
  // re-run would create its children twice.
  recs_[parent].restartable = false;
  if (aborting_) return;
  if (msg.body < 0 || msg.body >= BodyRegistry::instance().size()) {
    abort_run_locked(std::make_exception_ptr(ConfigError(
        "spawn names unregistered body index " + std::to_string(msg.body))));
    return;
  }
  if (msg.placement >= options_.workers) {
    abort_run_locked(std::make_exception_ptr(
        ConfigError("task placement " + std::to_string(msg.placement) +
                    " exceeds the cluster's " +
                    std::to_string(options_.workers) + " workers")));
    return;
  }
  std::vector<AccessRequest> requests;
  requests.reserve(msg.requests.size());
  for (const ReqMsg& r : msg.requests)
    requests.push_back({r.obj, r.add_immediate, r.add_deferred, r.remove});
  TaskNode* child = nullptr;
  try {
    child = serializer_.create_task(parent, requests, {}, msg.name);
  } catch (...) {
    // Hierarchy/tenant violations from a remote spawn have no ack channel
    // to ride back on; they end the run, like a root-thread throw.
    abort_run_locked(std::current_exception());
    return;
  }
  child->placement = msg.placement;
  TaskRec rec;
  rec.body = msg.body;
  rec.args = msg.args;
  recs_[child] = std::move(rec);
  drain_unblocked_locked();
  pump_locked();
}

void ClusterEngine::handle_with_cont_locked(int s, const WithContMsg& msg) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
  TaskNode* task = slot.running;
  if (task == nullptr || task->id() != msg.task)
    throw ProtocolError("with_cont for a task not running on machine " +
                        std::to_string(slot.machine));
  ++rpc_with_conts_;
  TaskRec& rec = recs_[task];
  // Payload flushes mutated canonical state mid-task; a re-run would apply
  // read-modify-write effects twice.
  rec.restartable = false;

  if (aborting_) {
    WithContAckMsg nak;
    nak.task = task->id();
    nak.ok = false;
    nak.error_code = ErrorCode::kUnrecoverable;
    nak.error = "run aborted";
    slot.channel->queue(FrameType::kWithContAck, pack(nak));
    return;
  }

  // 1. Writebacks land before anything the retire might enable can read.
  for (const WithContItem& item : msg.items)
    if (item.has_payload)
      apply_writeback_locked(item.req.obj, item.payload, slot.machine);

  // 2. Retired commute rights return their tokens (possibly handing them
  //    to the oldest waiter) before the serializer sees the removal.
  for (const WithContItem& item : msg.items) {
    if (item.req.remove & access::kCommute) {
      TaskNode* next = nullptr;
      if (tokens_.release(item.req.obj, task, &next) && next != nullptr)
        grant_token_locked(next, item.req.obj);
    }
  }

  // 3. Spec update with the substantive requests; zero-bit items are pure
  //    payload flushes (the pre-spawn flush) and must not reach update_spec.
  PendingRpc rpc;
  rpc.kind = PendingRpc::Kind::kWithCont;
  rpc.worker = slot.machine;
  for (const WithContItem& item : msg.items)
    if (item.req.add_immediate | item.req.add_deferred | item.req.remove)
      rpc.requests.push_back({item.req.obj, item.req.add_immediate,
                              item.req.add_deferred, item.req.remove});
  bool must_block = false;
  if (!rpc.requests.empty()) {
    try {
      must_block = serializer_.update_spec(task, rpc.requests);
    } catch (const std::exception& e) {
      WithContAckMsg nak;
      nak.task = task->id();
      nak.ok = false;
      nak.error_code = classify_error(e);
      nak.error = e.what();
      slot.channel->queue(FrameType::kWithContAck, pack(nak));
      drain_unblocked_locked();
      pump_locked();
      return;
    }
  }
  drain_unblocked_locked();
  if (must_block) {
    rpc.stage = PendingRpc::Stage::kSerializer;
    pending_[task] = std::move(rpc);
  } else {
    finish_with_cont_locked(task, rpc);
  }
  pump_locked();
}

void ClusterEngine::finish_with_cont_locked(TaskNode* task,
                                            const PendingRpc& rpc) {
  const int s = slot_of_machine(rpc.worker);
  if (s < 0) return;  // the worker died; recovery already owns the task
  WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
  TaskRec& rec = recs_[task];
  const MachineId w = rpc.worker;

  std::vector<FetchItem> items;
  for (const AccessRequest& req : rpc.requests)
    if (req.add_immediate & (access::kRead | access::kWrite))
      items.push_back(
          {req.obj, (req.add_immediate & access::kWrite) != 0, true});
  if (!items.empty()) coherence_->fetch(w, items);

  WithContAckMsg ack;
  ack.task = task->id();
  for (const AccessRequest& req : rpc.requests) {
    DeclRecord* r = task->find_record(req.obj);
    ObjectShip ship;
    ship.obj = req.obj;
    ship.immediate = r ? r->immediate : 0;
    ship.deferred = r ? r->deferred : 0;
    ship.bytes = directory_.object_bytes(req.obj);
    // Conversions to rd/wr need a current local copy; cm conversions get
    // theirs at the accessor RPC, after the token serializes them.
    const std::uint8_t got =
        req.add_immediate & (r ? r->immediate : std::uint8_t{0});
    if (got & access::kWrite) {
      const bool current = shipped_current(req.obj, w);
      coherence_->first_write_invalidate(w, req.obj, rec.dirtied);
      set_shipped(req.obj, w);
      if (!current) {
        const auto view = directory_.data_view(req.obj);
        ship.has_payload = true;
        ship.payload.assign(view.begin(), view.end());
        payload_bytes_shipped_ += ship.payload.size();
      }
    } else if (got & access::kRead) {
      if (!shipped_current(req.obj, w)) {
        const auto view = directory_.data_view(req.obj);
        ship.has_payload = true;
        ship.payload.assign(view.begin(), view.end());
        payload_bytes_shipped_ += ship.payload.size();
        set_shipped(req.obj, w);
      }
    }
    ack.objects.push_back(std::move(ship));
  }
  slot.channel->queue(FrameType::kWithContAck, pack(ack));
}

void ClusterEngine::handle_acquire_locked(int s, const AcquireMsg& msg) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
  TaskNode* task = slot.running;
  if (task == nullptr || task->id() != msg.task)
    throw ProtocolError("acquire for a task not running on machine " +
                        std::to_string(slot.machine));
  ++rpc_acquires_;

  auto nak = [&](ErrorCode code, const std::string& what) {
    AcquireAckMsg ack;
    ack.task = task->id();
    ack.obj = msg.obj;
    ack.ok = false;
    ack.error_code = code;
    ack.error = what;
    slot.channel->queue(FrameType::kAcquireAck, pack(ack));
  };
  if (aborting_) {
    nak(ErrorCode::kUnrecoverable, "run aborted");
    return;
  }
  bool must_block = false;
  try {
    must_block = serializer_.acquire(task, msg.obj, msg.mode);
  } catch (const std::exception& e) {
    nak(classify_error(e), e.what());
    return;
  }
  PendingRpc rpc;
  rpc.kind = PendingRpc::Kind::kAcquire;
  rpc.worker = slot.machine;
  rpc.obj = msg.obj;
  rpc.mode = msg.mode;
  if (must_block) {
    rpc.stage = PendingRpc::Stage::kSerializer;
    pending_[task] = rpc;
    return;
  }
  continue_acquire_locked(task, rpc);
}

void ClusterEngine::continue_acquire_locked(TaskNode* task, PendingRpc& rpc) {
  if (rpc.mode & access::kCommute) {
    if (!tokens_.try_acquire(rpc.obj, task)) {
      tokens_.enqueue_waiter(rpc.obj, task);
      rpc.stage = PendingRpc::Stage::kToken;
      pending_[task] = rpc;
      return;
    }
  }
  grant_acquire_locked(task, rpc);
}

void ClusterEngine::grant_acquire_locked(TaskNode* task,
                                         const PendingRpc& rpc) {
  const int s = slot_of_machine(rpc.worker);
  if (s < 0) return;  // worker died while parked
  WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
  TaskRec& rec = recs_[task];
  const MachineId w = rpc.worker;
  const bool writes = (rpc.mode & (access::kWrite | access::kCommute)) != 0;

  coherence_->fetch(w, {{rpc.obj, writes, true}});

  AcquireAckMsg ack;
  ack.task = task->id();
  ack.obj = rpc.obj;
  if (writes) {
    const bool current = shipped_current(rpc.obj, w);
    coherence_->first_write_invalidate(w, rpc.obj, rec.dirtied);
    set_shipped(rpc.obj, w);
    if (!current) {
      const auto view = directory_.data_view(rpc.obj);
      ack.has_payload = true;
      ack.payload.assign(view.begin(), view.end());
      payload_bytes_shipped_ += ack.payload.size();
    }
  } else if (!shipped_current(rpc.obj, w)) {
    const auto view = directory_.data_view(rpc.obj);
    ack.has_payload = true;
    ack.payload.assign(view.begin(), view.end());
    payload_bytes_shipped_ += ack.payload.size();
    set_shipped(rpc.obj, w);
  }
  slot.channel->queue(FrameType::kAcquireAck, pack(ack));
}

void ClusterEngine::handle_done_locked(int s, const DoneMsg& msg) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
  TaskNode* task = slot.running;
  if (task == nullptr || task->id() != msg.task)
    throw ProtocolError("done for a task not running on machine " +
                        std::to_string(slot.machine));
  if (slot.machine >= 0)
    stats_.machine_busy_seconds[static_cast<std::size_t>(slot.machine)] +=
        wall_now() - slot.busy_since;
  slot.running = nullptr;
  if (tracer_.enabled())
    tracer_.span_end_at(wall_now(), obs::Subsystem::kEngine, "task",
                        task->id(), slot.machine);
  if (aborting_) {
    release_tokens_locked(task);
    root_cv_.notify_all();
    return;  // the serializer's state is already off the success path
  }
  // Writebacks land before the commute tokens return: a token handoff
  // ships the canonical bytes, which must already include this task's
  // updates or the next commuter starts from a stale value.
  for (const DoneMsg::Write& wbk : msg.writes)
    apply_writeback_locked(wbk.obj, wbk.payload, slot.machine);
  task->charged_work = msg.charged;
  stats_.total_charged_work += msg.charged;
  release_tokens_locked(task);
  finish_task_locked(task);
}

void ClusterEngine::handle_task_error_locked(int s, const TaskErrorMsg& msg) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
  TaskNode* task = slot.running;
  if (task == nullptr || task->id() != msg.task)
    throw ProtocolError("task-error for a task not running on machine " +
                        std::to_string(slot.machine));
  slot.running = nullptr;
  release_tokens_locked(task);
  abort_run_locked(capture_error(
      msg.code, msg.what + " (in task '" + task->name() + "')"));
}

// --- dispatch / completion --------------------------------------------------

void ClusterEngine::on_task_ready(TaskNode* task) { ready_.push_back(task); }

void ClusterEngine::on_task_unblocked(TaskNode* task) {
  unblocked_.push_back(task);
}

void ClusterEngine::drain_unblocked_locked() {
  while (!unblocked_.empty()) {
    std::vector<TaskNode*> batch;
    batch.swap(unblocked_);
    for (TaskNode* task : batch) {
      if (task == serializer_.root()) {
        root_unblocked_ = true;
        root_cv_.notify_all();
        continue;
      }
      auto it = pending_.find(task);
      if (it == pending_.end()) continue;
      PendingRpc rpc = std::move(it->second);
      pending_.erase(it);
      if (rpc.kind == PendingRpc::Kind::kAcquire)
        continue_acquire_locked(task, rpc);
      else
        finish_with_cont_locked(task, rpc);
    }
  }
}

void ClusterEngine::release_tokens_locked(TaskNode* task) {
  // held() returns a reference into the table; copy before releasing.
  const std::vector<ObjectId> held = tokens_.held(task);
  for (ObjectId obj : held) {
    TaskNode* next = nullptr;
    if (tokens_.release(obj, task, &next) && next != nullptr)
      grant_token_locked(next, obj);
  }
}

void ClusterEngine::grant_token_locked(TaskNode* next, ObjectId obj) {
  if (next == serializer_.root()) {
    root_token_ready_ = true;
    root_cv_.notify_all();
    return;
  }
  auto it = pending_.find(next);
  if (it == pending_.end()) return;
  JADE_ASSERT(it->second.stage == PendingRpc::Stage::kToken);
  const PendingRpc rpc = std::move(it->second);
  pending_.erase(it);
  grant_acquire_locked(next, rpc);
}

void ClusterEngine::finish_task_locked(TaskNode* task) {
  serializer_.complete_task(task);
  recs_.erase(task);
  drain_unblocked_locked();
  pump_locked();
  root_cv_.notify_all();  // backlog changed: throttled creators re-check
}

void ClusterEngine::pump_locked() {
  if (aborting_) return;
  bool dispatched = true;
  while (dispatched && !ready_.empty()) {
    dispatched = false;
    for (std::size_t s = 0; s < slots_.size() && !ready_.empty(); ++s) {
      WorkerSlot& slot = slots_[s];
      if (slot.machine < 0 || slot.dead || slot.eof || !slot.channel ||
          slot.channel->closed() || slot.running != nullptr)
        continue;
      // Candidate window: placement-compatible ready tasks, oldest first.
      std::vector<std::vector<ObjectId>> lists;
      std::vector<std::size_t> index_of;
      for (std::size_t i = 0; i < ready_.size() && lists.size() < kPickWindow;
           ++i) {
        TaskNode* t = ready_[i];
        if (t->placement >= 0) {
          if (slot_of_machine(t->placement) < 0) {
            abort_run_locked(std::make_exception_ptr(UnrecoverableError(
                "task '" + t->name() + "' is pinned to machine " +
                std::to_string(t->placement) + ", which died irrecoverably")));
            return;
          }
          if (t->placement != slot.machine) continue;
        }
        std::vector<ObjectId> objs;
        objs.reserve(t->record_count());
        for (const DeclRecord* r : t->ordered_records()) objs.push_back(r->obj);
        lists.push_back(std::move(objs));
        index_of.push_back(i);
      }
      if (lists.empty()) continue;
      std::size_t pick;
      if (tracer_.enabled()) {
        // Tracing: capture the scored window too, so the selection can be
        // audited from the trace (the SimEngine "sched.place" counterpart).
        PlacementExplain explain;
        pick = planner_->select_task(
            directory_, {lists, slot.machine, sched_.locality}, &explain);
        if (pick != SIZE_MAX) {
          std::vector<std::uint64_t> ids;
          ids.reserve(index_of.size());
          for (std::size_t idx : index_of) ids.push_back(ready_[idx]->id());
          tracer_.instant_at(
              wall_now(), obs::Subsystem::kSched, "sched.place",
              ids[explain.chosen_index], slot.machine,
              static_cast<double>(explain.task_candidates.size()),
              model::format_task_select_explain(explain, slot.machine, ids));
        }
      } else {
        pick = planner_->select_task(directory_,
                                     {lists, slot.machine, sched_.locality});
      }
      if (pick == SIZE_MAX) pick = 0;
      TaskNode* task = ready_[static_cast<std::ptrdiff_t>(index_of[pick])];
      ready_.erase(ready_.begin() +
                   static_cast<std::ptrdiff_t>(index_of[pick]));
      dispatch_locked(task, static_cast<int>(s));
      dispatched = true;
    }
  }
  wake_event_loop();  // queued frames need a POLLOUT-aware poll set
}

void ClusterEngine::dispatch_locked(TaskNode* task, int s) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
  const MachineId w = slot.machine;
  serializer_.task_started(task);
  TaskRec& rec = recs_[task];

  std::vector<FetchItem> items;
  for (const DeclRecord* r : task->ordered_records())
    if (r->immediate & (access::kRead | access::kWrite))
      items.push_back({r->obj, (r->immediate & access::kWrite) != 0, true});
  if (!items.empty()) coherence_->fetch(w, items);

  DispatchMsg msg;
  msg.task = task->id();
  msg.body = rec.body;
  msg.name = task->name();
  msg.args = rec.args;  // copied: a crash re-dispatch sends them again
  for (const DeclRecord* r : task->ordered_records())
    msg.objects.push_back(make_ship_locked(task, r->obj, w, rec));
  slot.channel->queue(FrameType::kDispatch, pack(msg));

  slot.running = task;
  slot.busy_since = wall_now();
  task->assigned_machine = w;
  ++dispatches_;
  if (tracer_.enabled())
    tracer_.span_begin_at(wall_now(), obs::Subsystem::kEngine, "task",
                          task->id(), w, task->name());
}

ObjectShip ClusterEngine::make_ship_locked(TaskNode* task, ObjectId obj,
                                           MachineId w, TaskRec& rec) {
  DeclRecord* r = task->find_record(obj);
  JADE_ASSERT(r != nullptr);
  ObjectShip ship;
  ship.obj = obj;
  ship.immediate = r->immediate;
  ship.deferred = r->deferred;
  ship.bytes = directory_.object_bytes(obj);
  const std::uint8_t imm = r->immediate;
  // Commute-only rights ship their payload at the accessor RPC, after the
  // token orders this task among the commuters; deferred-only rights ship
  // at conversion.  Everything else ships now, iff the worker's copy is
  // stale under the shipped-version protocol.
  if (imm & access::kWrite) {
    const bool current = shipped_current(obj, w);
    coherence_->first_write_invalidate(w, obj, rec.dirtied);
    set_shipped(obj, w);
    if (!current) {
      const auto view = directory_.data_view(obj);
      ship.has_payload = true;
      ship.payload.assign(view.begin(), view.end());
      payload_bytes_shipped_ += ship.payload.size();
    }
  } else if (imm & access::kRead) {
    if (!shipped_current(obj, w)) {
      const auto view = directory_.data_view(obj);
      ship.has_payload = true;
      ship.payload.assign(view.begin(), view.end());
      payload_bytes_shipped_ += ship.payload.size();
      set_shipped(obj, w);
    }
  }
  return ship;
}

// --- data movement ----------------------------------------------------------

bool ClusterEngine::shipped_current(ObjectId obj, MachineId m) const {
  const auto it = shipped_.find({obj, m});
  return it != shipped_.end() && it->second == directory_.data_version(obj);
}

void ClusterEngine::set_shipped(ObjectId obj, MachineId m) {
  shipped_[{obj, m}] = directory_.data_version(obj);
}

void ClusterEngine::apply_writeback_locked(ObjectId obj,
                                           std::span<const std::byte> data,
                                           MachineId from) {
  if (!directory_.known(obj))
    throw ProtocolError("writeback for unknown object " + std::to_string(obj));
  if (data.size() != directory_.object_bytes(obj))
    throw ProtocolError("writeback size mismatch on object " +
                        std::to_string(obj));
  // The writer held exclusivity, so it should be the sole holder already;
  // invalidate defensively so mark_dirty's precondition always holds.
  directory_.invalidate_replicas(obj);
  std::memcpy(directory_.data(obj), data.data(), data.size());
  directory_.mark_dirty(obj);
  // The writer's copy *is* the new canonical content; everyone else's
  // entry silently went stale when the data version advanced.
  set_shipped(obj, from);
  writeback_bytes_ += data.size();
}

void ClusterEngine::root_write_locked(ObjectId obj) {
  // The root writes the canonical buffer in place.  Unlike a task, the
  // root has no bracketed attempt, so every acquisition dirties: a stale
  // worker copy must never satisfy a later dispatch.
  const std::vector<MachineId> dropped = directory_.invalidate_replicas(obj);
  if (!dropped.empty())
    transport_.multicast(-1, dropped, 64, wall_now());
  directory_.mark_dirty(obj);
}

// --- TaskContext backend (root thread) --------------------------------------

void ClusterEngine::spawn(TaskNode* parent,
                          const std::vector<AccessRequest>& requests,
                          TaskContext::BodyFn body, std::string name,
                          MachineId placement, TenantCtl* tenant) {
  (void)parent;
  (void)requests;
  (void)body;
  (void)name;
  (void)placement;
  (void)tenant;
  throw ConfigError(
      "ClusterEngine cannot ship closures to worker processes; register the "
      "task body (BodyRegistry) and create children with cluster::spawn()");
}

void ClusterEngine::spawn_registered(TaskNode* parent,
                                     const std::vector<AccessRequest>& requests,
                                     int body, std::vector<std::byte> args,
                                     std::string name, MachineId placement) {
  std::unique_lock<std::mutex> lock(mu_);
  JADE_ASSERT_MSG(parent == serializer_.root(),
                  "coordinator-side spawn from a non-root task");
  if (body < 0 || body >= BodyRegistry::instance().size())
    throw ConfigError("spawn names unregistered body index " +
                      std::to_string(body));
  if (placement >= options_.workers)
    throw ConfigError("task placement " + std::to_string(placement) +
                      " exceeds the cluster's " +
                      std::to_string(options_.workers) + " workers");
  if (throttle_.enabled() &&
      throttle_.should_throttle(serializer_.backlog())) {
    throttle_.note_suspension();
    root_cv_.wait(lock, [&] {
      return throttle_.backlog_drained(serializer_.backlog()) || aborting_;
    });
  }
  if (aborting_) {
    if (first_error_) std::rethrow_exception(first_error_);
    throw UnrecoverableError("run aborted");
  }
  TaskNode* child = serializer_.create_task(parent, requests, {},
                                            std::move(name));
  child->placement = placement;
  TaskRec rec;
  rec.body = body;
  rec.args = std::move(args);
  recs_[child] = std::move(rec);
  drain_unblocked_locked();
  pump_locked();
  wake_event_loop();
}

void ClusterEngine::with_cont(TaskNode* task,
                              const std::vector<AccessRequest>& requests) {
  std::unique_lock<std::mutex> lock(mu_);
  for (const AccessRequest& r : requests) {
    if (r.remove & access::kCommute) {
      TaskNode* next = nullptr;
      if (tokens_.release(r.obj, task, &next) && next != nullptr)
        grant_token_locked(next, r.obj);
    }
  }
  const bool must_block = serializer_.update_spec(task, requests);
  drain_unblocked_locked();
  pump_locked();
  wake_event_loop();
  if (must_block) {
    root_cv_.wait(lock, [&] { return root_unblocked_ || aborting_; });
    root_unblocked_ = false;
    if (aborting_) {
      if (first_error_) std::rethrow_exception(first_error_);
      throw UnrecoverableError("run aborted");
    }
  }
}

std::byte* ClusterEngine::acquire_bytes(TaskNode* task, ObjectId obj,
                                        std::uint8_t mode) {
  std::unique_lock<std::mutex> lock(mu_);
  JADE_ASSERT_MSG(task == serializer_.root(),
                  "coordinator-side accessor from a non-root task");
  if (aborting_) {
    if (first_error_) std::rethrow_exception(first_error_);
    throw UnrecoverableError("run aborted");
  }
  // The root never blocks here: the serializer either admits the access
  // (no conflicting task records) or throws.
  const bool must_block = serializer_.acquire(task, obj, mode);
  JADE_ASSERT(!must_block);
  if (mode & access::kCommute) {
    // No conflicting records exist (or acquire would have thrown), so no
    // task can hold the token.
    const bool got = tokens_.try_acquire(obj, task);
    JADE_ASSERT_MSG(got, "commute token held with no conflicting records");
  }
  if (mode & (access::kWrite | access::kCommute)) root_write_locked(obj);
  return directory_.data(obj);
}

void ClusterEngine::charge(TaskNode* task, double units) {
  std::lock_guard<std::mutex> lock(mu_);
  task->charged_work += units;
  stats_.total_charged_work += units;
}

MachineId ClusterEngine::machine_of(TaskNode* task) const {
  return task->assigned_machine >= 0 ? task->assigned_machine : 0;
}

void ClusterEngine::enable_tracing(const ObsConfig& config) {
  Engine::enable_tracing(config);
  directory_.set_observer(&tracer_, [this] { return wall_now(); });
}

// --- failure handling -------------------------------------------------------

void ClusterEngine::handle_worker_death_locked(int s) {
  WorkerSlot& slot = slots_[static_cast<std::size_t>(s)];
  const MachineId w = slot.machine;
  slot.dead = true;
  slot.machine = -1;
  slot.channel->close();
  if (w < 0) return;  // a spare died; nothing was running there

  ++worker_deaths_;
  ++stats_.machine_crashes;
  transport_.set_channel(w, nullptr);
  if (tracer_.enabled())
    tracer_.instant_at(wall_now(), obs::Subsystem::kFt, "worker.death",
                       static_cast<std::uint64_t>(slot.pid), w);

  // The running attempt died with the process.
  TaskNode* victim = slot.running;
  slot.running = nullptr;
  if (victim != nullptr) {
    ++stats_.tasks_killed;
    stats_.wasted_charged_work += victim->charged_work;
    pending_.erase(victim);
    tokens_.remove_waiter(victim);
    release_tokens_locked(victim);
    const auto rec_it = recs_.find(victim);
    const bool restartable =
        rec_it != recs_.end() && rec_it->second.restartable;
    if (aborting_) {
      // Nothing to recover; the run is already failing.
    } else if (restartable) {
      // A pure leaf: rewind and requeue.  Its acquire-time data-version
      // bumps are remembered in rec.dirtied, so the re-run re-ships
      // payloads without double-bumping.
      serializer_.abort_attempt(victim);
      victim->assigned_machine = -1;
      ready_.push_front(victim);
      ++stats_.tasks_requeued;
    } else {
      abort_run_locked(std::make_exception_ptr(UnrecoverableError(
          "worker machine " + std::to_string(w) + " died while task '" +
          victim->name() +
          "' had visible effects (spawned children or ran a with-cont); "
          "the run cannot be transparently recovered")));
    }
  }

  // Directory surgery: the machine's copies are gone.  The coordinator's
  // canonical buffer is the stable store, so nothing is ever lost — a sole
  // copy "restores" (metadata-only) to a survivor and the shipped-version
  // map re-ships actual bytes on the next dispatch that needs them.
  const std::vector<std::uint8_t> up = machine_up_mask();
  const bool any_up =
      std::find(up.begin(), up.end(), std::uint8_t{1}) != up.end();
  for (ObjectId obj : directory_.objects_on(w)) {
    if (directory_.sole_holder(obj, w)) {
      directory_.drop_copy(obj, w);
      if (any_up) {
        directory_.restore_to(obj, pick_restore_machine(up, obj));
        ++stats_.objects_restored;
      }
    } else if (directory_.owner(obj) == w) {
      const MachineId nh = pick_rehome_machine(directory_, obj, up);
      JADE_ASSERT_MSG(nh >= 0, "replicas of a dead owner must be live");
      directory_.set_owner(obj, nh);
      directory_.drop_copy(obj, w);
      ++stats_.objects_rehomed;
    } else {
      directory_.drop_copy(obj, w);
    }
  }
  coherence_->forget_machine(w);
  for (auto it = shipped_.begin(); it != shipped_.end();)
    it = it->first.machine == w ? shipped_.erase(it) : std::next(it);

  // A pre-forked spare takes over the machine id.
  if (options_.restart_workers) {
    for (WorkerSlot& spare : slots_) {
      if (spare.machine != -1 || spare.dead || spare.eof || !spare.channel ||
          spare.channel->closed())
        continue;
      spare.machine = w;
      ActivateMsg act;
      act.machine = w;
      act.machines = options_.workers;
      act.heartbeat_interval = options_.heartbeat_interval;
      spare.channel->queue(FrameType::kActivate, pack(act));
      spare.channel->flush();
      transport_.set_channel(w, spare.channel.get());
      detector_->heartbeat_received(w + 1, wall_now());
      ++workers_respawned_;
      if (tracer_.enabled())
        tracer_.instant_at(wall_now(), obs::Subsystem::kFt, "worker.respawn",
                           static_cast<std::uint64_t>(spare.pid), w);
      break;
    }
  }

  if (!any_up && slot_of_machine(w) < 0 && !aborting_ &&
      (serializer_.outstanding() > 0 || !ready_.empty())) {
    abort_run_locked(std::make_exception_ptr(
        UnrecoverableError("every worker process died")));
  }
  pump_locked();
}

void ClusterEngine::abort_run_locked(std::exception_ptr error) {
  if (!first_error_) first_error_ = error;
  if (aborting_) {
    root_cv_.notify_all();
    return;
  }
  aborting_ = true;
  // Fail every parked RPC so blocked workers unwind their task bodies
  // (which report TaskError, idling their machines — the exit condition).
  for (auto& [task, rpc] : pending_) {
    const int s = slot_of_machine(rpc.worker);
    if (s < 0) continue;
    Channel& ch = *slots_[static_cast<std::size_t>(s)].channel;
    if (rpc.kind == PendingRpc::Kind::kAcquire) {
      AcquireAckMsg nak;
      nak.task = task->id();
      nak.obj = rpc.obj;
      nak.ok = false;
      nak.error_code = ErrorCode::kUnrecoverable;
      nak.error = "run aborted";
      ch.queue(FrameType::kAcquireAck, pack(nak));
    } else {
      WithContAckMsg nak;
      nak.task = task->id();
      nak.ok = false;
      nak.error_code = ErrorCode::kUnrecoverable;
      nak.error = "run aborted";
      ch.queue(FrameType::kWithContAck, pack(nak));
    }
    tokens_.remove_waiter(task);
  }
  pending_.clear();
  root_cv_.notify_all();
  wake_event_loop();
}

// --- introspection ----------------------------------------------------------

pid_t ClusterEngine::worker_pid(MachineId m) const {
  std::lock_guard<std::mutex> lock(mu_);
  const int s = slot_of_machine(m);
  return s < 0 ? -1 : slots_[static_cast<std::size_t>(s)].pid;
}

bool ClusterEngine::debug_probe(ObjectId obj) {
  std::lock_guard<std::mutex> lock(mu_);
  int s = -1;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const WorkerSlot& slot = slots_[i];
    if (slot.machine >= 0 && !slot.dead && !slot.eof && slot.channel &&
        !slot.channel->closed() && shipped_current(obj, slot.machine)) {
      s = static_cast<int>(i);
      break;
    }
  }
  if (s < 0) return true;  // no worker claims a current copy: nothing to check
  Channel& ch = *slots_[static_cast<std::size_t>(s)].channel;
  ObjFetchMsg req;
  req.obj = obj;
  ch.queue(FrameType::kObjFetch, pack(req));
  const double deadline = wall_now() + 10.0;
  while (wall_now() < deadline) {
    if (!ch.flush()) return false;
    pollfd p{ch.fd(), POLLIN, 0};
    ::poll(&p, 1, 50);
    std::vector<Frame> frames;
    if (!ch.drain(frames)) return false;
    for (const Frame& f : frames) {
      if (f.type == FrameType::kHeartbeat) {
        const HeartbeatMsg hb = unpack<HeartbeatMsg>(f.payload);
        detector_->heartbeat_received(hb.machine + 1, wall_now());
      } else if (f.type == FrameType::kObjData) {
        const ObjDataMsg data = unpack<ObjDataMsg>(f.payload);
        if (data.obj != obj) continue;
        const auto view = directory_.data_view(obj);
        return data.payload.size() == view.size() &&
               std::memcmp(data.payload.data(), view.data(), view.size()) == 0;
      }
    }
  }
  return false;  // probe timed out
}

}  // namespace jade::cluster
