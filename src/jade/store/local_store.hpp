// Per-machine local object store.
//
// In the paper's message-passing implementation each machine holds local
// versions of the shared objects it uses; the runtime moves or copies
// objects between these stores and translates globally valid identifiers to
// local pointers (Section 3.3).  In this reproduction all task bodies
// execute in one host process, so object *bytes* live in a single canonical
// buffer per object (replicas never diverge in Jade: a writer holds the only
// copy); the LocalStore tracks which objects are resident on its machine,
// which is what drives transfer decisions, the locality heuristic and the
// traffic accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "jade/core/object.hpp"
#include "jade/support/time.hpp"

namespace jade {

class LocalStore {
 public:
  explicit LocalStore(MachineId machine) : machine_(machine) {}

  MachineId machine() const { return machine_; }

  bool resident(ObjectId obj) const { return resident_.contains(obj); }

  void insert(ObjectId obj, std::size_t bytes);
  void evict(ObjectId obj, std::size_t bytes);

  /// Bytes of shared objects currently resident.
  std::size_t resident_bytes() const { return resident_bytes_; }
  std::size_t resident_count() const { return resident_.size(); }

  /// Lifetime counters for the benches.
  std::uint64_t inserts() const { return inserts_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  MachineId machine_;
  std::unordered_set<ObjectId> resident_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace jade
