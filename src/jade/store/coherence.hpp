// CoherenceProtocol — the object-motion protocol of the Jade runtime,
// factored out of the engine.
//
// The paper's Section 5 communication layer as one engine-agnostic service:
// move-on-write / copy-on-read transfers, batched multi-object fetches,
// replica revalidation against data versions, invalidation fan-out (with
// multicast coalescing), the cross-endian conversion cache, and per-machine
// payload-arrival tracking.  The protocol decides *what* travels and books
// the outcome in the ObjectDirectory; *how* bytes travel and what time it
// is are delegated to a CoherenceTransport, so the protocol is unit-testable
// with a fake transport and no engine (tests/coherence_test.cpp).
//
// Determinism contract: every transport call, directory mutation, stat
// increment, and trace emission happens in the exact order the engine used
// to make them — same-seed runs export byte-identical traces across the
// refactor (obs_trace_determinism_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "jade/core/object.hpp"
#include "jade/core/stats.hpp"
#include "jade/obs/tracer.hpp"
#include "jade/sched/policies.hpp"
#include "jade/store/directory.hpp"
#include "jade/support/time.hpp"
#include "jade/types/type_desc.hpp"

namespace jade {

/// One object of a task's fetch set.
struct FetchItem {
  ObjectId obj;
  bool exclusive;  ///< move (write/commute rights) rather than copy
  bool blocking;   ///< the task cannot start until it arrives; false for
                   ///< deferred-read prefetch hints
};

/// Typed key for per-(object, machine) protocol state.  Replaces the old
/// hand-packed `obj * kMaxMachines + m` uint64 key, whose arithmetic would
/// silently alias distinct keys once ObjectId grew past 2^58.
struct ObjectMachineKey {
  ObjectId obj = kInvalidObject;
  MachineId machine = -1;
  bool operator==(const ObjectMachineKey&) const = default;
};

struct ObjectMachineKeyHash {
  std::size_t operator()(const ObjectMachineKey& k) const {
    // splitmix64-style finalizer over both fields in full width — no
    // packing, so no collision hazard however large the id space grows.
    std::uint64_t x =
        k.obj + 0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(k.machine)) +
                     1);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

/// What the protocol needs from the platform: a clock and point-to-point /
/// multicast delivery estimates.  SimEngine adapts its network model and
/// virtual clock; tests substitute a scripted fake.
class CoherenceTransport {
 public:
  virtual ~CoherenceTransport() = default;
  virtual SimTime now() const = 0;
  /// Schedules `bytes` from `from` to `to` departing at `at`; returns the
  /// arrival time.
  virtual SimTime unicast(MachineId from, MachineId to, std::size_t bytes,
                          SimTime at) = 0;
  /// One control message fanned out to every target; returns the last
  /// arrival.
  virtual SimTime multicast(MachineId from, std::span<const MachineId> targets,
                            std::size_t bytes, SimTime at) = 0;
};

struct CoherenceConfig {
  CommConfig comm;
  /// Transport framing minimum for control messages (wire floor).
  std::size_t control_message_bytes = 64;
  /// Cost of one scalar's cross-endian format conversion.
  SimTime conversion_seconds_per_scalar = 40e-9;
};

class CoherenceProtocol {
 public:
  /// `endians` is the per-machine byte order (indexed by MachineId).  The
  /// tracer may be null (no tracing ever) or disabled-until-attached; the
  /// protocol checks enabled() per emission, exactly as the engine did.
  CoherenceProtocol(CoherenceTransport& transport, ObjectDirectory& directory,
                    const ObjectTable& objects, std::vector<Endian> endians,
                    CoherenceConfig config, RuntimeStats& stats,
                    obs::Tracer* tracer);

  /// Ensures `obj` is usable at machine `to` (exclusively if `exclusive`),
  /// scheduling transfers/invalidations/conversions; returns when it is
  /// available there.  The caller has already handled platform concerns
  /// (shared memory is free; crashed owners are the recovery protocol's
  /// problem).
  SimTime transfer(ObjectId obj, MachineId to, bool exclusive);

  /// Fetches a whole set of objects to machine `to`, combining items owned
  /// by the same remote machine into one batched request/reply when
  /// comm.combine_requests is on.  Returns when the last *blocking* item is
  /// available (prefetch hints ride along without gating task start).
  SimTime fetch(MachineId to, std::vector<FetchItem> items);

  /// Exclusive acquire of `obj` by a task running on `writer`: drops
  /// replicas that raced in since the exclusive transfer (deferred-read
  /// prefetch) and bumps the object's data version — once per attempt,
  /// tracked through the caller's `dirtied` list so a killed attempt's
  /// re-run bumps again from the restored version.
  void first_write_invalidate(MachineId writer, ObjectId obj,
                              std::vector<ObjectId>& dirtied);

  /// When `obj`'s payload lands (or last landed) on machine `m`; 0 when
  /// never fetched there.
  SimTime available_at(ObjectId obj, MachineId m) const;
  void set_available_at(ObjectId obj, MachineId m, SimTime at);

  /// Drops every availability entry for machine `m` (crash recovery).
  void forget_machine(MachineId m);

 private:
  /// One batched request to owner `from` covering every item in `batch`
  /// (none satisfiable locally); the reply carries only the payloads that
  /// replica revalidation cannot serve.
  SimTime fetch_batch(MachineId to, MachineId from,
                      const std::vector<FetchItem>& batch);

  /// Invalidation fan-out for `obj`: one multicast control message when
  /// comm.coalesce_invalidations is on and there is more than one target,
  /// per-target unicasts otherwise.
  void send_invalidations(ObjectId obj, MachineId from,
                          const std::vector<MachineId>& targets, SimTime now);

  /// Virtual seconds of heterogeneous format conversion for moving `obj`
  /// between `src` and `dst`; really performs the per-scalar swaps on a
  /// cache miss, costs nothing when the cached converted image is current.
  SimTime conversion_cost(ObjectId obj, MachineId src, MachineId dst);

  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }

  CoherenceTransport& transport_;
  ObjectDirectory& directory_;
  const ObjectTable& objects_;
  std::vector<Endian> endians_;
  CoherenceConfig config_;
  RuntimeStats& stats_;
  obs::Tracer* tracer_;

  std::unordered_map<ObjectMachineKey, SimTime, ObjectMachineKeyHash>
      available_at_;
  /// Data version of each object's cached cross-endian converted image; a
  /// transfer whose entry matches the current version skips the conversion.
  std::unordered_map<ObjectId, std::uint64_t> converted_cache_;
};

}  // namespace jade
