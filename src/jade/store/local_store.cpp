#include "jade/store/local_store.hpp"

#include "jade/support/error.hpp"

namespace jade {

void LocalStore::insert(ObjectId obj, std::size_t bytes) {
  auto [it, inserted] = resident_.insert(obj);
  JADE_ASSERT_MSG(inserted, "object already resident in local store");
  resident_bytes_ += bytes;
  ++inserts_;
}

void LocalStore::evict(ObjectId obj, std::size_t bytes) {
  const std::size_t erased = resident_.erase(obj);
  JADE_ASSERT_MSG(erased == 1, "evicting an object that is not resident");
  JADE_ASSERT(resident_bytes_ >= bytes);
  resident_bytes_ -= bytes;
  ++evictions_;
}

}  // namespace jade
