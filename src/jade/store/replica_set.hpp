// ReplicaSet — which machines hold a copy of one object.
//
// The directory used to track holders in a bare uint64 bitmask, which
// hard-capped clusters at 64 machines.  A ReplicaSet keeps that fast path —
// machine ids below 64 live in one word, so clusters that fit the old limit
// pay exactly what they used to — and grows past it with a sorted small-set
// of the ids at 64 and above.  Replica sets are small in practice (an object
// is held by its owner plus the machines currently reading it), so a sorted
// vector beats any wide bitmap: memory stays proportional to the holders,
// not to kMaxMachines, which is what lets directories scale to thousands of
// machine ids.
//
// Iteration (for_each) visits members in ascending machine order — the
// directory's invalidation fan-outs and recovery sweeps are deterministic
// because of it.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "jade/support/time.hpp"

namespace jade {

class ReplicaSet {
 public:
  /// Machine ids below this live in the one-word fast path.
  static constexpr int kWordBits = 64;

  bool test(MachineId m) const {
    if (m < kWordBits) return (mask_ >> m) & 1ULL;
    return std::binary_search(high_.begin(), high_.end(), m);
  }

  void set(MachineId m) {
    if (m < kWordBits) {
      mask_ |= 1ULL << m;
      return;
    }
    auto it = std::lower_bound(high_.begin(), high_.end(), m);
    if (it == high_.end() || *it != m) high_.insert(it, m);
  }

  void clear(MachineId m) {
    if (m < kWordBits) {
      mask_ &= ~(1ULL << m);
      return;
    }
    auto it = std::lower_bound(high_.begin(), high_.end(), m);
    if (it != high_.end() && *it == m) high_.erase(it);
  }

  void reset() {
    mask_ = 0;
    high_.clear();
  }

  bool any() const { return mask_ != 0 || !high_.empty(); }
  bool none() const { return !any(); }

  std::size_t count() const {
    return static_cast<std::size_t>(std::popcount(mask_)) + high_.size();
  }

  /// Exactly {m} and nothing else.
  bool sole(MachineId m) const {
    if (m < kWordBits) return high_.empty() && mask_ == (1ULL << m);
    return mask_ == 0 && high_.size() == 1 && high_.front() == m;
  }

  /// Visits members in ascending machine order.
  template <typename F>
  void for_each(F&& f) const {
    std::uint64_t w = mask_;
    while (w != 0) {
      const int m = std::countr_zero(w);
      f(static_cast<MachineId>(m));
      w &= w - 1;
    }
    for (MachineId m : high_) f(m);
  }

  /// Members as a vector, ascending.
  std::vector<MachineId> members() const {
    std::vector<MachineId> out;
    out.reserve(count());
    for_each([&](MachineId m) { out.push_back(m); });
    return out;
  }

  bool operator==(const ReplicaSet&) const = default;

 private:
  std::uint64_t mask_ = 0;          ///< membership of ids 0..63
  std::vector<MachineId> high_;     ///< sorted ids >= 64
};

}  // namespace jade
