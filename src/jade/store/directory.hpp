// The global object directory.
//
// Tracks, for every shared object, where its authoritative copy (owner) and
// read replicas live.  The SimEngine's transfer protocol consults and
// mutates this state to implement the paper's object management (Section 5):
// move on write access (old copy deallocated — Figure 7(c)), copy on read
// access (concurrent replicas — "Object Replication"), invalidate replicas
// when a writer takes the object.
//
// Two version counters per object support the communication-avoiding
// protocol (docs/PERFORMANCE.md, "Communication protocol"):
//   * `version`       counts ownership transfers (moves, re-homes, restores);
//   * `data_version`  counts writes to the bytes (mark_dirty).
// When a copy is dropped, the directory records the data version the holder
// last saw instead of forgetting it; a later fetch whose recorded version
// still matches the current data version can revalidate the stale replica
// with a control round-trip instead of re-shipping the payload.
//
// The directory also owns the canonical byte buffer of every object (task
// bodies execute in-process, so there is exactly one data copy; see
// LocalStore for why this is faithful).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "jade/core/object.hpp"
#include "jade/obs/tracer.hpp"
#include "jade/store/local_store.hpp"
#include "jade/store/replica_set.hpp"
#include "jade/support/time.hpp"

namespace jade {

class ObjectDirectory {
 public:
  explicit ObjectDirectory(int machines);

  /// Attaches the trace emitter (null detaches).  Directory mutations emit
  /// kStore instants stamped with `clock()` — the directory has no notion of
  /// time itself, so the owning engine supplies its clock.
  void set_observer(obs::Tracer* tracer, std::function<SimTime()> clock);

  int machine_count() const { return static_cast<int>(stores_.size()); }
  LocalStore& store(MachineId m);
  const LocalStore& store(MachineId m) const;

  /// Registers an object with its initial copy on `home`.
  void add_object(const ObjectInfo& info, MachineId home);

  bool known(ObjectId obj) const;
  MachineId owner(ObjectId obj) const;
  bool present(ObjectId obj, MachineId m) const;
  std::size_t object_bytes(ObjectId obj) const;

  /// Data access (canonical buffer).
  std::byte* data(ObjectId obj);
  std::span<const std::byte> data_view(ObjectId obj) const;

  /// Version counter: bumped on every ownership move; lets tests verify the
  /// protocol took the expected number of exclusive transfers.
  std::uint64_t version(ObjectId obj) const;

  /// Data-content version: bumped by mark_dirty on every write acquisition,
  /// independent of ownership motion.  Replica reuse compares against it.
  std::uint64_t data_version(ObjectId obj) const;

  /// Records a write to the object's bytes: the data version advances, so
  /// every recorded stale replica stops matching.  The engine must drop any
  /// live non-owner copies first (invalidate_replicas).
  void mark_dirty(ObjectId obj);

  /// Rolls the data version back after a killed attempt's snapshot restore
  /// (ft/): the bytes reverted, so the version they were stamped with must
  /// revert too.
  void set_data_version(ObjectId obj, std::uint64_t v);

  /// Drops every copy except the owner's, recording each dropped machine's
  /// last-seen data version (invalidate-on-first-write).  Returns the
  /// dropped machines in ascending order — the invalidation targets.
  std::vector<MachineId> invalidate_replicas(ObjectId obj);

  /// True when `m` holds no copy but the data version it last saw still
  /// matches the current one: a control-only revalidation can re-admit the
  /// stale replica without shipping the payload.
  bool reusable(ObjectId obj, MachineId m) const;

  /// Re-admits `m`'s stale-but-current replica (reusable() must hold).
  void revalidate_to(ObjectId obj, MachineId m);

  /// Adds a read replica on `m` (object stays owned where it is).
  void replicate_to(ObjectId obj, MachineId m);

  /// Moves ownership to `m`, dropping every other copy (invalidation) while
  /// recording each dropped holder's last-seen data version.  Returns the
  /// number of remote copies invalidated (excluding the old owner's, whose
  /// copy travelled rather than being discarded).
  int move_to(ObjectId obj, MachineId m);

  /// Machines currently holding a copy (owner included).
  std::vector<MachineId> holders(ObjectId obj) const;

  /// True when `m` holds the only copy (the common case after an exclusive
  /// transfer; gates the engine's first-write invalidation scan).
  bool sole_holder(ObjectId obj, MachineId m) const;

  /// Sum of the sizes of `objs` already present on machine `m` — the
  /// locality heuristic's score (Section 5, "Enhancing Locality").
  std::size_t bytes_present(std::span<const ObjectId> objs, MachineId m) const;

  /// Locality score for the scheduler: bytes present, plus — when reuse
  /// scoring is on — bytes whose stale replica on `m` is still reusable (a
  /// revalidation costs a control round-trip, far below the payload, so such
  /// machines are nearly as good as holders).
  std::size_t bytes_scoreable(std::span<const ObjectId> objs,
                              MachineId m) const;

  /// Enables reusable-replica credit in bytes_scoreable (the engine sets
  /// this from SchedPolicy::comm.reuse_replicas; default off keeps the score
  /// identical to bytes_present).
  void set_reuse_scoring(bool on) { reuse_scoring_ = on; }

  // --- Crash recovery surgery (ft/) ------------------------------------
  // These mutate directory metadata without modeling a transfer; the
  // recovery protocol in SimEngine charges the appropriate simulated costs
  // itself.

  /// Objects with a copy on `m`, in ObjectId order (deterministic recovery).
  std::vector<ObjectId> objects_on(MachineId m) const;

  /// Forgets `m`'s copy (replica loss on crash).  The owner's copy may only
  /// be dropped when it is the sole copy (the step before restore_to or
  /// mark_lost); with replicas alive, re-home with set_owner first.
  void drop_copy(ObjectId obj, MachineId m);

  /// Home re-election: `m` must already hold a replica; it becomes the
  /// owner without any copy moving (version bumps — ownership changed).
  void set_owner(ObjectId obj, MachineId m);

  /// Reload from stable storage onto `m` after every copy died: the object
  /// must have no live copies; `m` becomes sole owner.
  void restore_to(ObjectId obj, MachineId m);

  /// Marks an object permanently unrecoverable (sole copy died, no stable
  /// storage).  Any subsequent transfer raises UnrecoverableError.
  void mark_lost(ObjectId obj);
  bool lost(ObjectId obj) const;

 private:
  /// Sentinel for "this machine never held a copy" in last_seen.
  static constexpr std::uint64_t kNeverSeen = ~std::uint64_t{0};

  struct Entry {
    ObjectId id = kInvalidObject;
    std::size_t bytes = 0;
    MachineId owner = -1;
    ReplicaSet copies;  ///< machines holding a copy (uint64 fast path <64)
    std::uint64_t version = 0;
    std::uint64_t data_version = 0;  ///< bumped per write (mark_dirty)
    bool lost = false;  ///< every copy died with its machines
    std::vector<std::byte> buffer;
    /// Data version each machine's copy had when it was dropped, as a sorted
    /// (machine, version) small-set — machines never recorded here have never
    /// held a copy (the old dense per-machine vector would cost
    /// kMaxMachines * 8 bytes per object at thousand-machine scale).
    /// A recorded version matching the current data version makes the
    /// dropped replica reusable.
    std::vector<std::pair<MachineId, std::uint64_t>> last_seen;
  };

  Entry& entry(ObjectId obj);
  const Entry& entry(ObjectId obj) const;
  void emit(const char* name, ObjectId obj, MachineId machine, double value);
  /// Records the data version `m`'s copy carried as it is dropped.
  void note_drop(Entry& e, MachineId m);
  /// The data version `m` last saw, or kNeverSeen.
  static std::uint64_t last_seen_of(const Entry& e, MachineId m);

  std::vector<LocalStore> stores_;
  std::vector<Entry> entries_;  ///< indexed by ObjectId - 1
  obs::Tracer* tracer_ = nullptr;
  std::function<SimTime()> clock_;
  bool reuse_scoring_ = false;
};

}  // namespace jade
