// The global object directory.
//
// Tracks, for every shared object, where its authoritative copy (owner) and
// read replicas live.  The SimEngine's transfer protocol consults and
// mutates this state to implement the paper's object management (Section 5):
// move on write access (old copy deallocated — Figure 7(c)), copy on read
// access (concurrent replicas — "Object Replication"), invalidate replicas
// when a writer takes the object.
//
// The directory also owns the canonical byte buffer of every object (task
// bodies execute in-process, so there is exactly one data copy; see
// LocalStore for why this is faithful).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "jade/core/object.hpp"
#include "jade/obs/tracer.hpp"
#include "jade/store/local_store.hpp"
#include "jade/support/time.hpp"

namespace jade {

class ObjectDirectory {
 public:
  explicit ObjectDirectory(int machines);

  /// Attaches the trace emitter (null detaches).  Directory mutations emit
  /// kStore instants stamped with `clock()` — the directory has no notion of
  /// time itself, so the owning engine supplies its clock.
  void set_observer(obs::Tracer* tracer, std::function<SimTime()> clock);

  int machine_count() const { return static_cast<int>(stores_.size()); }
  LocalStore& store(MachineId m);
  const LocalStore& store(MachineId m) const;

  /// Registers an object with its initial copy on `home`.
  void add_object(const ObjectInfo& info, MachineId home);

  bool known(ObjectId obj) const;
  MachineId owner(ObjectId obj) const;
  bool present(ObjectId obj, MachineId m) const;
  std::size_t object_bytes(ObjectId obj) const;

  /// Data access (canonical buffer).
  std::byte* data(ObjectId obj);
  std::span<const std::byte> data_view(ObjectId obj) const;

  /// Version counter: bumped on every ownership move; lets tests verify the
  /// protocol took the expected number of exclusive transfers.
  std::uint64_t version(ObjectId obj) const;

  /// Adds a read replica on `m` (object stays owned where it is).
  void replicate_to(ObjectId obj, MachineId m);

  /// Moves ownership to `m`, dropping every other copy (invalidation).
  /// Returns the number of remote copies invalidated (excluding the old
  /// owner's, whose copy travelled rather than being discarded).
  int move_to(ObjectId obj, MachineId m);

  /// Machines currently holding a copy (owner included).
  std::vector<MachineId> holders(ObjectId obj) const;

  /// Sum of the sizes of `objs` already present on machine `m` — the
  /// locality heuristic's score (Section 5, "Enhancing Locality").
  std::size_t bytes_present(std::span<const ObjectId> objs, MachineId m) const;

  // --- Crash recovery surgery (ft/) ------------------------------------
  // These mutate directory metadata without modeling a transfer; the
  // recovery protocol in SimEngine charges the appropriate simulated costs
  // itself.

  /// Objects with a copy on `m`, in ObjectId order (deterministic recovery).
  std::vector<ObjectId> objects_on(MachineId m) const;

  /// Forgets `m`'s copy (replica loss on crash).  The owner's copy may only
  /// be dropped when it is the sole copy (the step before restore_to or
  /// mark_lost); with replicas alive, re-home with set_owner first.
  void drop_copy(ObjectId obj, MachineId m);

  /// Home re-election: `m` must already hold a replica; it becomes the
  /// owner without any copy moving (version bumps — ownership changed).
  void set_owner(ObjectId obj, MachineId m);

  /// Reload from stable storage onto `m` after every copy died: the object
  /// must have no live copies; `m` becomes sole owner.
  void restore_to(ObjectId obj, MachineId m);

  /// Marks an object permanently unrecoverable (sole copy died, no stable
  /// storage).  Any subsequent transfer raises UnrecoverableError.
  void mark_lost(ObjectId obj);
  bool lost(ObjectId obj) const;

 private:
  struct Entry {
    ObjectId id = kInvalidObject;
    std::size_t bytes = 0;
    MachineId owner = -1;
    std::uint64_t copies = 0;  ///< bitmask of machines holding a copy
    std::uint64_t version = 0;
    bool lost = false;  ///< every copy died with its machines
    std::vector<std::byte> buffer;
  };

  Entry& entry(ObjectId obj);
  const Entry& entry(ObjectId obj) const;
  void emit(const char* name, ObjectId obj, MachineId machine, double value);

  std::vector<LocalStore> stores_;
  std::vector<Entry> entries_;  ///< indexed by ObjectId - 1
  obs::Tracer* tracer_ = nullptr;
  std::function<SimTime()> clock_;
};

}  // namespace jade
