#include "jade/store/directory.hpp"

#include <bit>
#include <limits>
#include <string>
#include <utility>

#include "jade/support/error.hpp"

namespace jade {

// Entry::copies holds one bit per machine; a wider cluster would silently
// shift holder bits off the end.
static_assert(kMaxMachines <= std::numeric_limits<std::uint64_t>::digits,
              "ObjectDirectory's copy bitmask cannot cover kMaxMachines");

ObjectDirectory::ObjectDirectory(int machines) {
  if (machines < 1 || machines > kMaxMachines)
    throw ConfigError("directory supports 1.." + std::to_string(kMaxMachines) +
                      " machines (64-bit replica masks), got " +
                      std::to_string(machines));
  stores_.reserve(static_cast<std::size_t>(machines));
  for (int m = 0; m < machines; ++m) stores_.emplace_back(m);
}

void ObjectDirectory::set_observer(obs::Tracer* tracer,
                                   std::function<SimTime()> clock) {
  tracer_ = tracer;
  clock_ = std::move(clock);
}

void ObjectDirectory::emit(const char* name, ObjectId obj, MachineId machine,
                           double value) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  const SimTime ts = clock_ ? clock_() : 0;
  tracer_->instant_at(ts, obs::Subsystem::kStore, name, obj, machine, value);
}

LocalStore& ObjectDirectory::store(MachineId m) {
  JADE_ASSERT(m >= 0 && static_cast<std::size_t>(m) < stores_.size());
  return stores_[static_cast<std::size_t>(m)];
}

const LocalStore& ObjectDirectory::store(MachineId m) const {
  JADE_ASSERT(m >= 0 && static_cast<std::size_t>(m) < stores_.size());
  return stores_[static_cast<std::size_t>(m)];
}

void ObjectDirectory::add_object(const ObjectInfo& info, MachineId home) {
  JADE_ASSERT_MSG(info.id == entries_.size() + 1,
                  "objects must be registered in allocation order");
  JADE_ASSERT(home >= 0 && home < machine_count());
  Entry e;
  e.id = info.id;
  e.bytes = info.byte_size();
  e.owner = home;
  e.copies = 1ULL << home;
  e.buffer.assign(e.bytes, std::byte{0});
  e.last_seen.assign(static_cast<std::size_t>(machine_count()), kNeverSeen);
  entries_.push_back(std::move(e));
  store(home).insert(info.id, info.byte_size());
}

bool ObjectDirectory::known(ObjectId obj) const {
  return obj >= 1 && obj <= entries_.size();
}

ObjectDirectory::Entry& ObjectDirectory::entry(ObjectId obj) {
  JADE_ASSERT_MSG(known(obj), "object not registered in directory");
  return entries_[obj - 1];
}

const ObjectDirectory::Entry& ObjectDirectory::entry(ObjectId obj) const {
  JADE_ASSERT_MSG(known(obj), "object not registered in directory");
  return entries_[obj - 1];
}

MachineId ObjectDirectory::owner(ObjectId obj) const {
  return entry(obj).owner;
}

bool ObjectDirectory::present(ObjectId obj, MachineId m) const {
  return (entry(obj).copies >> m) & 1ULL;
}

std::size_t ObjectDirectory::object_bytes(ObjectId obj) const {
  return entry(obj).bytes;
}

std::byte* ObjectDirectory::data(ObjectId obj) {
  return entry(obj).buffer.data();
}

std::span<const std::byte> ObjectDirectory::data_view(ObjectId obj) const {
  const Entry& e = entry(obj);
  return {e.buffer.data(), e.buffer.size()};
}

std::uint64_t ObjectDirectory::version(ObjectId obj) const {
  return entry(obj).version;
}

std::uint64_t ObjectDirectory::data_version(ObjectId obj) const {
  return entry(obj).data_version;
}

void ObjectDirectory::mark_dirty(ObjectId obj) { ++entry(obj).data_version; }

void ObjectDirectory::set_data_version(ObjectId obj, std::uint64_t v) {
  entry(obj).data_version = v;
}

void ObjectDirectory::note_drop(Entry& e, MachineId m) {
  e.last_seen[static_cast<std::size_t>(m)] = e.data_version;
}

std::vector<MachineId> ObjectDirectory::invalidate_replicas(ObjectId obj) {
  Entry& e = entry(obj);
  std::vector<MachineId> dropped;
  for (int h = 0; h < machine_count(); ++h) {
    if (h == e.owner || !((e.copies >> h) & 1ULL)) continue;
    note_drop(e, h);
    e.copies &= ~(1ULL << h);
    store(h).evict(obj, e.bytes);
    emit("store.invalidate", obj, h, static_cast<double>(e.bytes));
    dropped.push_back(h);
  }
  return dropped;
}

bool ObjectDirectory::reusable(ObjectId obj, MachineId m) const {
  const Entry& e = entry(obj);
  if (e.lost || ((e.copies >> m) & 1ULL)) return false;
  return e.last_seen[static_cast<std::size_t>(m)] == e.data_version;
}

void ObjectDirectory::revalidate_to(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  JADE_ASSERT_MSG(reusable(obj, m), "revalidating a non-reusable replica");
  e.copies |= 1ULL << m;
  store(m).insert(obj, e.bytes);
  emit("store.revalidate", obj, m, static_cast<double>(e.bytes));
}

void ObjectDirectory::replicate_to(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  JADE_ASSERT_MSG(!((e.copies >> m) & 1ULL),
                  "replicating to a machine that already holds a copy");
  e.copies |= 1ULL << m;
  store(m).insert(obj, e.bytes);
  emit("store.replicate", obj, m, static_cast<double>(e.bytes));
}

int ObjectDirectory::move_to(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  int invalidated = 0;
  for (int h = 0; h < machine_count(); ++h) {
    if (h == m || !((e.copies >> h) & 1ULL)) continue;
    note_drop(e, h);
    store(h).evict(obj, e.bytes);
    if (h != e.owner) {
      ++invalidated;  // the owner's copy travels, not dies
      emit("store.invalidate", obj, h, static_cast<double>(e.bytes));
    }
  }
  if (!((e.copies >> m) & 1ULL)) store(m).insert(obj, e.bytes);
  e.copies = 1ULL << m;
  e.owner = m;
  ++e.version;
  emit("store.move", obj, m, static_cast<double>(e.bytes));
  return invalidated;
}

std::vector<MachineId> ObjectDirectory::holders(ObjectId obj) const {
  const Entry& e = entry(obj);
  std::vector<MachineId> out;
  for (int h = 0; h < machine_count(); ++h)
    if ((e.copies >> h) & 1ULL) out.push_back(h);
  return out;
}

bool ObjectDirectory::sole_holder(ObjectId obj, MachineId m) const {
  return entry(obj).copies == (1ULL << m);
}

std::size_t ObjectDirectory::bytes_present(std::span<const ObjectId> objs,
                                           MachineId m) const {
  std::size_t sum = 0;
  for (ObjectId obj : objs)
    if (present(obj, m)) sum += object_bytes(obj);
  return sum;
}

std::size_t ObjectDirectory::bytes_scoreable(std::span<const ObjectId> objs,
                                             MachineId m) const {
  std::size_t sum = 0;
  for (ObjectId obj : objs)
    if (present(obj, m) || (reuse_scoring_ && reusable(obj, m)))
      sum += object_bytes(obj);
  return sum;
}

std::vector<ObjectId> ObjectDirectory::objects_on(MachineId m) const {
  JADE_ASSERT(m >= 0 && m < machine_count());
  std::vector<ObjectId> out;
  for (const Entry& e : entries_)
    if ((e.copies >> m) & 1ULL) out.push_back(e.id);
  return out;
}

void ObjectDirectory::drop_copy(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  JADE_ASSERT_MSG((e.copies >> m) & 1ULL, "dropping a copy that isn't there");
  JADE_ASSERT_MSG(e.owner != m || e.copies == (1ULL << m),
                  "cannot drop the owner's copy while replicas exist; "
                  "re-home it first");
  note_drop(e, m);
  e.copies &= ~(1ULL << m);
  store(m).evict(obj, e.bytes);
}

void ObjectDirectory::set_owner(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  JADE_ASSERT_MSG((e.copies >> m) & 1ULL,
                  "new owner must already hold a replica");
  JADE_ASSERT(e.owner != m);
  e.owner = m;
  ++e.version;
  emit("store.rehome", obj, m, static_cast<double>(e.bytes));
}

void ObjectDirectory::restore_to(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  JADE_ASSERT_MSG(e.copies == 0, "restore requires every copy to have died");
  JADE_ASSERT(!e.lost);
  e.copies = 1ULL << m;
  e.owner = m;
  ++e.version;
  store(m).insert(obj, e.bytes);
  emit("store.restore", obj, m, static_cast<double>(e.bytes));
}

void ObjectDirectory::mark_lost(ObjectId obj) {
  Entry& e = entry(obj);
  JADE_ASSERT(e.copies == 0);
  e.lost = true;
  emit("store.lost", obj, -1, static_cast<double>(e.bytes));
}

bool ObjectDirectory::lost(ObjectId obj) const { return entry(obj).lost; }

}  // namespace jade
