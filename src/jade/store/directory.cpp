#include "jade/store/directory.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "jade/support/error.hpp"

namespace jade {

ObjectDirectory::ObjectDirectory(int machines) {
  if (machines < 1 || machines > kMaxMachines)
    throw ConfigError("directory supports 1.." + std::to_string(kMaxMachines) +
                      " machines, got " + std::to_string(machines));
  stores_.reserve(static_cast<std::size_t>(machines));
  for (int m = 0; m < machines; ++m) stores_.emplace_back(m);
}

void ObjectDirectory::set_observer(obs::Tracer* tracer,
                                   std::function<SimTime()> clock) {
  tracer_ = tracer;
  clock_ = std::move(clock);
}

void ObjectDirectory::emit(const char* name, ObjectId obj, MachineId machine,
                           double value) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  const SimTime ts = clock_ ? clock_() : 0;
  tracer_->instant_at(ts, obs::Subsystem::kStore, name, obj, machine, value);
}

LocalStore& ObjectDirectory::store(MachineId m) {
  JADE_ASSERT(m >= 0 && static_cast<std::size_t>(m) < stores_.size());
  return stores_[static_cast<std::size_t>(m)];
}

const LocalStore& ObjectDirectory::store(MachineId m) const {
  JADE_ASSERT(m >= 0 && static_cast<std::size_t>(m) < stores_.size());
  return stores_[static_cast<std::size_t>(m)];
}

void ObjectDirectory::add_object(const ObjectInfo& info, MachineId home) {
  JADE_ASSERT_MSG(info.id == entries_.size() + 1,
                  "objects must be registered in allocation order");
  JADE_ASSERT(home >= 0 && home < machine_count());
  Entry e;
  e.id = info.id;
  e.bytes = info.byte_size();
  e.owner = home;
  e.copies.set(home);
  e.buffer.assign(e.bytes, std::byte{0});
  entries_.push_back(std::move(e));
  store(home).insert(info.id, info.byte_size());
}

bool ObjectDirectory::known(ObjectId obj) const {
  return obj >= 1 && obj <= entries_.size();
}

ObjectDirectory::Entry& ObjectDirectory::entry(ObjectId obj) {
  JADE_ASSERT_MSG(known(obj), "object not registered in directory");
  return entries_[obj - 1];
}

const ObjectDirectory::Entry& ObjectDirectory::entry(ObjectId obj) const {
  JADE_ASSERT_MSG(known(obj), "object not registered in directory");
  return entries_[obj - 1];
}

MachineId ObjectDirectory::owner(ObjectId obj) const {
  return entry(obj).owner;
}

bool ObjectDirectory::present(ObjectId obj, MachineId m) const {
  return entry(obj).copies.test(m);
}

std::size_t ObjectDirectory::object_bytes(ObjectId obj) const {
  return entry(obj).bytes;
}

std::byte* ObjectDirectory::data(ObjectId obj) {
  return entry(obj).buffer.data();
}

std::span<const std::byte> ObjectDirectory::data_view(ObjectId obj) const {
  const Entry& e = entry(obj);
  return {e.buffer.data(), e.buffer.size()};
}

std::uint64_t ObjectDirectory::version(ObjectId obj) const {
  return entry(obj).version;
}

std::uint64_t ObjectDirectory::data_version(ObjectId obj) const {
  return entry(obj).data_version;
}

void ObjectDirectory::mark_dirty(ObjectId obj) { ++entry(obj).data_version; }

void ObjectDirectory::set_data_version(ObjectId obj, std::uint64_t v) {
  entry(obj).data_version = v;
}

std::uint64_t ObjectDirectory::last_seen_of(const Entry& e, MachineId m) {
  auto it = std::lower_bound(
      e.last_seen.begin(), e.last_seen.end(), m,
      [](const auto& rec, MachineId key) { return rec.first < key; });
  if (it == e.last_seen.end() || it->first != m) return kNeverSeen;
  return it->second;
}

void ObjectDirectory::note_drop(Entry& e, MachineId m) {
  auto it = std::lower_bound(
      e.last_seen.begin(), e.last_seen.end(), m,
      [](const auto& rec, MachineId key) { return rec.first < key; });
  if (it != e.last_seen.end() && it->first == m)
    it->second = e.data_version;
  else
    e.last_seen.insert(it, {m, e.data_version});
}

std::vector<MachineId> ObjectDirectory::invalidate_replicas(ObjectId obj) {
  Entry& e = entry(obj);
  std::vector<MachineId> dropped;
  e.copies.for_each([&](MachineId h) {
    if (h != e.owner) dropped.push_back(h);
  });
  for (MachineId h : dropped) {
    note_drop(e, h);
    e.copies.clear(h);
    store(h).evict(obj, e.bytes);
    emit("store.invalidate", obj, h, static_cast<double>(e.bytes));
  }
  return dropped;
}

bool ObjectDirectory::reusable(ObjectId obj, MachineId m) const {
  const Entry& e = entry(obj);
  if (e.lost || e.copies.test(m)) return false;
  return last_seen_of(e, m) == e.data_version;
}

void ObjectDirectory::revalidate_to(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  JADE_ASSERT_MSG(reusable(obj, m), "revalidating a non-reusable replica");
  e.copies.set(m);
  store(m).insert(obj, e.bytes);
  emit("store.revalidate", obj, m, static_cast<double>(e.bytes));
}

void ObjectDirectory::replicate_to(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  JADE_ASSERT_MSG(!e.copies.test(m),
                  "replicating to a machine that already holds a copy");
  e.copies.set(m);
  store(m).insert(obj, e.bytes);
  emit("store.replicate", obj, m, static_cast<double>(e.bytes));
}

int ObjectDirectory::move_to(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  int invalidated = 0;
  const bool had_copy = e.copies.test(m);
  e.copies.for_each([&](MachineId h) {
    if (h == m) return;
    note_drop(e, h);
    store(h).evict(obj, e.bytes);
    if (h != e.owner) {
      ++invalidated;  // the owner's copy travels, not dies
      emit("store.invalidate", obj, h, static_cast<double>(e.bytes));
    }
  });
  if (!had_copy) store(m).insert(obj, e.bytes);
  e.copies.reset();
  e.copies.set(m);
  e.owner = m;
  ++e.version;
  emit("store.move", obj, m, static_cast<double>(e.bytes));
  return invalidated;
}

std::vector<MachineId> ObjectDirectory::holders(ObjectId obj) const {
  return entry(obj).copies.members();
}

bool ObjectDirectory::sole_holder(ObjectId obj, MachineId m) const {
  return entry(obj).copies.sole(m);
}

std::size_t ObjectDirectory::bytes_present(std::span<const ObjectId> objs,
                                           MachineId m) const {
  std::size_t sum = 0;
  for (ObjectId obj : objs)
    if (present(obj, m)) sum += object_bytes(obj);
  return sum;
}

std::size_t ObjectDirectory::bytes_scoreable(std::span<const ObjectId> objs,
                                             MachineId m) const {
  std::size_t sum = 0;
  for (ObjectId obj : objs)
    if (present(obj, m) || (reuse_scoring_ && reusable(obj, m)))
      sum += object_bytes(obj);
  return sum;
}

std::vector<ObjectId> ObjectDirectory::objects_on(MachineId m) const {
  JADE_ASSERT(m >= 0 && m < machine_count());
  std::vector<ObjectId> out;
  for (const Entry& e : entries_)
    if (e.copies.test(m)) out.push_back(e.id);
  return out;
}

void ObjectDirectory::drop_copy(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  JADE_ASSERT_MSG(e.copies.test(m), "dropping a copy that isn't there");
  JADE_ASSERT_MSG(e.owner != m || e.copies.sole(m),
                  "cannot drop the owner's copy while replicas exist; "
                  "re-home it first");
  note_drop(e, m);
  e.copies.clear(m);
  store(m).evict(obj, e.bytes);
}

void ObjectDirectory::set_owner(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  JADE_ASSERT_MSG(e.copies.test(m), "new owner must already hold a replica");
  JADE_ASSERT(e.owner != m);
  e.owner = m;
  ++e.version;
  emit("store.rehome", obj, m, static_cast<double>(e.bytes));
}

void ObjectDirectory::restore_to(ObjectId obj, MachineId m) {
  Entry& e = entry(obj);
  JADE_ASSERT_MSG(e.copies.none(), "restore requires every copy to have died");
  JADE_ASSERT(!e.lost);
  e.copies.set(m);
  e.owner = m;
  ++e.version;
  store(m).insert(obj, e.bytes);
  emit("store.restore", obj, m, static_cast<double>(e.bytes));
}

void ObjectDirectory::mark_lost(ObjectId obj) {
  Entry& e = entry(obj);
  JADE_ASSERT(e.copies.none());
  e.lost = true;
  emit("store.lost", obj, -1, static_cast<double>(e.bytes));
}

bool ObjectDirectory::lost(ObjectId obj) const { return entry(obj).lost; }

}  // namespace jade
