#include "jade/store/coherence.hpp"

#include <algorithm>
#include <map>

#include "jade/support/log.hpp"
#include "jade/types/wire.hpp"

namespace jade {

namespace {
/// Runtime control-message kinds on the simulated wire.
enum class MsgKind : std::uint8_t {
  kObjectRequest = 1,   ///< please send object X (move or copy)
  kObjectData = 2,      ///< header preceding an object payload
  kInvalidate = 3,      ///< drop your replica of object X
  kObjectGrant = 4,     ///< access granted, no payload: the requester's
                        ///< replica is current (revalidation / upgrade)
};

/// Encodes a control message exactly as the transport would (the typed
/// PVM-style protocol of Section 7); its wire size is what the network
/// model is charged with.  A floor models transport framing minima.
std::size_t control_message_size(MsgKind kind, ObjectId obj, MachineId from,
                                 MachineId to, std::uint64_t payload,
                                 std::size_t floor) {
  WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_u64(obj);
  w.put_u32(static_cast<std::uint32_t>(from));
  w.put_u32(static_cast<std::uint32_t>(to));
  w.put_u64(payload);
  return std::max(w.size(), floor);
}

/// A combined request for several objects held by one owner: one header,
/// then the object-id list.
std::size_t batch_request_size(std::span<const ObjectId> objs,
                               MachineId requester, MachineId owner,
                               std::size_t floor) {
  WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgKind::kObjectRequest));
  w.put_u32(static_cast<std::uint32_t>(objs.size()));
  w.put_u32(static_cast<std::uint32_t>(requester));
  w.put_u32(static_cast<std::uint32_t>(owner));
  for (ObjectId o : objs) w.put_u64(o);
  return std::max(w.size(), floor);
}

/// A coalesced invalidation: one control message naming every holder that
/// must drop its replica (the topology fans it out as a multicast).
std::size_t invalidate_message_size(ObjectId obj, MachineId from,
                                    std::span<const MachineId> targets,
                                    std::size_t floor) {
  WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgKind::kInvalidate));
  w.put_u64(obj);
  w.put_u32(static_cast<std::uint32_t>(from));
  w.put_u32(static_cast<std::uint32_t>(targets.size()));
  for (MachineId t : targets) w.put_u32(static_cast<std::uint32_t>(t));
  return std::max(w.size(), floor);
}
}  // namespace

CoherenceProtocol::CoherenceProtocol(CoherenceTransport& transport,
                                     ObjectDirectory& directory,
                                     const ObjectTable& objects,
                                     std::vector<Endian> endians,
                                     CoherenceConfig config,
                                     RuntimeStats& stats, obs::Tracer* tracer)
    : transport_(transport),
      directory_(directory),
      objects_(objects),
      endians_(std::move(endians)),
      config_(config),
      stats_(stats),
      tracer_(tracer) {}

SimTime CoherenceProtocol::available_at(ObjectId obj, MachineId m) const {
  auto it = available_at_.find(ObjectMachineKey{obj, m});
  return it == available_at_.end() ? 0 : it->second;
}

void CoherenceProtocol::set_available_at(ObjectId obj, MachineId m,
                                         SimTime at) {
  available_at_[ObjectMachineKey{obj, m}] = at;
}

void CoherenceProtocol::forget_machine(MachineId m) {
  for (auto it = available_at_.begin(); it != available_at_.end();) {
    if (it->first.machine == m)
      it = available_at_.erase(it);
    else
      ++it;
  }
}

SimTime CoherenceProtocol::conversion_cost(ObjectId obj, MachineId src,
                                           MachineId dst) {
  // Heterogeneous format conversion: when the byte orders differ we really
  // run the per-scalar conversion (twice: sender->wire, wire->receiver; the
  // two swaps compose to the identity on the host's canonical buffer, but
  // the work and the code path are real) and charge its time.  The sender
  // caches the converted image per data version, so repeated cross-endian
  // transfers of clean data convert once.
  const ObjectInfo& info = objects_.info(obj);
  const Endian se = endians_[static_cast<std::size_t>(src)];
  const Endian de = endians_[static_cast<std::size_t>(dst)];
  if (se == de || info.type.order_invariant()) return 0;
  if (config_.comm.cache_conversions) {
    auto it = converted_cache_.find(obj);
    if (it != converted_cache_.end() &&
        it->second == directory_.data_version(obj)) {
      ++stats_.conversions_cached;
      return 0;
    }
  }
  std::span<std::byte> data{directory_.data(obj), info.byte_size()};
  const std::size_t n = convert_representation(data, info.type,
                                               Endian::kLittle, Endian::kBig);
  convert_representation(data, info.type, Endian::kBig, Endian::kLittle);
  stats_.scalars_converted += n;
  if (config_.comm.cache_conversions)
    converted_cache_[obj] = directory_.data_version(obj);
  return static_cast<SimTime>(n) * config_.conversion_seconds_per_scalar;
}

void CoherenceProtocol::send_invalidations(ObjectId obj, MachineId from,
                                           const std::vector<MachineId>&
                                               targets,
                                           SimTime now) {
  // Fire-and-forget — the serializer already guarantees no earlier reader
  // is still active on any target.
  if (targets.empty()) return;
  stats_.invalidations += targets.size();
  if (config_.comm.coalesce_invalidations && targets.size() > 1) {
    const std::size_t bytes = invalidate_message_size(
        obj, from, targets, config_.control_message_bytes);
    transport_.multicast(from, targets, bytes, now);
    stats_.messages += 1;
    stats_.bytes_sent += bytes;
    stats_.invalidations_coalesced += targets.size() - 1;
    std::size_t naive = 0;
    for (MachineId h : targets)
      naive += control_message_size(MsgKind::kInvalidate, obj, from, h, 0,
                                    config_.control_message_bytes);
    if (naive > bytes) stats_.bytes_avoided += naive - bytes;
  } else {
    for (MachineId h : targets) {
      const std::size_t bytes =
          control_message_size(MsgKind::kInvalidate, obj, from, h, 0,
                               config_.control_message_bytes);
      transport_.unicast(from, h, bytes, now);
      ++stats_.messages;
      stats_.bytes_sent += bytes;
    }
  }
}

void CoherenceProtocol::first_write_invalidate(MachineId writer, ObjectId obj,
                                               std::vector<ObjectId>&
                                                   dirtied) {
  std::vector<MachineId> dropped;
  if (!directory_.sole_holder(obj, writer)) {
    // Replicas appeared between the exclusive transfer and this write
    // (another task's deferred-read prefetch raced in); drop them before
    // the write makes them stale.
    dropped = directory_.invalidate_replicas(obj);
  }
  const bool first =
      std::find(dirtied.begin(), dirtied.end(), obj) == dirtied.end();
  if (first) {
    directory_.mark_dirty(obj);
    dirtied.push_back(obj);
  } else if (!dropped.empty()) {
    // A replica copied between two of this attempt's writes holds a torn
    // image; advance the version again so it can never revalidate.
    directory_.mark_dirty(obj);
  }
  send_invalidations(obj, writer, dropped, transport_.now());
}

SimTime CoherenceProtocol::transfer(ObjectId obj, MachineId to,
                                    bool exclusive) {
  const SimTime now = transport_.now();
  const ObjectInfo& info = objects_.info(obj);
  const MachineId from = directory_.owner(obj);
  // The object travels behind a data header; requests, grants, and
  // invalidations are standalone control messages.
  const std::size_t payload =
      info.byte_size() +
      control_message_size(MsgKind::kObjectData, obj, from, to,
                           info.byte_size(), config_.control_message_bytes);
  const std::size_t request_bytes =
      control_message_size(MsgKind::kObjectRequest, obj, to, from, 0,
                           config_.control_message_bytes);
  const std::size_t grant_bytes =
      control_message_size(MsgKind::kObjectGrant, obj, from, to, 0,
                           config_.control_message_bytes);

  if (!exclusive) {
    if (directory_.present(obj, to)) {
      const SimTime avail = available_at(obj, to);
      // An earlier request's payload is still in flight; this reader shares
      // it instead of issuing its own.
      if (avail > now) ++stats_.requests_combined;
      return std::max(now, avail);
    }
    if (config_.comm.reuse_replicas && directory_.reusable(obj, to)) {
      // Revalidation: the dropped replica still matches the current data
      // version, so a control round-trip re-admits it — no payload.
      const SimTime req_arr = transport_.unicast(to, from, request_bytes, now);
      const SimTime grant_arr =
          transport_.unicast(from, to, grant_bytes, req_arr);
      stats_.messages += 2;
      stats_.bytes_sent += request_bytes + grant_bytes;
      ++stats_.replicas_reused;
      stats_.bytes_avoided += info.byte_size();
      if (tracing()) {
        tracer_->span_begin_at(now, obs::Subsystem::kStore, "store.fetch",
                               obj, from, "revalidate " + info.name);
        tracer_->span_end_at(grant_arr, obs::Subsystem::kStore, "store.fetch",
                             obj, to, static_cast<double>(info.byte_size()));
      }
      directory_.revalidate_to(obj, to);
      set_available_at(obj, to, grant_arr);
      JADE_TRACE("t=" << now << " revalidate " << info.name << " on " << to
                      << " granted t=" << grant_arr);
      return grant_arr;
    }
    // Copy: request to the owner, data back; the owner keeps its version so
    // machines read concurrently (object replication, Section 5).
    const SimTime req_arr = transport_.unicast(to, from, request_bytes, now);
    SimTime data_arr = transport_.unicast(from, to, payload, req_arr);
    stats_.messages += 2;
    stats_.bytes_sent += request_bytes + payload;
    stats_.payload_bytes += info.byte_size();
    data_arr += conversion_cost(obj, from, to);
    if (tracing()) {
      tracer_->span_begin_at(now, obs::Subsystem::kStore, "store.fetch", obj,
                             from, "copy " + info.name);
      tracer_->span_end_at(data_arr, obs::Subsystem::kStore, "store.fetch",
                           obj, to, static_cast<double>(info.byte_size()));
    }
    directory_.replicate_to(obj, to);
    ++stats_.object_copies;
    set_available_at(obj, to, data_arr);
    JADE_TRACE("t=" << now << " copy " << info.name << " " << from << "->"
                    << to << " arrives t=" << data_arr);
    return data_arr;
  }

  // Exclusive (write/commute) access: the object *moves*; every other copy
  // is deallocated (Figure 7(c)).
  SimTime avail = std::max(now, available_at(obj, to));
  if (from != to) {
    if (config_.comm.reuse_replicas &&
        (directory_.present(obj, to) || directory_.reusable(obj, to))) {
      // Upgrade in place: the destination already holds (or can revalidate)
      // the current bytes, so only ownership travels — request and grant,
      // no payload move.
      const SimTime req_arr = transport_.unicast(to, from, request_bytes, now);
      const SimTime grant_arr =
          transport_.unicast(from, to, grant_bytes, req_arr);
      stats_.messages += 2;
      stats_.bytes_sent += request_bytes + grant_bytes;
      ++stats_.replicas_reused;
      stats_.bytes_avoided += info.byte_size();
      if (!directory_.present(obj, to)) directory_.revalidate_to(obj, to);
      avail = std::max(avail, grant_arr);
      if (tracing()) {
        tracer_->span_begin_at(now, obs::Subsystem::kStore, "store.fetch",
                               obj, from, "upgrade " + info.name);
        tracer_->span_end_at(avail, obs::Subsystem::kStore, "store.fetch",
                             obj, to, static_cast<double>(info.byte_size()));
      }
      JADE_TRACE("t=" << now << " upgrade " << info.name << " in place on "
                      << to << " granted t=" << grant_arr);
    } else {
      const SimTime req_arr = transport_.unicast(to, from, request_bytes, now);
      SimTime data_arr = transport_.unicast(from, to, payload, req_arr);
      stats_.messages += 2;
      stats_.bytes_sent += request_bytes + payload;
      stats_.payload_bytes += info.byte_size();
      data_arr += conversion_cost(obj, from, to);
      avail = data_arr;
      ++stats_.object_moves;
      if (tracing()) {
        tracer_->span_begin_at(now, obs::Subsystem::kStore, "store.fetch",
                               obj, from, "move " + info.name);
        tracer_->span_end_at(data_arr, obs::Subsystem::kStore, "store.fetch",
                             obj, to, static_cast<double>(info.byte_size()));
      }
      JADE_TRACE("t=" << now << " move " << info.name << " " << from << "->"
                      << to << " arrives t=" << data_arr);
    }
  }
  std::vector<MachineId> targets;
  for (MachineId h : directory_.holders(obj))
    if (h != to && h != from) targets.push_back(h);
  send_invalidations(obj, from, targets, now);
  directory_.move_to(obj, to);
  set_available_at(obj, to, avail);
  return avail;
}

SimTime CoherenceProtocol::fetch(MachineId to, std::vector<FetchItem> items) {
  // The whole fetch is synchronous (scheduling only; no time passes), so
  // the classification below cannot be invalidated by a concurrent event.
  SimTime ready = transport_.now();
  if (items.empty()) return ready;

  if (!config_.comm.combine_requests) {
    for (const FetchItem& item : items) {
      const SimTime at = transfer(item.obj, to, item.exclusive);
      if (item.blocking) ready = std::max(ready, at);
    }
    return ready;
  }

  // Group the items that need a round-trip to a remote owner; everything
  // else (already present for a read, or owned here) resolves locally.
  // std::map keys the batches in machine order — deterministic.
  std::map<MachineId, std::vector<FetchItem>> batches;
  for (const FetchItem& item : items) {
    const MachineId from = directory_.owner(item.obj);
    const bool local =
        from == to || (!item.exclusive && directory_.present(item.obj, to));
    if (local) {
      const SimTime at = transfer(item.obj, to, item.exclusive);
      if (item.blocking) ready = std::max(ready, at);
    } else {
      batches[from].push_back(item);
    }
  }

  for (auto& [from, batch] : batches) {
    SimTime at;
    if (batch.size() == 1) {
      at = transfer(batch.front().obj, to, batch.front().exclusive);
    } else {
      at = fetch_batch(to, from, batch);
    }
    for (const FetchItem& item : batch)
      if (item.blocking) ready = std::max(ready, at);
  }
  return ready;
}

SimTime CoherenceProtocol::fetch_batch(MachineId to, MachineId from,
                                       const std::vector<FetchItem>& batch) {
  const SimTime now = transport_.now();
  const std::size_t floor = config_.control_message_bytes;

  // Classify each item once: a reusable (or, for an upgrade, present)
  // replica is served by the grant alone; the rest ride the reply payload.
  std::vector<ObjectId> objs;
  std::vector<bool> reuse;
  std::size_t total_payload = 0;
  std::size_t naive_control = 0;
  objs.reserve(batch.size());
  reuse.reserve(batch.size());
  for (const FetchItem& item : batch) {
    const ObjectInfo& info = objects_.info(item.obj);
    objs.push_back(item.obj);
    const bool r =
        config_.comm.reuse_replicas &&
        (directory_.reusable(item.obj, to) ||
         (item.exclusive && directory_.present(item.obj, to)));
    reuse.push_back(r);
    if (!r) total_payload += info.byte_size();
    // What the per-object protocol would have spent on control traffic.
    naive_control +=
        control_message_size(MsgKind::kObjectRequest, item.obj, to, from, 0,
                             floor) +
        control_message_size(MsgKind::kObjectData, item.obj, from, to,
                             info.byte_size(), floor);
  }

  const std::size_t request_bytes = batch_request_size(objs, to, from, floor);
  const std::size_t reply_header = control_message_size(
      total_payload == 0 ? MsgKind::kObjectGrant : MsgKind::kObjectData,
      objs.front(), from, to, total_payload, floor);
  const std::size_t reply_bytes = reply_header + total_payload;

  const SimTime req_arr = transport_.unicast(to, from, request_bytes, now);
  SimTime data_arr = transport_.unicast(from, to, reply_bytes, req_arr);
  stats_.messages += 2;
  stats_.bytes_sent += request_bytes + reply_bytes;
  stats_.payload_bytes += total_payload;
  stats_.requests_combined += batch.size() - 1;
  const std::size_t batched_control = request_bytes + reply_header;
  if (naive_control > batched_control)
    stats_.bytes_avoided += naive_control - batched_control;

  // The sender converts every payload-carrying member before the reply
  // goes out; the conversions serialize into the batch's arrival.
  for (std::size_t i = 0; i < batch.size(); ++i)
    if (!reuse[i]) data_arr += conversion_cost(batch[i].obj, from, to);

  SimTime last = data_arr;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const FetchItem& item = batch[i];
    const ObjectInfo& info = objects_.info(item.obj);
    const char* verb = item.exclusive ? (reuse[i] ? "upgrade " : "move ")
                                      : (reuse[i] ? "revalidate " : "copy ");
    if (tracing()) {
      tracer_->span_begin_at(now, obs::Subsystem::kStore, "store.fetch",
                             item.obj, from, verb + info.name);
      tracer_->span_end_at(data_arr, obs::Subsystem::kStore, "store.fetch",
                           item.obj, to,
                           static_cast<double>(info.byte_size()));
    }
    // A payload already in flight to this machine may arrive after the
    // batch's grant; the object is usable only once both have landed.
    const SimTime avail = std::max(data_arr, available_at(item.obj, to));
    if (!item.exclusive) {
      if (reuse[i]) {
        directory_.revalidate_to(item.obj, to);
        ++stats_.replicas_reused;
        stats_.bytes_avoided += info.byte_size();
      } else {
        directory_.replicate_to(item.obj, to);
        ++stats_.object_copies;
      }
    } else {
      if (reuse[i]) {
        if (!directory_.present(item.obj, to))
          directory_.revalidate_to(item.obj, to);
        ++stats_.replicas_reused;
        stats_.bytes_avoided += info.byte_size();
      } else {
        ++stats_.object_moves;
      }
      std::vector<MachineId> targets;
      for (MachineId h : directory_.holders(item.obj))
        if (h != to && h != from) targets.push_back(h);
      send_invalidations(item.obj, from, targets, now);
      directory_.move_to(item.obj, to);
    }
    set_available_at(item.obj, to, avail);
    last = std::max(last, avail);
    JADE_TRACE("t=" << now << " batch " << verb << info.name << " " << from
                    << "->" << to << " arrives t=" << avail);
  }
  return last;
}

}  // namespace jade
