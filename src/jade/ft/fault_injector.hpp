// The fault injector: runtime ground truth of the failure model.
//
// Holds the up/down state of every machine (mach/MachineHealth), decides —
// deterministically, from the plan's seed — which messages between live
// machines are lost, and accumulates the injection-side counters.  The
// SimEngine consults it for dispatch eligibility and transfer routing; the
// FaultyNetwork transport decorator consults it per message.
//
// The injector knows the *truth*; the FailureDetector knows only what the
// heartbeats say.  Keeping the two separate is what lets the tests measure
// detection latency and false suspicions.
#pragma once

#include <cstdint>
#include <vector>

#include "jade/ft/fault_plan.hpp"
#include "jade/mach/machine.hpp"
#include "jade/support/rng.hpp"

namespace jade {

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, int machine_count);

  const FaultConfig& config() const { return config_; }
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

  int machine_count() const { return static_cast<int>(health_.size()); }
  bool machine_up(MachineId m) const { return health_at(m).up(); }
  const MachineHealth& health(MachineId m) const { return health_at(m); }

  /// Machines currently up, as a 0/1 mask (the sched/ and ft/recovery
  /// helpers take this shape).
  std::vector<std::uint8_t> up_mask() const;
  int up_count() const;

  /// Takes machine `m` down at virtual time `t` (fail-stop; never undone).
  void record_crash(MachineId m, SimTime t);

  /// Records when the failure detector declared `m` dead.
  void record_detected(MachineId m, SimTime t);

  /// Per-message loss decision.  Messages between live machines are lost
  /// with the configured probability (consuming the seeded drop stream);
  /// messages to or from a down machine are not "dropped" — they are sent
  /// and silently vanish at the dead NIC, so the transport must not
  /// retransmit them (the recovery protocol, not the transport, handles
  /// dead endpoints).
  bool should_drop(MachineId from, MachineId to);

 private:
  const MachineHealth& health_at(MachineId m) const;

  FaultConfig config_;
  std::vector<CrashEvent> crashes_;
  std::vector<MachineHealth> health_;
  Rng drop_rng_;
};

}  // namespace jade
