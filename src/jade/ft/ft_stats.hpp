// Observability for the fault-tolerance subsystem: one uniform view of the
// fault/recovery counters a run accumulated, for benches and tests.
#pragma once

#include "jade/engine/engine.hpp"
#include "jade/support/stats.hpp"

namespace jade {

/// The FT counters of `stats` as an ordered CounterSet (times in
/// microseconds, work in whole charge units, both rounded down).
CounterSet fault_recovery_counters(const RuntimeStats& stats);

}  // namespace jade
