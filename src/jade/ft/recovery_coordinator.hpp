// RecoveryCoordinator — the crash-recovery protocol of the FT subsystem,
// factored out of the engine.
//
// Owns the whole recovery pipeline: the fault plan and injector (ground
// truth), the heartbeat-driven failure detector, crash handling (kill every
// restartable attempt on the dead machine and roll its effects back),
// directory surgery on detection (re-home / restore / declare lost), and the
// re-queueing of killed attempts onto survivors.  With this class, ft/ is
// the sole owner of the recovery protocol; the engine supplies mechanism —
// scheduling, process abort, context bookkeeping — through RecoveryHooks.
//
// Determinism contract: every transport call, injector/detector transition,
// stat increment, and trace emission happens in the exact order the engine
// used to make them — same-seed faulty runs export byte-identical traces
// across the refactor (ft_determinism_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "jade/core/stats.hpp"
#include "jade/core/task.hpp"
#include "jade/ft/failure_detector.hpp"
#include "jade/ft/fault_injector.hpp"
#include "jade/ft/fault_plan.hpp"
#include "jade/obs/tracer.hpp"
#include "jade/store/coherence.hpp"
#include "jade/store/directory.hpp"
#include "jade/support/time.hpp"

namespace jade {

/// Per-attempt rollback state, owned by the engine's per-task record and
/// manipulated only by the coordinator.  An attempt is the unit of recovery:
/// a killed restartable attempt restores every pre-write image it took,
/// un-bumps its charge, and re-runs from scratch on a survivor.
struct AttemptState {
  /// A replay must be invisible; spawning a child or running a with-cont
  /// escapes the attempt, so either clears this and the task rides out
  /// crashes to completion.
  bool restartable = true;
  /// charged_work at attempt start; a kill rewinds the task's charge here.
  double charge_base = 0;
  struct Snapshot {
    ObjectId obj = kInvalidObject;
    std::uint64_t data_version = 0;
    std::vector<std::byte> bytes;
  };
  /// Pre-write images in acquisition order (first write per object wins).
  std::vector<Snapshot> snapshots;
  /// Objects whose data version this attempt bumped (first_write_invalidate
  /// bookkeeping); cleared on kill so the re-run bumps again from the
  /// restored version.
  std::vector<ObjectId> dirtied;
};

/// What the coordinator needs from the engine: event scheduling on the
/// virtual clock, the drained test, and the task/context mechanism around a
/// kill.  Everything protocol-y stays on the coordinator's side of the line.
class RecoveryHooks {
 public:
  virtual ~RecoveryHooks() = default;
  virtual void schedule_at(SimTime when, std::function<void()> fn) = 0;
  virtual void schedule_in(SimTime delay, std::function<void()> fn) = 0;
  /// True once the program finished (root done, nothing outstanding);
  /// stray fault events after that are no-ops.
  virtual bool drained() const = 0;
  /// The machine goes dark: no new work is ever placed on it.
  virtual void mark_machine_dark(MachineId m) = 0;
  /// Restartable attempts resident on `m`, in creation order.
  virtual std::vector<TaskNode*> restartable_victims(MachineId m) = 0;
  virtual AttemptState& attempt_state(TaskNode* task) = 0;
  /// Engine-side half of a kill: unwind whatever wait the attempt's process
  /// is parked in, hand its commute tokens on, rewind the serializer, and
  /// abort the process.  Runs after the coordinator restored the attempt's
  /// snapshots and charge.
  virtual void abort_attempt_execution(TaskNode* task) = 0;
  /// Wake every task parked for a context slot on `m` (their holders were
  /// just killed; killed attempts never release).
  virtual void wake_context_waiters(MachineId m) = 0;
  /// Put a killed attempt back on the ready queue.
  virtual void requeue_task(TaskNode* task) = 0;
  /// Resume a task parked on recovery of a crashed owner.
  virtual void resume_task(TaskNode* task) = 0;
  virtual void release_throttled() = 0;
  /// Runs at the end of recover_machine (dispatch + throttle release).
  virtual void after_recovery() = 0;
};

class RecoveryCoordinator {
 public:
  /// Validates `fault` (FaultPlan::make throws ConfigError on a bad plan)
  /// and builds the injector and detector.  The transport is the same
  /// (possibly fault-decorated) channel the coherence protocol uses, so
  /// heartbeats and recovery control messages consume the seeded drop
  /// stream in the engine's original order.
  RecoveryCoordinator(const FaultConfig& fault, int machine_count,
                      RecoveryHooks& hooks, CoherenceTransport& transport,
                      ObjectDirectory& directory,
                      CoherenceProtocol& coherence, RuntimeStats& stats,
                      obs::Tracer& tracer, std::size_t control_message_bytes);

  FaultInjector& injector() { return *injector_; }
  const FaultInjector& injector() const { return *injector_; }
  const FaultConfig& config() const { return fault_; }

  /// Schedules the crash plan plus the first heartbeat round and detector
  /// sweep.  Call once, before the simulation runs.
  void schedule_events();

  /// Fail-stop crash of machine `m` at the current time: kill resident
  /// restartable attempts (rolling back their effects) and park their
  /// re-runs until the failure detector notices.
  void handle_crash(MachineId m);

  /// Kills one attempt: restores pre-write snapshots (reverse order),
  /// un-bumps dirtied versions and charge, then has the engine unwind and
  /// abort the process.
  void kill_task_attempt(TaskNode* task);

  /// Detection: directory surgery for every object with a copy on `m`,
  /// re-queueing of its killed attempts, and wakeup of parked transfers.
  void recover_machine(MachineId m);

  /// First-write-wins pre-image capture for a restartable attempt about to
  /// receive a mutable pointer to `obj`.
  void snapshot_before_write(AttemptState& attempt, ObjectId obj);

  /// A task parks until `owner`'s recovery completes.
  void add_recovery_waiter(MachineId owner, TaskNode* task);
  /// Removes `task` from every recovery wait queue (kill unwind).
  void remove_recovery_waiter(TaskNode* task);

 private:
  void send_heartbeats();
  void detector_sweep();

  FaultConfig fault_;
  int machine_count_;
  RecoveryHooks& hooks_;
  CoherenceTransport& transport_;
  ObjectDirectory& directory_;
  CoherenceProtocol& coherence_;
  RuntimeStats& stats_;
  obs::Tracer& tracer_;
  std::size_t control_message_bytes_;

  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<FailureDetector> detector_;
  /// Killed attempts awaiting their machine's detection, in kill order.
  std::vector<std::vector<TaskNode*>> pending_recovery_;
  /// Tasks parked until a crashed owner's recovery completes.
  std::vector<std::deque<TaskNode*>> recovery_waiters_;
};

}  // namespace jade
