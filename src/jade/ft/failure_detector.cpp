#include "jade/ft/failure_detector.hpp"

#include "jade/support/error.hpp"

namespace jade {

FailureDetector::FailureDetector(int machine_count,
                                 SimTime heartbeat_interval,
                                 int miss_threshold)
    : interval_(heartbeat_interval),
      miss_threshold_(miss_threshold),
      entries_(static_cast<std::size_t>(machine_count)) {
  JADE_ASSERT(machine_count >= 1);
  JADE_ASSERT(heartbeat_interval > 0);
  JADE_ASSERT(miss_threshold >= 1);
}

void FailureDetector::heartbeat_received(MachineId m, SimTime t) {
  JADE_ASSERT(m >= 0 && static_cast<std::size_t>(m) < entries_.size());
  Entry& e = entries_[static_cast<std::size_t>(m)];
  if (t > e.last_heard) e.last_heard = t;
  e.suspected = false;
}

std::vector<MachineId> FailureDetector::sweep(SimTime now) {
  std::vector<MachineId> newly;
  for (std::size_t m = 1; m < entries_.size(); ++m) {
    Entry& e = entries_[m];
    if (e.suspected) continue;
    if (now - e.last_heard > threshold()) {
      e.suspected = true;
      newly.push_back(static_cast<MachineId>(m));
    }
  }
  return newly;
}

SimTime FailureDetector::last_heard(MachineId m) const {
  JADE_ASSERT(m >= 0 && static_cast<std::size_t>(m) < entries_.size());
  return entries_[static_cast<std::size_t>(m)].last_heard;
}

bool FailureDetector::suspected(MachineId m) const {
  JADE_ASSERT(m >= 0 && static_cast<std::size_t>(m) < entries_.size());
  return entries_[static_cast<std::size_t>(m)].suspected;
}

}  // namespace jade
