#include "jade/ft/fault_plan.hpp"

#include <algorithm>

#include "jade/support/error.hpp"
#include "jade/support/rng.hpp"

namespace jade {

FaultPlan FaultPlan::make(FaultConfig config, int machine_count) {
  if (machine_count < 1)
    throw ConfigError("fault plan needs at least one machine");
  if (config.drop_probability < 0 || config.drop_probability >= 1.0)
    throw ConfigError("drop_probability must be in [0, 1)");
  if (config.heartbeat_interval <= 0)
    throw ConfigError("heartbeat_interval must be positive");
  if (config.heartbeat_miss_threshold < 1)
    throw ConfigError("heartbeat_miss_threshold must be >= 1");
  if (config.max_send_attempts < 1)
    throw ConfigError("max_send_attempts must be >= 1");

  std::vector<CrashEvent> crashes = config.crashes;
  if (crashes.empty() && config.auto_crashes > 0) {
    if (config.auto_crashes > machine_count - 1)
      throw ConfigError(
          "auto_crashes exceeds the number of crashable machines "
          "(machine 0 is the reliable coordinator)");
    if (config.crash_window_end <= config.crash_window_begin)
      throw ConfigError("empty crash window");
    // Distinct machines via a seeded partial Fisher-Yates over [1, n).
    // The crash stream is decoupled from the message-drop stream (which
    // hashes the same seed differently in FaultInjector) so adding drops
    // never perturbs the crash schedule.
    Rng rng(config.seed ^ 0xc4a54badULL);
    std::vector<MachineId> pool;
    for (MachineId m = 1; m < machine_count; ++m) pool.push_back(m);
    for (int i = 0; i < config.auto_crashes; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
      std::swap(pool[i], pool[j]);
      CrashEvent c;
      c.machine = pool[i];
      c.time = rng.next_double(config.crash_window_begin,
                               config.crash_window_end);
      crashes.push_back(c);
    }
  }

  for (const CrashEvent& c : crashes) {
    if (c.machine <= 0 || c.machine >= machine_count)
      throw ConfigError(
          "crash schedule names machine " + std::to_string(c.machine) +
          "; only machines 1.." + std::to_string(machine_count - 1) +
          " may crash (machine 0 is the reliable coordinator)");
    if (c.time < 0) throw ConfigError("crash time must be non-negative");
  }
  std::sort(crashes.begin(), crashes.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              return a.time != b.time ? a.time < b.time
                                      : a.machine < b.machine;
            });
  for (std::size_t i = 0; i < crashes.size(); ++i)
    for (std::size_t j = i + 1; j < crashes.size(); ++j)
      if (crashes[i].machine == crashes[j].machine)
        throw ConfigError("machine " + std::to_string(crashes[i].machine) +
                          " crashes twice; crashes are fail-stop");

  return FaultPlan(std::move(config), std::move(crashes));
}

}  // namespace jade
