#include "jade/ft/recovery.hpp"

#include "jade/sched/policies.hpp"
#include "jade/support/error.hpp"

namespace jade {

std::vector<RecoveryAction> plan_object_recovery(
    const ObjectDirectory& dir, MachineId dead,
    std::span<const std::uint8_t> machine_up, bool stable_storage) {
  JADE_ASSERT(static_cast<std::size_t>(dead) < machine_up.size());
  JADE_ASSERT_MSG(!machine_up[dead], "plan with the dead machine marked down");

  std::vector<RecoveryAction> actions;
  for (ObjectId obj : dir.objects_on(dead)) {
    RecoveryAction a;
    a.obj = obj;
    if (dir.owner(obj) != dead) {
      // Only a replica died; the authoritative copy is elsewhere.
      a.fate = ObjectFate::kRehomed;
      a.new_home = dir.owner(obj);
      a.owner_moved = false;
    } else {
      const MachineId survivor = pick_rehome_machine(dir, obj, machine_up);
      if (survivor >= 0) {
        a.fate = ObjectFate::kRehomed;
        a.new_home = survivor;
        a.owner_moved = true;
      } else if (stable_storage) {
        a.fate = ObjectFate::kRestored;
        a.new_home = pick_restore_machine(machine_up, obj);
        a.owner_moved = true;
      } else {
        a.fate = ObjectFate::kLost;
        a.new_home = -1;
      }
    }
    actions.push_back(a);
  }
  return actions;
}

}  // namespace jade
