#include "jade/ft/fault_injector.hpp"

#include "jade/support/error.hpp"

namespace jade {

FaultInjector::FaultInjector(const FaultPlan& plan, int machine_count)
    : config_(plan.config()),
      crashes_(plan.crashes()),
      health_(static_cast<std::size_t>(machine_count)),
      drop_rng_(plan.config().seed ^ 0xd20bbedULL) {
  JADE_ASSERT(machine_count >= 1);
}

const MachineHealth& FaultInjector::health_at(MachineId m) const {
  JADE_ASSERT(m >= 0 && static_cast<std::size_t>(m) < health_.size());
  return health_[static_cast<std::size_t>(m)];
}

std::vector<std::uint8_t> FaultInjector::up_mask() const {
  std::vector<std::uint8_t> mask(health_.size());
  for (std::size_t m = 0; m < health_.size(); ++m)
    mask[m] = health_[m].up() ? 1 : 0;
  return mask;
}

int FaultInjector::up_count() const {
  int n = 0;
  for (const MachineHealth& h : health_) n += h.up() ? 1 : 0;
  return n;
}

void FaultInjector::record_crash(MachineId m, SimTime t) {
  MachineHealth& h = health_[static_cast<std::size_t>(m)];
  JADE_ASSERT_MSG(h.up(), "machine crashed twice");
  h.status = MachineStatus::kCrashed;
  h.crashed_at = t;
}

void FaultInjector::record_detected(MachineId m, SimTime t) {
  MachineHealth& h = health_[static_cast<std::size_t>(m)];
  JADE_ASSERT_MSG(!h.up(), "detected a machine that is up");
  JADE_ASSERT_MSG(h.detected_at == 0, "machine detected twice");
  h.detected_at = t;
}

bool FaultInjector::should_drop(MachineId from, MachineId to) {
  if (config_.drop_probability <= 0) return false;
  if (!machine_up(from) || !machine_up(to)) return false;
  return drop_rng_.next_bool(config_.drop_probability);
}

}  // namespace jade
