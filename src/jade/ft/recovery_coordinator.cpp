#include "jade/ft/recovery_coordinator.hpp"

#include <algorithm>
#include <string>

#include "jade/ft/recovery.hpp"
#include "jade/support/error.hpp"
#include "jade/support/log.hpp"

namespace jade {

RecoveryCoordinator::RecoveryCoordinator(
    const FaultConfig& fault, int machine_count, RecoveryHooks& hooks,
    CoherenceTransport& transport, ObjectDirectory& directory,
    CoherenceProtocol& coherence, RuntimeStats& stats, obs::Tracer& tracer,
    std::size_t control_message_bytes)
    : fault_(fault),
      machine_count_(machine_count),
      hooks_(hooks),
      transport_(transport),
      directory_(directory),
      coherence_(coherence),
      stats_(stats),
      tracer_(tracer),
      control_message_bytes_(control_message_bytes) {
  const FaultPlan plan = FaultPlan::make(fault_, machine_count_);
  injector_ = std::make_unique<FaultInjector>(plan, machine_count_);
  detector_ = std::make_unique<FailureDetector>(
      machine_count_, fault_.heartbeat_interval,
      fault_.heartbeat_miss_threshold);
  pending_recovery_.resize(static_cast<std::size_t>(machine_count_));
  recovery_waiters_.resize(static_cast<std::size_t>(machine_count_));
}

void RecoveryCoordinator::schedule_events() {
  for (const CrashEvent& c : injector_->crashes()) {
    hooks_.schedule_at(c.time, [this, m = c.machine] { handle_crash(m); });
  }
  hooks_.schedule_at(fault_.heartbeat_interval,
                     [this] { send_heartbeats(); });
  hooks_.schedule_at(fault_.heartbeat_interval, [this] { detector_sweep(); });
}

void RecoveryCoordinator::send_heartbeats() {
  if (hooks_.drained()) return;
  for (MachineId m = 1; m < machine_count_; ++m) {
    if (!injector_->machine_up(m)) continue;
    const SimTime arrival =
        transport_.unicast(m, 0, fault_.heartbeat_bytes, transport_.now());
    ++stats_.heartbeats_sent;
    stats_.messages += 1;
    stats_.bytes_sent += fault_.heartbeat_bytes;
    hooks_.schedule_at(arrival, [this, m, arrival] {
      // A heartbeat retransmitted past its sender's detected death is
      // stale; the coordinator has fenced the machine and must not let it
      // clear the suspicion (the detector would then declare it dead a
      // second time and recovery would run twice).
      if (injector_->health(m).detected_at != 0) return;
      detector_->heartbeat_received(m, arrival);
    });
  }
  hooks_.schedule_in(fault_.heartbeat_interval, [this] { send_heartbeats(); });
}

void RecoveryCoordinator::detector_sweep() {
  if (hooks_.drained()) return;
  for (MachineId suspect : detector_->sweep(transport_.now())) {
    if (injector_->machine_up(suspect)) {
      // Congestion delayed the heartbeats past the threshold.  The
      // coordinator double-checks with a direct probe (modeled as ground
      // truth) and does not kill a live machine's work; the standing
      // suspicion clears when the next heartbeat arrives.
      ++stats_.false_suspicions;
      tracer_.instant(obs::Subsystem::kFt, "ft.false_suspicion",
                      static_cast<std::uint64_t>(suspect), suspect);
      continue;
    }
    recover_machine(suspect);
  }
  hooks_.schedule_in(fault_.heartbeat_interval, [this] { detector_sweep(); });
}

void RecoveryCoordinator::handle_crash(MachineId m) {
  if (hooks_.drained()) return;  // the program already finished
  injector_->record_crash(m, transport_.now());
  ++stats_.machine_crashes;
  tracer_.instant(obs::Subsystem::kFt, "ft.crash",
                  static_cast<std::uint64_t>(m), m);
  JADE_TRACE("t=" << transport_.now() << " CRASH machine " << m);
  // The machine goes dark: no new work is ever placed on it.
  hooks_.mark_machine_dark(m);
  // Kill every restartable attempt resident on the machine, in creation
  // order (deterministic).  Non-restartable attempts (they spawned children
  // or ran a with-cont — effects that already escaped) ride out the crash
  // and run to completion; see docs/FAULT_TOLERANCE.md for the model.
  const std::vector<TaskNode*> victims = hooks_.restartable_victims(m);
  for (TaskNode* task : victims) kill_task_attempt(task);
  for (TaskNode* task : victims)
    pending_recovery_[static_cast<std::size_t>(m)].push_back(task);
  // Surviving (non-restartable) residents parked for a context slot would
  // wait forever: the holders they waited on were just killed and killed
  // attempts never release.  The dead machine has no real slots anyway —
  // wake them all.
  hooks_.wake_context_waiters(m);
  // Replica/ownership surgery waits for *detection*: until the failure
  // detector notices, the cluster keeps routing requests at the dead
  // machine (and the transfer path parks the requesters).
  hooks_.release_throttled();
}

void RecoveryCoordinator::kill_task_attempt(TaskNode* task) {
  AttemptState& attempt = hooks_.attempt_state(task);
  ++stats_.tasks_killed;
  tracer_.instant(obs::Subsystem::kFt, "ft.kill", task->id(),
                  task->assigned_machine,
                  task->charged_work - attempt.charge_base);
  JADE_TRACE("t=" << transport_.now() << " kill " << task->name()
                  << " on machine " << task->assigned_machine);
  // Undo the attempt's writes (reverse acquisition order), the data-version
  // bumps they opened, and the charge.  Clearing `dirtied` makes the re-run
  // bump again from the restored version; nothing can have recorded a
  // reusable replica at the doomed version (it was dropped, not copied).
  for (auto it = attempt.snapshots.rbegin(); it != attempt.snapshots.rend();
       ++it) {
    std::copy(it->bytes.begin(), it->bytes.end(), directory_.data(it->obj));
    directory_.set_data_version(it->obj, it->data_version);
  }
  attempt.snapshots.clear();
  attempt.dirtied.clear();
  const double wasted = task->charged_work - attempt.charge_base;
  stats_.wasted_charged_work += wasted;
  task->charged_work = attempt.charge_base;
  // The engine unwinds whatever wait the process is parked in, hands held
  // commute tokens on, rewinds the serializer, and aborts the process.
  hooks_.abort_attempt_execution(task);
}

void RecoveryCoordinator::recover_machine(MachineId m) {
  injector_->record_detected(m, transport_.now());
  stats_.detection_latency_total +=
      transport_.now() - injector_->health(m).crashed_at;
  tracer_.instant(obs::Subsystem::kFt, "ft.recover",
                  static_cast<std::uint64_t>(m), m,
                  transport_.now() - injector_->health(m).crashed_at);
  JADE_TRACE("t=" << transport_.now() << " machine " << m
                  << " declared dead; recovering");

  // Directory surgery, in ObjectId order (deterministic).
  const std::vector<std::uint8_t> up = injector_->up_mask();
  for (const RecoveryAction& a :
       plan_object_recovery(directory_, m, up, fault_.stable_storage)) {
    switch (a.fate) {
      case ObjectFate::kRehomed:
        if (a.owner_moved) {
          directory_.set_owner(a.obj, a.new_home);
          directory_.drop_copy(a.obj, m);
          ++stats_.objects_rehomed;
          // Home re-election costs a control message to the new home; the
          // replica it already holds becomes the authoritative copy.
          const std::size_t bytes = control_message_bytes_;
          transport_.unicast(0, a.new_home, bytes, transport_.now());
          stats_.messages += 1;
          stats_.bytes_sent += bytes;
        } else {
          directory_.drop_copy(a.obj, m);  // only a replica died
        }
        break;
      case ObjectFate::kRestored: {
        directory_.drop_copy(a.obj, m);
        directory_.restore_to(a.obj, a.new_home);
        const SimTime done =
            transport_.now() + fault_.restore_latency +
            static_cast<SimTime>(directory_.object_bytes(a.obj)) /
                fault_.restore_bytes_per_second;
        coherence_.set_available_at(a.obj, a.new_home, done);
        ++stats_.objects_restored;
        break;
      }
      case ObjectFate::kLost:
        directory_.drop_copy(a.obj, m);
        directory_.mark_lost(a.obj);
        ++stats_.objects_lost;
        break;
    }
  }

  // Forget cached availability on the dead machine.
  coherence_.forget_machine(m);

  // Re-queue the killed attempts onto survivors, in kill order.
  auto& pending = pending_recovery_[static_cast<std::size_t>(m)];
  for (TaskNode* task : pending) {
    if (task->placement == m)
      throw UnrecoverableError(
          "task '" + task->name() + "' is pinned to crashed machine " +
          std::to_string(m) + " and cannot be re-run elsewhere");
    ++stats_.tasks_requeued;
    tracer_.instant(obs::Subsystem::kFt, "ft.requeue", task->id(), m);
    hooks_.requeue_task(task);
  }
  pending.clear();

  // Wake the transfers that were parked on this machine's recovery.
  std::deque<TaskNode*> waiters;
  waiters.swap(recovery_waiters_[static_cast<std::size_t>(m)]);
  for (TaskNode* w : waiters) hooks_.resume_task(w);

  hooks_.after_recovery();
}

void RecoveryCoordinator::snapshot_before_write(AttemptState& attempt,
                                                ObjectId obj) {
  for (const AttemptState::Snapshot& s : attempt.snapshots)
    if (s.obj == obj) return;  // first write wins; later acquires are no-ops
  auto view = directory_.data_view(obj);
  attempt.snapshots.push_back(AttemptState::Snapshot{
      obj, directory_.data_version(obj),
      std::vector<std::byte>(view.begin(), view.end())});
}

void RecoveryCoordinator::add_recovery_waiter(MachineId owner,
                                              TaskNode* task) {
  recovery_waiters_[static_cast<std::size_t>(owner)].push_back(task);
}

void RecoveryCoordinator::remove_recovery_waiter(TaskNode* task) {
  for (auto& waiters : recovery_waiters_) {
    auto it = std::find(waiters.begin(), waiters.end(), task);
    if (it != waiters.end()) waiters.erase(it);
  }
}

}  // namespace jade
