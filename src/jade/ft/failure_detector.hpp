// Heartbeat-based failure detection.
//
// Every machine sends a heartbeat to machine 0 (the coordinator running the
// original task) each interval; the coordinator sweeps the table each
// interval and declares dead any machine unheard-from for miss_threshold
// intervals.  The detector is a pure state machine over (machine, time)
// events — the SimEngine drives it with simulated heartbeat arrivals and
// sweep events, and unit tests drive it directly.
//
// Because heartbeats travel the same simulated network as object traffic,
// congestion can delay them past the threshold: the detector then *suspects*
// a live machine.  The engine double-checks suspicion against ground truth
// (modeling a direct probe) and counts the false positive rather than
// killing a live machine's work.
#pragma once

#include <vector>

#include "jade/support/time.hpp"

namespace jade {

class FailureDetector {
 public:
  FailureDetector(int machine_count, SimTime heartbeat_interval,
                  int miss_threshold);

  /// A heartbeat from `m` arrived at time `t`.  Clears any standing
  /// suspicion of `m` (it was a false positive).
  void heartbeat_received(MachineId m, SimTime t);

  /// Periodic sweep: returns the machines that just crossed the staleness
  /// threshold (skipping machine 0 and machines already suspected).  A
  /// machine stays suspected until a newer heartbeat clears it, so each
  /// failure is reported once.
  std::vector<MachineId> sweep(SimTime now);

  SimTime last_heard(MachineId m) const;
  bool suspected(MachineId m) const;
  SimTime threshold() const { return interval_ * miss_threshold_; }

 private:
  struct Entry {
    SimTime last_heard = 0;
    bool suspected = false;
  };

  SimTime interval_;
  int miss_threshold_;
  std::vector<Entry> entries_;
};

}  // namespace jade
