#include "jade/ft/ft_stats.hpp"

namespace jade {

CounterSet fault_recovery_counters(const RuntimeStats& stats) {
  CounterSet c;
  c.add("machine_crashes", stats.machine_crashes);
  c.add("tasks_killed", stats.tasks_killed);
  c.add("tasks_requeued", stats.tasks_requeued);
  c.add("messages_dropped", stats.messages_dropped);
  c.add("message_retries", stats.message_retries);
  c.add("heartbeats_sent", stats.heartbeats_sent);
  c.add("false_suspicions", stats.false_suspicions);
  c.add("objects_rehomed", stats.objects_rehomed);
  c.add("objects_restored", stats.objects_restored);
  c.add("objects_lost", stats.objects_lost);
  c.add("wasted_charged_work",
        static_cast<std::uint64_t>(stats.wasted_charged_work));
  c.add("detection_latency_us",
        static_cast<std::uint64_t>(stats.detection_latency_total * 1e6));
  return c;
}

}  // namespace jade
