// Fault plans: the deterministic failure model of the FT subsystem.
//
// The paper runs Jade on networks of workstations over Ethernet/PVM
// (Section 7.3, Mica) — an environment where machines crash and messages
// are lost — yet every execution of a Jade program must still "produce the
// same result as the serial execution".  That guarantee is exactly what
// makes crash recovery by task re-execution sound, and it is what the ft/
// subsystem implements on top of the simulator.
//
// A FaultPlan is a *schedule* of faults, fixed before the run:
//   * fail-stop machine crashes (machine, virtual time), either written out
//     explicitly or generated from a seed;
//   * a per-message drop probability applied by the transport decorator
//     (net/faulty.hpp), with retransmission + exponential backoff.
// Everything is derived from FaultConfig::seed through support/rng, so one
// seed reproduces one fault schedule bit-for-bit — the chaos tests rely on
// this to replay crash scenarios.
#pragma once

#include <cstdint>
#include <vector>

#include "jade/support/time.hpp"

namespace jade {

/// One scheduled fail-stop crash.  The machine halts at `time` and never
/// comes back; whatever it held in volatile memory is gone.
struct CrashEvent {
  MachineId machine = -1;
  SimTime time = 0;
};

/// Knobs of the failure model and of the recovery protocol.  Defaults are
/// calibrated to the Mica preset's time scale (milliseconds of virtual time
/// per task).
struct FaultConfig {
  /// Master switch; when false the SimEngine runs exactly as before (no
  /// heartbeats, no network decorator, no snapshots).
  bool enabled = false;

  /// Seeds crash-schedule generation and per-message drop decisions.
  std::uint64_t seed = 0x5eedfa17ULL;

  /// Explicit crash schedule.  Machine 0 hosts the original task and the
  /// failure detector (the coordinator of a master/worker runtime) and is
  /// assumed reliable, as in classical master/worker recovery schemes.
  std::vector<CrashEvent> crashes;

  /// When `crashes` is empty, generate this many crashes at seeded times
  /// uniform in [crash_window_begin, crash_window_end), on distinct seeded
  /// machines (never machine 0).
  int auto_crashes = 0;
  SimTime crash_window_begin = 0;
  SimTime crash_window_end = 1.0;

  /// Probability that a message between two *live* machines is lost in
  /// transit.  The sender retransmits after a timeout with exponential
  /// backoff (net/faulty.hpp).
  double drop_probability = 0;
  SimTime initial_retry_timeout = 2e-3;
  SimTime max_retry_timeout = 64e-3;
  /// Retransmissions are capped; past the cap the transport hands the last
  /// attempt to the network anyway (the recovery layers above tolerate it).
  int max_send_attempts = 10;

  /// Failure detection: every machine sends a heartbeat to machine 0 each
  /// interval; a machine unheard-from for miss_threshold intervals is
  /// declared dead.  Heartbeats ride the simulated interconnect, so the
  /// interval must leave the medium mostly free for data: on the Mica
  /// shared Ethernet one 32-byte message occupies the bus ~0.8 ms, so 7
  /// workers at 50 ms put ~12% background load on the wire (at 5 ms they
  /// alone would oversubscribe it and the backlog would grow forever).
  SimTime heartbeat_interval = 50e-3;
  int heartbeat_miss_threshold = 3;
  std::size_t heartbeat_bytes = 32;

  /// Snapshot/stable-storage policy: when true, every committed object
  /// update is (conceptually) persisted to stable storage, so an object
  /// whose only copy died is restored at `restore_latency` plus its size
  /// over `restore_bytes_per_second`.  When false such objects are declared
  /// unrecoverable and any later access throws UnrecoverableError.
  bool stable_storage = true;
  SimTime restore_latency = 10e-3;
  double restore_bytes_per_second = 10e6;
};

/// A validated, fully materialized fault schedule for one cluster size.
class FaultPlan {
 public:
  /// Validates `config` against `machine_count` and generates the crash
  /// schedule when one was not given explicitly.  Throws ConfigError on a
  /// crash naming machine 0 / an out-of-range machine, on more crashes than
  /// crashable machines, or on a drop probability outside [0, 1).
  static FaultPlan make(FaultConfig config, int machine_count);

  const FaultConfig& config() const { return config_; }

  /// Crashes sorted by (time, machine); each machine appears at most once.
  const std::vector<CrashEvent>& crashes() const { return crashes_; }

 private:
  FaultPlan(FaultConfig config, std::vector<CrashEvent> crashes)
      : config_(std::move(config)), crashes_(std::move(crashes)) {}

  FaultConfig config_;
  std::vector<CrashEvent> crashes_;
};

}  // namespace jade
