// Recovery planning: what happens to the objects a dead machine held.
//
// When the failure detector declares machine `dead`, every object with a
// copy there falls into one of three cases:
//
//   * kRehomed  — `dead` owned it but a surviving machine holds a replica;
//                 ownership re-elects deterministically onto a survivor (a
//                 control message, no data transfer — the replica is the
//                 data).  If `dead` held only a replica, the copy is simply
//                 dropped and the fate is also kRehomed with the owner
//                 unchanged (nothing was lost).
//   * kRestored — `dead` held the sole copy and the snapshot (stable
//                 storage) policy is on: the object is reloaded onto a
//                 survivor at the configured restore cost.
//   * kLost     — sole copy, no stable storage.  Any future access is
//                 unrecoverable (UnrecoverableError), mirroring the paper's
//                 position that Jade's serial semantics makes re-execution
//                 trivially sound but cannot resurrect bytes nobody else has.
//
// Planning is pure (directory + up-mask in, actions out) so unit tests can
// exercise every case without running the simulator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "jade/core/object.hpp"
#include "jade/store/directory.hpp"

namespace jade {

enum class ObjectFate { kRehomed, kRestored, kLost };

struct RecoveryAction {
  ObjectId obj = kInvalidObject;
  ObjectFate fate = ObjectFate::kRehomed;
  /// Post-recovery owner: the re-elected home (kRehomed with ownership
  /// moved), the restore target (kRestored), the unchanged owner (kRehomed
  /// replica drop), or -1 (kLost).
  MachineId new_home = -1;
  /// True when ownership actually moved (drives the objects_rehomed counter
  /// and the control-message cost; a plain replica drop costs nothing).
  bool owner_moved = false;
};

/// Plans recovery for every object with a copy on `dead`, in ObjectId order
/// (deterministic).  `machine_up` is a 0/1 mask over machines with the dead
/// machine already marked down.
std::vector<RecoveryAction> plan_object_recovery(
    const ObjectDirectory& dir, MachineId dead,
    std::span<const std::uint8_t> machine_up, bool stable_storage);

}  // namespace jade
