// Iterative constraint-relaxation solver — a weighted-Jacobi stencil sweep
// over a 2-D grid, the XPBD/cloth-solver idiom (HinaCloth-style: a solver
// core of colored/damped constraint projections over SoA state, split from
// the task-parallel backend that schedules them).
//
// The grid's rows are partitioned into horizontal strips; each strip is one
// shared object (row-major, so the stencil's column loop runs over
// contiguous lanes and vectorizes — src/jade/apps/kernels_soa.cpp).  The
// sweep is double-buffered: iteration k reads buffer A and writes buffer B,
// iteration k+1 reads B and writes A, so results are independent of the
// strip partitioning and bit-identical across engines.
//
// What this workload adds that water/Barnes-Hut/cholesky don't: each sweep
// task needs only the *boundary row* of its neighbor strips.  In pipelined
// mode it declares those neighbors df_rd (deferred), converts to rd just
// long enough to copy the halo row out, and retires the right with no_rd —
// per-iteration `with`-continuation traffic that exercises partial
// retirement (the next iteration's writer of a neighbor strip unblocks as
// soon as the halo copy retires, not when the whole sweep task finishes)
// and the df_rd dispatch prefetch of the communication protocol
// (docs/PERFORMANCE.md).  Non-pipelined mode declares plain rd and needs no
// continuations — the Section 4.1-style baseline.
//
// Task bodies are registered with the cluster BodyRegistry and created via
// cluster::spawn, so the same program text runs on Serial/Thread/Sim
// engines (closure fallback) and on the multi-process ClusterEngine.
#pragma once

#include <cstdint>
#include <vector>

#include "jade/core/runtime.hpp"

namespace jade::apps {

struct RelaxConfig {
  int rows = 96;   ///< grid rows (outermost ring is fixed Dirichlet boundary)
  int cols = 96;   ///< grid columns
  int strips = 4;  ///< parallel grain: one task per strip per sweep
  int iterations = 24;
  double omega = 0.9;  ///< weighted-Jacobi damping in (0, 1]
  std::uint64_t seed = 77;
  double flops_per_cell = 8.0;  ///< charge() units per relaxed cell
  /// df_rd neighbor declarations with convert/retire continuations (the
  /// Section 4.2 idiom); false = plain rd declarations, no continuations.
  bool pipelined = true;
};

/// Host-side grid, row-major rows*cols.
struct RelaxState {
  int rows = 0;
  int cols = 0;
  std::vector<double> grid;

  double& at(int r, int c) {
    return grid[static_cast<std::size_t>(r) * cols + c];
  }
  double at(int r, int c) const {
    return grid[static_cast<std::size_t>(r) * cols + c];
  }
};

/// Seeded random boundary + interior values (the solver smooths the
/// interior toward the discrete harmonic interpolant of the boundary).
RelaxState make_relax(const RelaxConfig& config);

/// Serial reference: the exact sweeps the Jade version must reproduce.
void relax_run_serial(const RelaxConfig& config, RelaxState& state);

/// Max interior defect |x - mean(4 neighbors)|: the solver drives this
/// toward 0 (the fixed point of the weighted-Jacobi iteration).
double relax_residual(const RelaxState& state);

double relax_checksum(const RelaxState& state);

/// Total charge() units one sweep issues.
double relax_step_work(const RelaxConfig& config);

/// Shared objects: two row-major buffers per strip (double-buffered sweeps).
struct JadeRelax {
  RelaxConfig config;
  std::vector<SharedRef<double>> buf_a;  ///< sweep 0 reads a, writes b, ...
  std::vector<SharedRef<double>> buf_b;
  std::vector<int> strip_start;  ///< row range per strip
};

JadeRelax upload_relax(Runtime& rt, const RelaxConfig& config,
                       const RelaxState& state);
void relax_run_jade(TaskContext& ctx, const JadeRelax& w);
RelaxState download_relax(Runtime& rt, const JadeRelax& w);

}  // namespace jade::apps
