// LWS — liquid water simulation (paper Section 7.3).
//
// The paper's LWS derives from the Perfect Club MDG benchmark: "almost all
// of the computation takes place inside the O(n^2) phase that determines
// the pairwise interactions of the n molecules.  We therefore execute only
// that phase in parallel and run the O(n) phases serially."
//
// This reimplementation keeps that exact structure.  Molecules are grouped;
// per timestep one Jade task per group computes that group's interactions
// with all n molecules (reading every position group, writing its own force
// group), then a single serial task integrates positions — the O(n) phase,
// whose serial execution plus the per-step position broadcast is what bends
// the speedup curves of Figures 9 and 10.
//
// The interaction kernel is a smoothed inverse-square pair force — the same
// computational shape as MDG's water-water interaction, with its cost
// charged at kFlopsPerInteraction per pair.
//
// Data layout: shared-object payloads are structure-of-arrays — each group
// object holds [x(count), y(count), z(count)] lanes (and the velocity object
// [vx(n), vy(n), vz(n)]), so the pairwise kernel's inner loops vectorize
// (src/jade/apps/kernels_soa.cpp, docs/PERFORMANCE.md "Kernel data layout").
// The flat double array serializes through TypeDescriptor/WireWriter exactly
// as before: byte size, object count, declarations, and task graph are
// unchanged by the layout.  Host-side WaterState stays AoS xyz triples.
#pragma once

#include <cstdint>
#include <vector>

#include "jade/core/runtime.hpp"

namespace jade::apps {

struct WaterConfig {
  int molecules = 2197;  ///< the paper's problem size
  int groups = 52;       ///< parallel grain (2197 = 52*42 + 13)
  int timesteps = 2;
  double box = 20.0;     ///< simulation box edge
  double dt = 1e-3;
  std::uint64_t seed = 1234;
  /// Virtual cost charged per pairwise interaction (MDG's water-water
  /// interaction evaluates O(100) flops; the kernel below is cheaper, so
  /// the difference is charged, not computed).
  double flops_per_interaction = 60.0;
};

/// Host-side state: positions, velocities and forces, AoS xyz triples.
struct WaterState {
  int n = 0;
  std::vector<double> pos;  ///< 3n
  std::vector<double> vel;  ///< 3n
  std::vector<double> force;  ///< 3n
};

WaterState make_water(const WaterConfig& config);

/// Serial reference: the exact computation the Jade version must reproduce.
void water_step_serial(const WaterConfig& config, WaterState& state);
void water_run_serial(const WaterConfig& config, WaterState& state);

/// Potential-energy-ish checksum for cross-engine comparison.
double water_checksum(const WaterState& state);

/// Total charge() units one timestep issues (for utilization math).
double water_step_work(const WaterConfig& config);

/// Runs the whole simulation as a Jade program (call inside rt.run()).
/// Shared objects: one position object and one force object per group, each
/// an SoA block [x(count), y(count), z(count)].
/// Returns nothing; read back with download_water.
struct JadeWater {
  WaterConfig config;
  std::vector<SharedRef<double>> pos_groups;    ///< SoA x/y/z lanes
  std::vector<SharedRef<double>> force_groups;  ///< SoA fx/fy/fz lanes
  SharedRef<double> vel;  ///< SoA [vx(n), vy(n), vz(n)]; serial phase only
  std::vector<int> group_start;  ///< molecule index range per group
};

JadeWater upload_water(Runtime& rt, const WaterConfig& config,
                       const WaterState& state);
void water_run_jade(TaskContext& ctx, const JadeWater& w);
WaterState download_water(Runtime& rt, const JadeWater& w);

}  // namespace jade::apps
