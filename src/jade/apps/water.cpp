#include "jade/apps/water.hpp"

#include <algorithm>

#include "jade/apps/kernels.hpp"
#include "jade/support/error.hpp"
#include "jade/support/rng.hpp"
#include "jade/support/simd.hpp"

namespace jade::apps {

namespace {

std::vector<int> make_group_starts(int n, int groups) {
  JADE_ASSERT(groups >= 1 && groups <= n);
  std::vector<int> start(groups + 1, 0);
  for (int g = 0; g <= groups; ++g)
    start[g] = static_cast<int>((static_cast<long long>(n) * g) / groups);
  return start;
}

/// Packs `count` AoS xyz triples starting at molecule `lo` into an SoA
/// block [x(count), y(count), z(count)] — the shared-object payload layout.
std::vector<double> pack_soa(const std::vector<double>& aos, int lo,
                             int count) {
  std::vector<double> soa(3 * static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    soa[static_cast<std::size_t>(i)] = aos[3 * (lo + i)];
    soa[static_cast<std::size_t>(count + i)] = aos[3 * (lo + i) + 1];
    soa[static_cast<std::size_t>(2 * count + i)] = aos[3 * (lo + i) + 2];
  }
  return soa;
}

void unpack_soa(std::span<const double> soa, int lo, int count,
                std::vector<double>& aos) {
  for (int i = 0; i < count; ++i) {
    aos[3 * (lo + i)] = soa[static_cast<std::size_t>(i)];
    aos[3 * (lo + i) + 1] = soa[static_cast<std::size_t>(count + i)];
    aos[3 * (lo + i) + 2] = soa[static_cast<std::size_t>(2 * count + i)];
  }
}

}  // namespace

WaterState make_water(const WaterConfig& config) {
  WaterState s;
  s.n = config.molecules;
  s.pos.resize(3 * static_cast<std::size_t>(s.n));
  s.vel.assign(3 * static_cast<std::size_t>(s.n), 0.0);
  s.force.assign(3 * static_cast<std::size_t>(s.n), 0.0);
  Rng rng(config.seed);
  for (double& p : s.pos) p = rng.next_double(0.0, config.box);
  return s;
}

void water_step_serial(const WaterConfig& config, WaterState& state) {
  // The serial reference runs the same SoA kernels as the Jade task bodies
  // (over the full molecule range), so engine results are bit-identical to
  // it by construction.  The AoS<->SoA conversions are exact copies.
  const int n = state.n;
  const std::size_t un = static_cast<std::size_t>(n);
  simd::AlignedBuffer<double> soa(9 * un);
  double* x = soa.data();
  double* y = x + un;
  double* z = y + un;
  double* vx = z + un;
  double* vy = vx + un;
  double* vz = vy + un;
  double* fx = vz + un;
  double* fy = fx + un;
  double* fz = fy + un;
  for (int i = 0; i < n; ++i) {
    x[i] = state.pos[3 * i];
    y[i] = state.pos[3 * i + 1];
    z[i] = state.pos[3 * i + 2];
    vx[i] = state.vel[3 * i];
    vy[i] = state.vel[3 * i + 1];
    vz[i] = state.vel[3 * i + 2];
  }
  kernels::water_forces_soa(x, y, z, n, 0, n, fx, fy, fz);
  kernels::water_integrate_soa(n, config.dt, fx, fy, fz, x, y, z, vx, vy, vz);
  for (int i = 0; i < n; ++i) {
    state.pos[3 * i] = x[i];
    state.pos[3 * i + 1] = y[i];
    state.pos[3 * i + 2] = z[i];
    state.vel[3 * i] = vx[i];
    state.vel[3 * i + 1] = vy[i];
    state.vel[3 * i + 2] = vz[i];
    state.force[3 * i] = fx[i];
    state.force[3 * i + 1] = fy[i];
    state.force[3 * i + 2] = fz[i];
  }
}

void water_run_serial(const WaterConfig& config, WaterState& state) {
  for (int t = 0; t < config.timesteps; ++t)
    water_step_serial(config, state);
}

double water_checksum(const WaterState& state) {
  double acc = 0;
  for (std::size_t i = 0; i < state.pos.size(); ++i)
    acc += state.pos[i] * 0.5 + state.vel[i];
  return acc;
}

double water_step_work(const WaterConfig& config) {
  const double n = config.molecules;
  return n * n * config.flops_per_interaction + 10.0 * n;
}

JadeWater upload_water(Runtime& rt, const WaterConfig& config,
                       const WaterState& state) {
  JADE_ASSERT(state.n == config.molecules);
  JadeWater w;
  w.config = config;
  w.group_start = make_group_starts(config.molecules, config.groups);
  for (int g = 0; g < config.groups; ++g) {
    const int lo = w.group_start[g];
    const int hi = w.group_start[g + 1];
    w.pos_groups.push_back(rt.alloc_init<double>(
        pack_soa(state.pos, lo, hi - lo), "pos" + std::to_string(g)));
    w.force_groups.push_back(rt.alloc<double>(
        3 * static_cast<std::size_t>(hi - lo), "force" + std::to_string(g)));
  }
  w.vel = rt.alloc_init<double>(pack_soa(state.vel, 0, state.n), "vel");
  return w;
}

void water_run_jade(TaskContext& ctx, const JadeWater& w) {
  const WaterConfig config = w.config;
  const auto group_start = w.group_start;
  const auto pos_groups = w.pos_groups;
  const auto force_groups = w.force_groups;
  const auto vel = w.vel;
  const int n = config.molecules;

  for (int step = 0; step < config.timesteps; ++step) {
    // O(n^2) phase in parallel: one task per group.
    for (int g = 0; g < config.groups; ++g) {
      const int lo = group_start[g];
      const int hi = group_start[g + 1];
      const auto fg = force_groups[g];
      ctx.withonly(
          [&](AccessDecl& d) {
            for (const auto& p : pos_groups) d.rd(p);
            d.wr(fg);
          },
          [pos_groups, fg, group_start, n, lo, hi,
           flops = config.flops_per_interaction](TaskContext& t) {
            t.charge(static_cast<double>(hi - lo) * n * flops);
            // Gather the SoA group payloads into full x/y/z lanes (each
            // per-group object is read through its checked accessor once).
            const std::size_t un = static_cast<std::size_t>(n);
            simd::AlignedBuffer<double> lanes(3 * un);
            double* xs = lanes.data();
            double* ys = xs + un;
            double* zs = ys + un;
            for (std::size_t g2 = 0; g2 < pos_groups.size(); ++g2) {
              auto span = t.read(pos_groups[g2]);
              const int c = group_start[g2 + 1] - group_start[g2];
              const auto uc = static_cast<std::size_t>(c);
              std::copy_n(span.data(), uc, xs + group_start[g2]);
              std::copy_n(span.data() + uc, uc, ys + group_start[g2]);
              std::copy_n(span.data() + 2 * uc, uc, zs + group_start[g2]);
            }
            auto force = t.write(fg);
            const auto count = static_cast<std::size_t>(hi - lo);
            kernels::water_forces_soa(xs, ys, zs, n, lo, hi, force.data(),
                                      force.data() + count,
                                      force.data() + 2 * count);
          },
          "Forces(g" + std::to_string(g) + ",s" + std::to_string(step) + ")");
    }
    // O(n) phase serial: one task integrating all molecules (the paper runs
    // this phase serially; its single-machine execution plus the position
    // re-broadcast every step is the scaling bottleneck).
    ctx.withonly(
        [&](AccessDecl& d) {
          for (const auto& f : force_groups) d.rd(f);
          for (const auto& p : pos_groups) d.rd_wr(p);
          d.rd_wr(vel);
        },
        [pos_groups, force_groups, group_start, vel, config,
         n](TaskContext& t) {
          t.charge(10.0 * n);
          auto vels = t.read_write(vel);
          const std::size_t un = static_cast<std::size_t>(n);
          for (std::size_t g2 = 0; g2 < pos_groups.size(); ++g2) {
            const int lo = group_start[g2];
            const auto count =
                static_cast<std::size_t>(group_start[g2 + 1] - lo);
            auto force = t.read(force_groups[g2]);
            auto pos = t.read_write(pos_groups[g2]);
            kernels::water_integrate_soa(
                static_cast<int>(count), config.dt, force.data(),
                force.data() + count, force.data() + 2 * count, pos.data(),
                pos.data() + count, pos.data() + 2 * count, vels.data() + lo,
                vels.data() + un + lo, vels.data() + 2 * un + lo);
          }
        },
        "Integrate(s" + std::to_string(step) + ")");
  }
}

WaterState download_water(Runtime& rt, const JadeWater& w) {
  WaterState s;
  s.n = w.config.molecules;
  s.pos.resize(3 * static_cast<std::size_t>(s.n));
  s.force.resize(3 * static_cast<std::size_t>(s.n));
  for (std::size_t g = 0; g < w.pos_groups.size(); ++g) {
    const int lo = w.group_start[g];
    const int count = w.group_start[g + 1] - lo;
    unpack_soa(rt.get(w.pos_groups[g]), lo, count, s.pos);
    unpack_soa(rt.get(w.force_groups[g]), lo, count, s.force);
  }
  s.vel.resize(3 * static_cast<std::size_t>(s.n));
  unpack_soa(rt.get(w.vel), 0, s.n, s.vel);
  return s;
}

}  // namespace jade::apps
