#include "jade/apps/water.hpp"

#include <cmath>

#include "jade/support/error.hpp"
#include "jade/support/rng.hpp"

namespace jade::apps {

namespace {

/// Smoothed inverse-square pair interaction: the force on molecule a from
/// molecule b.  Same shape as MDG's pairwise phase; deterministic FP.
inline void pair_force(const double* pa, const double* pb, double* f_out) {
  const double dx = pb[0] - pa[0];
  const double dy = pb[1] - pa[1];
  const double dz = pb[2] - pa[2];
  const double r2 = dx * dx + dy * dy + dz * dz + 0.25;
  const double inv = 1.0 / (r2 * std::sqrt(r2));
  // Short-range repulsion minus long-range attraction.
  const double s = inv * (1.0 - 2.0 / r2);
  f_out[0] += s * dx;
  f_out[1] += s * dy;
  f_out[2] += s * dz;
}

std::vector<int> make_group_starts(int n, int groups) {
  JADE_ASSERT(groups >= 1 && groups <= n);
  std::vector<int> start(groups + 1, 0);
  for (int g = 0; g <= groups; ++g)
    start[g] = static_cast<int>((static_cast<long long>(n) * g) / groups);
  return start;
}

/// Forces for molecules [lo, hi): each molecule interacts with all n
/// molecules (both versions use this exact loop, so results are
/// bit-identical across engines and groupings).
void compute_forces_range(const double* pos, int n, int lo, int hi,
                          double* force) {
  for (int i = lo; i < hi; ++i) {
    double f[3] = {0, 0, 0};
    const double* pi = pos + 3 * i;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      pair_force(pi, pos + 3 * j, f);
    }
    force[3 * (i - lo) + 0] = f[0];
    force[3 * (i - lo) + 1] = f[1];
    force[3 * (i - lo) + 2] = f[2];
  }
}

void integrate(const WaterConfig& config, int n, const double* force,
               double* pos, double* vel) {
  for (int i = 0; i < 3 * n; ++i) {
    vel[i] += force[i] * config.dt;
    pos[i] += vel[i] * config.dt;
  }
}

}  // namespace

WaterState make_water(const WaterConfig& config) {
  WaterState s;
  s.n = config.molecules;
  s.pos.resize(3 * static_cast<std::size_t>(s.n));
  s.vel.assign(3 * static_cast<std::size_t>(s.n), 0.0);
  s.force.assign(3 * static_cast<std::size_t>(s.n), 0.0);
  Rng rng(config.seed);
  for (double& p : s.pos) p = rng.next_double(0.0, config.box);
  return s;
}

void water_step_serial(const WaterConfig& config, WaterState& state) {
  compute_forces_range(state.pos.data(), state.n, 0, state.n,
                       state.force.data());
  integrate(config, state.n, state.force.data(), state.pos.data(),
            state.vel.data());
}

void water_run_serial(const WaterConfig& config, WaterState& state) {
  for (int t = 0; t < config.timesteps; ++t)
    water_step_serial(config, state);
}

double water_checksum(const WaterState& state) {
  double acc = 0;
  for (std::size_t i = 0; i < state.pos.size(); ++i)
    acc += state.pos[i] * 0.5 + state.vel[i];
  return acc;
}

double water_step_work(const WaterConfig& config) {
  const double n = config.molecules;
  return n * n * config.flops_per_interaction + 10.0 * n;
}

JadeWater upload_water(Runtime& rt, const WaterConfig& config,
                       const WaterState& state) {
  JADE_ASSERT(state.n == config.molecules);
  JadeWater w;
  w.config = config;
  w.group_start = make_group_starts(config.molecules, config.groups);
  for (int g = 0; g < config.groups; ++g) {
    const int lo = w.group_start[g];
    const int hi = w.group_start[g + 1];
    w.pos_groups.push_back(rt.alloc_init<double>(
        std::span<const double>(state.pos.data() + 3 * lo,
                                3 * static_cast<std::size_t>(hi - lo)),
        "pos" + std::to_string(g)));
    w.force_groups.push_back(rt.alloc<double>(
        3 * static_cast<std::size_t>(hi - lo), "force" + std::to_string(g)));
  }
  w.vel = rt.alloc_init<double>(state.vel, "vel");
  return w;
}

void water_run_jade(TaskContext& ctx, const JadeWater& w) {
  const WaterConfig config = w.config;
  const auto group_start = w.group_start;
  const auto pos_groups = w.pos_groups;
  const auto force_groups = w.force_groups;
  const auto vel = w.vel;
  const int n = config.molecules;

  for (int step = 0; step < config.timesteps; ++step) {
    // O(n^2) phase in parallel: one task per group.
    for (int g = 0; g < config.groups; ++g) {
      const int lo = group_start[g];
      const int hi = group_start[g + 1];
      const auto fg = force_groups[g];
      ctx.withonly(
          [&](AccessDecl& d) {
            for (const auto& p : pos_groups) d.rd(p);
            d.wr(fg);
          },
          [pos_groups, fg, group_start, n, lo, hi,
           flops = config.flops_per_interaction](TaskContext& t) {
            t.charge(static_cast<double>(hi - lo) * n * flops);
            // Assemble a contiguous position view (the per-group objects
            // are read through checked accessors once each).
            std::vector<double> pos(3 * static_cast<std::size_t>(n));
            for (std::size_t g2 = 0; g2 < pos_groups.size(); ++g2) {
              auto span = t.read(pos_groups[g2]);
              std::copy(span.begin(), span.end(),
                        pos.begin() + 3 * group_start[g2]);
            }
            auto force = t.write(fg);
            compute_forces_range(pos.data(), n, lo, hi, force.data());
          },
          "Forces(g" + std::to_string(g) + ",s" + std::to_string(step) + ")");
    }
    // O(n) phase serial: one task integrating all molecules (the paper runs
    // this phase serially; its single-machine execution plus the position
    // re-broadcast every step is the scaling bottleneck).
    ctx.withonly(
        [&](AccessDecl& d) {
          for (const auto& f : force_groups) d.rd(f);
          for (const auto& p : pos_groups) d.rd_wr(p);
          d.rd_wr(vel);
        },
        [pos_groups, force_groups, group_start, vel, config,
         n](TaskContext& t) {
          t.charge(10.0 * n);
          auto vels = t.read_write(vel);
          for (std::size_t g2 = 0; g2 < pos_groups.size(); ++g2) {
            const int lo = group_start[g2];
            const int count = group_start[g2 + 1] - lo;
            auto force = t.read(force_groups[g2]);
            auto pos = t.read_write(pos_groups[g2]);
            integrate(config, count, force.data(), pos.data(),
                      vels.data() + 3 * lo);
          }
        },
        "Integrate(s" + std::to_string(step) + ")");
  }
}

WaterState download_water(Runtime& rt, const JadeWater& w) {
  WaterState s;
  s.n = w.config.molecules;
  s.pos.resize(3 * static_cast<std::size_t>(s.n));
  s.force.resize(3 * static_cast<std::size_t>(s.n));
  for (std::size_t g = 0; g < w.pos_groups.size(); ++g) {
    const auto pos = rt.get(w.pos_groups[g]);
    std::copy(pos.begin(), pos.end(),
              s.pos.begin() + 3 * w.group_start[g]);
    const auto force = rt.get(w.force_groups[g]);
    std::copy(force.begin(), force.end(),
              s.force.begin() + 3 * w.group_start[g]);
  }
  s.vel = rt.get(w.vel);
  return s;
}

}  // namespace jade::apps
