#include "jade/apps/video.hpp"

#include "jade/support/error.hpp"

namespace jade::apps {

namespace {

/// Deterministic camera: synthesizes frame `f`'s pixel at (x, y).
std::int32_t synth_pixel(std::uint64_t seed, int f, int x, int y) {
  std::uint64_t v = seed * 0x9e3779b97f4a7c15ULL +
                    static_cast<std::uint64_t>(f) * 0x100000001b3ULL +
                    static_cast<std::uint64_t>(y * 131 + x);
  v ^= v >> 29;
  v *= 0xbf58476d1ce4e5b9ULL;
  v ^= v >> 32;
  return static_cast<std::int32_t>(v & 0xffff);
}

void capture_frame(const VideoConfig& config, int f,
                   std::span<std::int32_t> pixels) {
  for (int y = 0; y < config.height; ++y)
    for (int x = 0; x < config.width; ++x)
      pixels[static_cast<std::size_t>(y) * config.width + x] =
          synth_pixel(config.seed, f, x, y);
}

/// The "simple digital transformation": invert plus 3-tap horizontal blur.
void transform_frame(const VideoConfig& config,
                     std::span<const std::int32_t> in,
                     std::span<std::int32_t> out) {
  for (int y = 0; y < config.height; ++y) {
    for (int x = 0; x < config.width; ++x) {
      const auto at = [&](int xx) {
        xx = std::clamp(xx, 0, config.width - 1);
        return in[static_cast<std::size_t>(y) * config.width + xx];
      };
      const std::int32_t blur = (at(x - 1) + 2 * at(x) + at(x + 1)) / 4;
      out[static_cast<std::size_t>(y) * config.width + x] = 0xffff - blur;
    }
  }
}

std::uint64_t frame_checksum(std::span<const std::int32_t> pixels) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::int32_t p : pixels) {
    h ^= static_cast<std::uint32_t>(p);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::vector<std::uint64_t> video_serial(const VideoConfig& config) {
  const std::size_t pixels =
      static_cast<std::size_t>(config.width) * config.height;
  std::vector<std::int32_t> raw(pixels), out(pixels);
  std::vector<std::uint64_t> sums;
  for (int f = 0; f < config.frames; ++f) {
    capture_frame(config, f, raw);
    transform_frame(config, raw, out);
    sums.push_back(frame_checksum(out));
  }
  return sums;
}

JadeVideo upload_video(Runtime& rt, const VideoConfig& config) {
  JadeVideo v;
  v.config = config;
  const std::size_t pixels =
      static_cast<std::size_t>(config.width) * config.height;
  // Frames live on the frame source initially; transforms move them.
  v.camera = rt.alloc<std::int32_t>(1, "camera", /*home=*/0);
  for (int f = 0; f < config.frames; ++f) {
    v.raw.push_back(rt.alloc<std::int32_t>(
        pixels, "raw" + std::to_string(f), /*home=*/0));
    v.out.push_back(rt.alloc<std::int32_t>(
        pixels, "out" + std::to_string(f), /*home=*/0));
  }
  return v;
}

void video_jade(TaskContext& ctx, const JadeVideo& v, int accelerators) {
  JADE_ASSERT(accelerators >= 1);
  const VideoConfig config = v.config;
  for (int f = 0; f < config.frames; ++f) {
    const auto camera = v.camera;
    const auto raw = v.raw[f];
    const auto out = v.out[f];
    // Capture: pinned to the frame-source machine; rd_wr on the camera
    // object serializes captures (there is one camera).
    ctx.withonly_on(
        0,
        [&](AccessDecl& d) {
          d.rd_wr(camera);
          d.wr(raw);
        },
        [camera, raw, config, f](TaskContext& t) {
          t.charge(config.capture_work);
          auto cam = t.read_write(camera);
          JADE_ASSERT_MSG(cam[0] == f, "camera produced frames out of order");
          cam[0] = f + 1;
          capture_frame(config, f, t.write(raw));
        },
        "capture(" + std::to_string(f) + ")");
    // Transform: pinned to an accelerator, round-robin.  The frame moves
    // from the (big-endian) SPARC to the (little-endian) i860, converting
    // formats in flight.
    const MachineId acc = 1 + (f % accelerators);
    ctx.withonly_on(
        acc,
        [&](AccessDecl& d) {
          d.rd(raw);
          d.wr(out);
        },
        [raw, out, config](TaskContext& t) {
          t.charge(config.transform_work);
          transform_frame(config, t.read(raw), t.write(out));
        },
        "transform(" + std::to_string(f) + ")");
  }
}

std::vector<std::uint64_t> download_video(Runtime& rt, const JadeVideo& v) {
  std::vector<std::uint64_t> sums;
  for (const auto& out : v.out) {
    const auto pixels = rt.get(out);
    sums.push_back(frame_checksum(pixels));
  }
  return sums;
}

}  // namespace jade::apps
