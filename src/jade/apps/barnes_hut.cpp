#include "jade/apps/barnes_hut.hpp"

#include <algorithm>
#include <cmath>

#include "jade/apps/kernels.hpp"
#include "jade/support/error.hpp"
#include "jade/support/rng.hpp"
#include "jade/support/simd.hpp"

namespace jade::apps {

namespace {

// Flattened quadtree: tree[0] = node count; node k occupies 10 doubles at
// 1 + 10k: [geo_x, geo_y, half, mass, com_x, com_y, child0..child3]
// (children are node indices as doubles, -1 = none).
constexpr int kNodeSize = 10;
constexpr int kMaxDepth = 32;

std::size_t max_nodes(int bodies) {
  // Uniformly distributed bodies build ~1.3 nodes per body; 3x + slack
  // covers clustered inputs (alloc_node checks the bound).  Keeping the
  // object tight matters: on message-passing platforms every remote force
  // task replicates the whole tree object.
  return 3 * static_cast<std::size_t>(bodies) + 64;
}

std::size_t tree_capacity(int bodies) {
  return 1 + kNodeSize * max_nodes(bodies);
}

double* node_at(double* tree, int k) { return tree + 1 + kNodeSize * k; }
const double* node_at(const double* tree, int k) {
  return tree + 1 + kNodeSize * k;
}

int alloc_node(double* tree, int cap, double gx, double gy, double half) {
  const int k = static_cast<int>(tree[0]);
  JADE_ASSERT_MSG(k < cap, "quadtree node budget exceeded");
  tree[0] = k + 1;

  double* n = node_at(tree, k);
  n[0] = gx;
  n[1] = gy;
  n[2] = half;
  n[3] = 0;  // mass
  n[4] = n[5] = 0;
  n[6] = n[7] = n[8] = n[9] = -1;
  return k;
}

bool is_leaf(const double* n) {
  return n[6] < 0 && n[7] < 0 && n[8] < 0 && n[9] < 0;
}

int quadrant_of(const double* n, double x, double y) {
  return (x >= n[0] ? 1 : 0) | (y >= n[1] ? 2 : 0);
}

void insert_body(double* tree, int cap, int node, double x, double y,
                 double m, int depth) {
  double* n = node_at(tree, node);
  if (n[3] == 0) {  // empty: becomes a leaf holding this body
    n[3] = m;
    n[4] = x;
    n[5] = y;
    return;
  }
  if (is_leaf(n) && depth < kMaxDepth) {
    // Split: push the resident body into a child, then fall through.
    const double ox = n[4], oy = n[5], om = n[3];
    const int q = quadrant_of(n, ox, oy);
    const double h = n[2] / 2;
    const int child = alloc_node(tree, cap, n[0] + (q & 1 ? h : -h),
                                 n[1] + (q & 2 ? h : -h), h);
    n = node_at(tree, node);  // alloc_node may relocate in principle; the
                              // backing array is preallocated, so only the
                              // pointer arithmetic must be redone
    n[6 + q] = child;
    insert_body(tree, cap, child, ox, oy, om, depth + 1);
    n = node_at(tree, node);
  }
  if (is_leaf(n)) {
    // Depth limit: merge into the aggregate.
    n[4] = (n[4] * n[3] + x * m) / (n[3] + m);
    n[5] = (n[5] * n[3] + y * m) / (n[3] + m);
    n[3] += m;
    return;
  }
  // Internal node: update aggregate, recurse.
  n[4] = (n[4] * n[3] + x * m) / (n[3] + m);
  n[5] = (n[5] * n[3] + y * m) / (n[3] + m);
  n[3] += m;
  const int q = quadrant_of(n, x, y);
  int child = static_cast<int>(n[6 + q]);
  if (child < 0) {
    const double h = n[2] / 2;
    child = alloc_node(tree, cap, n[0] + (q & 1 ? h : -h),
                       n[1] + (q & 2 ? h : -h), h);
    node_at(tree, node)[6 + q] = child;
  }
  insert_body(tree, cap, child, x, y, m, depth + 1);
}

/// Positions arrive as SoA x/y lanes (the shared-object payload layout).
void build_tree(const double* xs, const double* ys, const double* mass,
                int n, double box, double* tree) {
  tree[0] = 0;
  JADE_ASSERT(n >= 1);
  const int cap = static_cast<int>(max_nodes(n));
  const int root = alloc_node(tree, cap, box / 2, box / 2, box / 2);
  for (int i = 0; i < n; ++i)
    insert_body(tree, cap, root, xs[i], ys[i], mass[i], 0);
}

/// Accumulates the BH force on body (x, y); returns nodes visited.
int force_walk(const double* tree, int node, double x, double y,
               double theta, double* fx, double* fy) {
  const double* n = node_at(tree, node);
  int visits = 1;
  const double dx = n[4] - x;
  const double dy = n[5] - y;
  const double d2 = dx * dx + dy * dy + 1e-6;
  const double d = std::sqrt(d2);
  if (is_leaf(n) || (2 * n[2]) / d < theta) {
    const double s = n[3] / (d2 * d);
    *fx += s * dx;
    *fy += s * dy;
    return visits;
  }
  for (int q = 0; q < 4; ++q) {
    const int child = static_cast<int>(n[6 + q]);
    if (child >= 0)
      visits += force_walk(tree, child, x, y, theta, fx, fy);
  }
  return visits;
}

/// Forces for `count` bodies at lanes xs/ys; results land in lanes fx/fy.
/// The walk itself is irregular (data-dependent recursion) and stays scalar;
/// the SoA lanes serve the *integrate* kernel, which does vectorize.
int forces_range(const double* tree, const double* xs, const double* ys,
                 int count, double theta, double* fx, double* fy) {
  int visits = 0;
  for (int i = 0; i < count; ++i) {
    double ax = 0, ay = 0;
    visits += force_walk(tree, 0, xs[i], ys[i], theta, &ax, &ay);
    fx[i] = ax;
    fy[i] = ay;
  }
  return visits;
}

std::vector<int> make_group_starts(int n, int groups) {
  JADE_ASSERT(groups >= 1 && groups <= n);
  std::vector<int> start(groups + 1, 0);
  for (int g = 0; g <= groups; ++g)
    start[g] = static_cast<int>((static_cast<long long>(n) * g) / groups);
  return start;
}

/// AoS xy pairs [lo, lo+count) -> SoA block [x(count), y(count)].
std::vector<double> pack_soa2(const std::vector<double>& aos, int lo,
                              int count) {
  std::vector<double> soa(2 * static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    soa[static_cast<std::size_t>(i)] = aos[2 * (lo + i)];
    soa[static_cast<std::size_t>(count + i)] = aos[2 * (lo + i) + 1];
  }
  return soa;
}

void unpack_soa2(std::span<const double> soa, int lo, int count,
                 std::vector<double>& aos) {
  for (int i = 0; i < count; ++i) {
    aos[2 * (lo + i)] = soa[static_cast<std::size_t>(i)];
    aos[2 * (lo + i) + 1] = soa[static_cast<std::size_t>(count + i)];
  }
}

}  // namespace

BhState make_bodies(const BhConfig& config) {
  BhState s;
  s.n = config.bodies;
  s.pos.resize(2 * static_cast<std::size_t>(s.n));
  s.vel.assign(2 * static_cast<std::size_t>(s.n), 0.0);
  s.mass.resize(static_cast<std::size_t>(s.n));
  Rng rng(config.seed);
  for (double& p : s.pos) p = rng.next_double(0.0, config.box);
  for (double& m : s.mass) m = rng.next_double(0.5, 2.0);
  return s;
}

void bh_run_serial(const BhConfig& config, BhState& state) {
  // Same SoA kernels and helpers as the Jade task bodies, over the full
  // body range — engine results are bit-identical by construction (the
  // AoS<->SoA conversions at the edges are exact copies).
  const int n = state.n;
  const auto un = static_cast<std::size_t>(n);
  std::vector<double> tree(tree_capacity(n));
  simd::AlignedBuffer<double> lanes(6 * un);
  double* xs = lanes.data();
  double* ys = xs + un;
  double* vx = ys + un;
  double* vy = vx + un;
  double* fx = vy + un;
  double* fy = fx + un;
  for (int i = 0; i < n; ++i) {
    xs[i] = state.pos[2 * i];
    ys[i] = state.pos[2 * i + 1];
    vx[i] = state.vel[2 * i];
    vy[i] = state.vel[2 * i + 1];
  }
  for (int t = 0; t < config.timesteps; ++t) {
    build_tree(xs, ys, state.mass.data(), n, config.box, tree.data());
    forces_range(tree.data(), xs, ys, n, config.theta, fx, fy);
    kernels::bh_integrate_soa(n, config.dt, fx, fy, state.mass.data(), xs,
                              ys, vx, vy);
  }
  for (int i = 0; i < n; ++i) {
    state.pos[2 * i] = xs[i];
    state.pos[2 * i + 1] = ys[i];
    state.vel[2 * i] = vx[i];
    state.vel[2 * i + 1] = vy[i];
  }
}

double bh_checksum(const BhState& state) {
  double acc = 0;
  for (std::size_t i = 0; i < state.pos.size(); ++i)
    acc += state.pos[i] + 0.25 * state.vel[i];
  return acc;
}

JadeBh upload_bh(Runtime& rt, const BhConfig& config, const BhState& state) {
  JadeBh w;
  w.config = config;
  w.group_start = make_group_starts(config.bodies, config.groups);
  for (int g = 0; g < config.groups; ++g) {
    const int lo = w.group_start[g];
    const int hi = w.group_start[g + 1];
    w.pos_groups.push_back(rt.alloc_init<double>(
        pack_soa2(state.pos, lo, hi - lo), "bhpos" + std::to_string(g)));
    w.force_groups.push_back(rt.alloc<double>(
        2 * static_cast<std::size_t>(hi - lo), "bhforce" + std::to_string(g)));
  }
  w.mass = rt.alloc_init<double>(state.mass, "mass");
  w.vel = rt.alloc_init<double>(pack_soa2(state.vel, 0, state.n), "bhvel");
  w.tree = rt.alloc<double>(tree_capacity(config.bodies), "bhtree");
  return w;
}

void bh_run_jade(TaskContext& ctx, const JadeBh& w) {
  const BhConfig config = w.config;
  const auto group_start = w.group_start;
  const auto pos_groups = w.pos_groups;
  const auto force_groups = w.force_groups;
  const auto mass = w.mass;
  const auto vel = w.vel;
  const auto tree = w.tree;
  const int n = config.bodies;

  for (int step = 0; step < config.timesteps; ++step) {
    // Serial tree build (O(n log n), small next to the force phase).
    ctx.withonly(
        [&](AccessDecl& d) {
          for (const auto& p : pos_groups) d.rd(p);
          d.rd(mass);
          d.rd_wr(tree);
        },
        [pos_groups, group_start, mass, tree, config, n](TaskContext& t) {
          t.charge(40.0 * n);
          // Gather the SoA group payloads into full x/y lanes.
          const auto un = static_cast<std::size_t>(n);
          simd::AlignedBuffer<double> lanes(2 * un);
          double* xs = lanes.data();
          double* ys = xs + un;
          for (std::size_t g = 0; g < pos_groups.size(); ++g) {
            auto span = t.read(pos_groups[g]);
            const auto uc =
                static_cast<std::size_t>(group_start[g + 1] - group_start[g]);
            std::copy_n(span.data(), uc, xs + group_start[g]);
            std::copy_n(span.data() + uc, uc, ys + group_start[g]);
          }
          build_tree(xs, ys, t.read(mass).data(), n, config.box,
                     t.read_write(tree).data());
        },
        "BuildTree(s" + std::to_string(step) + ")");

    // Parallel force phase: each group walks the shared tree.
    for (int g = 0; g < config.groups; ++g) {
      const int lo = group_start[g];
      const int hi = group_start[g + 1];
      const auto pg = pos_groups[g];
      const auto fg = force_groups[g];
      ctx.withonly(
          [&](AccessDecl& d) {
            d.rd(tree);
            d.rd(pg);
            d.wr(fg);
          },
          [tree, pg, fg, lo, hi, config](TaskContext& t) {
            auto pos = t.read(pg);
            auto force = t.write(fg);
            const auto count = static_cast<std::size_t>(hi - lo);
            const int visits = forces_range(
                t.read(tree).data(), pos.data(), pos.data() + count, hi - lo,
                config.theta, force.data(), force.data() + count);
            t.charge(config.flops_per_visit * visits);
          },
          "BhForces(g" + std::to_string(g) + ",s" + std::to_string(step) +
              ")");
    }

    // Serial integration.
    ctx.withonly(
        [&](AccessDecl& d) {
          for (const auto& f : force_groups) d.rd(f);
          for (const auto& p : pos_groups) d.rd_wr(p);
          d.rd(mass);
          d.rd_wr(vel);
        },
        [pos_groups, force_groups, group_start, mass, vel, config,
         n](TaskContext& t) {
          t.charge(12.0 * n);
          auto vels = t.read_write(vel);
          auto masses = t.read(mass);
          const auto un = static_cast<std::size_t>(n);
          for (std::size_t g = 0; g < pos_groups.size(); ++g) {
            const int lo = group_start[g];
            const auto count =
                static_cast<std::size_t>(group_start[g + 1] - lo);
            auto force = t.read(force_groups[g]);
            auto pos = t.read_write(pos_groups[g]);
            kernels::bh_integrate_soa(
                static_cast<int>(count), config.dt, force.data(),
                force.data() + count, masses.data() + lo, pos.data(),
                pos.data() + count, vels.data() + lo, vels.data() + un + lo);
          }
        },
        "BhIntegrate(s" + std::to_string(step) + ")");
  }
}

BhState download_bh(Runtime& rt, const JadeBh& w) {
  BhState s;
  s.n = w.config.bodies;
  s.pos.resize(2 * static_cast<std::size_t>(s.n));
  for (std::size_t g = 0; g < w.pos_groups.size(); ++g) {
    const int lo = w.group_start[g];
    unpack_soa2(rt.get(w.pos_groups[g]), lo, w.group_start[g + 1] - lo,
                s.pos);
  }
  s.vel.resize(2 * static_cast<std::size_t>(s.n));
  unpack_soa2(rt.get(w.vel), 0, s.n, s.vel);
  s.mass = rt.get(w.mass);
  return s;
}

}  // namespace jade::apps
