// jmake — the paper's parallel make (Section 7.1).
//
// "In the Jade version of this program, the body of this loop is enclosed
// in a withonly-do construct that declares which files each recompilation
// command will access. ... The dynamic parallelism available in the
// recompilation process defeats static analysis: it depends on the makefile
// and on the modification dates of the files it accesses."
//
// Files are shared objects holding (timestamp, content hash).  Each
// out-of-date rule becomes one task that reads its dependency files and
// rewrites its target.  Disk bandwidth — the paper's stated limiter — is a
// shared "disk" object accessed with the commuting-update extension: each
// command acquires the disk exclusively for its I/O portion and releases it
// early with no_cm, so I/O serializes while compilation overlaps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jade/core/runtime.hpp"

namespace jade::apps {

struct MakeRule {
  int target = -1;            ///< file index this rule builds
  std::vector<int> deps;      ///< file indices it reads
  double compute_work = 1e5;  ///< compile cost (charge units)
  double io_work = 2e4;       ///< disk cost (charged while holding the disk)
};

struct Makefile {
  int files = 0;
  std::vector<std::string> names;
  std::vector<MakeRule> rules;  ///< topologically ordered, like a real make
  /// Initial timestamps per file; sources have times, derived files may be
  /// stale (0) or fresh.
  std::vector<std::int64_t> initial_mtime;
};

/// A chain a -> b -> c -> ... (no parallelism; the pathological case).
Makefile chain_makefile(int length);
/// n independent sources each compiled to an object (maximal parallelism).
Makefile wide_makefile(int n);
/// The classic project shape: n sources -> n objects -> 1 library -> k
/// binaries.
Makefile project_makefile(int sources, int binaries);
/// Random DAG with the given edge density; deterministic in seed.
Makefile random_makefile(int files, double density, std::uint64_t seed);

/// Marks a subset of sources "touched" (fresh mtimes) so only part of the
/// build is out of date — the incremental-rebuild scenario.
void touch_sources(Makefile& mf, double fraction, std::uint64_t seed);

/// Advances every derived file's mtime to a consistent fully-built state
/// (each target newer than its newest dependency), as left behind by a
/// successful build.  Combine with touch_sources for incremental rebuilds.
void mark_built(Makefile& mf);

/// Host-side serial make: returns final (mtime, hash) per file.
struct BuildResult {
  std::vector<std::int64_t> mtime;
  std::vector<std::uint64_t> hash;
  int commands_run = 0;
};
BuildResult make_serial(const Makefile& mf);

/// Jade version: uploads file objects, runs the build loop creating one
/// task per out-of-date command, downloads the result.
struct JadeMake {
  Makefile mf;
  std::vector<SharedRef<std::int64_t>> files;  ///< [mtime, hash-as-int64]
  SharedRef<std::int64_t> disk;                ///< bandwidth token object
};
JadeMake upload_make(Runtime& rt, const Makefile& mf);
/// Creates the build tasks (call inside rt.run()); `commands_run` receives
/// the number of commands executed (decided dynamically from mtimes).
void make_jade(TaskContext& ctx, const JadeMake& jm, int* commands_run);
BuildResult download_make(Runtime& rt, const JadeMake& jm);

/// Conservative variant: one task per rule regardless of staleness, each
/// declaring rd_wr on its target, and the *body* stats the files and decides
/// whether the command runs — the shape a make has before it knows what is
/// out of date, and exactly the over-approximate write declarations
/// speculation feeds on (up-to-date commands never exercise the write).
/// Unlike make_jade it skips the shared disk token: a commuting acquisition
/// cannot run under a snapshot.
void make_jade_conservative(TaskContext& ctx, const JadeMake& jm);

}  // namespace jade::apps
