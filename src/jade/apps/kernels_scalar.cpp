// Scalar kernel baselines — the pre-SoA idiom, preserved verbatim so
// bench_kernels can put a number on the layout rework and so the SoA kernels
// have a reference to be verified against.
//
// This translation unit is compiled with auto-vectorization disabled (see
// src/CMakeLists.txt): these loops measure what the app bodies used to do —
// AoS layouts, per-pair branches, the original two-division force — not what
// the compiler could salvage from them.
#include <cmath>

#include "jade/apps/kernels.hpp"

namespace jade::apps::kernels {

namespace {

/// The original pair force: smoothed inverse-square, two divisions.
inline void pair_force(const double* pa, const double* pb, double* f_out) {
  const double dx = pb[0] - pa[0];
  const double dy = pb[1] - pa[1];
  const double dz = pb[2] - pa[2];
  const double r2 = dx * dx + dy * dy + dz * dz + 0.25;
  const double inv = 1.0 / (r2 * std::sqrt(r2));
  const double s = inv * (1.0 - 2.0 / r2);
  f_out[0] += s * dx;
  f_out[1] += s * dy;
  f_out[2] += s * dz;
}

}  // namespace

void water_forces_scalar(const double* pos, int n, int lo, int hi,
                         double* force) {
  for (int i = lo; i < hi; ++i) {
    double f[3] = {0, 0, 0};
    const double* pi = pos + 3 * i;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      pair_force(pi, pos + 3 * j, f);
    }
    force[3 * (i - lo) + 0] = f[0];
    force[3 * (i - lo) + 1] = f[1];
    force[3 * (i - lo) + 2] = f[2];
  }
}

void water_integrate_scalar(int count, double dt, const double* force,
                            double* pos, double* vel) {
  for (int i = 0; i < 3 * count; ++i) {
    vel[i] += force[i] * dt;
    pos[i] += vel[i] * dt;
  }
}

void bh_integrate_scalar(int count, double dt, const double* force,
                         const double* mass, double* pos, double* vel) {
  for (int i = 0; i < count; ++i) {
    vel[2 * i] += force[2 * i] / mass[i] * dt;
    vel[2 * i + 1] += force[2 * i + 1] / mass[i] * dt;
    pos[2 * i] += vel[2 * i] * dt;
    pos[2 * i + 1] += vel[2 * i + 1] * dt;
  }
}

void cholesky_scale_column_scalar(double* vals, std::size_t len, double d) {
  for (std::size_t k = 1; k < len; ++k) vals[k] /= d;
}

void backsubst_apply_column_scalar(const double* col_vals, const int* rows,
                                   int count, int j, int n, int nrhs,
                                   double* x) {
  for (int v = 0; v < nrhs; ++v) {
    double* xv = x + static_cast<std::size_t>(v) * n;
    xv[j] /= col_vals[0];
    for (int k = 0; k < count; ++k)
      xv[rows[k]] -= col_vals[1 + k] * xv[j];
  }
}

void relax_row_scalar(const double* up, const double* mid, const double* down,
                      int cols, double omega, double* out) {
  for (int j = 0; j < cols; ++j) {
    if (j == 0 || j == cols - 1) {
      out[j] = mid[j];
      continue;
    }
    out[j] = (1.0 - omega) * mid[j] +
             omega * 0.25 * ((up[j] + down[j]) + (mid[j - 1] + mid[j + 1]));
  }
}

}  // namespace jade::apps::kernels
