// Barnes-Hut N-body (paper Section 7: "we have implemented several
// computational kernels, including ... the Barnes-Hut algorithm for solving
// the N-body problem").
//
// 2-D version: per timestep a serial task builds the quadtree (reading all
// position groups, writing the flattened tree object), parallel tasks
// compute per-group forces by walking the tree (rd tree, wr force group),
// and a serial task integrates.  The same grouped-object structure as LWS,
// but with a shared read-mostly tree exercising wide replication.
//
// Data layout: position/force group payloads are SoA [x(count), y(count)]
// and the velocity object [vx(n), vy(n)], so the integrate kernel
// vectorizes (src/jade/apps/kernels_soa.cpp).  The tree walk is irregular
// and stays scalar.  Byte sizes and the task graph are unchanged by the
// layout; host-side BhState stays AoS xy pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "jade/core/runtime.hpp"

namespace jade::apps {

struct BhConfig {
  int bodies = 512;
  int groups = 8;
  int timesteps = 2;
  double box = 100.0;
  double theta = 0.5;  ///< opening angle
  double dt = 1e-2;
  std::uint64_t seed = 31;
  double flops_per_visit = 20.0;
};

struct BhState {
  int n = 0;
  std::vector<double> pos;   ///< 2n (x, y)
  std::vector<double> vel;   ///< 2n
  std::vector<double> mass;  ///< n
};

BhState make_bodies(const BhConfig& config);
void bh_run_serial(const BhConfig& config, BhState& state);
double bh_checksum(const BhState& state);

struct JadeBh {
  BhConfig config;
  std::vector<SharedRef<double>> pos_groups;   ///< SoA [x(c), y(c)]
  std::vector<SharedRef<double>> force_groups;  ///< SoA [fx(c), fy(c)]
  SharedRef<double> mass;
  SharedRef<double> vel;  ///< SoA [vx(n), vy(n)]
  SharedRef<double> tree;  ///< flattened quadtree nodes
  std::vector<int> group_start;
};

JadeBh upload_bh(Runtime& rt, const BhConfig& config, const BhState& state);
void bh_run_jade(TaskContext& ctx, const JadeBh& w);
BhState download_bh(Runtime& rt, const JadeBh& w);

}  // namespace jade::apps
