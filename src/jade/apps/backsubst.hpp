// Back substitution over a Jade-factored matrix — the paper's Section 4
// example.  Two variants:
//
//   * the Section 4.1 form: one task declaring rd on every column, which
//     cannot start until the whole factorization is done (no overlap);
//   * the Section 4.2 form: df_rd on every column, converting each to rd
//     just before use and retiring it with no_rd right after — pipelining
//     the substitution with the factorization.
//
// The forward solve (L y = b) consumes columns in exactly the order the
// factorization produces them, so the pipelined variant overlaps nearly the
// whole substitution; bench_pipeline_backsubst measures the gain.
#pragma once

#include "jade/apps/cholesky.hpp"

namespace jade::apps {

/// Creates one task solving L * y = b in place of `x` (which must hold b).
/// With `pipelined` false this is the Section 4.1 task; with true, the
/// Section 4.2 deferred/convert/retire pipeline.  `rhs_count` models
/// solving that many right-hand sides per column visit (the arithmetic is
/// performed once; the remaining cost is charged), which is how the bench
/// gives the substitution weight comparable to the factorization.
void forward_solve_jade(TaskContext& ctx, const JadeSparse& m,
                        SharedRef<double> x, bool pipelined,
                        int rhs_count = 1);

/// Creates one task solving L^T * x = y in place (consumes columns right to
/// left, so it cannot pipeline with a left-to-right factorization).
void backward_solve_jade(TaskContext& ctx, const JadeSparse& m,
                         SharedRef<double> x);

/// Flop estimate per column application, mirrored by the tasks' charges.
double solve_column_flops(const std::vector<int>& col_ptr, int j);

/// Multi-RHS forward solve, SoA layout: `x` holds nrhs right-hand sides
/// RHS-major (x[row * nrhs + v]), so applying a factored column touches
/// nrhs contiguous lanes per row — the vectorizable layout
/// (kernels::backsubst_apply_column_soa).  Bit-identical to solving each
/// RHS separately with forward_solve (the per-lane operation sequence is
/// unchanged).  Solves in place.
void forward_solve_multi_serial(const SparseMatrix& l, int nrhs,
                                std::vector<double>& x);

/// Jade variant: one task, same pipelined df_rd/convert/retire structure as
/// forward_solve_jade, but the nrhs solves are computed (not charged) via
/// the SoA kernel.  `x` must hold n*nrhs doubles, RHS-major.
void forward_solve_multi_jade(TaskContext& ctx, const JadeSparse& m,
                              SharedRef<double> x, int nrhs,
                              bool pipelined);

}  // namespace jade::apps
