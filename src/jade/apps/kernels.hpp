// Inner kernel bodies of the compute apps, in two builds each:
//
//   *_scalar   the pre-SoA idiom (AoS layouts, per-element branches, the
//              original arithmetic) compiled with vectorization disabled —
//              the baseline bench_kernels measures against, and the scalar
//              fallback reference the SoA kernels are verified to match.
//   *_soa      structure-of-arrays layouts with JADE_VEC_LOOP inner loops,
//              compiled in kernels_soa.cpp with -fno-math-errno so GCC/Clang
//              auto-vectorize them (tools/check_vectorization.py proves it).
//
// The SoA kernels are the canonical ones: serial references and Jade task
// bodies both call them, so engine-vs-serial comparisons stay bit-identical
// by construction.  Where the SoA kernel keeps the exact per-element
// operation sequence of the scalar one (cholesky_scale_column, integrations,
// relax rows, multi-RHS solves) the two agree to the bit; the water pair
// force is algebraically rearranged (one division instead of two) and agrees
// to relative 1e-12 (asserted in bench_kernels).
#pragma once

#include <cstddef>

namespace jade::apps::kernels {

// --- water: O(n^2) pairwise forces -----------------------------------------

/// Original scalar kernel: AoS xyz triples, `j == i` skip branch, the
/// two-division force expression.  Forces for molecules [lo, hi) of `n`
/// land at force[3*(i-lo)].
void water_forces_scalar(const double* pos, int n, int lo, int hi,
                         double* force);

/// SoA kernel: positions as x/y/z lanes of length n; forces for [lo, hi)
/// land in fx/fy/fz[0..hi-lo).  Per-molecule accumulation order over j is
/// ascending and independent of [lo, hi), so any grouping produces
/// bit-identical forces.  The self term contributes an exact ±0.0, so the
/// lane loop carries no branch.
void water_forces_soa(const double* xs, const double* ys, const double* zs,
                      int n, int lo, int hi, double* fx, double* fy,
                      double* fz);

/// SoA leapfrog update for `count` molecules: v += f*dt; p += v*dt, one
/// lane per coordinate.  Exactly the per-element operations of the scalar
/// integrate, so results match the AoS version bit-for-bit.
void water_integrate_soa(int count, double dt, const double* fx,
                         const double* fy, const double* fz, double* px,
                         double* py, double* pz, double* vx, double* vy,
                         double* vz);

/// Scalar baseline of the integrate (AoS 3n triples).
void water_integrate_scalar(int count, double dt, const double* force,
                            double* pos, double* vel);

// --- barnes-hut: integration (the tree walk stays scalar) -------------------

/// SoA 2-D leapfrog with per-body mass: v += f/m*dt; p += v*dt.
void bh_integrate_soa(int count, double dt, const double* fx,
                      const double* fy, const double* mass, double* px,
                      double* py, double* vx, double* vy);

/// Scalar baseline (AoS 2n pairs, the original loop).
void bh_integrate_scalar(int count, double dt, const double* force,
                         const double* mass, double* pos, double* vel);

// --- cholesky: column scaling ------------------------------------------------

/// Divides vals[1..len) by d in place (the InternalUpdate tail).  Element-
/// wise, so the vectorized form is bit-identical to the scalar one.
void cholesky_scale_column_soa(double* vals, std::size_t len, double d);
void cholesky_scale_column_scalar(double* vals, std::size_t len, double d);

// --- backsubst: multi-RHS forward solve --------------------------------------

/// Applies factored column j to an RHS-major solution block x
/// (x[row*nrhs + v]): x[j][*] /= diag, then x[rows[k]][*] -= c_k * x[j][*].
/// The RHS lanes are independent, contiguous, and vectorize; per lane the
/// operation sequence equals the single-RHS scalar solve, so the block
/// solve is bit-identical to nrhs separate scalar solves.
void backsubst_apply_column_soa(const double* col_vals, const int* rows,
                                int count, int j, int nrhs, double* x);

/// Scalar baseline: one RHS at a time over per-RHS contiguous vectors
/// (x_of_v[row] = x[v*n + row], the pre-SoA layout).
void backsubst_apply_column_scalar(const double* col_vals, const int* rows,
                                   int count, int j, int n, int nrhs,
                                   double* x);

// --- relax: weighted-Jacobi stencil row --------------------------------------

/// One interior row of the weighted-Jacobi sweep:
///   out[j] = (1-omega)*mid[j] + omega*0.25*((up[j]+down[j]) +
///            (mid[j-1]+mid[j+1]))
/// with the two boundary columns copied through.  `out` must not alias any
/// input (double-buffered sweeps guarantee it).
void relax_row_soa(const double* up, const double* mid, const double* down,
                   int cols, double omega, double* out);

/// Scalar baseline: per-cell loop with the boundary branch inside.
void relax_row_scalar(const double* up, const double* mid, const double* down,
                      int cols, double omega, double* out);

}  // namespace jade::apps::kernels
