#include "jade/apps/jmake.hpp"

#include <algorithm>

#include "jade/support/error.hpp"
#include "jade/support/rng.hpp"

namespace jade::apps {

namespace {

std::uint64_t mix_hash(std::uint64_t acc, std::uint64_t v) {
  acc ^= v + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  return acc;
}

bool is_source(const Makefile& mf, int file) {
  return std::none_of(mf.rules.begin(), mf.rules.end(),
                      [file](const MakeRule& r) { return r.target == file; });
}

/// Decides which rules run, exactly as make does from the initial stats:
/// a target rebuilds when it does not exist, a dependency is newer, or a
/// dependency itself rebuilds.
std::vector<bool> plan(const Makefile& mf) {
  std::vector<bool> rebuild(mf.files, false);
  for (const MakeRule& r : mf.rules) {
    bool need = mf.initial_mtime[r.target] == 0;
    for (int dep : r.deps) {
      if (rebuild[dep] || mf.initial_mtime[dep] > mf.initial_mtime[r.target])
        need = true;
    }
    rebuild[r.target] = need;
  }
  return rebuild;
}

/// The recompilation command's effect on the file system model.
void run_command(const MakeRule& r, std::vector<std::int64_t>& mtime,
                 std::vector<std::uint64_t>& hash) {
  std::int64_t newest = 0;
  std::uint64_t h = 0x1234u + static_cast<std::uint64_t>(r.target);
  for (int dep : r.deps) {
    newest = std::max(newest, mtime[dep]);
    h = mix_hash(h, hash[dep]);
  }
  mtime[r.target] = newest + 1;
  hash[r.target] = h;
}

}  // namespace

Makefile chain_makefile(int length) {
  JADE_ASSERT(length >= 2);
  Makefile mf;
  mf.files = length;
  for (int i = 0; i < length; ++i) mf.names.push_back("f" + std::to_string(i));
  mf.initial_mtime.assign(length, 0);
  mf.initial_mtime[0] = 100;  // the one source
  for (int i = 1; i < length; ++i)
    mf.rules.push_back(MakeRule{i, {i - 1}, 1e5, 2e4});
  return mf;
}

Makefile wide_makefile(int n) {
  JADE_ASSERT(n >= 1);
  Makefile mf;
  mf.files = 2 * n;
  mf.initial_mtime.assign(2 * n, 0);
  for (int i = 0; i < n; ++i) {
    mf.names.push_back("src" + std::to_string(i));
    mf.initial_mtime[i] = 100 + i;
  }
  for (int i = 0; i < n; ++i) {
    mf.names.push_back("obj" + std::to_string(i));
    mf.rules.push_back(MakeRule{n + i, {i}, 1e5, 2e4});
  }
  return mf;
}

Makefile project_makefile(int sources, int binaries) {
  JADE_ASSERT(sources >= 1 && binaries >= 1);
  Makefile mf;
  // Layout: [0,s) sources, [s,2s) objects, 2s library, 2s+1.. binaries.
  const int s = sources;
  mf.files = 2 * s + 1 + binaries;
  mf.initial_mtime.assign(mf.files, 0);
  for (int i = 0; i < s; ++i) {
    mf.names.push_back("src" + std::to_string(i));
    mf.initial_mtime[i] = 100 + i;
  }
  for (int i = 0; i < s; ++i) {
    mf.names.push_back("obj" + std::to_string(i));
    mf.rules.push_back(MakeRule{s + i, {i}, 1.5e5, 2e4});
  }
  mf.names.push_back("libproject");
  MakeRule lib;
  lib.target = 2 * s;
  for (int i = 0; i < s; ++i) lib.deps.push_back(s + i);
  lib.compute_work = 0.5e5;
  lib.io_work = 8e4;  // archiving is I/O heavy
  mf.rules.push_back(lib);
  for (int b = 0; b < binaries; ++b) {
    mf.names.push_back("bin" + std::to_string(b));
    mf.rules.push_back(MakeRule{2 * s + 1 + b, {2 * s}, 1e5, 4e4});
  }
  return mf;
}

Makefile random_makefile(int files, double density, std::uint64_t seed) {
  JADE_ASSERT(files >= 2);
  Rng rng(seed);
  Makefile mf;
  mf.files = files;
  mf.initial_mtime.assign(files, 0);
  const int sources = std::max(1, files / 4);
  for (int i = 0; i < files; ++i) {
    mf.names.push_back("f" + std::to_string(i));
    if (i < sources) mf.initial_mtime[i] = 100 + i;
  }
  for (int i = sources; i < files; ++i) {
    MakeRule r;
    r.target = i;
    for (int d = 0; d < i; ++d)
      if (rng.next_bool(density)) r.deps.push_back(d);
    if (r.deps.empty())
      r.deps.push_back(static_cast<int>(rng.next_below(i)));
    r.compute_work = 0.5e5 + rng.next_double() * 2e5;
    r.io_work = 1e4 + rng.next_double() * 4e4;
    mf.rules.push_back(std::move(r));
  }
  return mf;
}

void touch_sources(Makefile& mf, double fraction, std::uint64_t seed) {
  Rng rng(seed);
  std::int64_t now = 10000;
  for (int f = 0; f < mf.files; ++f)
    if (is_source(mf, f) && rng.next_bool(fraction))
      mf.initial_mtime[f] = now++;
}

void mark_built(Makefile& mf) {
  for (const MakeRule& r : mf.rules) {
    std::int64_t newest = 0;
    for (int dep : r.deps) newest = std::max(newest, mf.initial_mtime[dep]);
    mf.initial_mtime[r.target] = newest + 1;
  }
}

BuildResult make_serial(const Makefile& mf) {
  BuildResult out;
  out.mtime = mf.initial_mtime;
  out.hash.assign(mf.files, 0);
  for (int f = 0; f < mf.files; ++f)
    if (is_source(mf, f))
      out.hash[f] = 0x51ceull + static_cast<std::uint64_t>(f);
  const auto todo = plan(mf);
  for (const MakeRule& r : mf.rules) {
    if (!todo[r.target]) continue;
    run_command(r, out.mtime, out.hash);
    ++out.commands_run;
  }
  return out;
}

JadeMake upload_make(Runtime& rt, const Makefile& mf) {
  JadeMake jm;
  jm.mf = mf;
  for (int f = 0; f < mf.files; ++f) {
    auto ref = rt.alloc<std::int64_t>(2, mf.names[f]);
    const std::int64_t init[2] = {
        mf.initial_mtime[f],
        is_source(mf, f)
            ? static_cast<std::int64_t>(0x51ceull +
                                        static_cast<std::uint64_t>(f))
            : 0};
    rt.put<std::int64_t>(ref, init);
    jm.files.push_back(ref);
  }
  jm.disk = rt.alloc<std::int64_t>(1, "disk");
  return jm;
}

void make_jade(TaskContext& ctx, const JadeMake& jm, int* commands_run) {
  const auto todo = plan(jm.mf);
  int count = 0;
  for (const MakeRule& r : jm.mf.rules) {
    // The dynamic, data-dependent decision the paper highlights: whether a
    // command runs depends on the makefile and the files' modification
    // dates, which no static analysis can see.
    if (!todo[r.target]) continue;
    ++count;
    const auto target = jm.files[r.target];
    std::vector<SharedRef<std::int64_t>> deps;
    for (int dep : r.deps) deps.push_back(jm.files[dep]);
    const auto disk = jm.disk;
    const MakeRule rule = r;
    ctx.withonly(
        [&](AccessDecl& d) {
          d.rd_wr(target);
          for (const auto& dep : deps) d.rd(dep);
          d.cm(disk);
        },
        [target, deps, disk, rule](TaskContext& t) {
          // Compile phase: CPU-bound, fully overlappable.
          t.charge(rule.compute_work);
          std::int64_t newest = 0;
          std::uint64_t h = 0x1234u + static_cast<std::uint64_t>(rule.target);
          for (const auto& dep : deps) {
            auto dh = t.read(dep);
            newest = std::max(newest, dh[0]);
            h = mix_hash(h, static_cast<std::uint64_t>(dh[1]));
          }
          // I/O phase: takes the disk exclusively, then releases it early
          // so compilation of other commands overlaps only with compute.
          (void)t.commute(disk);
          t.charge(rule.io_work);
          auto th = t.read_write(target);
          th[0] = newest + 1;
          th[1] = static_cast<std::int64_t>(h);
          t.with_cont([&](AccessDecl& d) { d.no_cm(disk); });
        },
        "make(" + jm.mf.names[rule.target] + ")");
  }
  if (commands_run != nullptr) *commands_run = count;
}

void make_jade_conservative(TaskContext& ctx, const JadeMake& jm) {
  // The stat cost: reading the target's and dependencies' modification
  // dates, charged whether or not the command runs.
  constexpr double kStatWork = 2e4;
  for (const MakeRule& r : jm.mf.rules) {
    const auto target = jm.files[r.target];
    std::vector<SharedRef<std::int64_t>> deps;
    for (int dep : r.deps) deps.push_back(jm.files[dep]);
    const MakeRule rule = r;
    ctx.withonly(
        [&](AccessDecl& d) {
          d.rd_wr(target);
          for (const auto& dep : deps) d.rd(dep);
        },
        [target, deps, rule](TaskContext& t) {
          t.charge(kStatWork);
          std::int64_t newest = 0;
          std::uint64_t h = 0x1234u + static_cast<std::uint64_t>(rule.target);
          for (const auto& dep : deps) {
            auto dh = t.read(dep);
            newest = std::max(newest, dh[0]);
            h = mix_hash(h, static_cast<std::uint64_t>(dh[1]));
          }
          // Up-to-date targets are only *read* (a stat); the conservative
          // write declaration stays unexercised.
          if (t.read(target)[0] != 0 && newest <= t.read(target)[0]) return;
          t.charge(rule.compute_work + rule.io_work);
          auto th = t.read_write(target);
          th[0] = newest + 1;
          th[1] = static_cast<std::int64_t>(h);
        },
        "make(" + jm.mf.names[rule.target] + ")");
  }
}

BuildResult download_make(Runtime& rt, const JadeMake& jm) {
  BuildResult out;
  out.mtime.resize(jm.mf.files);
  out.hash.resize(jm.mf.files);
  for (int f = 0; f < jm.mf.files; ++f) {
    const auto v = rt.get(jm.files[f]);
    out.mtime[f] = v[0];
    out.hash[f] = static_cast<std::uint64_t>(v[1]);
  }
  return out;
}

}  // namespace jade::apps
