// Digital image processing on the HRV workstation (paper Section 7.2).
//
// "A SPARC-based workstation uses a camera to capture and compress in
// hardware a sequence of video frames.  It passes each frame to one of the
// i860-based graphics accelerators, which decompresses the frames in
// software, applies a simple digital transformation, and displays the frame
// on the HDTV monitor.  The Jade version of this program consists of a loop
// with two withonly-do constructs."
//
// The reproduction keeps exactly that structure: per frame, a capture task
// pinned to the frame-source machine (serialized by rd_wr on the camera
// object — one camera) and a transform task pinned to an accelerator.
// Because the SPARC host is big-endian and the i860 accelerators are
// little-endian in the HRV preset, every frame transfer exercises the
// runtime's data-format conversion.
#pragma once

#include <cstdint>
#include <vector>

#include "jade/core/runtime.hpp"

namespace jade::apps {

struct VideoConfig {
  int frames = 32;
  int width = 64;
  int height = 48;
  double capture_work = 4e5;    ///< hardware capture+compress cost
  double transform_work = 2e6;  ///< software decompress+transform cost
  std::uint64_t seed = 7;
};

/// Serial reference: per-frame checksums after the transformation.
std::vector<std::uint64_t> video_serial(const VideoConfig& config);

struct JadeVideo {
  VideoConfig config;
  SharedRef<std::int32_t> camera;           ///< [next frame number]
  std::vector<SharedRef<std::int32_t>> raw; ///< captured frames
  std::vector<SharedRef<std::int32_t>> out; ///< transformed frames
};

JadeVideo upload_video(Runtime& rt, const VideoConfig& config);

/// Creates the capture/transform pipeline.  `accelerators` is the number of
/// accelerator machines; machine 0 is the frame source and accelerators are
/// machines 1..accelerators (matching presets::hrv).
void video_jade(TaskContext& ctx, const JadeVideo& v, int accelerators);

/// Per-frame checksums of the transformed frames (compare to video_serial).
std::vector<std::uint64_t> download_video(Runtime& rt, const JadeVideo& v);

}  // namespace jade::apps
