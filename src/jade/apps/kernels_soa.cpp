// SoA kernel bodies — the vectorized halves of kernels.hpp.
//
// This translation unit is compiled with `-O3 -fno-math-errno` (see
// src/CMakeLists.txt): errno-free sqrt is what lets GCC vectorize the water
// inner loop without -ffast-math, and nothing here inspects errno.  Every
// loop below that must vectorize carries a `// VEC:<tag>` marker on the
// line before its JADE_VEC_LOOP annotation; tools/check_vectorization.py
// recompiles this file with -fopt-info-vec and fails if any tagged loop is
// missing from the vectorizer report.  No intrinsics: the scalar fallback
// on a compiler without the pragmas is this same code.
#include <cmath>

#include "jade/apps/kernels.hpp"
#include "jade/support/simd.hpp"

namespace jade::apps::kernels {

void water_forces_soa(const double* JADE_RESTRICT xs,
                      const double* JADE_RESTRICT ys,
                      const double* JADE_RESTRICT zs, int n, int lo, int hi,
                      double* JADE_RESTRICT fx, double* JADE_RESTRICT fy,
                      double* JADE_RESTRICT fz) {
  const int count = hi - lo;
  for (int i = 0; i < count; ++i) {
    fx[i] = 0.0;
    fy[i] = 0.0;
    fz[i] = 0.0;
  }
  const double* JADE_RESTRICT xg = xs + lo;
  const double* JADE_RESTRICT yg = ys + lo;
  const double* JADE_RESTRICT zg = zs + lo;
  // Loop interchange vs the scalar kernel: j outer, group lanes inner.  Per
  // accumulator the j contributions still arrive in ascending order, so the
  // result is independent of the grouping; the lanes are independent, so no
  // reduction reordering is needed for the compiler to vectorize.  The
  // self-interaction (lo + i == j) has dx = dy = dz = +0.0 exactly, hence
  // contributes s * 0.0 = ±0.0 — an exact no-op — and the skip branch of
  // the scalar kernel disappears from the lane loop.
  for (int j = 0; j < n; ++j) {
    const double xj = xs[j];
    const double yj = ys[j];
    const double zj = zs[j];
    // VEC:water_forces
    JADE_VEC_LOOP
    for (int i = 0; i < count; ++i) {
      const double dx = xj - xg[i];
      const double dy = yj - yg[i];
      const double dz = zj - zg[i];
      const double r2 = dx * dx + dy * dy + dz * dz + 0.25;
      // One division instead of the scalar kernel's two:
      //   inv*(1 - 2/r2) == (r2 - 2) / (r2^2 * sqrt(r2)).
      const double s = (r2 - 2.0) / (r2 * r2 * std::sqrt(r2));
      fx[i] += s * dx;
      fy[i] += s * dy;
      fz[i] += s * dz;
    }
  }
}

void water_integrate_soa(int count, double dt, const double* JADE_RESTRICT fx,
                         const double* JADE_RESTRICT fy,
                         const double* JADE_RESTRICT fz,
                         double* JADE_RESTRICT px, double* JADE_RESTRICT py,
                         double* JADE_RESTRICT pz, double* JADE_RESTRICT vx,
                         double* JADE_RESTRICT vy, double* JADE_RESTRICT vz) {
  // VEC:water_integrate
  JADE_VEC_LOOP
  for (int i = 0; i < count; ++i) {
    vx[i] += fx[i] * dt;
    px[i] += vx[i] * dt;
    vy[i] += fy[i] * dt;
    py[i] += vy[i] * dt;
    vz[i] += fz[i] * dt;
    pz[i] += vz[i] * dt;
  }
}

void bh_integrate_soa(int count, double dt, const double* JADE_RESTRICT fx,
                      const double* JADE_RESTRICT fy,
                      const double* JADE_RESTRICT mass,
                      double* JADE_RESTRICT px, double* JADE_RESTRICT py,
                      double* JADE_RESTRICT vx, double* JADE_RESTRICT vy) {
  // VEC:bh_integrate
  JADE_VEC_LOOP
  for (int i = 0; i < count; ++i) {
    vx[i] += fx[i] / mass[i] * dt;
    vy[i] += fy[i] / mass[i] * dt;
    px[i] += vx[i] * dt;
    py[i] += vy[i] * dt;
  }
}

void cholesky_scale_column_soa(double* JADE_RESTRICT vals, std::size_t len,
                               double d) {
  // VEC:cholesky_scale
  JADE_VEC_LOOP
  for (std::size_t k = 1; k < len; ++k) vals[k] /= d;
}

void backsubst_apply_column_soa(const double* JADE_RESTRICT col_vals,
                                const int* JADE_RESTRICT rows, int count,
                                int j, int nrhs, double* JADE_RESTRICT x) {
  double* JADE_RESTRICT xj = x + static_cast<std::size_t>(j) * nrhs;
  const double diag = col_vals[0];
  // VEC:backsubst_diag
  JADE_VEC_LOOP
  for (int v = 0; v < nrhs; ++v) xj[v] /= diag;
  for (int k = 0; k < count; ++k) {
    double* JADE_RESTRICT xr = x + static_cast<std::size_t>(rows[k]) * nrhs;
    const double c = col_vals[1 + k];
    // VEC:backsubst_axpy
    JADE_VEC_LOOP
    for (int v = 0; v < nrhs; ++v) xr[v] -= c * xj[v];
  }
}

void relax_row_soa(const double* JADE_RESTRICT up,
                   const double* JADE_RESTRICT mid,
                   const double* JADE_RESTRICT down, int cols, double omega,
                   double* JADE_RESTRICT out) {
  out[0] = mid[0];
  out[cols - 1] = mid[cols - 1];
  const double keep = 1.0 - omega;
  const double w = omega * 0.25;
  // VEC:relax_row
  JADE_VEC_LOOP
  for (int j = 1; j < cols - 1; ++j)
    out[j] =
        keep * mid[j] + w * ((up[j] + down[j]) + (mid[j - 1] + mid[j + 1]));
}

}  // namespace jade::apps::kernels
