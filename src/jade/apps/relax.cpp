#include "jade/apps/relax.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "jade/apps/kernels.hpp"
#include "jade/cluster/registry.hpp"
#include "jade/support/error.hpp"
#include "jade/support/rng.hpp"

namespace jade::apps {

namespace {

using cluster::get_ref;
using cluster::put_ref;

std::vector<int> make_strip_starts(int rows, int strips) {
  JADE_ASSERT(strips >= 1 && strips <= rows);
  std::vector<int> start(strips + 1, 0);
  for (int s = 0; s <= strips; ++s)
    start[s] = static_cast<int>((static_cast<long long>(rows) * s) / strips);
  return start;
}

/// One strip sweep.  Wire args: src strip ref, dst strip ref, optional
/// neighbor-strip refs (for the halo rows), the strip's global row range,
/// grid shape, omega, charge rate, pipelined flag.
///
/// In pipelined mode the neighbor strips were declared df_rd; the body
/// converts each to rd, copies the single halo row it needs, and
/// immediately retires the right with no_rd — so the *next* iteration's
/// writer of that neighbor strip is unblocked as soon as the copy lands,
/// while this task is still relaxing its own rows.  That early release is
/// the whole point of the workload (partial retirement under iteration).
const int kSweepStrip = cluster::BodyRegistry::instance().ensure(
    "relax.sweep_strip", [](TaskContext& t, WireReader& r) {
      const auto src = get_ref<double>(r);
      const auto dst = get_ref<double>(r);
      const bool has_up = r.get_u8() != 0;
      const auto up = has_up ? get_ref<double>(r) : SharedRef<double>();
      const bool has_down = r.get_u8() != 0;
      const auto down = has_down ? get_ref<double>(r) : SharedRef<double>();
      const int lo = static_cast<int>(r.get_u32());
      const int hi = static_cast<int>(r.get_u32());
      const int rows = static_cast<int>(r.get_u32());
      const int cols = static_cast<int>(r.get_u32());
      const double omega = r.get_f64();
      const double flops_per_cell = r.get_f64();
      const bool pipelined = r.get_u8() != 0;
      const auto ucols = static_cast<std::size_t>(cols);

      int interior = 0;
      for (int gr = lo; gr < hi; ++gr)
        if (gr > 0 && gr < rows - 1) ++interior;
      t.charge(interior * static_cast<double>(cols) * flops_per_cell +
               (hi - lo - interior) * static_cast<double>(cols));

      // Halo rows first: copy, then retire, then compute — the retire is
      // what lets the neighbor's next-iteration sweep start early.
      std::vector<double> halo_up(has_up ? ucols : 0);
      std::vector<double> halo_down(has_down ? ucols : 0);
      if (has_up) {
        if (pipelined) t.with_cont([&](AccessDecl& d) { d.rd(up); });
        auto span = t.read(up);
        std::copy_n(span.data() + (span.size() - ucols), ucols,
                    halo_up.data());
        if (pipelined) t.with_cont([&](AccessDecl& d) { d.no_rd(up); });
      }
      if (has_down) {
        if (pipelined) t.with_cont([&](AccessDecl& d) { d.rd(down); });
        auto span = t.read(down);
        std::copy_n(span.data(), ucols, halo_down.data());
        if (pipelined) t.with_cont([&](AccessDecl& d) { d.no_rd(down); });
      }

      auto in = t.read(src);
      auto out = t.write(dst);
      const int hn = hi - lo;
      for (int lr = 0; lr < hn; ++lr) {
        const int gr = lo + lr;
        const double* mid = in.data() + static_cast<std::size_t>(lr) * ucols;
        double* o = out.data() + static_cast<std::size_t>(lr) * ucols;
        if (gr == 0 || gr == rows - 1) {
          // Dirichlet boundary row: carried through unchanged.
          std::copy_n(mid, ucols, o);
          continue;
        }
        const double* up_row =
            lr == 0 ? halo_up.data() : mid - ucols;
        const double* down_row =
            lr == hn - 1 ? halo_down.data() : mid + ucols;
        kernels::relax_row_soa(up_row, mid, down_row, cols, omega, o);
      }
    });

}  // namespace

RelaxState make_relax(const RelaxConfig& config) {
  RelaxState s;
  s.rows = config.rows;
  s.cols = config.cols;
  s.grid.resize(static_cast<std::size_t>(config.rows) * config.cols);
  Rng rng(config.seed);
  for (double& v : s.grid) v = rng.next_double(-1.0, 1.0);
  return s;
}

void relax_run_serial(const RelaxConfig& config, RelaxState& state) {
  // Same kernels, same double-buffered sweep structure as the Jade version
  // (which only adds strip-boundary halo *copies* — exact, so the engines
  // reproduce this bit-for-bit).
  const int rows = state.rows;
  const int cols = state.cols;
  const auto ucols = static_cast<std::size_t>(cols);
  std::vector<double> other(state.grid.size());
  std::vector<double>* src = &state.grid;
  std::vector<double>* dst = &other;
  for (int it = 0; it < config.iterations; ++it) {
    for (int r = 0; r < rows; ++r) {
      const double* mid = src->data() + static_cast<std::size_t>(r) * ucols;
      double* o = dst->data() + static_cast<std::size_t>(r) * ucols;
      if (r == 0 || r == rows - 1) {
        std::copy_n(mid, ucols, o);
        continue;
      }
      kernels::relax_row_soa(mid - ucols, mid, mid + ucols, cols,
                             config.omega, o);
    }
    std::swap(src, dst);
  }
  if (src != &state.grid) state.grid = *src;
}

double relax_residual(const RelaxState& state) {
  double worst = 0.0;
  for (int r = 1; r < state.rows - 1; ++r) {
    for (int c = 1; c < state.cols - 1; ++c) {
      const double avg = 0.25 * ((state.at(r - 1, c) + state.at(r + 1, c)) +
                                 (state.at(r, c - 1) + state.at(r, c + 1)));
      worst = std::max(worst, std::abs(state.at(r, c) - avg));
    }
  }
  return worst;
}

double relax_checksum(const RelaxState& state) {
  double acc = 0;
  for (std::size_t i = 0; i < state.grid.size(); ++i)
    acc += state.grid[i] * (1.0 + 1e-3 * static_cast<double>(i % 97));
  return acc;
}

double relax_step_work(const RelaxConfig& config) {
  return static_cast<double>(config.rows - 2) * config.cols *
             config.flops_per_cell +
         2.0 * config.cols;
}

JadeRelax upload_relax(Runtime& rt, const RelaxConfig& config,
                       const RelaxState& state) {
  JADE_ASSERT(state.rows == config.rows && state.cols == config.cols);
  JADE_ASSERT(config.rows >= 3 && config.cols >= 3);
  JadeRelax w;
  w.config = config;
  w.strip_start = make_strip_starts(config.rows, config.strips);
  const auto ucols = static_cast<std::size_t>(config.cols);
  for (int s = 0; s < config.strips; ++s) {
    const int lo = w.strip_start[s];
    const int hi = w.strip_start[s + 1];
    std::vector<double> rows_block(
        state.grid.begin() + static_cast<std::ptrdiff_t>(lo) * config.cols,
        state.grid.begin() + static_cast<std::ptrdiff_t>(hi) * config.cols);
    w.buf_a.push_back(
        rt.alloc_init<double>(rows_block, "relaxA" + std::to_string(s)));
    // Every sweep writes every cell of its dst strip, so B starts raw.
    w.buf_b.push_back(rt.alloc<double>(
        static_cast<std::size_t>(hi - lo) * ucols,
        "relaxB" + std::to_string(s)));
  }
  return w;
}

void relax_run_jade(TaskContext& ctx, const JadeRelax& w) {
  const RelaxConfig config = w.config;
  for (int it = 0; it < config.iterations; ++it) {
    const auto& src = (it % 2 == 0) ? w.buf_a : w.buf_b;
    const auto& dst = (it % 2 == 0) ? w.buf_b : w.buf_a;
    for (int s = 0; s < config.strips; ++s) {
      const int lo = w.strip_start[s];
      const int hi = w.strip_start[s + 1];
      const bool has_up = s > 0;
      const bool has_down = s + 1 < config.strips;
      WireWriter args;
      put_ref(args, src[s]);
      put_ref(args, dst[s]);
      args.put_u8(has_up ? 1 : 0);
      if (has_up) put_ref(args, src[s - 1]);
      args.put_u8(has_down ? 1 : 0);
      if (has_down) put_ref(args, src[s + 1]);
      args.put_u32(static_cast<std::uint32_t>(lo));
      args.put_u32(static_cast<std::uint32_t>(hi));
      args.put_u32(static_cast<std::uint32_t>(config.rows));
      args.put_u32(static_cast<std::uint32_t>(config.cols));
      args.put_f64(config.omega);
      args.put_f64(config.flops_per_cell);
      args.put_u8(config.pipelined ? 1 : 0);
      cluster::spawn(
          ctx, kSweepStrip, std::move(args),
          [&](AccessDecl& d) {
            d.rd(src[s]);
            if (has_up) {
              if (config.pipelined)
                d.df_rd(src[s - 1]);
              else
                d.rd(src[s - 1]);
            }
            if (has_down) {
              if (config.pipelined)
                d.df_rd(src[s + 1]);
              else
                d.rd(src[s + 1]);
            }
            d.wr(dst[s]);
          },
          "Relax(i" + std::to_string(it) + ",s" + std::to_string(s) + ")");
    }
  }
}

RelaxState download_relax(Runtime& rt, const JadeRelax& w) {
  RelaxState s;
  s.rows = w.config.rows;
  s.cols = w.config.cols;
  s.grid.resize(static_cast<std::size_t>(s.rows) * s.cols);
  const auto& fin =
      (w.config.iterations % 2 == 0) ? w.buf_a : w.buf_b;
  for (int st = 0; st < w.config.strips; ++st) {
    const int lo = w.strip_start[st];
    const std::vector<double> block = rt.get(fin[st]);
    std::copy(block.begin(), block.end(),
              s.grid.begin() + static_cast<std::ptrdiff_t>(lo) * s.cols);
  }
  return s;
}

}  // namespace jade::apps
