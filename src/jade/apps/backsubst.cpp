#include "jade/apps/backsubst.hpp"

#include "jade/apps/kernels.hpp"
#include "jade/support/error.hpp"

namespace jade::apps {

double solve_column_flops(const std::vector<int>& col_ptr, int j) {
  return 2.0 + 2.0 * static_cast<double>(col_ptr[j + 1] - col_ptr[j]);
}

void forward_solve_jade(TaskContext& ctx, const JadeSparse& m,
                        SharedRef<double> x, bool pipelined, int rhs_count) {
  const auto cp = m.col_ptr_obj;
  const auto ri = m.row_idx_obj;
  const auto cols = m.cols;  // copied into the body
  const auto col_ptr = m.col_ptr;
  ctx.withonly(
      [&](AccessDecl& d) {
        d.rd(cp);
        d.rd(ri);
        d.rd_wr(x);
        for (const auto& c : m.cols) {
          if (pipelined)
            d.df_rd(c);
          else
            d.rd(c);
        }
      },
      [cols, col_ptr, ri, x, pipelined, rhs_count](TaskContext& t) {
        auto rows = t.read(ri);
        for (std::size_t j = 0; j < cols.size(); ++j) {
          if (pipelined) {
            // Convert the deferred declaration just before the access: this
            // synchronizes with the last factor task writing column j and
            // no earlier (Section 4.2).
            t.with_cont([&](AccessDecl& d) { d.rd(cols[j]); });
          }
          t.charge(rhs_count *
                   solve_column_flops(col_ptr, static_cast<int>(j)));
          auto c = t.read(cols[j]);
          auto xs = t.read_write(x);
          xs[j] /= c[0];
          for (int k = col_ptr[j]; k < col_ptr[j + 1]; ++k)
            xs[rows[k]] -= c[1 + (k - col_ptr[j])] * xs[j];
          if (pipelined) {
            // Done with this column: release it for any later consumer.
            t.with_cont([&](AccessDecl& d) { d.no_rd(cols[j]); });
          }
        }
      },
      pipelined ? "ForwardSolve(pipelined)" : "ForwardSolve");
}

void backward_solve_jade(TaskContext& ctx, const JadeSparse& m,
                         SharedRef<double> x) {
  const auto cp = m.col_ptr_obj;
  const auto ri = m.row_idx_obj;
  const auto cols = m.cols;
  const auto col_ptr = m.col_ptr;
  ctx.withonly(
      [&](AccessDecl& d) {
        d.rd(cp);
        d.rd(ri);
        d.rd_wr(x);
        for (const auto& c : m.cols) d.rd(c);
      },
      [cols, col_ptr, ri, x](TaskContext& t) {
        auto rows = t.read(ri);
        auto xs = t.read_write(x);
        for (int j = static_cast<int>(cols.size()) - 1; j >= 0; --j) {
          t.charge(solve_column_flops(col_ptr, j));
          auto c = t.read(cols[j]);
          double acc = xs[j];
          for (int k = col_ptr[j]; k < col_ptr[j + 1]; ++k)
            acc -= c[1 + (k - col_ptr[j])] * xs[rows[k]];
          xs[j] = acc / c[0];
        }
      },
      "BackwardSolve");
}

void forward_solve_multi_serial(const SparseMatrix& l, int nrhs,
                                std::vector<double>& x) {
  JADE_ASSERT(x.size() ==
              static_cast<std::size_t>(l.n) * static_cast<std::size_t>(nrhs));
  for (int j = 0; j < l.n; ++j)
    kernels::backsubst_apply_column_soa(
        l.cols[static_cast<std::size_t>(j)].data(),
        l.row_idx.data() + l.col_ptr[j], l.nnz_below(j), j, nrhs, x.data());
}

void forward_solve_multi_jade(TaskContext& ctx, const JadeSparse& m,
                              SharedRef<double> x, int nrhs,
                              bool pipelined) {
  const auto cp = m.col_ptr_obj;
  const auto ri = m.row_idx_obj;
  const auto cols = m.cols;
  const auto col_ptr = m.col_ptr;
  ctx.withonly(
      [&](AccessDecl& d) {
        d.rd(cp);
        d.rd(ri);
        d.rd_wr(x);
        for (const auto& c : m.cols) {
          if (pipelined)
            d.df_rd(c);
          else
            d.rd(c);
        }
      },
      [cols, col_ptr, ri, x, pipelined, nrhs](TaskContext& t) {
        auto rows = t.read(ri);
        for (std::size_t j = 0; j < cols.size(); ++j) {
          if (pipelined)
            t.with_cont([&](AccessDecl& d) { d.rd(cols[j]); });
          t.charge(nrhs * solve_column_flops(col_ptr, static_cast<int>(j)));
          auto c = t.read(cols[j]);
          auto xs = t.read_write(x);
          const int ji = static_cast<int>(j);
          kernels::backsubst_apply_column_soa(
              c.data(), rows.data() + col_ptr[j],
              col_ptr[j + 1] - col_ptr[j], ji, nrhs, xs.data());
          if (pipelined)
            t.with_cont([&](AccessDecl& d) { d.no_rd(cols[j]); });
        }
      },
      pipelined ? "ForwardSolveMulti(pipelined)" : "ForwardSolveMulti");
}

}  // namespace jade::apps
