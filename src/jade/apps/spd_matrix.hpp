// Sparse symmetric positive-definite matrices in the paper's data layout.
//
// The paper's Figures 1/2/5 store the lower triangle column-by-column: a
// global row-index array `r` with per-column ranges, and per-column value
// vectors (diagonal first, then the subdiagonal nonzeros in row order).
// Each column's value vector becomes one shared object in the Jade version;
// the index structures are read-only shared objects.
//
// The generator performs symbolic elimination up front so the pattern is
// closed under factorization (no fill-in appears at numeric time), exactly
// the setting of the paper's example.
#pragma once

#include <cstdint>
#include <vector>

namespace jade::apps {

/// Host-side sparse SPD matrix (lower triangle + diagonal).
struct SparseMatrix {
  int n = 0;
  /// col_ptr[i]..col_ptr[i+1] indexes row_idx: the subdiagonal rows of
  /// column i, strictly increasing, all > i.
  std::vector<int> col_ptr;
  std::vector<int> row_idx;
  /// cols[i][0] is the diagonal; cols[i][1+k] the value at row
  /// row_idx[col_ptr[i]+k].
  std::vector<std::vector<double>> cols;

  int nnz_below(int i) const { return col_ptr[i + 1] - col_ptr[i]; }
  /// Total stored entries (diagonal + subdiagonal).
  std::size_t nnz() const { return row_idx.size() + n; }
};

/// Random sparse SPD matrix: a random lower pattern with the requested
/// density, closed by symbolic elimination, with values made strictly
/// diagonally dominant (hence SPD).  Deterministic in `seed`.
SparseMatrix make_spd(int n, double density, std::uint64_t seed);

/// The 5-column example matrix of the paper's Figure 1/4 walkthrough
/// (columns 0..4; column 0 updates 3 and 4; column 1 updates 2; ...).
SparseMatrix paper_example_matrix();

/// y = A * x with A the full symmetric matrix this pattern represents.
std::vector<double> spd_multiply(const SparseMatrix& a,
                                 const std::vector<double>& x);

/// In-place serial kernels of the paper's Section 3: the InternalUpdate
/// scales column i by the square root of its diagonal; the ExternalUpdate
/// applies column i to column j (j must be in column i's structure).
void internal_update(SparseMatrix& m, int i);
void external_update(SparseMatrix& m, int i, int j);

/// Serial left-looking... (the paper's right-looking loop): the reference
/// factorization every Jade execution must reproduce exactly.
void factor_serial(SparseMatrix& m);

/// Solves L * y = b given the factor L (forward substitution, consuming
/// columns left to right — the pipelined direction of Section 4.2).
std::vector<double> forward_solve(const SparseMatrix& l,
                                  std::vector<double> b);

/// Solves L^T * x = y (backward substitution).
std::vector<double> backward_solve(const SparseMatrix& l,
                                   std::vector<double> y);

/// Solves A x = b via both substitutions on a factored matrix.
std::vector<double> solve_factored(const SparseMatrix& l,
                                   const std::vector<double>& b);

/// Approximate flop counts, used as charge() units by the Jade version.
double internal_update_flops(const SparseMatrix& m, int i);
double external_update_flops(const SparseMatrix& m, int i, int j);

}  // namespace jade::apps
