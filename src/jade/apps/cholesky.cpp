#include "jade/apps/cholesky.hpp"

#include <cmath>
#include <string>

#include "jade/apps/kernels.hpp"
#include "jade/support/error.hpp"

namespace jade::apps {

namespace {

/// InternalUpdate on a column's value span (diagonal first).  The
/// subdiagonal scaling is elementwise, so the vectorized kernel is
/// bit-identical to the original loop.
void internal_kernel(std::span<double> vals) {
  JADE_ASSERT_MSG(vals[0] > 0, "matrix is not positive definite");
  const double d = std::sqrt(vals[0]);
  vals[0] = d;
  kernels::cholesky_scale_column_soa(vals.data(), vals.size(), d);
}

/// ExternalUpdate: applies factored column (src_rows, src_vals) to column j
/// (dst_rows, dst_vals).  Both row lists are sorted; j must appear in
/// src_rows and the trailing structure of src must embed into dst.
void external_kernel(std::span<const int> src_rows,
                     std::span<const double> src_vals, int j,
                     std::span<const int> dst_rows,
                     std::span<double> dst_vals) {
  std::size_t p = 0;
  while (p < src_rows.size() && src_rows[p] != j) ++p;
  JADE_ASSERT_MSG(p < src_rows.size(),
                  "external update target not in column structure");
  const double lji = src_vals[1 + p];
  dst_vals[0] -= lji * lji;
  std::size_t q = 0;
  for (std::size_t k = p + 1; k < src_rows.size(); ++k) {
    const int row = src_rows[k];
    while (q < dst_rows.size() && dst_rows[q] < row) ++q;
    JADE_ASSERT_MSG(q < dst_rows.size() && dst_rows[q] == row,
                    "fill-in encountered; pattern not closed");
    dst_vals[1 + q] -= lji * src_vals[1 + k];
  }
}

double inl_flops(const std::vector<int>& col_ptr, int i) {
  return 10.0 + static_cast<double>(col_ptr[i + 1] - col_ptr[i]);
}

double ext_flops(const std::vector<int>& col_ptr, int i) {
  return 4.0 + 2.0 * static_cast<double>(col_ptr[i + 1] - col_ptr[i]);
}

}  // namespace

JadeSparse upload_matrix(Runtime& rt, const SparseMatrix& m) {
  JadeSparse jm;
  jm.n = m.n;
  jm.col_ptr = m.col_ptr;
  jm.row_idx = m.row_idx;
  jm.col_ptr_obj = rt.alloc_init<int>(m.col_ptr, "col_ptr");
  // row_idx can be empty (diagonal matrix); shared objects need a body.
  jm.row_idx_obj = m.row_idx.empty()
                       ? rt.alloc<int>(1, "row_idx")
                       : rt.alloc_init<int>(m.row_idx, "row_idx");
  jm.cols.reserve(static_cast<std::size_t>(m.n));
  for (int i = 0; i < m.n; ++i)
    jm.cols.push_back(
        rt.alloc_init<double>(m.cols[i], "col" + std::to_string(i)));
  return jm;
}

SparseMatrix download_matrix(Runtime& rt, const JadeSparse& jm) {
  SparseMatrix m;
  m.n = jm.n;
  m.col_ptr = jm.col_ptr;
  m.row_idx = jm.row_idx;
  m.cols.reserve(static_cast<std::size_t>(jm.n));
  for (int i = 0; i < jm.n; ++i) m.cols.push_back(rt.get(jm.cols[i]));
  return m;
}

void factor_jade(TaskContext& ctx, const JadeSparse& m) {
  const auto cp = m.col_ptr_obj;
  const auto ri = m.row_idx_obj;
  for (int i = 0; i < m.n; ++i) {
    const auto ci = m.cols[i];
    const int begin = m.col_ptr[i];
    const int count = m.col_ptr[i + 1] - begin;
    const double fi = inl_flops(m.col_ptr, i);
    ctx.withonly(
        [&](AccessDecl& d) {
          d.rd_wr(ci);
          d.rd(cp);
          d.rd(ri);
        },
        [ci, fi](TaskContext& t) {
          t.charge(fi);
          internal_kernel(t.read_write(ci));
        },
        "Internal(" + std::to_string(i) + ")");

    const double fe = ext_flops(m.col_ptr, i);
    for (int k = begin; k < m.col_ptr[i + 1]; ++k) {
      // The dynamically resolved target r[j] of Figure 6 — the data access
      // pattern no static compiler can analyze.
      const int j = m.row_idx[k];
      const auto cj = m.cols[j];
      const int jb = m.col_ptr[j];
      const int jc = m.col_ptr[j + 1] - jb;
      ctx.withonly(
          [&](AccessDecl& d) {
            d.rd_wr(cj);
            d.rd(ci);
            d.rd(cp);
            d.rd(ri);
          },
          [ci, cj, ri, j, begin, count, jb, jc, fe](TaskContext& t) {
            t.charge(fe);
            auto rows = t.read(ri);
            external_kernel(rows.subspan(begin, count), t.read(ci), j,
                            rows.subspan(jb, jc), t.read_write(cj));
          },
          "External(" + std::to_string(i) + "->" + std::to_string(j) + ")");
    }
  }
}

JadeBlockedSparse upload_blocked(Runtime& rt, const SparseMatrix& m,
                                 int block) {
  JADE_ASSERT(block >= 1);
  JadeBlockedSparse jm;
  jm.n = m.n;
  jm.block = block;
  jm.col_ptr = m.col_ptr;
  jm.row_idx = m.row_idx;
  jm.col_offset.resize(static_cast<std::size_t>(m.n));
  jm.col_ptr_obj = rt.alloc_init<int>(m.col_ptr, "col_ptr");
  jm.row_idx_obj = m.row_idx.empty()
                       ? rt.alloc<int>(1, "row_idx")
                       : rt.alloc_init<int>(m.row_idx, "row_idx");
  for (int b = 0; b < jm.block_count(); ++b) {
    std::vector<double> packed;
    for (int i = jm.first_col(b); i < jm.last_col(b); ++i) {
      jm.col_offset[i] = static_cast<int>(packed.size());
      packed.insert(packed.end(), m.cols[i].begin(), m.cols[i].end());
    }
    jm.blocks.push_back(
        rt.alloc_init<double>(packed, "block" + std::to_string(b)));
  }
  return jm;
}

SparseMatrix download_blocked(Runtime& rt, const JadeBlockedSparse& jm) {
  SparseMatrix m;
  m.n = jm.n;
  m.col_ptr = jm.col_ptr;
  m.row_idx = jm.row_idx;
  m.cols.resize(static_cast<std::size_t>(jm.n));
  for (int b = 0; b < jm.block_count(); ++b) {
    const auto packed = rt.get(jm.blocks[b]);
    for (int i = jm.first_col(b); i < jm.last_col(b); ++i) {
      const int len = 1 + jm.col_ptr[i + 1] - jm.col_ptr[i];
      m.cols[i].assign(packed.begin() + jm.col_offset[i],
                       packed.begin() + jm.col_offset[i] + len);
    }
  }
  return m;
}

void factor_jade_blocked(TaskContext& ctx, const JadeBlockedSparse& m) {
  const auto cp = m.col_ptr_obj;
  const auto ri = m.row_idx_obj;
  // Host-side copies the bodies capture by value.
  const auto col_ptr = m.col_ptr;
  const auto row_idx = m.row_idx;
  const auto col_offset = m.col_offset;
  const int block = m.block;
  const int n = m.n;

  // Captured by value into task bodies along with col_ptr; must not hold
  // references into this (stack) frame, which tasks outlive.
  auto col_len = [](const std::vector<int>& cpv, int i) {
    return 1 + cpv[i + 1] - cpv[i];
  };

  for (int b = 0; b < m.block_count(); ++b) {
    const auto blk = m.blocks[b];
    const int lo = m.first_col(b);
    const int hi = m.last_col(b);

    // Internal block task: factor the block's columns, applying intra-block
    // external updates inline — the supernode grain-size aggregation.
    double flops = 0;
    for (int i = lo; i < hi; ++i) {
      flops += inl_flops(col_ptr, i);
      for (int k = col_ptr[i]; k < col_ptr[i + 1]; ++k)
        if (row_idx[k] < hi) flops += ext_flops(col_ptr, i);
    }
    ctx.withonly(
        [&](AccessDecl& d) {
          d.rd_wr(blk);
          d.rd(cp);
          d.rd(ri);
        },
        [blk, ri, col_ptr, row_idx, col_offset, lo, hi, flops,
         col_len](TaskContext& t) {
          t.charge(flops);
          auto rows = t.read(ri);
          auto vals = t.read_write(blk);
          for (int i = lo; i < hi; ++i) {
            internal_kernel(
                vals.subspan(col_offset[i], col_len(col_ptr, i)));
            for (int k = col_ptr[i]; k < col_ptr[i + 1]; ++k) {
              const int j = row_idx[k];
              if (j >= hi) continue;
              external_kernel(
                  rows.subspan(col_ptr[i], col_ptr[i + 1] - col_ptr[i]),
                  vals.subspan(col_offset[i], col_len(col_ptr, i)), j,
                  rows.subspan(col_ptr[j], col_ptr[j + 1] - col_ptr[j]),
                  vals.subspan(col_offset[j], col_len(col_ptr, j)));
            }
          }
        },
        "BlockInternal(" + std::to_string(b) + ")");

    // External block tasks, in ascending destination-block order so the
    // applied update sequence matches the unblocked serial factorization.
    const int nblocks = (n + block - 1) / block;
    for (int d = b + 1; d < nblocks; ++d) {
      double eflops = 0;
      for (int i = lo; i < hi; ++i)
        for (int k = col_ptr[i]; k < col_ptr[i + 1]; ++k) {
          const int j = row_idx[k];
          if (j / block == d) eflops += ext_flops(col_ptr, i);
        }
      if (eflops == 0) continue;  // data-dependent: no coupling b -> d
      const auto dst = m.blocks[d];
      ctx.withonly(
          [&](AccessDecl& a) {
            a.rd_wr(dst);
            a.rd(blk);
            a.rd(cp);
            a.rd(ri);
          },
          [blk, dst, ri, col_ptr, row_idx, col_offset, lo, hi, d, block,
           eflops, col_len](TaskContext& t) {
            t.charge(eflops);
            auto rows = t.read(ri);
            auto src = t.read(blk);
            auto dvals = t.read_write(dst);
            for (int i = lo; i < hi; ++i) {
              for (int k = col_ptr[i]; k < col_ptr[i + 1]; ++k) {
                const int j = row_idx[k];
                if (j / block != d) continue;
                external_kernel(
                    rows.subspan(col_ptr[i], col_ptr[i + 1] - col_ptr[i]),
                    src.subspan(col_offset[i], col_len(col_ptr, i)), j,
                    rows.subspan(col_ptr[j], col_ptr[j + 1] - col_ptr[j]),
                    dvals.subspan(col_offset[j], col_len(col_ptr, j)));
              }
            }
          },
          "BlockExternal(" + std::to_string(b) + "->" + std::to_string(d) +
              ")");
    }
  }
}

double factor_flops(const SparseMatrix& m) {
  double total = 0;
  for (int i = 0; i < m.n; ++i) {
    total += internal_update_flops(m, i);
    for (int k = m.col_ptr[i]; k < m.col_ptr[i + 1]; ++k)
      total += external_update_flops(m, i, m.row_idx[k]);
  }
  return total;
}

}  // namespace jade::apps
