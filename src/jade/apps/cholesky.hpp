// Jade sparse Cholesky factorization — the paper's worked example
// (Section 3, Figure 6).
//
// Each matrix column is one shared object; the column-pointer and row-index
// structures are read-only shared objects.  factor_jade() is a direct
// transcription of Figure 6: per column, one InternalUpdate task declaring
// rd_wr on its column, then one ExternalUpdate task per affected column
// declaring rd_wr on the target and rd on the source.  The Jade serializer
// extracts exactly the dynamic task graph of Figure 4.
//
// factor_jade_blocked() is the "supernode" variant the paper alludes to
// ("the task grain size is increased further by aggregating adjacent
// columns"): contiguous column blocks become single shared objects and the
// per-column updates aggregate into per-block tasks.  The applied update
// order is identical, so the blocked factor is bit-equal to the plain one.
#pragma once

#include <vector>

#include "jade/apps/spd_matrix.hpp"
#include "jade/core/runtime.hpp"

namespace jade::apps {

/// The matrix of Figure 5: shared column objects + shared index structures
/// (with host copies of the immutable index data for task creation, just as
/// the paper's factor driver reads r[j] while creating tasks).
struct JadeSparse {
  int n = 0;
  std::vector<int> col_ptr;  ///< host copy (immutable)
  std::vector<int> row_idx;  ///< host copy (immutable)
  SharedRef<int> col_ptr_obj;
  SharedRef<int> row_idx_obj;
  std::vector<SharedRef<double>> cols;
};

/// Uploads a host matrix into shared objects (columns distributed
/// round-robin across machines by the runtime's default placement).
JadeSparse upload_matrix(Runtime& rt, const SparseMatrix& m);

/// Reads the factored columns back into host form.
SparseMatrix download_matrix(Runtime& rt, const JadeSparse& jm);

/// Creates the factorization task graph (call from within rt.run()).
void factor_jade(TaskContext& ctx, const JadeSparse& m);

/// Column-blocked ("supernode") representation: ceil(n/block) shared
/// objects, each holding `block` consecutive columns' values.
struct JadeBlockedSparse {
  int n = 0;
  int block = 1;
  std::vector<int> col_ptr;
  std::vector<int> row_idx;
  /// Offset of column i's values inside its block object.
  std::vector<int> col_offset;
  SharedRef<int> col_ptr_obj;
  SharedRef<int> row_idx_obj;
  std::vector<SharedRef<double>> blocks;

  int block_count() const {
    return (n + block - 1) / block;
  }
  int block_of(int col) const { return col / block; }
  int first_col(int b) const { return b * block; }
  int last_col(int b) const { return std::min(n, (b + 1) * block); }
};

JadeBlockedSparse upload_blocked(Runtime& rt, const SparseMatrix& m,
                                 int block);
SparseMatrix download_blocked(Runtime& rt, const JadeBlockedSparse& jm);
void factor_jade_blocked(TaskContext& ctx, const JadeBlockedSparse& m);

/// Total flops of a full factorization (for bench reporting).
double factor_flops(const SparseMatrix& m);

}  // namespace jade::apps
