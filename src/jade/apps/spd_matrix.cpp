#include "jade/apps/spd_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "jade/support/error.hpp"
#include "jade/support/rng.hpp"

namespace jade::apps {

namespace {

/// Column structures as sorted unique row vectors.  (This used to be
/// std::set<int>: one node allocation plus an O(log nnz) rebalance per
/// inserted row made symbolic fill the dominant cost of matrix generation
/// at bench sizes.  Sorted vectors + linear merges produce the same sorted
/// unique structures with no per-element allocation.)
using Pattern = std::vector<std::vector<int>>;

/// Closes a lower-triangular pattern under elimination: when column i is
/// eliminated, its remaining structure merges into its elimination-tree
/// parent (the smallest row in struct(i)).
Pattern symbolic_fill(Pattern pattern) {
  const int n = static_cast<int>(pattern.size());
  std::vector<int> merged;
  for (int i = 0; i < n; ++i) {
    if (pattern[i].empty()) continue;
    const int parent = pattern[i].front();
    // Union struct(i) \ {parent} into struct(parent): one linear merge of
    // two sorted lists instead of per-row tree inserts (parent is the
    // minimum of struct(i), so it is exactly the skipped front element).
    merged.clear();
    merged.reserve(pattern[parent].size() + pattern[i].size() - 1);
    std::set_union(pattern[parent].begin(), pattern[parent].end(),
                   pattern[i].begin() + 1, pattern[i].end(),
                   std::back_inserter(merged));
    pattern[parent].swap(merged);
  }
  return pattern;
}

SparseMatrix from_pattern(const Pattern& pattern, std::uint64_t seed) {
  const int n = static_cast<int>(pattern.size());
  SparseMatrix m;
  m.n = n;
  m.col_ptr.assign(n + 1, 0);
  for (int i = 0; i < n; ++i)
    m.col_ptr[i + 1] = m.col_ptr[i] + static_cast<int>(pattern[i].size());
  m.row_idx.reserve(m.col_ptr[n]);
  for (int i = 0; i < n; ++i)
    m.row_idx.insert(m.row_idx.end(), pattern[i].begin(), pattern[i].end());

  Rng rng(seed ^ 0x5eedf111ULL);
  m.cols.resize(n);
  std::vector<double> row_abs_sum(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const std::size_t nnz = pattern[i].size();
    m.cols[i].resize(1 + nnz);
    // Column i's rows are the contiguous row_idx run starting at col_ptr[i]
    // (hoisted: the indexing arithmetic used to be redone per element).
    const int* rows = m.row_idx.data() + m.col_ptr[i];
    for (std::size_t k = 0; k < nnz; ++k) {
      const double v = rng.next_double(-1.0, 1.0);
      m.cols[i][1 + k] = v;
      // Both accumulations stay per-element (same FP rounding order as
      // always, so generated matrices are unchanged to the bit).
      row_abs_sum[rows[k]] += std::abs(v);
      row_abs_sum[i] += std::abs(v);
    }
  }
  // Strict diagonal dominance with positive diagonal => SPD.
  for (int i = 0; i < n; ++i) m.cols[i][0] = row_abs_sum[i] + 1.0;
  return m;
}

}  // namespace

SparseMatrix make_spd(int n, double density, std::uint64_t seed) {
  JADE_ASSERT(n > 0);
  Rng rng(seed);
  Pattern pattern(n);
  for (int col = 0; col < n; ++col)
    for (int row = col + 1; row < n; ++row)
      if (rng.next_bool(density)) pattern[col].push_back(row);
  // Note: no artificial connectivity edges — a forced col->col+1 link would
  // turn the elimination tree into a chain and destroy the task-level
  // parallelism the example exists to demonstrate.  Columns with an empty
  // structure simply take an InternalUpdate only.
  return from_pattern(symbolic_fill(std::move(pattern)), seed);
}

SparseMatrix paper_example_matrix() {
  // Figure 4's task graph: column 0 updates columns 3 and 4; column 1
  // updates column 2; column 2 updates 3; column 3 updates 4.
  Pattern pattern(5);
  pattern[0] = {3, 4};
  pattern[1] = {2};
  pattern[2] = {3};
  pattern[3] = {4};
  pattern[4] = {};
  return from_pattern(symbolic_fill(std::move(pattern)), 7);
}

std::vector<double> spd_multiply(const SparseMatrix& a,
                                 const std::vector<double>& x) {
  JADE_ASSERT(static_cast<int>(x.size()) == a.n);
  std::vector<double> y(a.n, 0.0);
  for (int j = 0; j < a.n; ++j) {
    y[j] += a.cols[j][0] * x[j];
    for (int k = 0; k < a.nnz_below(j); ++k) {
      const int row = a.row_idx[a.col_ptr[j] + k];
      const double v = a.cols[j][1 + k];
      y[row] += v * x[j];
      y[j] += v * x[row];
    }
  }
  return y;
}

void internal_update(SparseMatrix& m, int i) {
  auto& c = m.cols[i];
  JADE_ASSERT_MSG(c[0] > 0, "matrix is not positive definite");
  const double d = std::sqrt(c[0]);
  c[0] = d;
  for (std::size_t k = 1; k < c.size(); ++k) c[k] /= d;
}

void external_update(SparseMatrix& m, int i, int j) {
  // Find l_ji within column i's structure.
  const int begin = m.col_ptr[i];
  const int end = m.col_ptr[i + 1];
  int p = begin;
  while (p < end && m.row_idx[p] != j) ++p;
  JADE_ASSERT_MSG(p < end, "external update target not in column structure");
  const double lji = m.cols[i][1 + (p - begin)];

  auto& cj = m.cols[j];
  cj[0] -= lji * lji;
  // Remaining rows of column i (all > j) must appear in column j's
  // structure (guaranteed by symbolic fill); merge the two sorted lists.
  int q = m.col_ptr[j];
  const int qend = m.col_ptr[j + 1];
  for (int k = p + 1; k < end; ++k) {
    const int row = m.row_idx[k];
    while (q < qend && m.row_idx[q] < row) ++q;
    JADE_ASSERT_MSG(q < qend && m.row_idx[q] == row,
                    "fill-in encountered; pattern not closed");
    cj[1 + (q - m.col_ptr[j])] -= lji * m.cols[i][1 + (k - begin)];
  }
}

void factor_serial(SparseMatrix& m) {
  for (int i = 0; i < m.n; ++i) {
    internal_update(m, i);
    for (int k = m.col_ptr[i]; k < m.col_ptr[i + 1]; ++k)
      external_update(m, i, m.row_idx[k]);
  }
}

std::vector<double> forward_solve(const SparseMatrix& l,
                                  std::vector<double> b) {
  for (int j = 0; j < l.n; ++j) {
    b[j] /= l.cols[j][0];
    for (int k = 0; k < l.nnz_below(j); ++k)
      b[l.row_idx[l.col_ptr[j] + k]] -= l.cols[j][1 + k] * b[j];
  }
  return b;
}

std::vector<double> backward_solve(const SparseMatrix& l,
                                   std::vector<double> y) {
  for (int j = l.n - 1; j >= 0; --j) {
    double acc = y[j];
    for (int k = 0; k < l.nnz_below(j); ++k)
      acc -= l.cols[j][1 + k] * y[l.row_idx[l.col_ptr[j] + k]];
    y[j] = acc / l.cols[j][0];
  }
  return y;
}

std::vector<double> solve_factored(const SparseMatrix& l,
                                   const std::vector<double>& b) {
  return backward_solve(l, forward_solve(l, b));
}

double internal_update_flops(const SparseMatrix& m, int i) {
  return 10.0 + static_cast<double>(m.nnz_below(i));  // sqrt + divides
}

double external_update_flops(const SparseMatrix& m, int i, int j) {
  (void)j;
  return 4.0 + 2.0 * static_cast<double>(m.nnz_below(i));
}

}  // namespace jade::apps
