// Canonical wire format for runtime control messages.
//
// The paper's workstation implementation used PVM "as a reliable, typed
// transport protocol".  Our simulated transport serializes control messages
// (task dispatch, object requests, completion notices) into a canonical
// little-endian wire format via these writer/reader classes; object payloads
// travel alongside and are converted per their TypeDescriptor.
//
// Scalars take the memcpy fast path on little-endian hosts (the canonical
// order matches the native one, so the encode is a bulk copy); big-endian
// hosts fall back to the byte-at-a-time loop.  Both paths produce — and both
// readers accept — byte-identical buffers (tests/types_test.cpp pins the
// layout).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "jade/support/error.hpp"

namespace jade {

/// Appends scalars/strings/blobs to a growing byte buffer in canonical
/// (little-endian) order.
class WireWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_le(bits);
  }
  void put_string(const std::string& s) {
    buf_.reserve(buf_.size() + sizeof(std::uint32_t) + s.size());
    put_u32(static_cast<std::uint32_t>(s.size()));
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }
  void put_bytes(std::span<const std::byte> data) {
    buf_.reserve(buf_.size() + sizeof(std::uint32_t) + data.size());
    put_u32(static_cast<std::uint32_t>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Pre-sizes the buffer for a message whose encoded size is known (bulk
  /// encoders call this once instead of growing geometrically).
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  const std::vector<std::byte>& bytes() const { return buf_; }
  std::vector<std::byte> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    if constexpr (std::endian::native == std::endian::little) {
      const std::size_t n = buf_.size();
      buf_.resize(n + sizeof(T));
      std::memcpy(buf_.data() + n, &v, sizeof(T));
    } else {
      for (std::size_t i = 0; i < sizeof(T); ++i)
        buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }

  std::vector<std::byte> buf_;
};

/// Reads scalars back out of a wire buffer; throws InternalError on
/// truncation (control messages are runtime-generated, so truncation is a
/// runtime bug, not user error).
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t get_u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  double get_f64() {
    std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string get_string() {
    const std::uint32_t n = get_u32();
    auto s = take(n);
    return std::string(reinterpret_cast<const char*>(s.data()), n);
  }
  std::vector<std::byte> get_bytes() {
    const std::uint32_t n = get_u32();
    auto s = take(n);
    return std::vector<std::byte>(s.begin(), s.end());
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  std::span<const std::byte> take(std::size_t n) {
    JADE_ASSERT_MSG(remaining() >= n, "wire message truncated");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
  T get_le() {
    auto s = take(sizeof(T));
    if constexpr (std::endian::native == std::endian::little) {
      T v;
      std::memcpy(&v, s.data(), sizeof(T));
      return v;
    } else {
      T v = 0;
      for (std::size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(static_cast<std::uint8_t>(s[i])) << (8 * i);
      return v;
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace jade
