// Type descriptors for shared objects.
//
// The paper (Section 6.1): "The Jade implementation can do the necessary
// conversions in a heterogeneous environment because it knows the types of
// all shared objects."  Every shared object in our runtime carries a
// TypeDescriptor: a flat sequence of scalar fields (C structs and arrays of
// scalars flatten to exactly this).  The descriptor drives byte-order
// conversion when an object moves between simulated machines of different
// architectures, and sizing/validation everywhere else.
//
// All simulated architectures use IEEE-754 floating point and two's
// complement integers (as the paper's SPARC, MIPS and i860 machines did), so
// representation differences reduce to byte order and the conversion is a
// per-scalar byte swap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace jade {

enum class Endian : std::uint8_t { kLittle = 0, kBig = 1 };

/// Byte order of the host this process runs on.
Endian host_endian();

enum class ScalarKind : std::uint8_t {
  kInt8,
  kUInt8,
  kInt16,
  kUInt16,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kFloat32,
  kFloat64,
};

/// Size in bytes of one scalar of the given kind.
std::size_t scalar_size(ScalarKind kind);

/// Human-readable name ("f64", "i32", ...), used in traces and errors.
const char* scalar_name(ScalarKind kind);

/// Maps a C++ scalar type to its ScalarKind at compile time.
template <typename T>
constexpr ScalarKind scalar_kind_of();

template <> constexpr ScalarKind scalar_kind_of<std::int8_t>() { return ScalarKind::kInt8; }
template <> constexpr ScalarKind scalar_kind_of<std::uint8_t>() { return ScalarKind::kUInt8; }
template <> constexpr ScalarKind scalar_kind_of<std::int16_t>() { return ScalarKind::kInt16; }
template <> constexpr ScalarKind scalar_kind_of<std::uint16_t>() { return ScalarKind::kUInt16; }
template <> constexpr ScalarKind scalar_kind_of<std::int32_t>() { return ScalarKind::kInt32; }
template <> constexpr ScalarKind scalar_kind_of<std::uint32_t>() { return ScalarKind::kUInt32; }
template <> constexpr ScalarKind scalar_kind_of<std::int64_t>() { return ScalarKind::kInt64; }
template <> constexpr ScalarKind scalar_kind_of<std::uint64_t>() { return ScalarKind::kUInt64; }
template <> constexpr ScalarKind scalar_kind_of<float>() { return ScalarKind::kFloat32; }
template <> constexpr ScalarKind scalar_kind_of<double>() { return ScalarKind::kFloat64; }

/// One run of identical scalars in an object's layout.
struct FieldDesc {
  ScalarKind kind;
  std::size_t count;

  std::size_t byte_size() const { return scalar_size(kind) * count; }
  bool operator==(const FieldDesc&) const = default;
};

/// Flat layout description of a shared object: a sequence of scalar runs,
/// densely packed (the runtime allocates shared objects packed; there is no
/// padding to describe).
class TypeDescriptor {
 public:
  TypeDescriptor() = default;
  explicit TypeDescriptor(std::vector<FieldDesc> fields);

  /// Descriptor for a homogeneous array of `count` scalars.
  static TypeDescriptor array(ScalarKind kind, std::size_t count);

  template <typename T>
  static TypeDescriptor array_of(std::size_t count) {
    return array(scalar_kind_of<T>(), count);
  }

  /// Descriptor for an untyped byte blob (no conversion applied).
  static TypeDescriptor bytes(std::size_t count) {
    return array(ScalarKind::kUInt8, count);
  }

  const std::vector<FieldDesc>& fields() const { return fields_; }
  std::size_t byte_size() const { return byte_size_; }
  std::size_t scalar_count() const { return scalar_count_; }

  /// True when conversion between byte orders is the identity (all fields
  /// single-byte).
  bool order_invariant() const { return order_invariant_; }

  std::string to_string() const;
  bool operator==(const TypeDescriptor&) const = default;

 private:
  std::vector<FieldDesc> fields_;
  std::size_t byte_size_ = 0;
  std::size_t scalar_count_ = 0;
  bool order_invariant_ = true;
};

/// Reverses the byte order of every scalar in `data`, whose layout is
/// described by `desc`.  This is the conversion applied when an object moves
/// between simulated machines of opposite byte order.  `data.size()` must
/// equal `desc.byte_size()`.
void swap_representation(std::span<std::byte> data, const TypeDescriptor& desc);

/// Converts `data` from `from` byte order to `to` byte order in place
/// (no-op when they match).  Returns the number of scalars converted, which
/// the simulated transport charges as conversion work.
std::size_t convert_representation(std::span<std::byte> data,
                                   const TypeDescriptor& desc, Endian from,
                                   Endian to);

}  // namespace jade
