#include "jade/types/type_desc.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "jade/support/error.hpp"

namespace jade {

Endian host_endian() {
  return std::endian::native == std::endian::little ? Endian::kLittle
                                                    : Endian::kBig;
}

std::size_t scalar_size(ScalarKind kind) {
  switch (kind) {
    case ScalarKind::kInt8:
    case ScalarKind::kUInt8:
      return 1;
    case ScalarKind::kInt16:
    case ScalarKind::kUInt16:
      return 2;
    case ScalarKind::kInt32:
    case ScalarKind::kUInt32:
    case ScalarKind::kFloat32:
      return 4;
    case ScalarKind::kInt64:
    case ScalarKind::kUInt64:
    case ScalarKind::kFloat64:
      return 8;
  }
  throw InternalError("scalar_size: bad ScalarKind");
}

const char* scalar_name(ScalarKind kind) {
  switch (kind) {
    case ScalarKind::kInt8: return "i8";
    case ScalarKind::kUInt8: return "u8";
    case ScalarKind::kInt16: return "i16";
    case ScalarKind::kUInt16: return "u16";
    case ScalarKind::kInt32: return "i32";
    case ScalarKind::kUInt32: return "u32";
    case ScalarKind::kInt64: return "i64";
    case ScalarKind::kUInt64: return "u64";
    case ScalarKind::kFloat32: return "f32";
    case ScalarKind::kFloat64: return "f64";
  }
  return "?";
}

TypeDescriptor::TypeDescriptor(std::vector<FieldDesc> fields)
    : fields_(std::move(fields)) {
  for (const FieldDesc& f : fields_) {
    byte_size_ += f.byte_size();
    scalar_count_ += f.count;
    if (scalar_size(f.kind) > 1 && f.count > 0) order_invariant_ = false;
  }
}

TypeDescriptor TypeDescriptor::array(ScalarKind kind, std::size_t count) {
  return TypeDescriptor({FieldDesc{kind, count}});
}

std::string TypeDescriptor::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << scalar_name(fields_[i].kind) << "x" << fields_[i].count;
  }
  os << "}";
  return os.str();
}

namespace {
void swap_run(std::byte* p, std::size_t width, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i, p += width) {
    for (std::size_t a = 0, b = width - 1; a < b; ++a, --b)
      std::swap(p[a], p[b]);
  }
}
}  // namespace

void swap_representation(std::span<std::byte> data,
                         const TypeDescriptor& desc) {
  JADE_ASSERT_MSG(data.size() == desc.byte_size(),
                  "object size does not match its type descriptor");
  std::byte* p = data.data();
  for (const FieldDesc& f : desc.fields()) {
    const std::size_t width = scalar_size(f.kind);
    if (width > 1) swap_run(p, width, f.count);
    p += f.byte_size();
  }
}

std::size_t convert_representation(std::span<std::byte> data,
                                   const TypeDescriptor& desc, Endian from,
                                   Endian to) {
  if (from == to || desc.order_invariant()) return 0;
  swap_representation(data, desc);
  std::size_t converted = 0;
  for (const FieldDesc& f : desc.fields())
    if (scalar_size(f.kind) > 1) converted += f.count;
  return converted;
}

}  // namespace jade
