// Wire format is header-only; this TU exists so the module has a home for
// future out-of-line helpers and to keep the build graph uniform.
#include "jade/types/wire.hpp"
