// Chase–Lev work-stealing deque (SPAA '05), in the acquire/release
// formulation of Lê, Pop, Cohen & Zappa Nardelli (PPoPP '13).
//
// One owner thread pushes and pops at the bottom; any number of thief
// threads steal from the top.  The owner's path is a handful of relaxed
// atomics per operation; thieves pay one CAS.  This is the per-worker ready
// queue of the ThreadEngine: tasks a worker creates (or that completing a
// task enables) land in that worker's own deque and are executed LIFO for
// locality, while idle workers steal the oldest entries FIFO — the order a
// shared queue would have dispatched them in.
//
// Memory-model notes:
//   * Elements live in atomic cells so a thief's read of a slot the owner
//     is concurrently recycling is a benign relaxed load (its value is
//     discarded when the top CAS fails), not a data race.
//   * The PPoPP '13 version uses standalone seq_cst fences; here the fences
//     are folded into seq_cst operations on top_/bottom_ themselves, which
//     ThreadSanitizer models precisely (standalone fences it does not).
//   * Retired ring buffers are kept until destruction: a thief may still be
//     reading a stale buffer pointer, and at one retired array per doubling
//     the total waste is bounded by ~2x the live buffer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "jade/support/error.hpp"

namespace jade {

template <typename T>
class WorkStealDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WorkStealDeque elements are copied through atomic cells");

 public:
  explicit WorkStealDeque(std::size_t initial_capacity = 64) {
    JADE_ASSERT_MSG((initial_capacity & (initial_capacity - 1)) == 0,
                    "deque capacity must be a power of two");
    buffer_.store(new Ring(initial_capacity), std::memory_order_relaxed);
  }

  ~WorkStealDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    // retired_ buffers delete themselves via unique_ptr.
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  /// Owner only: append at the bottom.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* a = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) a = grow(b, t);
    a->put(b, item);
    bottom_.store(b + 1, std::memory_order_seq_cst);  // release + fence
  }

  /// Owner only: take the newest entry (LIFO), or nothing when empty.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* a = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);  // publish before top read
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // deque was empty; restore
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T item = a->get(b);
    if (t == b) {
      // Last element: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // a thief got it
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: take the oldest entry (FIFO), or nothing when empty or a
  /// race was lost (callers treat both as "try elsewhere").
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return std::nullopt;
    Ring* a = buffer_.load(std::memory_order_acquire);
    T item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return std::nullopt;  // lost to the owner or another thief
    return item;
  }

  /// Racy size estimate (exact when only the owner is active).
  std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty() const { return size_estimate() == 0; }

 private:
  /// Power-of-two ring of atomic cells.  Cells are relaxed: ordering comes
  /// from top_/bottom_, and a stale read is discarded by a failing CAS.
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          cells(std::make_unique<std::atomic<T>[]>(cap)) {}

    T get(std::int64_t i) const {
      return cells[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      cells[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }

    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;
  };

  /// Owner only: double the ring, copying live entries [t, b).
  Ring* grow(std::int64_t b, std::int64_t t) {
    Ring* old = buffer_.load(std::memory_order_relaxed);
    Ring* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer_.store(bigger, std::memory_order_release);
    retired_.emplace_back(old);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> buffer_{nullptr};
  std::vector<std::unique_ptr<Ring>> retired_;  ///< owner-only mutation
};

}  // namespace jade
