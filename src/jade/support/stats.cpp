#include "jade/support/stats.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "jade/support/error.hpp"

namespace jade {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::quantile(double q) const {
  JADE_ASSERT(!xs_.empty());
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double SampleSet::mean() const {
  return xs_.empty() ? 0.0 : sum() / static_cast<double>(xs_.size());
}

double SampleSet::sum() const {
  double s = 0.0;
  for (double x : xs_) s += x;
  return s;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  JADE_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double c : cells) out.push_back(format_double(c, precision));
  add_row(std::move(out));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size())
        os << std::string(widths[i] - row[i].size() + 2, ' ');
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void CounterSet::add(std::string name, std::uint64_t value) {
  items_.emplace_back(std::move(name), value);
}

std::uint64_t CounterSet::value(const std::string& name) const {
  for (const auto& [n, v] : items_)
    if (n == name) return v;
  return 0;
}

void CounterSet::print(std::ostream& os) const {
  TextTable table({"counter", "value"});
  for (const auto& [n, v] : items_)
    table.add_row({n, std::to_string(v)});
  table.print(os);
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace jade
