#include "jade/support/error.hpp"

#include <sstream>

namespace jade::detail {

void throw_internal(const char* file, int line, const char* expr,
                    const std::string& msg) {
  std::ostringstream os;
  os << "jade internal invariant failed: " << expr << " at " << file << ":"
     << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw InternalError(os.str());
}

}  // namespace jade::detail
