// A minimal intrusive doubly-linked list.
//
// The per-object declaration queues at the heart of the Jade serializer need
// O(1) insert-before-a-known-node (a child task's declaration is inserted
// immediately before its parent's) and O(1) unlink (when a task retires a
// right with no_rd/no_wr or completes).  std::list could do this, but an
// intrusive list lets a declaration record live in exactly one allocation
// owned by its task while being linked into its object's queue.
#pragma once

#include <cstddef>
#include <iterator>

#include "jade/support/error.hpp"

namespace jade {

/// Base class for nodes stored in an IntrusiveList.
struct IntrusiveNode {
  IntrusiveNode* prev = nullptr;
  IntrusiveNode* next = nullptr;

  bool linked() const { return prev != nullptr; }
};

/// Intrusive doubly-linked list with a sentinel head.  T must derive from
/// IntrusiveNode.  The list does not own its elements.
template <typename T>
class IntrusiveList {
 public:
  IntrusiveList() { head_.prev = head_.next = &head_; }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }

  std::size_t size() const {
    std::size_t n = 0;
    for (const IntrusiveNode* p = head_.next; p != &head_; p = p->next) ++n;
    return n;
  }

  T* front() { return empty() ? nullptr : static_cast<T*>(head_.next); }
  const T* front() const {
    return empty() ? nullptr : static_cast<const T*>(head_.next);
  }

  T* back() { return empty() ? nullptr : static_cast<T*>(head_.prev); }

  void push_back(T* node) { insert_before_node(&head_, node); }
  void push_front(T* node) { insert_before_node(head_.next, node); }

  /// Inserts `node` immediately before `pos`, which must be linked into this
  /// list.
  void insert_before(T* pos, T* node) { insert_before_node(pos, node); }

  static void unlink(T* node) {
    JADE_ASSERT(node->linked());
    node->prev->next = node->next;
    node->next->prev = node->prev;
    node->prev = node->next = nullptr;
  }

  /// Returns the node after `node`, or nullptr at the end of the list.
  T* next_of(T* node) {
    return node->next == &head_ ? nullptr : static_cast<T*>(node->next);
  }
  const T* next_of(const T* node) const {
    return node->next == &head_ ? nullptr : static_cast<const T*>(node->next);
  }

  /// Returns the node before `node`, or nullptr at the front of the list.
  T* prev_of(T* node) {
    return node->prev == &head_ ? nullptr : static_cast<T*>(node->prev);
  }
  const T* prev_of(const T* node) const {
    return node->prev == &head_ ? nullptr : static_cast<const T*>(node->prev);
  }

  /// Simple forward iteration support.
  template <typename F>
  void for_each(F&& f) {
    for (IntrusiveNode* p = head_.next; p != &head_;) {
      IntrusiveNode* nxt = p->next;  // allow f to unlink p
      f(static_cast<T*>(p));
      p = nxt;
    }
  }

 private:
  void insert_before_node(IntrusiveNode* pos, T* node) {
    JADE_ASSERT(!node->linked());
    node->prev = pos->prev;
    node->next = pos;
    pos->prev->next = node;
    pos->prev = node;
  }

  IntrusiveNode head_;
};

}  // namespace jade
