// Small statistics helpers used by the benchmark harnesses and the runtime's
// self-instrumentation (task counts, message volumes, idle time).
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace jade {

/// Welford one-pass accumulator for mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects samples and answers quantile queries; used for task-length and
/// message-latency distributions in the trace benches.
class SampleSet {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t size() const { return xs_.size(); }
  double quantile(double q) const;  // q in [0,1]
  double mean() const;
  double sum() const;

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Plain-text table printer: the figure benches print the same rows/series a
/// paper figure plots, aligned for reading in a terminal.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_row(const std::vector<double>& cells, int precision = 3);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (locale-independent).
std::string format_double(double v, int precision);

/// An ordered list of named integer counters.  The ft/ observability layer
/// uses it to hand benches and tests one uniform "name = value" view of the
/// fault/recovery counters; insertion order is preserved so output is
/// stable.
class CounterSet {
 public:
  void add(std::string name, std::uint64_t value);

  std::size_t size() const { return items_.size(); }
  const std::string& name(std::size_t i) const { return items_[i].first; }
  std::uint64_t value(std::size_t i) const { return items_[i].second; }

  /// Looks a counter up by name (0 if absent — counters default to zero).
  std::uint64_t value(const std::string& name) const;

  /// Renders as a two-column TextTable ("counter", "value").
  void print(std::ostream& os) const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> items_;
};

}  // namespace jade
