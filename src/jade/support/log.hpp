// Leveled logging for the runtime.  Off by default; the trace bench
// (bench_fig7_trace) raises the level to narrate object motion and task
// migration the way the paper's Figure 7 does.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace jade {

enum class LogLevel { kOff = 0, kInfo = 1, kTrace = 2 };

class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void set_level(LogLevel level);

  /// Replaces the output sink (default: stderr).  Used by tests to capture
  /// trace output.
  static void set_sink(Sink sink);

  static void write(LogLevel level, const std::string& msg);
  static bool enabled(LogLevel level) { return level <= Log::level(); }
};

#define JADE_LOG(lvl, expr)                                       \
  do {                                                            \
    if (::jade::Log::enabled(lvl)) {                              \
      std::ostringstream jade_log_os_;                            \
      jade_log_os_ << expr;                                       \
      ::jade::Log::write(lvl, jade_log_os_.str());                \
    }                                                             \
  } while (0)

#define JADE_INFO(expr) JADE_LOG(::jade::LogLevel::kInfo, expr)
#define JADE_TRACE(expr) JADE_LOG(::jade::LogLevel::kTrace, expr)

}  // namespace jade
