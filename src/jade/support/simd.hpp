// SIMD portability layer for data-parallel kernel bodies.
//
// The apps' inner loops (src/jade/apps/kernels_soa.cpp) are written so that
// GCC and Clang auto-vectorize them from portable C++ — no ISA intrinsics.
// This header supplies the three ingredients those loops need:
//
//   * JADE_VEC_LOOP      a loop annotation asserting no loop-carried
//                        dependences (GCC `ivdep`, Clang `vectorize(enable)`),
//                        which together with JADE_RESTRICT pointers lets the
//                        compiler emit packed arithmetic.  On an unknown
//                        compiler both expand to nothing and the loop simply
//                        runs scalar — the scalar fallback is the same code.
//   * JADE_RESTRICT      non-aliasing qualifier for kernel pointer params.
//   * simd::span         a lane view into a structure-of-arrays payload: a
//                        flat shared object holding K equal-length component
//                        blocks ([x0..xn, y0..yn, z0..zn]) is sliced into its
//                        lanes without copying.  The flat layout is what
//                        serializes through TypeDescriptor/WireWriter — an
//                        SoA payload is byte-for-byte an ordinary scalar
//                        array, so every engine and the coherence protocol
//                        move it unchanged.
//
// Alignment contract: kernels must tolerate any alignment (shared-object
// buffers only guarantee the allocator's 16 bytes; compilers peel or use
// unaligned loads).  Host-side scratch that wants the full vector width can
// use AlignedBuffer, which over-aligns to kVectorAlign.
//
// Verifying vectorization: tools/check_vectorization.py recompiles the
// kernel translation unit with `-fopt-info-vec` and fails if any `// VEC:`
// tagged loop is not vectorized; CI runs it on every push (docs/
// PERFORMANCE.md, "Kernel data layout").
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>

#if defined(__clang__)
#define JADE_VEC_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#define JADE_RESTRICT __restrict__
#elif defined(__GNUC__)
#define JADE_VEC_LOOP _Pragma("GCC ivdep")
#define JADE_RESTRICT __restrict__
#else
#define JADE_VEC_LOOP
#define JADE_RESTRICT
#endif

namespace jade::simd {

/// Over-alignment for host-side scratch: one cache line, enough for any
/// vector unit this code will meet (AVX-512 needs 64).
inline constexpr std::size_t kVectorAlign = 64;

/// True when the loop annotations above are active (informational; the
/// scalar fallback is the same source text).
constexpr bool annotations_enabled() {
#if defined(__clang__) || defined(__GNUC__)
  return true;
#else
  return false;
#endif
}

/// Lane view into a structure-of-arrays block: `flat` holds `lanes` equal
/// runs of `count` elements each; lane(k) is the k-th run.  Pure view — the
/// backing object stays a flat scalar array for TypeDescriptor purposes.
template <typename T>
class span {
 public:
  constexpr span() = default;
  constexpr span(T* data, std::size_t size) : data_(data), size_(size) {}
  constexpr span(std::span<T> s) : data_(s.data()), size_(s.size()) {}

  constexpr T* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr T& operator[](std::size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  constexpr span subspan(std::size_t offset, std::size_t count) const {
    return span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Slices lane `k` out of a flat SoA payload of `lanes` runs of `count`.
template <typename T>
constexpr span<T> soa_lane(std::span<T> flat, std::size_t k,
                           std::size_t count) {
  return span<T>(flat.data() + k * count, count);
}

template <typename T>
constexpr span<const T> soa_lane(std::span<const T> flat, std::size_t k,
                                 std::size_t count) {
  return span<const T>(flat.data() + k * count, count);
}

/// Host-side scratch aligned to kVectorAlign (shared-object buffers make no
/// such promise; kernels never require it, but aligned scratch lets the
/// compiler skip peeling on the hot gather buffers).
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t count) { resize(count); }
  ~AlignedBuffer() { release(); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& o) noexcept
      : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }

  void resize(std::size_t count) {
    if (count == size_) return;
    release();
    if (count > 0) {
      data_ = static_cast<T*>(::operator new(
          count * sizeof(T), std::align_val_t(kVectorAlign)));
      for (std::size_t i = 0; i < count; ++i) data_[i] = T{};
    }
    size_ = count;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void release() {
    if (data_ != nullptr)
      ::operator delete(data_, std::align_val_t(kVectorAlign));
    data_ = nullptr;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace jade::simd
