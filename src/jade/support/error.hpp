// Error types for the Jade runtime.
//
// The paper's implementation "dynamically checks each task's accesses to
// ensure that its access specification is correct.  If a task attempts to
// perform an undeclared access, the implementation generates an error."
// (Section 5, "Access Checking").  We surface those errors as exceptions so
// tests can assert on them precisely.
#pragma once

#include <stdexcept>
#include <string>

namespace jade {

/// Base class of all errors raised by the Jade runtime.
class JadeError : public std::runtime_error {
 public:
  explicit JadeError(const std::string& what) : std::runtime_error(what) {}
};

/// A task touched a shared object without having declared (or retained) the
/// required access right, or while the right was still deferred.
class UndeclaredAccessError : public JadeError {
 public:
  explicit UndeclaredAccessError(const std::string& what) : JadeError(what) {}
};

/// A with-cont tried to change an access specification in a way the model
/// forbids (e.g. adding a brand-new right mid-task, or converting a right
/// that was never declared deferred).
class SpecUpdateError : public JadeError {
 public:
  explicit SpecUpdateError(const std::string& what) : JadeError(what) {}
};

/// A child task declared an access its parent's specification does not cover
/// (Section 4.4: "The access specification of a task that hierarchically
/// creates child tasks must declare both its own accesses and the accesses
/// performed by all of its child tasks.")
class HierarchyViolationError : public JadeError {
 public:
  explicit HierarchyViolationError(const std::string& what) : JadeError(what) {}
};

/// A server tenant's task declared an access to another tenant's shared
/// object.  Raised at task creation — the single chokepoint through which
/// every access right enters a task graph — so the offending tenant fails
/// before it can observe or serialize against foreign data.
class TenantIsolationError : public JadeError {
 public:
  explicit TenantIsolationError(const std::string& what) : JadeError(what) {}
};

/// Invalid runtime / platform configuration.
class ConfigError : public JadeError {
 public:
  explicit ConfigError(const std::string& what) : JadeError(what) {}
};

/// The fault-tolerance subsystem (ft/) cannot mask a failure: the sole copy
/// of a live object died with its machine (and stable storage is off), or a
/// killed task was pinned to the crashed machine.  Serial semantics makes
/// re-execution sound, but it cannot resurrect bytes nobody else holds.
class UnrecoverableError : public JadeError {
 public:
  explicit UnrecoverableError(const std::string& what) : JadeError(what) {}
};

/// A malformed, truncated, or otherwise un-decodable message arrived on a
/// cluster link (src/jade/cluster): bad frame magic/version, a payload that
/// does not parse as its declared message type, or trailing garbage.  Raised
/// instead of undefined behaviour so a corrupt peer can never crash the
/// coordinator silently.
class ProtocolError : public JadeError {
 public:
  explicit ProtocolError(const std::string& what) : JadeError(what) {}
};

/// Internal invariant failure; indicates a bug in the runtime itself.
class InternalError : public JadeError {
 public:
  explicit InternalError(const std::string& what) : JadeError(what) {}
};

namespace detail {
[[noreturn]] void throw_internal(const char* file, int line, const char* expr,
                                 const std::string& msg);
}  // namespace detail

/// Checks a runtime-internal invariant; throws InternalError on failure.
#define JADE_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::jade::detail::throw_internal(__FILE__, __LINE__, #expr, "");       \
    }                                                                      \
  } while (0)

#define JADE_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::jade::detail::throw_internal(__FILE__, __LINE__, #expr, (msg));    \
    }                                                                      \
  } while (0)

}  // namespace jade
