// Deterministic pseudo-random number generation.
//
// Reproducibility is a design requirement: the paper's central property is
// that "all parallel executions of a Jade program deterministically generate
// the same result as a serial execution"; our property tests generate random
// programs and random workloads from seeds, so the generators must be
// portable and stable across platforms (std::mt19937 distributions are not).
#pragma once

#include <cstdint>

namespace jade {

/// SplitMix64: used to seed Xoshiro and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1dea5eedULL);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli trial with probability p.
  bool next_bool(double p = 0.5);

  /// Standard normal via Box-Muller (no cached second value, for simplicity
  /// and determinism under reordering).
  double next_normal();

 private:
  std::uint64_t s_[4];
};

}  // namespace jade
