// Virtual-time definitions shared by the simulation kernel and the network
// cost models.
#pragma once

namespace jade {

/// Virtual time in seconds.  The discrete-event engine (SimEngine) advances
/// this clock; wall-clock time is irrelevant to the reproduced experiments.
using SimTime = double;

/// Identifies a simulated machine within a cluster (dense index).
using MachineId = int;

/// Cluster size ceiling.  The object directory tracks copy holders and
/// stale-replica versions in per-machine structures keyed by a 64-bit
/// bitmask, so a cluster may not exceed 64 machines; ClusterConfig::validate
/// and ObjectDirectory both reject larger configurations with a ConfigError.
inline constexpr int kMaxMachines = 64;

}  // namespace jade
