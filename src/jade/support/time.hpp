// Virtual-time definitions shared by the simulation kernel and the network
// cost models.
#pragma once

namespace jade {

/// Virtual time in seconds.  The discrete-event engine (SimEngine) advances
/// this clock; wall-clock time is irrelevant to the reproduced experiments.
using SimTime = double;

/// Identifies a simulated machine within a cluster (dense index).
using MachineId = int;

}  // namespace jade
