// Virtual-time definitions shared by the simulation kernel and the network
// cost models.
#pragma once

namespace jade {

/// Virtual time in seconds.  The discrete-event engine (SimEngine) advances
/// this clock; wall-clock time is irrelevant to the reproduced experiments.
using SimTime = double;

/// Identifies a simulated machine within a cluster (dense index).
using MachineId = int;

/// Cluster size ceiling.  The object directory tracks copy holders in a
/// hybrid ReplicaSet (a uint64 fast path for machine ids below 64 plus a
/// sorted small-set overflow — see store/replica_set.hpp) and stale-replica
/// versions in a sparse per-entry map, so the bound is no longer a bitmask
/// width; it is a sanity ceiling on configuration mistakes.
/// ClusterConfig::validate and ObjectDirectory reject larger configurations
/// with a ConfigError.
inline constexpr int kMaxMachines = 4096;

}  // namespace jade
