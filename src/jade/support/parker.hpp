// Parker — one thread's private parking spot.
//
// The ThreadEngine gives every worker its own Parker so a producer with new
// work wakes exactly one chosen sleeper (pop an idle worker, unpark it)
// instead of broadcasting on a shared condition variable and stampeding the
// whole pool — the classic eventcount/parking-lot discipline of modern task
// runtimes.
//
// Tokens don't accumulate: any number of unpark() calls before a park()
// satisfy exactly one park().  That is the right semantics for "there may
// be work for you": the woken thread rescans the deques regardless of how
// many times it was nudged.
#pragma once

#include <condition_variable>
#include <mutex>

namespace jade {

class Parker {
 public:
  /// Blocks until a token is available (possibly already), then consumes it.
  void park() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return token_; });
    token_ = false;
  }

  /// Deposits the token and wakes the parked thread, if any.
  void unpark() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      token_ = true;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool token_ = false;
};

}  // namespace jade
