#include "jade/support/rng.hpp"

#include <cmath>

namespace jade {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_normal() {
  double u1 = next_double();
  double u2 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace jade
