#include "jade/support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace jade {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_sink_mutex;
Log::Sink& sink_storage() {
  static Log::Sink sink;
  return sink;
}
}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Log::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_storage() = std::move(sink);
}

void Log::write(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (sink_storage()) {
    sink_storage()(level, msg);
  } else {
    std::cerr << "[jade] " << msg << '\n';
  }
}

}  // namespace jade
