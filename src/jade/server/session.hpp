// Session — one tenant program's lifetime on a shared engine.
//
// The paper's model is one program, one Runtime, one run().  A session is
// that same programming model re-hosted on an engine shared with thousands
// of other programs: the session allocates its shared objects (tagged with
// its TenantId so the serializer rejects any cross-tenant declaration),
// submits one root body, waits for the graph to drain, reads results back,
// and closes — releasing its object storage and its admission slot.
//
// Lifecycle:  open_session ──► kAdmitted ──submit──► kRunning ──┐
//                   │                                           │ graph
//                   ▼                                           ▼ drains
//               kQueued ──promote──► kAdmitted            kCompleted /
//                   │                                kFailed / kCancelled
//                   └── cancel/stop ──► kCancelled            │
//                                                           close()
//
// Termination is detected by the tenant's quiesce hook — the serializer
// fires it when the tenant's live-task count drops to zero — so wait()
// needs no polling and no help from the dispatcher.  A failed body cancels
// the tenant (its remaining tasks unwind) but never the engine: the first
// escaped exception is kept in the TenantCtl and rethrown to whoever calls
// rethrow_failure().
//
// Thread safety: every member is safe to call from any host thread, and
// alloc/put/get also from this tenant's own task bodies.  See
// docs/SERVER.md for the full contract.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "jade/core/task.hpp"
#include "jade/core/tenant.hpp"
#include "jade/engine/engine.hpp"
#include "jade/support/error.hpp"

namespace jade::server {

class JadeServer;

enum class SessionState : std::uint8_t {
  kQueued,     ///< admitted to the wait queue, no active slot yet
  kAdmitted,   ///< holds an active slot, body not yet submitted
  kRunning,    ///< body submitted (may still be waiting for the dispatcher)
  kCompleted,  ///< graph drained cleanly
  kFailed,     ///< a task body threw; failure() holds the exception
  kCancelled,  ///< torn down by cancel() or server stop
};

inline bool session_terminal(SessionState s) {
  return s == SessionState::kCompleted || s == SessionState::kFailed ||
         s == SessionState::kCancelled;
}

const char* session_state_name(SessionState s);

/// Snapshot of one session's accounting (see TenantCtl for the semantics).
struct SessionStats {
  std::uint64_t tasks_created = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_cancelled = 0;
  std::uint64_t max_live = 0;
  /// submit() to quiescence, wall seconds (0 until terminal).
  double latency_seconds = 0;
};

class Session : public std::enable_shared_from_this<Session> {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  TenantId id() const { return ctl_.id; }
  const std::string& name() const { return name_; }
  SessionState state() const { return state_.load(std::memory_order_acquire); }

  /// Allocates a zero-initialized shared array owned by this tenant.  The
  /// object's registry name is prefixed "t<id>/" and its tenant tag makes
  /// any other tenant's declaration of it a TenantIsolationError.
  template <typename T>
  SharedRef<T> alloc(std::size_t count, std::string name = "") {
    static_assert(std::is_trivially_copyable_v<T>);
    const ObjectId id =
        alloc_raw(TypeDescriptor::array_of<T>(count), std::move(name));
    return SharedRef<T>(id, count);
  }

  /// Host-side write; rejects objects this tenant does not own.
  template <typename T>
  void put(const SharedRef<T>& ref, std::span<const T> data) {
    JADE_ASSERT(data.size() == ref.count());
    check_owned(ref.id());
    engine_->put_bytes(ref.id(),
                       {reinterpret_cast<const std::byte*>(data.data()),
                        data.size() * sizeof(T)});
  }

  /// Host-side read; rejects objects this tenant does not own.
  template <typename T>
  std::vector<T> get(const SharedRef<T>& ref) {
    check_owned(ref.id());
    std::vector<std::byte> raw = engine_->get_bytes(ref.id());
    JADE_ASSERT(raw.size() == ref.byte_size());
    std::vector<T> out(ref.count());
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Submits this session's program: `body` becomes the tenant's root task
  /// once the dispatcher launches it (immediately when admitted; after
  /// promotion when queued).  One submission per session.
  void submit(TaskContext::BodyFn body);

  /// Blocks until the session reaches a terminal state and returns it.
  /// On a batch-mode server (SimEngine/SerialEngine) the graph only runs
  /// inside JadeServer::drain(), so call that first.
  SessionState wait();

  /// Forced teardown: pending task bodies are skipped, spawning/waiting
  /// ones unwind, and the graph drains to kCancelled without disturbing
  /// other tenants.  Idempotent; a no-op once terminal.
  void cancel();

  /// Releases the session's object storage and admission slot (promoting
  /// queued sessions).  Requires a terminal state.  Idempotent.
  void close();

  SessionStats stats() const;

  /// First exception that escaped one of this session's task bodies, or
  /// null.  rethrow_failure() throws it (no-op when clean).
  std::exception_ptr failure() const { return ctl_.failure(); }
  void rethrow_failure() const;

  /// The tenant control block (white-box tests; quota introspection).
  TenantCtl& ctl() { return ctl_; }

 private:
  friend class JadeServer;

  Session(JadeServer& server, Engine& engine, TenantId id, std::string name,
          double weight, std::size_t expected_bytes);

  ObjectId alloc_raw(TypeDescriptor type, std::string name);
  void check_owned(ObjectId obj) const;

  /// TenantCtl::on_quiesce target: runs under the engine's serializer
  /// discipline when the last task completes.  Records the terminal state,
  /// publishes the tenant's metrics, notifies waiters.
  void on_quiesce();

  /// Marks a terminal state and wakes wait()ers (never-launched paths:
  /// cancellation while queued, server stop).
  void finish_as(SessionState s);

  JadeServer* server_;
  Engine* engine_;
  TenantCtl ctl_;
  const std::string name_;
  const double weight_;
  const std::size_t expected_bytes_;

  std::atomic<SessionState> state_{SessionState::kQueued};
  /// Guarded by mu_: the wait()/notify handshake and the owned-object list.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ObjectId> owned_objects_;
  std::size_t bytes_allocated_ = 0;

  // JadeServer state, guarded by the server's mutex.
  TaskContext::BodyFn pending_body_;  ///< queued sessions park their body here
  bool holds_slot_ = false;
  bool closed_ = false;

  std::chrono::steady_clock::time_point submit_time_{};
  std::atomic<double> latency_seconds_{0};

  // Metric handles, resolved once at open (registry references are stable).
  obs::Counter* m_created_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_cancelled_ = nullptr;
  obs::Counter* m_max_live_ = nullptr;
};

}  // namespace jade::server
