// JadeServer — a multi-tenant, sustained-traffic front end over one engine.
//
// The paper's runtime executes one program and exits.  This server keeps
// one engine (and its worker pool / simulated cluster) resident and feeds
// it a stream of independent Jade programs: each admitted session becomes a
// *program root* task whose subtree is woven with the session's TenantCtl,
// giving it isolated objects (serializer-enforced), its own fair-share
// live-task quota (ThrottleGate), contained failures, and forced teardown
// that unwinds without corrupting shared engine state.
//
// Two dispatch modes, chosen by the engine:
//
//   * live (ThreadEngine) — the server owns a dispatcher thread that runs
//     one perpetual engine run(); its root body loops on the submission
//     queue and launches tenant roots as they arrive.  Submissions from any
//     host thread start executing immediately; stop() ends the root loop
//     and the run drains.
//
//   * batch (SimEngine/SerialEngine) — these engines are single-threaded by
//     design, so submissions accumulate until drain(), which executes every
//     pending tenant graph in one engine run (deterministically, in
//     submission order) and returns when all have quiesced.  drain() may be
//     called repeatedly: the engine resets its scheduling state between
//     runs while tenant objects persist.
//
// Admission (AdmissionController) bounds concurrent and queued sessions and
// the declared resident-byte footprint; closing a session promotes queued
// ones FIFO.  Quotas: with quota_pool > 0, the pool of live-task slots is
// re-split across active sessions (fair_share_windows) on every admit and
// close, so each tenant's task creation throttles at its fair share and no
// tenant starves.  Observability: per-tenant counters are published as
// "tenant.<id>.*" at quiescence and session latency feeds the
// "server.session_latency" histogram — all in the engine's own registry.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/server/admission.hpp"
#include "jade/server/session.hpp"

namespace jade::server {

struct ServerConfig {
  /// Engine choice and tuning; the server owns the Runtime built from it.
  RuntimeConfig runtime;
  AdmissionConfig admission;
  /// Live-task slots split across active sessions in proportion to their
  /// weights (0: per-tenant quotas off — only the engine's global throttle,
  /// if configured, limits creation).
  std::uint64_t quota_pool = 0;
  /// Starvation floor: every active session's window is at least this many
  /// live tasks regardless of weight.
  std::uint64_t min_quota = 1;
};

struct SessionOptions {
  /// Fair-share weight for the quota split (<= 0 gets the floor).
  double weight = 1.0;
  /// Declared resident-byte footprint, charged against the admission byte
  /// budget for the session's whole admitted lifetime.
  std::size_t expected_bytes = 0;
};

class JadeServer {
 public:
  explicit JadeServer(ServerConfig config);
  ~JadeServer();

  JadeServer(const JadeServer&) = delete;
  JadeServer& operator=(const JadeServer&) = delete;

  /// Admits, queues, or rejects a new session.  Returns nullptr on
  /// rejection (queue full, impossible byte request, or server stopping).
  std::shared_ptr<Session> open_session(std::string name,
                                        SessionOptions options = {});

  /// Batch mode only: runs every pending submission to quiescence in one
  /// engine run.  No-op when nothing is pending; ConfigError in live mode.
  void drain();

  /// Stops accepting sessions, ends the dispatcher loop, and waits for
  /// in-flight tenant graphs to drain.  Sessions still queued or never
  /// launched finish as kCancelled.  Idempotent; the destructor calls it.
  /// For a fast shutdown, cancel() the running sessions first.
  void stop();

  std::size_t active_sessions() const;
  std::size_t queued_sessions() const;

  Runtime& runtime() { return runtime_; }
  Engine& engine() { return runtime_.engine(); }
  obs::MetricsRegistry& metrics() { return runtime_.metrics(); }
  const ServerConfig& config() const { return config_; }

 private:
  friend class Session;

  /// One queued launch: the body plus the owning handle that keeps the
  /// session alive until its root task retires.
  struct Launch {
    std::shared_ptr<Session> session;
    TaskContext::BodyFn body;
  };

  // Session-facing operations (Session methods delegate here).
  void submit(Session& s, TaskContext::BodyFn body);
  void cancel(Session& s);
  void close(Session& s);
  /// Engine-side quiescence accounting: latency histogram + outcome
  /// counters.  Called from Session::on_quiesce under the engine's
  /// serializer discipline.
  void note_quiesced(SessionState outcome, double latency_seconds);

  void enqueue_launch(Launch launch);
  static void launch(TaskContext& ctx, Launch l);
  void dispatch_loop(TaskContext& ctx);

  /// Pops wait-queue sessions into active slots while capacity lasts, then
  /// re-splits the quota pool.  Callers hold mu_.
  void promote_locked();
  void recompute_quotas_locked();

  ServerConfig config_;
  Runtime runtime_;
  const bool live_;  ///< ThreadEngine: dispatcher thread + perpetual run

  mutable std::mutex mu_;  ///< sessions, admission, quotas, stopping flag
  AdmissionController admission_;
  TenantId next_tenant_ = 1;
  bool stopping_ = false;
  std::unordered_map<TenantId, std::shared_ptr<Session>> sessions_;
  std::vector<std::shared_ptr<Session>> active_;
  std::deque<std::shared_ptr<Session>> wait_queue_;

  /// Submission queue feeding the dispatcher (leaf lock: never held while
  /// calling into the engine or taking mu_).
  std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<Launch> submissions_;
  bool qstopping_ = false;

  std::thread dispatcher_;
  std::exception_ptr run_error_;

  // Server-level metric handles (engine registry; resolved at construction).
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_queued_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_cancelled_ = nullptr;
  obs::Histogram* m_latency_ = nullptr;
};

}  // namespace jade::server
