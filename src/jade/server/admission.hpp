// AdmissionController — the server's pressure valve.
//
// One shared engine can exploit only so much concurrency; admitting every
// arriving program onto it converts overload into collapse (unbounded task
// backlogs, memory exhaustion).  The controller keeps the server in its
// operating region with a three-way decision per arriving session:
//
//   kAdmit  — capacity available: the session takes an active slot (and
//             reserves its declared byte footprint) immediately;
//   kQueue  — active capacity exhausted but the wait queue has room: the
//             session parks FIFO and is promoted as slots free up;
//   kReject — both are full (or the byte budget cannot ever fit the
//             request): the caller is told now, not after a long wait.
//
// The controller is pure bookkeeping — counts and budgets, no locking, no
// queue storage.  JadeServer brings the mutex and owns the actual wait
// queue; this split keeps the policy testable in isolation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace jade::server {

struct AdmissionConfig {
  /// Sessions running concurrently on the engine.
  std::size_t max_active_sessions = 64;
  /// Sessions parked waiting for an active slot; arrivals beyond this are
  /// rejected outright.
  std::size_t max_queued_sessions = 1024;
  /// Total declared bytes resident across active sessions (0: unlimited).
  /// Uses each session's declared expectation, not live allocation — the
  /// point is to refuse work early, before it allocates.
  std::size_t max_resident_bytes = 0;
};

enum class Admission : std::uint8_t { kAdmit, kQueue, kReject };

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  /// Decision for a new arrival declaring `expected_bytes`.  A request
  /// larger than the whole byte budget can never run and is rejected even
  /// when the queue has room.
  Admission decide(std::size_t expected_bytes) const;

  /// True when an active slot and the byte budget can take the session now
  /// (the promotion predicate; decide() == kAdmit implies this).
  bool can_admit(std::size_t expected_bytes) const;

  void admit(std::size_t expected_bytes);
  void release(std::size_t expected_bytes);
  void note_queued() { ++queued_; }
  void note_dequeued();

  std::size_t active() const { return active_; }
  std::size_t queued() const { return queued_; }
  std::size_t resident_bytes() const { return resident_bytes_; }
  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  std::size_t active_ = 0;
  std::size_t queued_ = 0;
  std::size_t resident_bytes_ = 0;
};

}  // namespace jade::server
