#include "jade/server/server.hpp"

#include <algorithm>

#include "jade/sched/governor.hpp"
#include "jade/support/error.hpp"

namespace jade::server {

JadeServer::JadeServer(ServerConfig config)
    : config_(std::move(config)),
      runtime_(config_.runtime),
      live_(config_.runtime.engine == EngineKind::kThread),
      admission_(config_.admission) {
  obs::MetricsRegistry& reg = runtime_.metrics();
  m_admitted_ = &reg.counter("server.sessions_admitted");
  m_queued_ = &reg.counter("server.sessions_queued");
  m_rejected_ = &reg.counter("server.sessions_rejected");
  m_completed_ = &reg.counter("server.sessions_completed");
  m_failed_ = &reg.counter("server.sessions_failed");
  m_cancelled_ = &reg.counter("server.sessions_cancelled");
  m_latency_ = &reg.histogram("server.session_latency");
  if (live_) {
    dispatcher_ = std::thread([this] {
      try {
        runtime_.run([this](TaskContext& ctx) { dispatch_loop(ctx); });
      } catch (...) {
        // An engine-level failure (not a tenant body — those are contained)
        // takes the whole server down: fail every live session so waiters
        // unblock, and surface the error from stop().
        std::lock_guard<std::mutex> lock(mu_);
        run_error_ = std::current_exception();
        stopping_ = true;
        for (auto& [id, s] : sessions_) {
          if (!session_terminal(s->state())) {
            s->ctl_.record_failure(run_error_);
            s->finish_as(SessionState::kFailed);
          }
        }
      }
    });
  }
}

JadeServer::~JadeServer() {
  try {
    stop();
  } catch (...) {
    // stop() rethrows a stored engine failure; a destructor must not.
  }
}

std::shared_ptr<Session> JadeServer::open_session(std::string name,
                                                  SessionOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return nullptr;
  const Admission decision = admission_.decide(options.expected_bytes);
  if (decision == Admission::kReject) {
    m_rejected_->add(1);
    return nullptr;
  }
  const TenantId id = next_tenant_++;
  auto s = std::shared_ptr<Session>(new Session(
      *this, runtime_.engine(), id, std::move(name), options.weight,
      options.expected_bytes));
  // Metric handles, resolved here so every registry mutation from the
  // server side is serialized under mu_.
  obs::MetricsScope scope =
      runtime_.metrics().scope("tenant." + std::to_string(id) + ".");
  s->m_created_ = &scope.counter("tasks_created");
  s->m_completed_ = &scope.counter("tasks_completed");
  s->m_cancelled_ = &scope.counter("tasks_cancelled");
  s->m_max_live_ = &scope.counter("max_live");
  s->ctl_.on_quiesce = [raw = s.get()](TenantCtl&) { raw->on_quiesce(); };
  sessions_.emplace(id, s);
  if (decision == Admission::kAdmit) {
    admission_.admit(options.expected_bytes);
    s->holds_slot_ = true;
    s->state_.store(SessionState::kAdmitted, std::memory_order_release);
    active_.push_back(s);
    recompute_quotas_locked();
    m_admitted_->add(1);
  } else {
    admission_.note_queued();
    wait_queue_.push_back(s);
    m_queued_->add(1);
  }
  return s;
}

void JadeServer::submit(Session& s, TaskContext::BodyFn body) {
  std::shared_ptr<Session> sp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_)
      throw ConfigError("submit on a stopping server");
    const SessionState st = s.state();
    if (st == SessionState::kQueued) {
      if (s.pending_body_)
        throw ConfigError("session '" + s.name() + "' already submitted");
      // Latency clock starts now: queue wait is part of completion latency.
      s.submit_time_ = std::chrono::steady_clock::now();
      s.pending_body_ = std::move(body);
      return;
    }
    if (st != SessionState::kAdmitted)
      throw ConfigError("submit on session '" + s.name() + "' while " +
                        session_state_name(st));
    s.submit_time_ = std::chrono::steady_clock::now();
    s.state_.store(SessionState::kRunning, std::memory_order_release);
    sp = sessions_.at(s.id());
  }
  enqueue_launch({std::move(sp), std::move(body)});
}

void JadeServer::cancel(Session& s) {
  std::lock_guard<std::mutex> lock(mu_);
  const SessionState st = s.state();
  if (session_terminal(st)) return;
  if (st == SessionState::kQueued) {
    auto it = std::find_if(wait_queue_.begin(), wait_queue_.end(),
                           [&](const auto& q) { return q.get() == &s; });
    if (it != wait_queue_.end()) wait_queue_.erase(it);
    admission_.note_dequeued();
    s.finish_as(SessionState::kCancelled);
    note_quiesced(SessionState::kCancelled, 0);
    return;
  }
  if (st == SessionState::kAdmitted) {
    // Holds a slot but never submitted: no tasks exist, finish directly.
    s.finish_as(SessionState::kCancelled);
    note_quiesced(SessionState::kCancelled, 0);
    return;
  }
  // kRunning: the graph (launched or still queued for the dispatcher)
  // unwinds cooperatively; quiescence delivers kCancelled.
  s.ctl_.cancelled.store(true, std::memory_order_relaxed);
  runtime_.engine().notify_external();
}

void JadeServer::close(Session& s) {
  std::lock_guard<std::mutex> lock(mu_);
  if (s.closed_) return;
  if (!session_terminal(s.state()))
    throw ConfigError("close on session '" + s.name() + "' while " +
                      session_state_name(s.state()) +
                      " (wait() or cancel() first)");
  s.closed_ = true;
  {
    std::lock_guard<std::mutex> slock(s.mu_);
    for (ObjectId obj : s.owned_objects_)
      runtime_.engine().release_object(obj);
  }
  if (s.holds_slot_) {
    s.holds_slot_ = false;
    admission_.release(s.expected_bytes_);
    auto it = std::find_if(active_.begin(), active_.end(),
                           [&](const auto& a) { return a.get() == &s; });
    if (it != active_.end()) active_.erase(it);
  }
  sessions_.erase(s.id());
  promote_locked();
}

void JadeServer::note_quiesced(SessionState outcome, double latency_seconds) {
  // Engine serializer discipline (or mu_ for never-launched sessions):
  // calls are serialized per engine, and the histogram is touched nowhere
  // else while the server runs.
  switch (outcome) {
    case SessionState::kCompleted: m_completed_->add(1); break;
    case SessionState::kFailed: m_failed_->add(1); break;
    case SessionState::kCancelled: m_cancelled_->add(1); break;
    default: break;
  }
  if (latency_seconds > 0) m_latency_->observe(latency_seconds);
}

void JadeServer::enqueue_launch(Launch l) {
  {
    std::lock_guard<std::mutex> lock(qmu_);
    submissions_.push_back(std::move(l));
  }
  qcv_.notify_one();
}

void JadeServer::launch(TaskContext& ctx, Launch l) {
  Session* s = l.session.get();
  ctx.withonly_tenant(
      &s->ctl_, [](AccessDecl&) {},
      [keep = std::move(l.session), body = std::move(l.body)](
          TaskContext& tc) { body(tc); },
      "t" + std::to_string(s->id()) + "/root");
}

void JadeServer::dispatch_loop(TaskContext& ctx) {
  for (;;) {
    Launch item;
    {
      std::unique_lock<std::mutex> lock(qmu_);
      qcv_.wait(lock,
                [this] { return qstopping_ || !submissions_.empty(); });
      if (submissions_.empty()) break;  // qstopping_ and nothing pending
      item = std::move(submissions_.front());
      submissions_.pop_front();
    }
    launch(ctx, std::move(item));
  }
}

void JadeServer::drain() {
  if (live_)
    throw ConfigError(
        "drain() is for batch engines; a ThreadEngine server dispatches "
        "continuously");
  std::deque<Launch> batch;
  {
    std::lock_guard<std::mutex> lock(qmu_);
    batch.swap(submissions_);
  }
  if (batch.empty()) return;
  runtime_.run([&batch](TaskContext& ctx) {
    for (Launch& l : batch) launch(ctx, std::move(l));
  });
}

void JadeServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(qmu_);
    qstopping_ = true;
  }
  qcv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Whatever never launched (batch leftovers, submissions racing stop)
  // finishes as cancelled so waiters unblock.
  std::deque<Launch> leftovers;
  {
    std::lock_guard<std::mutex> lock(qmu_);
    leftovers.swap(submissions_);
  }
  for (Launch& l : leftovers) l.session->finish_as(SessionState::kCancelled);
  std::deque<std::shared_ptr<Session>> queued;
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queued.swap(wait_queue_);
    err = run_error_;
  }
  for (auto& s : queued) s->finish_as(SessionState::kCancelled);
  if (err) {
    std::lock_guard<std::mutex> lock(mu_);
    run_error_ = nullptr;  // surface once
    std::rethrow_exception(err);
  }
}

std::size_t JadeServer::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.active();
}

std::size_t JadeServer::queued_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_.queued();
}

void JadeServer::promote_locked() {
  while (!wait_queue_.empty()) {
    std::shared_ptr<Session>& front = wait_queue_.front();
    if (session_terminal(front->state())) {
      // Cancelled while queued but not yet removed (stop path safety).
      admission_.note_dequeued();
      wait_queue_.pop_front();
      continue;
    }
    if (!admission_.can_admit(front->expected_bytes_)) break;
    std::shared_ptr<Session> s = std::move(front);
    wait_queue_.pop_front();
    admission_.note_dequeued();
    admission_.admit(s->expected_bytes_);
    s->holds_slot_ = true;
    active_.push_back(s);
    m_admitted_->add(1);
    if (s->pending_body_) {
      s->state_.store(SessionState::kRunning, std::memory_order_release);
      enqueue_launch({s, std::move(s->pending_body_)});
      s->pending_body_ = nullptr;
    } else {
      s->state_.store(SessionState::kAdmitted, std::memory_order_release);
    }
  }
  recompute_quotas_locked();
}

void JadeServer::recompute_quotas_locked() {
  if (config_.quota_pool == 0) return;
  std::vector<double> weights;
  weights.reserve(active_.size());
  for (const auto& s : active_) weights.push_back(s->weight_);
  const auto windows =
      fair_share_windows(config_.quota_pool, weights, config_.min_quota);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    active_[i]->ctl_.quota_hi.store(windows[i].first,
                                    std::memory_order_relaxed);
    active_[i]->ctl_.quota_lo.store(windows[i].second,
                                    std::memory_order_relaxed);
  }
  // Widened windows may unblock creators parked on the tenant gate.
  runtime_.engine().notify_external();
}

}  // namespace jade::server
