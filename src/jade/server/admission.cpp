#include "jade/server/admission.hpp"

#include "jade/support/error.hpp"

namespace jade::server {

bool AdmissionController::can_admit(std::size_t expected_bytes) const {
  if (active_ >= config_.max_active_sessions) return false;
  if (config_.max_resident_bytes != 0 &&
      resident_bytes_ + expected_bytes > config_.max_resident_bytes)
    return false;
  return true;
}

Admission AdmissionController::decide(std::size_t expected_bytes) const {
  // A request the byte budget can never satisfy should not wait for it.
  if (config_.max_resident_bytes != 0 &&
      expected_bytes > config_.max_resident_bytes)
    return Admission::kReject;
  if (can_admit(expected_bytes)) return Admission::kAdmit;
  if (queued_ < config_.max_queued_sessions) return Admission::kQueue;
  return Admission::kReject;
}

void AdmissionController::admit(std::size_t expected_bytes) {
  ++active_;
  resident_bytes_ += expected_bytes;
}

void AdmissionController::release(std::size_t expected_bytes) {
  JADE_ASSERT_MSG(active_ > 0, "admission release without an active session");
  JADE_ASSERT_MSG(resident_bytes_ >= expected_bytes,
                  "admission byte accounting underflow");
  --active_;
  resident_bytes_ -= expected_bytes;
}

void AdmissionController::note_dequeued() {
  JADE_ASSERT_MSG(queued_ > 0, "admission dequeue from an empty queue");
  --queued_;
}

}  // namespace jade::server
