#include "jade/server/session.hpp"

#include "jade/server/server.hpp"

namespace jade::server {

const char* session_state_name(SessionState s) {
  switch (s) {
    case SessionState::kQueued: return "queued";
    case SessionState::kAdmitted: return "admitted";
    case SessionState::kRunning: return "running";
    case SessionState::kCompleted: return "completed";
    case SessionState::kFailed: return "failed";
    case SessionState::kCancelled: return "cancelled";
  }
  return "unknown";
}

Session::Session(JadeServer& server, Engine& engine, TenantId id,
                 std::string name, double weight, std::size_t expected_bytes)
    : server_(&server),
      engine_(&engine),
      ctl_(id),
      name_(std::move(name)),
      weight_(weight),
      expected_bytes_(expected_bytes) {}

ObjectId Session::alloc_raw(TypeDescriptor type, std::string name) {
  if (session_terminal(state()))
    throw ConfigError("alloc on session '" + name_ + "' after " +
                      session_state_name(state()));
  const std::size_t size = type.byte_size();
  std::string qualified = "t" + std::to_string(id()) + "/" + name;
  const ObjectId obj =
      engine_->allocate(std::move(type), std::move(qualified), -1);
  engine_->set_object_tenant(obj, id());
  std::lock_guard<std::mutex> lock(mu_);
  owned_objects_.push_back(obj);
  bytes_allocated_ += size;
  return obj;
}

void Session::check_owned(ObjectId obj) const {
  const TenantId owner = engine_->object_info(obj).tenant;
  if (owner != ctl_.id && owner != kSharedTenant)
    throw TenantIsolationError(
        "session '" + name_ + "' (tenant " + std::to_string(ctl_.id) +
        ") accessed object '" + engine_->object_info(obj).name +
        "' owned by tenant " + std::to_string(owner));
}

void Session::submit(TaskContext::BodyFn body) {
  server_->submit(*this, std::move(body));
}

SessionState Session::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return session_terminal(state()); });
  return state();
}

void Session::cancel() { server_->cancel(*this); }

void Session::close() { server_->close(*this); }

SessionStats Session::stats() const {
  SessionStats out;
  out.tasks_created = ctl_.tasks_created.load(std::memory_order_relaxed);
  out.tasks_completed = ctl_.tasks_completed.load(std::memory_order_relaxed);
  out.tasks_cancelled = ctl_.tasks_cancelled.load(std::memory_order_relaxed);
  out.max_live = ctl_.max_live.load(std::memory_order_relaxed);
  out.latency_seconds = latency_seconds_.load(std::memory_order_relaxed);
  return out;
}

void Session::rethrow_failure() const {
  if (std::exception_ptr err = ctl_.failure()) std::rethrow_exception(err);
}

void Session::on_quiesce() {
  // Engine context, under the serializer discipline: record and notify
  // only — never back into the engine.
  const double latency =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    submit_time_)
          .count();
  latency_seconds_.store(latency, std::memory_order_relaxed);
  SessionState outcome = SessionState::kCompleted;
  if (ctl_.failure() != nullptr) {
    outcome = SessionState::kFailed;
  } else if (ctl_.cancelled.load(std::memory_order_relaxed)) {
    outcome = SessionState::kCancelled;
  }
  m_created_->set(ctl_.tasks_created.load(std::memory_order_relaxed));
  m_completed_->set(ctl_.tasks_completed.load(std::memory_order_relaxed));
  m_cancelled_->set(ctl_.tasks_cancelled.load(std::memory_order_relaxed));
  m_max_live_->set(ctl_.max_live.load(std::memory_order_relaxed));
  server_->note_quiesced(outcome, latency);
  finish_as(outcome);
}

void Session::finish_as(SessionState s) {
  // Notify while holding mu_: a wait()er may destroy this Session the
  // moment it observes a terminal state, so the broadcast must complete
  // before any waiter can get past the mutex.
  std::lock_guard<std::mutex> lock(mu_);
  state_.store(s, std::memory_order_release);
  cv_.notify_all();
}

}  // namespace jade::server
