// Recursive-descent parser for the mini Jade language.
//
// Grammar (statements):
//   program    := stmt*
//   stmt       := block | var | assign-or-store | for | while | if
//               | withonly | withcont | charge | exprstmt
//   block      := '{' stmt* '}'
//   var        := 'var' IDENT '=' expr ';'
//   for        := 'for' '(' simple ';' expr ';' simple ')' stmt
//   while      := 'while' '(' expr ')' stmt
//   if         := 'if' '(' expr ')' stmt ('else' stmt)?
//   withonly   := 'withonly' '{' access* '}' 'do' '(' ident-list? ')' stmt
//   withcont   := 'with' '{' access* '}' 'cont' ';'
//   access     := IDENT '(' expr ')' ';'      (rd/wr/rd_wr/cm/df_*/no_*)
//   charge     := 'charge' '(' expr ')' ';'
//
// Expressions: ||, &&, == !=, < > <= >=, + -, * / %, unary - !, postfix
// indexing, calls, parentheses, numbers, identifiers.
#pragma once

#include "jade/lang/ast.hpp"
#include "jade/lang/token.hpp"

namespace jade::lang {

/// Parses a whole program; throws LangError with a line number on syntax
/// errors.
Program parse(const std::string& source);

}  // namespace jade::lang
