#include "jade/lang/parser.hpp"

#include <algorithm>

namespace jade::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Program parse_program() {
    Program p;
    while (!at(Tok::kEnd)) p.statements.push_back(statement());
    return p;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(std::size_t k = 1) const {
    return toks_[std::min(pos_ + k, toks_.size() - 1)];
  }
  bool at(Tok k) const { return cur().kind == k; }
  Token take() { return toks_[pos_++]; }

  Token expect(Tok k, const char* what) {
    if (!at(k)) throw LangError(std::string("expected ") + what, cur().line);
    return take();
  }

  [[noreturn]] void fail(const std::string& msg) {
    throw LangError(msg, cur().line);
  }

  // --- statements ----------------------------------------------------------

  StmtPtr statement() {
    switch (cur().kind) {
      case Tok::kLBrace: return block();
      case Tok::kVar: return var_decl();
      case Tok::kFor: return for_stmt();
      case Tok::kWhile: return while_stmt();
      case Tok::kIf: return if_stmt();
      case Tok::kWithonly: return withonly_stmt();
      case Tok::kWith: return withcont_stmt();
      default: break;
    }
    if (at(Tok::kIdent) && cur().text == "charge" &&
        peek().kind == Tok::kLParen)
      return charge_stmt();
    return simple_then_semi();
  }

  StmtPtr block() {
    auto s = make(Stmt::Kind::kBlock);
    expect(Tok::kLBrace, "'{'");
    while (!at(Tok::kRBrace)) s->body.push_back(statement());
    expect(Tok::kRBrace, "'}'");
    return s;
  }

  StmtPtr var_decl() {
    auto s = make(Stmt::Kind::kVarDecl);
    expect(Tok::kVar, "'var'");
    s->var_name = expect(Tok::kIdent, "variable name").text;
    expect(Tok::kAssign, "'='");
    s->expr = expression();
    expect(Tok::kSemi, "';'");
    return s;
  }

  /// Assignment, store or expression statement — without the trailing ';'
  /// (shared with for-headers).
  StmtPtr simple() {
    if (at(Tok::kVar)) {
      // allow 'var i = 0' in for-init
      auto s = make(Stmt::Kind::kVarDecl);
      take();
      s->var_name = expect(Tok::kIdent, "variable name").text;
      expect(Tok::kAssign, "'='");
      s->expr = expression();
      return s;
    }
    ExprPtr e = expression();
    if (at(Tok::kAssign)) {
      take();
      if (e->kind == Expr::Kind::kVar) {
        auto s = make(Stmt::Kind::kAssign);
        s->var_name = e->name;
        s->expr = expression();
        return s;
      }
      if (e->kind == Expr::Kind::kIndex) {
        auto s = make(Stmt::Kind::kStore);
        s->target = std::move(e);
        s->expr = expression();
        return s;
      }
      fail("assignment target must be a variable or an indexed element");
    }
    auto s = make(Stmt::Kind::kExpr);
    s->expr = std::move(e);
    return s;
  }

  StmtPtr simple_then_semi() {
    StmtPtr s = simple();
    expect(Tok::kSemi, "';'");
    return s;
  }

  StmtPtr for_stmt() {
    auto s = make(Stmt::Kind::kFor);
    expect(Tok::kFor, "'for'");
    expect(Tok::kLParen, "'('");
    s->init = simple();
    expect(Tok::kSemi, "';'");
    s->expr = expression();
    expect(Tok::kSemi, "';'");
    s->step = simple();
    expect(Tok::kRParen, "')'");
    s->then_branch = statement();
    return s;
  }

  StmtPtr while_stmt() {
    auto s = make(Stmt::Kind::kWhile);
    expect(Tok::kWhile, "'while'");
    expect(Tok::kLParen, "'('");
    s->expr = expression();
    expect(Tok::kRParen, "')'");
    s->then_branch = statement();
    return s;
  }

  StmtPtr if_stmt() {
    auto s = make(Stmt::Kind::kIf);
    expect(Tok::kIf, "'if'");
    expect(Tok::kLParen, "'('");
    s->expr = expression();
    expect(Tok::kRParen, "')'");
    s->then_branch = statement();
    if (at(Tok::kElse)) {
      take();
      s->else_branch = statement();
    }
    return s;
  }

  StmtPtr withonly_stmt() {
    auto s = make(Stmt::Kind::kWithonly);
    expect(Tok::kWithonly, "'withonly'");
    // The access-declaration section is an arbitrary block; its
    // rd()/wr()/df_*()/no_*() calls are interpreted as access statements
    // when the spec runs at task creation.
    s->spec = block();
    expect(Tok::kDo, "'do'");
    expect(Tok::kLParen, "'('");
    while (!at(Tok::kRParen)) {
      s->params.push_back(expect(Tok::kIdent, "parameter name").text);
      if (at(Tok::kComma)) take();
    }
    expect(Tok::kRParen, "')'");
    s->then_branch = statement();  // task body
    return s;
  }

  StmtPtr withcont_stmt() {
    auto s = make(Stmt::Kind::kWithCont);
    expect(Tok::kWith, "'with'");
    s->spec = block();
    expect(Tok::kCont, "'cont'");
    expect(Tok::kSemi, "';'");
    return s;
  }

  StmtPtr charge_stmt() {
    auto s = make(Stmt::Kind::kCharge);
    take();  // 'charge'
    expect(Tok::kLParen, "'('");
    s->expr = expression();
    expect(Tok::kRParen, "')'");
    expect(Tok::kSemi, "';'");
    return s;
  }

  StmtPtr make(Stmt::Kind kind) {
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    s->line = cur().line;
    return s;
  }

  // --- expressions ----------------------------------------------------------

  ExprPtr expression() { return or_expr(); }

  ExprPtr or_expr() {
    ExprPtr e = and_expr();
    while (at(Tok::kOrOr)) {
      take();
      e = binary("||", std::move(e), and_expr());
    }
    return e;
  }

  ExprPtr and_expr() {
    ExprPtr e = equality();
    while (at(Tok::kAndAnd)) {
      take();
      e = binary("&&", std::move(e), equality());
    }
    return e;
  }

  ExprPtr equality() {
    ExprPtr e = relational();
    for (;;) {
      if (at(Tok::kEq)) { take(); e = binary("==", std::move(e), relational()); }
      else if (at(Tok::kNe)) { take(); e = binary("!=", std::move(e), relational()); }
      else return e;
    }
  }

  ExprPtr relational() {
    ExprPtr e = additive();
    for (;;) {
      if (at(Tok::kLt)) { take(); e = binary("<", std::move(e), additive()); }
      else if (at(Tok::kGt)) { take(); e = binary(">", std::move(e), additive()); }
      else if (at(Tok::kLe)) { take(); e = binary("<=", std::move(e), additive()); }
      else if (at(Tok::kGe)) { take(); e = binary(">=", std::move(e), additive()); }
      else return e;
    }
  }

  ExprPtr additive() {
    ExprPtr e = multiplicative();
    for (;;) {
      if (at(Tok::kPlus)) { take(); e = binary("+", std::move(e), multiplicative()); }
      else if (at(Tok::kMinus)) { take(); e = binary("-", std::move(e), multiplicative()); }
      else return e;
    }
  }

  ExprPtr multiplicative() {
    ExprPtr e = unary();
    for (;;) {
      if (at(Tok::kStar)) { take(); e = binary("*", std::move(e), unary()); }
      else if (at(Tok::kSlash)) { take(); e = binary("/", std::move(e), unary()); }
      else if (at(Tok::kPercent)) { take(); e = binary("%", std::move(e), unary()); }
      else return e;
    }
  }

  ExprPtr unary() {
    if (at(Tok::kMinus)) {
      const int line = take().line;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = "-";
      e->line = line;
      e->lhs = unary();
      return e;
    }
    if (at(Tok::kNot)) {
      const int line = take().line;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = "!";
      e->line = line;
      e->lhs = unary();
      return e;
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr e = primary();
    while (at(Tok::kLBracket)) {
      const int line = take().line;
      auto idx = std::make_unique<Expr>();
      idx->kind = Expr::Kind::kIndex;
      idx->line = line;
      idx->lhs = std::move(e);
      idx->rhs = expression();
      expect(Tok::kRBracket, "']'");
      e = std::move(idx);
    }
    return e;
  }

  ExprPtr primary() {
    if (at(Tok::kNumber)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNumber;
      e->line = cur().line;
      e->number = take().number;
      return e;
    }
    if (at(Tok::kIdent)) {
      Token id = take();
      if (at(Tok::kLParen)) {
        take();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kCall;
        e->name = id.text;
        e->line = id.line;
        while (!at(Tok::kRParen)) {
          e->args.push_back(expression());
          if (at(Tok::kComma)) take();
        }
        expect(Tok::kRParen, "')'");
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kVar;
      e->name = id.text;
      e->line = id.line;
      return e;
    }
    if (at(Tok::kLParen)) {
      take();
      ExprPtr e = expression();
      expect(Tok::kRParen, "')'");
      return e;
    }
    fail("expected an expression");
  }

  ExprPtr binary(const char* op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->op = op;
    e->line = lhs->line;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(const std::string& source) {
  Parser parser(lex(source));
  return parser.parse_program();
}

}  // namespace jade::lang
