// AST for the mini Jade language.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace jade::lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kNumber,   // 1.5
    kVar,      // x        (local scalar, or a shared binding)
    kIndex,    // e[i]     (object-array element, or shared-object element)
    kBinary,   // a op b
    kUnary,    // -a, !a
    kCall,     // sqrt(e), abs(e), min(a,b), max(a,b), floor(e)
  };

  Kind kind;
  int line = 1;
  double number = 0;
  std::string name;          // kVar, kCall
  std::string op;            // kBinary/kUnary: "+", "<=", "&&", ...
  ExprPtr lhs, rhs;          // kBinary; kUnary/kIndex use lhs (and rhs=index)
  std::vector<ExprPtr> args; // kCall
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kBlock,     // { ... }
    kVarDecl,   // var x = e;
    kAssign,    // x = e;           (local scalar)
    kStore,     // e[i] = v;        (shared-object element)
    kFor,       // for (init; cond; step) body
    kWhile,     // while (cond) body
    kIf,        // if (cond) then else?
    kWithonly,  // withonly { accesses } do (params) { body }
    kWithCont,  // with { accesses } cont;
    kCharge,    // charge(e);
    kExpr,      // e;  (evaluated for effect — calls)
  };

  Kind kind;
  int line = 1;

  std::vector<StmtPtr> body;             // kBlock; kWithonly body
  std::string var_name;                  // kVarDecl/kAssign
  ExprPtr expr;                          // initializer / value / condition
  ExprPtr target;                        // kStore: the e[i] expression
  StmtPtr init, step;                    // kFor
  StmtPtr then_branch, else_branch;      // kIf (kFor/kWhile reuse then_branch as body)
  /// kWithonly / kWithCont: the access-declaration section — an arbitrary
  /// block whose rd()/wr()/df_*()/no_*() calls build the specification,
  /// evaluated at task creation (the paper's dynamic-concurrency feature).
  StmtPtr spec;
  std::vector<std::string> params;       // kWithonly: captured locals
};

struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace jade::lang
