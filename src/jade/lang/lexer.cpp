#include <cctype>

#include "jade/lang/token.hpp"

namespace jade::lang {

Tok keyword_or_ident(const std::string& word) {
  if (word == "var") return Tok::kVar;
  if (word == "for") return Tok::kFor;
  if (word == "if") return Tok::kIf;
  if (word == "else") return Tok::kElse;
  if (word == "while") return Tok::kWhile;
  if (word == "withonly") return Tok::kWithonly;
  if (word == "do") return Tok::kDo;
  if (word == "with") return Tok::kWith;
  if (word == "cont") return Tok::kCont;
  return Tok::kIdent;
}

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto push = [&](Tok kind) { out.push_back(Token{kind, "", 0, line}); };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::size_t end = i;
      while (end < n && (std::isdigit(static_cast<unsigned char>(
                             source[end])) ||
                         source[end] == '.' || source[end] == 'e' ||
                         source[end] == 'E' ||
                         ((source[end] == '+' || source[end] == '-') &&
                          end > i &&
                          (source[end - 1] == 'e' || source[end - 1] == 'E'))))
        ++end;
      Token t;
      t.kind = Tok::kNumber;
      t.line = line;
      try {
        t.number = std::stod(source.substr(i, end - i));
      } catch (...) {
        throw LangError("malformed number '" + source.substr(i, end - i) +
                            "'",
                        line);
      }
      out.push_back(std::move(t));
      i = end;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = i;
      while (end < n && (std::isalnum(static_cast<unsigned char>(
                             source[end])) ||
                         source[end] == '_'))
        ++end;
      Token t;
      t.line = line;
      t.text = source.substr(i, end - i);
      t.kind = keyword_or_ident(t.text);
      out.push_back(std::move(t));
      i = end;
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && source[i + 1] == b;
    };
    if (two('<', '=')) { push(Tok::kLe); i += 2; continue; }
    if (two('>', '=')) { push(Tok::kGe); i += 2; continue; }
    if (two('=', '=')) { push(Tok::kEq); i += 2; continue; }
    if (two('!', '=')) { push(Tok::kNe); i += 2; continue; }
    if (two('&', '&')) { push(Tok::kAndAnd); i += 2; continue; }
    if (two('|', '|')) { push(Tok::kOrOr); i += 2; continue; }
    switch (c) {
      case '(': push(Tok::kLParen); break;
      case ')': push(Tok::kRParen); break;
      case '{': push(Tok::kLBrace); break;
      case '}': push(Tok::kRBrace); break;
      case '[': push(Tok::kLBracket); break;
      case ']': push(Tok::kRBracket); break;
      case ';': push(Tok::kSemi); break;
      case ',': push(Tok::kComma); break;
      case '=': push(Tok::kAssign); break;
      case '+': push(Tok::kPlus); break;
      case '-': push(Tok::kMinus); break;
      case '*': push(Tok::kStar); break;
      case '/': push(Tok::kSlash); break;
      case '%': push(Tok::kPercent); break;
      case '<': push(Tok::kLt); break;
      case '>': push(Tok::kGt); break;
      case '!': push(Tok::kNot); break;
      default:
        throw LangError(std::string("unexpected character '") + c + "'",
                        line);
    }
    ++i;
  }
  out.push_back(Token{Tok::kEnd, "", 0, line});
  return out;
}

}  // namespace jade::lang
