// Tokens for the mini Jade language front end.
//
// The paper implemented Jade as "an extension to C" with a front end that
// rewrites withonly-do constructs into runtime calls.  This module is that
// front end, scaled to a reproduction: a small C-like language with shared
// object arrays and the paper's constructs, interpreted over the same
// Runtime/TaskContext API the C++ face uses — the Figure 6 factor program
// parses and runs nearly verbatim (see tests/lang_cholesky_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jade/support/error.hpp"

namespace jade::lang {

/// Front-end errors (lexing, parsing, or runtime type errors in scripts).
class LangError : public JadeError {
 public:
  LangError(const std::string& what, int line)
      : JadeError("jade-lang:" + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

enum class Tok : std::uint8_t {
  kEnd,
  kNumber,      // 123, 1.5e-3
  kIdent,       // names
  // keywords
  kVar, kFor, kIf, kElse, kWhile, kReturnless,  // kReturnless unused marker
  kWithonly, kDo, kWith, kCont,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma,
  kAssign,                        // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kAndAnd, kOrOr, kNot,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;   // identifier spelling
  double number = 0;  // literal value
  int line = 1;
};

/// Tokenizes `source`; throws LangError on malformed input.  `//` comments
/// run to end of line.
std::vector<Token> lex(const std::string& source);

/// Keyword or identifier classification used by the lexer (exposed for
/// tests).
Tok keyword_or_ident(const std::string& word);

}  // namespace jade::lang
