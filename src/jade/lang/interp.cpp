#include "jade/lang/interp.hpp"

#include <cmath>
#include <memory>

namespace jade::lang {

// --- Environment -------------------------------------------------------------

void Environment::bind(const std::string& name, SharedRef<double> obj) {
  bind(name, std::vector<SharedRef<double>>{obj});
}

void Environment::bind(const std::string& name,
                       std::vector<SharedRef<double>> objs) {
  Binding b;
  b.kind = Binding::Kind::kDoubleObjects;
  b.dobjs = std::move(objs);
  shared_[name] = std::move(b);
}

void Environment::bind(const std::string& name, SharedRef<int> obj) {
  bind(name, std::vector<SharedRef<int>>{obj});
}

void Environment::bind(const std::string& name,
                       std::vector<SharedRef<int>> objs) {
  Binding b;
  b.kind = Binding::Kind::kIntObjects;
  b.iobjs = std::move(objs);
  shared_[name] = std::move(b);
}

void Environment::bind_scalar(const std::string& name, double value) {
  scalars_[name] = value;
}

const Binding* Environment::find_binding(const std::string& name) const {
  auto it = shared_.find(name);
  return it == shared_.end() ? nullptr : &it->second;
}

const double* Environment::find_scalar(const std::string& name) const {
  auto it = scalars_.find(name);
  return it == scalars_.end() ? nullptr : &it->second;
}

// --- interpreter internals ----------------------------------------------------

namespace {

using access::kCommute;
using access::kRead;
using access::kWrite;

/// Script value: a number, an object handle, or a whole object array.
struct Value {
  enum class Kind { kNum, kObj, kObjArray };
  Kind kind = Kind::kNum;
  double num = 0;
  const Binding* binding = nullptr;
  std::size_t index = 0;  // kObj
};

/// The rights a task's specification grants it, per object.
struct RightEntry {
  std::uint8_t immediate = 0;
  std::uint8_t deferred = 0;
  const Binding* binding = nullptr;
  std::size_t index = 0;
};

using Rights = std::map<ObjectId, RightEntry>;

/// Local scalar variables with block scoping.
class Locals {
 public:
  void push_scope() { marks_.push_back(vars_.size()); }
  void pop_scope() {
    vars_.resize(marks_.back());
    marks_.pop_back();
  }
  void declare(const std::string& name, double v) {
    vars_.emplace_back(name, v);
  }
  double* find(const std::string& name) {
    for (auto it = vars_.rbegin(); it != vars_.rend(); ++it)
      if (it->first == name) return &it->second;
    return nullptr;
  }
  /// Snapshot of named variables, for withonly parameter capture.
  std::vector<std::pair<std::string, double>> capture(
      const std::vector<std::string>& names, int line) {
    std::vector<std::pair<std::string, double>> out;
    for (const auto& n : names) {
      double* v = find(n);
      if (v == nullptr)
        throw LangError("withonly parameter '" + n + "' is not a local",
                        line);
      out.emplace_back(n, *v);
    }
    return out;
  }

 private:
  std::vector<std::pair<std::string, double>> vars_;
  std::vector<std::size_t> marks_;
};

ObjectRef to_object_ref(const Binding* b, std::size_t index) {
  return b->kind == Binding::Kind::kDoubleObjects
             ? static_cast<ObjectRef>(b->dobjs[index])
             : static_cast<ObjectRef>(b->iobjs[index]);
}

/// Per-task interpreter.  The root program runs as one of these too (ctx =
/// root context, rights = nullptr => root access rules apply).
class Interp {
 public:
  Interp(const Environment* env, TaskContext* ctx, Rights* rights)
      : env_(env), ctx_(ctx), rights_(rights) {}

  Locals& locals() { return locals_; }

  void exec_all(const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts) exec(s.get());
  }

  void exec(const Stmt* s) {
    switch (s->kind) {
      case Stmt::Kind::kBlock:
        locals_.push_scope();
        exec_all(s->body);
        locals_.pop_scope();
        return;
      case Stmt::Kind::kVarDecl:
        locals_.declare(s->var_name, eval_num(s->expr.get()));
        return;
      case Stmt::Kind::kAssign: {
        double* v = locals_.find(s->var_name);
        if (v == nullptr)
          throw LangError("assignment to undeclared variable '" +
                              s->var_name + "'",
                          s->line);
        *v = eval_num(s->expr.get());
        return;
      }
      case Stmt::Kind::kStore: {
        const Expr* target = s->target.get();
        const Value obj = eval(target->lhs.get());
        const auto idx =
            static_cast<std::size_t>(eval_num(target->rhs.get()));
        const double v = eval_num(s->expr.get());
        store(obj, idx, v, s->line);
        return;
      }
      case Stmt::Kind::kFor: {
        locals_.push_scope();
        exec(s->init.get());
        while (eval_num(s->expr.get()) != 0) {
          exec(s->then_branch.get());
          exec(s->step.get());
        }
        locals_.pop_scope();
        return;
      }
      case Stmt::Kind::kWhile:
        while (eval_num(s->expr.get()) != 0) exec(s->then_branch.get());
        return;
      case Stmt::Kind::kIf:
        if (eval_num(s->expr.get()) != 0) {
          exec(s->then_branch.get());
        } else if (s->else_branch) {
          exec(s->else_branch.get());
        }
        return;
      case Stmt::Kind::kWithonly:
        exec_withonly(s);
        return;
      case Stmt::Kind::kWithCont:
        exec_withcont(s);
        return;
      case Stmt::Kind::kCharge:
        ctx_->charge(eval_num(s->expr.get()));
        return;
      case Stmt::Kind::kExpr:
        (void)eval(s->expr.get());
        return;
    }
    throw LangError("unhandled statement", s->line);
  }

 private:
  // --- tasks -----------------------------------------------------------------

  void exec_withonly(const Stmt* s) {
    // Evaluate the access-declaration section NOW, in this task: arbitrary
    // code whose rd()/... calls accumulate the child's specification.
    AccessDecl decl;
    auto child_rights = std::make_shared<Rights>();
    {
      SpecCollector collector{&decl, child_rights.get(), nullptr};
      SpecGuard guard(this, &collector);
      exec(s->spec.get());
    }
    auto captured = locals_.capture(s->params, s->line);
    const Stmt* body = s->then_branch.get();
    const Environment* env = env_;

    ctx_->withonly(
        [&](AccessDecl& d) { d = std::move(decl); },
        [env, child_rights, captured, body](TaskContext& t) {
          Interp interp(env, &t, child_rights.get());
          interp.locals().push_scope();
          for (const auto& [name, value] : captured)
            interp.locals().declare(name, value);
          interp.exec(body);
        },
        "script:" + std::to_string(s->line));
  }

  void exec_withcont(const Stmt* s) {
    if (rights_ == nullptr)
      throw LangError("with-cont outside a task", s->line);
    AccessDecl decl;
    {
      SpecCollector collector{&decl, rights_, rights_};
      SpecGuard guard(this, &collector);
      exec(s->spec.get());
    }
    ctx_->with_cont([&](AccessDecl& d) { d = std::move(decl); });
  }

  // --- spec mode ---------------------------------------------------------------

  struct SpecCollector {
    AccessDecl* decl;
    Rights* target;        ///< rights map receiving immediate/deferred bits
    Rights* existing;      ///< non-null in with-cont: rights being updated
  };

  class SpecGuard {
   public:
    SpecGuard(Interp* interp, SpecCollector* c) : interp_(interp) {
      prev_ = interp_->spec_;
      interp_->spec_ = c;
    }
    ~SpecGuard() { interp_->spec_ = prev_; }

   private:
    Interp* interp_;
    SpecCollector* prev_;
  };

  static std::uint8_t bits_of(const std::string& op, bool* deferred,
                              bool* removes) {
    *deferred = op.rfind("df_", 0) == 0;
    *removes = op.rfind("no_", 0) == 0;
    const std::string base =
        *deferred ? op.substr(3) : (*removes ? op.substr(3) : op);
    if (base == "rd") return kRead;
    if (base == "wr") return kWrite;
    if (base == "rd_wr") return kRead | kWrite;
    if (base == "cm") return kCommute;
    return 0;
  }

  bool try_access_call(const Expr* e) {
    bool deferred = false, removes = false;
    const std::uint8_t bits = bits_of(e->name, &deferred, &removes);
    if (bits == 0) return false;
    if (spec_ == nullptr)
      throw LangError("access statement '" + e->name +
                          "' outside a withonly/with-cont section",
                      e->line);
    if (e->args.size() != 1)
      throw LangError(e->name + " takes exactly one object", e->line);
    const Value obj = eval(e->args[0].get());
    if (obj.kind != Value::Kind::kObj)
      throw LangError(e->name + " needs a shared object (did you mean to "
                                "index an object array?)",
                      e->line);
    const ObjectRef ref = to_object_ref(obj.binding, obj.index);
    AccessDecl& d = *spec_->decl;
    if (removes) {
      if (bits & kRead) d.no_rd(ref);
      if (bits & kWrite) d.no_wr(ref);
      if (bits & kCommute) d.no_cm(ref);
      if (spec_->existing != nullptr) {
        auto it = spec_->existing->find(ref.id());
        if (it != spec_->existing->end()) {
          it->second.immediate &= static_cast<std::uint8_t>(~bits);
          it->second.deferred &= static_cast<std::uint8_t>(~bits);
        }
      }
      return true;
    }
    if (deferred) {
      if (bits & kRead) d.df_rd(ref);
      if (bits & kWrite) d.df_wr(ref);
      if (bits & kCommute) d.df_cm(ref);
    } else {
      if (bits == kRead) d.rd(ref);
      if (bits == kWrite) d.wr(ref);
      if (bits == (kRead | kWrite)) d.rd_wr(ref);
      if (bits == kCommute) d.cm(ref);
    }
    RightEntry& entry = (*spec_->target)[ref.id()];
    entry.binding = obj.binding;
    entry.index = obj.index;
    if (deferred) {
      entry.deferred |= bits;
    } else {
      entry.immediate |= bits;
      entry.deferred &= static_cast<std::uint8_t>(~bits);
    }
    return true;
  }

  // --- expressions -------------------------------------------------------------

  Value eval(const Expr* e) {
    switch (e->kind) {
      case Expr::Kind::kNumber:
        return num(e->number);
      case Expr::Kind::kVar: {
        if (double* v = locals_.find(e->name)) return num(*v);
        if (const double* s = env_->find_scalar(e->name)) return num(*s);
        if (const Binding* b = env_->find_binding(e->name)) {
          if (b->size() == 1) {
            Value val;
            val.kind = Value::Kind::kObj;
            val.binding = b;
            val.index = 0;
            return val;
          }
          Value val;
          val.kind = Value::Kind::kObjArray;
          val.binding = b;
          return val;
        }
        throw LangError("unknown name '" + e->name + "'", e->line);
      }
      case Expr::Kind::kIndex: {
        const Value base = eval(e->lhs.get());
        const auto idx = static_cast<std::size_t>(eval_num(e->rhs.get()));
        if (base.kind == Value::Kind::kObjArray) {
          if (idx >= base.binding->size())
            throw LangError("object index out of range", e->line);
          Value val;
          val.kind = Value::Kind::kObj;
          val.binding = base.binding;
          val.index = idx;
          return val;
        }
        if (base.kind == Value::Kind::kObj)
          return num(load(base, idx, e->line));
        throw LangError("cannot index a number", e->line);
      }
      case Expr::Kind::kUnary: {
        const double v = eval_num(e->lhs.get());
        return num(e->op == "-" ? -v : (v == 0 ? 1.0 : 0.0));
      }
      case Expr::Kind::kBinary:
        return num(eval_binary(e));
      case Expr::Kind::kCall:
        return eval_call(e);
    }
    throw LangError("unhandled expression", e->line);
  }

  double eval_binary(const Expr* e) {
    if (e->op == "&&")
      return eval_num(e->lhs.get()) != 0 && eval_num(e->rhs.get()) != 0;
    if (e->op == "||")
      return eval_num(e->lhs.get()) != 0 || eval_num(e->rhs.get()) != 0;
    const double a = eval_num(e->lhs.get());
    const double b = eval_num(e->rhs.get());
    if (e->op == "+") return a + b;
    if (e->op == "-") return a - b;
    if (e->op == "*") return a * b;
    if (e->op == "/") return a / b;
    if (e->op == "%") return std::fmod(a, b);
    if (e->op == "<") return a < b;
    if (e->op == ">") return a > b;
    if (e->op == "<=") return a <= b;
    if (e->op == ">=") return a >= b;
    if (e->op == "==") return a == b;
    if (e->op == "!=") return a != b;
    throw LangError("unknown operator '" + e->op + "'", e->line);
  }

  Value eval_call(const Expr* e) {
    if (try_access_call(e)) return num(0);
    auto arg = [&](std::size_t i) { return eval_num(e->args[i].get()); };
    auto need = [&](std::size_t n) {
      if (e->args.size() != n)
        throw LangError(e->name + " takes " + std::to_string(n) +
                            " argument(s)",
                        e->line);
    };
    if (e->name == "sqrt") { need(1); return num(std::sqrt(arg(0))); }
    if (e->name == "abs") { need(1); return num(std::abs(arg(0))); }
    if (e->name == "floor") { need(1); return num(std::floor(arg(0))); }
    if (e->name == "min") { need(2); return num(std::min(arg(0), arg(1))); }
    if (e->name == "max") { need(2); return num(std::max(arg(0), arg(1))); }
    if (e->name == "len") {
      need(1);
      const Value v = eval(e->args[0].get());
      if (v.kind == Value::Kind::kObjArray)
        return num(static_cast<double>(v.binding->size()));
      if (v.kind == Value::Kind::kObj)
        return num(static_cast<double>(
            v.binding->kind == Binding::Kind::kDoubleObjects
                ? v.binding->dobjs[v.index].count()
                : v.binding->iobjs[v.index].count()));
      throw LangError("len() needs an object or object array", e->line);
    }
    throw LangError("unknown function '" + e->name + "'", e->line);
  }

  double eval_num(const Expr* e) {
    const Value v = eval(e);
    if (v.kind != Value::Kind::kNum)
      throw LangError("expected a number here", e->line);
    return v.num;
  }

  static Value num(double v) {
    Value val;
    val.kind = Value::Kind::kNum;
    val.num = v;
    return val;
  }

  // --- shared element access ------------------------------------------------

  /// The task's declared immediate bits for an object (0 for the root
  /// program, whose accesses go through the runtime's root rules).
  std::uint8_t declared_bits(ObjectId id) const {
    if (rights_ == nullptr) return 0;
    auto it = rights_->find(id);
    return it == rights_->end() ? std::uint8_t{0} : it->second.immediate;
  }

  /// Reads/writes pick the accessor matching the declared right: a cm-only
  /// task must use the commute accessor, a wr-only task the write accessor,
  /// etc.  The runtime still performs the authoritative dynamic check.
  template <typename T>
  double load_via(const SharedRef<T>& ref, std::size_t idx, int line) {
    check_range(idx, ref.count(), line);
    const std::uint8_t bits = declared_bits(ref.id());
    if ((bits & access::kCommute) && !(bits & access::kRead))
      return static_cast<double>(ctx_->commute(ref)[idx]);
    return static_cast<double>(ctx_->read(ref)[idx]);
  }

  template <typename T, typename V>
  void store_via(const SharedRef<T>& ref, std::size_t idx, V v, int line) {
    check_range(idx, ref.count(), line);
    const std::uint8_t bits = declared_bits(ref.id());
    if ((bits & access::kCommute) && !(bits & access::kWrite)) {
      ctx_->commute(ref)[idx] = static_cast<T>(v);
      return;
    }
    ctx_->write(ref)[idx] = static_cast<T>(v);
  }

  double load(const Value& obj, std::size_t idx, int line) {
    if (obj.binding->kind == Binding::Kind::kDoubleObjects)
      return load_via(obj.binding->dobjs[obj.index], idx, line);
    return load_via(obj.binding->iobjs[obj.index], idx, line);
  }

  void store(const Value& obj, std::size_t idx, double v, int line) {
    if (obj.kind != Value::Kind::kObj)
      throw LangError("store target must be an object element", line);
    if (obj.binding->kind == Binding::Kind::kDoubleObjects) {
      store_via(obj.binding->dobjs[obj.index], idx, v, line);
      return;
    }
    store_via(obj.binding->iobjs[obj.index], idx, std::llround(v), line);
  }

  static void check_range(std::size_t idx, std::size_t count, int line) {
    if (idx >= count)
      throw LangError("element index " + std::to_string(idx) +
                          " out of range (object has " +
                          std::to_string(count) + " elements)",
                      line);
  }

  const Environment* env_;
  TaskContext* ctx_;
  Rights* rights_;  ///< nullptr when running as the root program
  SpecCollector* spec_ = nullptr;
  Locals locals_;
};

}  // namespace

void exec_program(TaskContext& ctx, const Program& program,
                  const Environment& env) {
  Interp interp(&env, &ctx, nullptr);
  interp.locals().push_scope();
  interp.exec_all(program.statements);
}

void run_program(Runtime& rt, const Program& program,
                 const Environment& env) {
  rt.run([&](TaskContext& ctx) { exec_program(ctx, program, env); });
}

}  // namespace jade::lang
