// Interpreter for the mini Jade language, executing over the library's
// Runtime / TaskContext API.
//
// The host binds shared objects (or arrays of them) and scalar constants
// into an Environment, then runs a parsed Program.  withonly statements
// create real Jade tasks: the access section is evaluated at creation (its
// rd()/wr()/df_*()/no_*() calls build the AccessDecl), the body runs as the
// task, reading and writing shared elements through checked accessors.
//
//   jade::Runtime rt;
//   auto cols = ...vector<SharedRef<double>>...;
//   jade::lang::Environment env;
//   env.bind("c", cols);
//   env.bind_scalar("n", n);
//   jade::lang::run_program(rt, jade::lang::parse(source), env);
#pragma once

#include <map>
#include <string>
#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/lang/ast.hpp"
#include "jade/lang/token.hpp"

namespace jade::lang {

/// A shared binding visible to scripts: an array of shared objects.  A
/// single object binds as an array of one; scripts write `x[0]` (or bind a
/// scalar object and index it).
struct Binding {
  enum class Kind { kDoubleObjects, kIntObjects };
  Kind kind = Kind::kDoubleObjects;
  std::vector<SharedRef<double>> dobjs;
  std::vector<SharedRef<int>> iobjs;

  std::size_t size() const {
    return kind == Kind::kDoubleObjects ? dobjs.size() : iobjs.size();
  }
};

class Environment {
 public:
  void bind(const std::string& name, SharedRef<double> obj);
  void bind(const std::string& name, std::vector<SharedRef<double>> objs);
  void bind(const std::string& name, SharedRef<int> obj);
  void bind(const std::string& name, std::vector<SharedRef<int>> objs);
  /// Host-provided numeric constant (e.g. the problem size n).
  void bind_scalar(const std::string& name, double value);

  const Binding* find_binding(const std::string& name) const;
  const double* find_scalar(const std::string& name) const;

 private:
  std::map<std::string, Binding> shared_;
  std::map<std::string, double> scalars_;
};

/// Executes the program as the main task of `rt` (wraps rt.run()).
void run_program(Runtime& rt, const Program& program, const Environment& env);

/// Executes the program inside an existing task context (composable with
/// C++-side task creation).
void exec_program(TaskContext& ctx, const Program& program,
                  const Environment& env);

}  // namespace jade::lang
