#include "jade/net/hypercube.hpp"

#include <algorithm>
#include <bit>

#include "jade/support/error.hpp"

namespace jade {

HypercubeNet::HypercubeNet(int machines, HypercubeConfig config)
    : config_(config),
      send_busy_until_(static_cast<std::size_t>(machines), 0),
      recv_busy_until_(static_cast<std::size_t>(machines), 0) {
  JADE_ASSERT(machines > 0);
}

int HypercubeNet::hop_count(MachineId from, MachineId to) {
  return std::popcount(static_cast<unsigned>(from) ^
                       static_cast<unsigned>(to));
}

SimTime HypercubeNet::transfer_impl(MachineId from, MachineId to,
                                    std::size_t bytes, SimTime now) {
  JADE_ASSERT(from >= 0 && static_cast<std::size_t>(from) <
                               send_busy_until_.size());
  JADE_ASSERT(to >= 0 &&
              static_cast<std::size_t>(to) < recv_busy_until_.size());
  if (from == to) return now;

  const SimTime transmit =
      static_cast<SimTime>(bytes) / config_.bytes_per_second;
  // The sender NIC is occupied for startup + transmit time.
  const SimTime send_start = std::max(now, send_busy_until_[from]);
  const SimTime send_done = send_start + config_.startup + transmit;
  send_busy_until_[from] = send_done;

  // With wormhole routing the head arrives per-hop; the tail arrives when
  // the sender finishes plus the route latency.  The receiver NIC then
  // drains the message; it handles one inbound message at a time.
  const SimTime route = config_.per_hop * hop_count(from, to);
  const SimTime arrive_start = std::max(send_done + route,
                                        recv_busy_until_[to]);
  recv_busy_until_[to] = arrive_start;

  record(bytes, config_.startup + transmit);
  return arrive_start;
}

SimTime HypercubeNet::multicast_impl(MachineId from,
                                     std::span<const MachineId> tos,
                                     std::size_t bytes, SimTime now) {
  JADE_ASSERT(from >= 0 &&
              static_cast<std::size_t>(from) < send_busy_until_.size());
  const SimTime transmit =
      static_cast<SimTime>(bytes) / config_.bytes_per_second;
  const SimTime send_start = std::max(now, send_busy_until_[from]);
  const SimTime send_done = send_start + config_.startup + transmit;
  send_busy_until_[from] = send_done;

  SimTime last = now;
  for (MachineId to : tos) {
    JADE_ASSERT(to >= 0 && to != from &&
                static_cast<std::size_t>(to) < recv_busy_until_.size());
    const SimTime route = config_.per_hop * hop_count(from, to);
    const SimTime arrive = std::max(send_done + route, recv_busy_until_[to]);
    recv_busy_until_[to] = arrive;
    last = std::max(last, arrive);
  }
  record(bytes, config_.startup + transmit);
  return last;
}

void HypercubeNet::reset() {
  std::fill(send_busy_until_.begin(), send_busy_until_.end(), 0.0);
  std::fill(recv_busy_until_.begin(), recv_busy_until_.end(), 0.0);
  stats_.reset();
}

}  // namespace jade
