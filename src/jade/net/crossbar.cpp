#include "jade/net/crossbar.hpp"

#include <algorithm>

#include "jade/support/error.hpp"

namespace jade {

CrossbarNet::CrossbarNet(int machines, CrossbarConfig config)
    : config_(config),
      send_busy_until_(static_cast<std::size_t>(machines), 0),
      recv_busy_until_(static_cast<std::size_t>(machines), 0) {
  JADE_ASSERT(machines > 0);
}

SimTime CrossbarNet::transfer_impl(MachineId from, MachineId to,
                                   std::size_t bytes, SimTime now) {
  JADE_ASSERT(from >= 0 && static_cast<std::size_t>(from) <
                               send_busy_until_.size());
  JADE_ASSERT(to >= 0 &&
              static_cast<std::size_t>(to) < recv_busy_until_.size());
  if (from == to) return now;

  const SimTime transmit =
      static_cast<SimTime>(bytes) / config_.bytes_per_second;
  const SimTime occupancy = config_.per_message_overhead + transmit;
  const SimTime send_start = std::max(now, send_busy_until_[from]);
  const SimTime send_done = send_start + occupancy;
  send_busy_until_[from] = send_done;

  const SimTime arrive = std::max(send_done + config_.latency,
                                  recv_busy_until_[to]);
  recv_busy_until_[to] = arrive;

  record(bytes, occupancy);
  return arrive;
}

SimTime CrossbarNet::multicast_impl(MachineId from,
                                    std::span<const MachineId> tos,
                                    std::size_t bytes, SimTime now) {
  JADE_ASSERT(from >= 0 &&
              static_cast<std::size_t>(from) < send_busy_until_.size());
  const SimTime transmit =
      static_cast<SimTime>(bytes) / config_.bytes_per_second;
  const SimTime occupancy = config_.per_message_overhead + transmit;
  const SimTime send_start = std::max(now, send_busy_until_[from]);
  const SimTime send_done = send_start + occupancy;
  send_busy_until_[from] = send_done;

  SimTime last = now;
  for (MachineId to : tos) {
    JADE_ASSERT(to >= 0 && to != from &&
                static_cast<std::size_t>(to) < recv_busy_until_.size());
    const SimTime arrive = std::max(send_done + config_.latency,
                                    recv_busy_until_[to]);
    recv_busy_until_[to] = arrive;
    last = std::max(last, arrive);
  }
  record(bytes, occupancy);
  return last;
}

void CrossbarNet::reset() {
  std::fill(send_busy_until_.begin(), send_busy_until_.end(), 0.0);
  std::fill(recv_busy_until_.begin(), recv_busy_until_.end(), 0.0);
  stats_.reset();
}

}  // namespace jade
