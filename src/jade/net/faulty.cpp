#include "jade/net/faulty.hpp"

#include <algorithm>
#include <utility>

#include "jade/support/error.hpp"

namespace jade {

FaultyNetwork::FaultyNetwork(std::unique_ptr<NetworkModel> inner,
                             FaultyNetConfig config, DropHook should_drop)
    : inner_(std::move(inner)),
      config_(config),
      should_drop_(std::move(should_drop)) {
  JADE_ASSERT(inner_ != nullptr);
  JADE_ASSERT(config_.initial_retry_timeout > 0);
  JADE_ASSERT(config_.max_retry_timeout >= config_.initial_retry_timeout);
  JADE_ASSERT(config_.max_send_attempts >= 1);
}

std::string FaultyNetwork::name() const {
  return "faulty(" + inner_->name() + ")";
}

SimTime FaultyNetwork::schedule_transfer(MachineId from, MachineId to,
                                         std::size_t bytes, SimTime now) {
  SimTime send_at = now;
  SimTime rto = config_.initial_retry_timeout;
  for (int attempt = 1;; ++attempt) {
    const SimTime arrival = inner_->schedule_transfer(from, to, bytes, send_at);
    const bool last = attempt >= config_.max_send_attempts;
    if (last || !should_drop_(from, to)) {
      // Delivered (or we stop pretending the link will ever admit this
      // message and deliver the final attempt — a bounded-retry transport's
      // "give up" would abort the run, which models nothing interesting in
      // a simulator whose loss process is an independent coin per attempt).
      stats_ = inner_->stats();
      return arrival;
    }
    ++messages_dropped_;
    ++message_retries_;
    // The sender times out waiting for the ack and retransmits; the doomed
    // attempt already occupied the medium inside `inner_`.
    send_at = send_at + rto;
    rto = std::min(rto * 2, config_.max_retry_timeout);
  }
}

void FaultyNetwork::reset() {
  inner_->reset();
  stats_.reset();
  messages_dropped_ = 0;
  message_retries_ = 0;
}

}  // namespace jade
