#include "jade/net/faulty.hpp"

#include <algorithm>
#include <utility>

#include "jade/support/error.hpp"

namespace jade {

FaultyNetwork::FaultyNetwork(std::unique_ptr<NetworkModel> inner,
                             FaultyNetConfig config, DropHook should_drop)
    : inner_(std::move(inner)),
      config_(config),
      should_drop_(std::move(should_drop)) {
  JADE_ASSERT(inner_ != nullptr);
  JADE_ASSERT(config_.initial_retry_timeout > 0);
  JADE_ASSERT(config_.max_retry_timeout >= config_.initial_retry_timeout);
  JADE_ASSERT(config_.max_send_attempts >= 1);
}

std::string FaultyNetwork::name() const {
  return "faulty(" + inner_->name() + ")";
}

void FaultyNetwork::set_observer(obs::Tracer* tracer,
                                 obs::MetricsRegistry* metrics) {
  // Forward only to the inner model (per-attempt spans); the base wrapper's
  // tracer stays null so the decorated delivery is not double-spanned.
  inner_->set_observer(tracer, metrics);
  fault_tracer_ = tracer;
  if (metrics != nullptr) {
    drop_counter_ = &metrics->counter("net.messages_dropped");
    retx_counter_ = &metrics->counter("net.message_retries");
  } else {
    drop_counter_ = nullptr;
    retx_counter_ = nullptr;
  }
}

SimTime FaultyNetwork::transfer_impl(MachineId from, MachineId to,
                                     std::size_t bytes, SimTime now) {
  SimTime send_at = now;
  SimTime rto = config_.initial_retry_timeout;
  for (int attempt = 1;; ++attempt) {
    const SimTime arrival = inner_->schedule_transfer(from, to, bytes, send_at);
    const bool last = attempt >= config_.max_send_attempts;
    if (last || !should_drop_(from, to)) {
      // Delivered (or we stop pretending the link will ever admit this
      // message and deliver the final attempt — a bounded-retry transport's
      // "give up" would abort the run, which models nothing interesting in
      // a simulator whose loss process is an independent coin per attempt).
      stats_ = inner_->stats();
      return arrival;
    }
    ++messages_dropped_;
    ++message_retries_;
    if (drop_counter_ != nullptr) drop_counter_->add(1);
    if (retx_counter_ != nullptr) retx_counter_->add(1);
    if (fault_tracer_ != nullptr && fault_tracer_->enabled()) {
      const std::string link = std::to_string(from) + "->" + std::to_string(to);
      fault_tracer_->instant_at(send_at, obs::Subsystem::kNet, "net.drop",
                                static_cast<std::uint64_t>(attempt), from,
                                static_cast<double>(bytes), link);
      fault_tracer_->instant_at(send_at + rto, obs::Subsystem::kNet, "net.retx",
                                static_cast<std::uint64_t>(attempt), from,
                                static_cast<double>(bytes), link);
    }
    // The sender times out waiting for the ack and retransmits; the doomed
    // attempt already occupied the medium inside `inner_`.
    send_at = send_at + rto;
    rto = std::min(rto * 2, config_.max_retry_timeout);
  }
}

SimTime FaultyNetwork::multicast_impl(MachineId from,
                                      std::span<const MachineId> tos,
                                      std::size_t bytes, SimTime now) {
  // Per-destination reliable unicasts: each destination's retransmission
  // stream is independent, and the drop hook is consulted in `tos` order so
  // the seeded drop stream is consumed deterministically.
  SimTime last = now;
  for (MachineId to : tos) {
    last = std::max(last, transfer_impl(from, to, bytes, now));
  }
  return last;
}

void FaultyNetwork::reset() {
  inner_->reset();
  stats_.reset();
  messages_dropped_ = 0;
  message_retries_ = 0;
}

}  // namespace jade
