// Interconnect cost models.
//
// The paper evaluates Jade on three platforms with very different
// interconnects (Section 7.3, Figures 9/10):
//   * Stanford DASH — hardware shared memory (no explicit object motion),
//   * Intel iPSC/860 — a hypercube of point-to-point links,
//   * Mica — Sparc ELC boards on a single shared Ethernet, via PVM.
// A NetworkModel answers one question for the simulator: a message of B
// bytes leaves machine `from` for machine `to` at virtual time `now`; when
// does it arrive?  Models keep contention state (bus occupancy, NIC
// occupancy) so saturation effects — the reason Mica's speedup flattens —
// emerge rather than being baked in.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "jade/obs/metrics.hpp"
#include "jade/obs/tracer.hpp"
#include "jade/support/stats.hpp"
#include "jade/support/time.hpp"

namespace jade {

/// Aggregate traffic counters every model maintains; benches report these.
struct NetworkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  SimTime busy_time = 0;  ///< medium/NIC occupancy accumulated

  void reset() { *this = NetworkStats{}; }
};

class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  virtual std::string name() const = 0;

  /// Schedules a transfer and returns its arrival time.  Calls may arrive
  /// out of time order from different machines' perspectives; models only
  /// assume `now` is the current global virtual time (the simulator
  /// guarantees it is).
  ///
  /// Template method: the model-specific timing lives in transfer_impl();
  /// this wrapper emits one "net.xfer" trace span per message (begin at the
  /// send, end at the arrival) and feeds the message-latency histogram when
  /// an observer is attached.
  SimTime schedule_transfer(MachineId from, MachineId to, std::size_t bytes,
                            SimTime now) {
    const SimTime arrival = transfer_impl(from, to, bytes, now);
    if (tracer_ != nullptr && tracer_->enabled() && from != to) {
      const std::uint64_t id = next_trace_msg_id_++;
      tracer_->span_begin_at(now, obs::Subsystem::kNet, "net.xfer", id, from,
                             std::to_string(from) + "->" +
                                 std::to_string(to));
      tracer_->span_end_at(arrival, obs::Subsystem::kNet, "net.xfer", id, to,
                           static_cast<double>(bytes));
    }
    if (latency_hist_ != nullptr && from != to)
      latency_hist_->observe(arrival - now);
    return arrival;
  }

  /// Schedules one logical control message from `from` to every machine in
  /// `tos` (ascending, duplicate-free, `from` excluded) and returns the last
  /// arrival — the coalesced-invalidation primitive.  The base
  /// implementation degenerates to per-destination unicasts; topology models
  /// override multicast_impl to exploit their medium (a shared bus carries
  /// one broadcast frame, switched fabrics pay the sender NIC once).  Emits
  /// a single "net.mcast" span covering the whole fan-out.
  SimTime schedule_multicast(MachineId from, std::span<const MachineId> tos,
                             std::size_t bytes, SimTime now) {
    if (tos.empty()) return now;
    const SimTime last = multicast_impl(from, tos, bytes, now);
    if (tracer_ != nullptr && tracer_->enabled()) {
      const std::uint64_t id = next_trace_msg_id_++;
      tracer_->span_begin_at(now, obs::Subsystem::kNet, "net.mcast", id, from,
                             std::to_string(from) + "->*" +
                                 std::to_string(tos.size()));
      tracer_->span_end_at(last, obs::Subsystem::kNet, "net.mcast", id,
                           tos.back(), static_cast<double>(bytes));
    }
    if (latency_hist_ != nullptr) latency_hist_->observe(last - now);
    return last;
  }

  /// Attaches (or detaches, with nulls) the observability layer.  Wrapper
  /// models (FaultyNetwork) override to propagate to the wrapped model.
  virtual void set_observer(obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    latency_hist_ =
        metrics ? &metrics->histogram("net.message_latency") : nullptr;
  }

  /// Drops all contention state and counters (between benchmark repetitions).
  virtual void reset() = 0;

  const NetworkStats& stats() const { return stats_; }

 protected:
  /// Model-specific timing: when does the message arrive?
  virtual SimTime transfer_impl(MachineId from, MachineId to,
                                std::size_t bytes, SimTime now) = 0;

  /// Model-specific multicast timing; the default sends one unicast per
  /// destination (correct for any model, optimal for none).
  virtual SimTime multicast_impl(MachineId from,
                                 std::span<const MachineId> tos,
                                 std::size_t bytes, SimTime now) {
    SimTime last = now;
    for (MachineId to : tos)
      last = std::max(last, transfer_impl(from, to, bytes, now));
    return last;
  }

  void record(std::size_t bytes, SimTime occupancy) {
    ++stats_.messages;
    stats_.bytes += bytes;
    stats_.busy_time += occupancy;
  }

  NetworkStats stats_;
  obs::Tracer* tracer_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
  std::uint64_t next_trace_msg_id_ = 0;
};

/// Contention-free network: every transfer costs latency + bytes/bandwidth,
/// with unlimited parallelism.  Used as an idealized baseline in ablations.
class IdealNet : public NetworkModel {
 public:
  IdealNet(SimTime latency, double bytes_per_second);

  std::string name() const override { return "ideal"; }
  void reset() override { stats_.reset(); }

 protected:
  SimTime transfer_impl(MachineId from, MachineId to, std::size_t bytes,
                        SimTime now) override;

 private:
  SimTime latency_;
  double bandwidth_;
};

std::unique_ptr<NetworkModel> make_ideal_net(SimTime latency,
                                             double bytes_per_second);

}  // namespace jade
