// Lossy-network decorator (ft/).
//
// Wraps any NetworkModel and injects message loss on top of its timing
// model.  Each attempt occupies the underlying medium whether or not it is
// delivered (a dropped Ethernet frame still burned its airtime); the sender
// retransmits after a retry timeout that backs off exponentially, so a
// message's delivery time under loss is
//   sum of k doomed occupancies + k backoff waits + one clean transfer.
// The drop decision is delegated to a hook (the FaultInjector's seeded drop
// stream) so the same seed always loses the same messages.
//
// Messages touching a dead endpoint are "delivered" to the void: they take
// one attempt's network time and vanish, with no retransmission — dead
// endpoints are the recovery protocol's job, not the transport's.
#pragma once

#include <functional>
#include <memory>

#include "jade/net/network.hpp"

namespace jade {

struct FaultyNetConfig {
  double drop_probability = 0.0;  ///< advisory; the hook decides per message
  SimTime initial_retry_timeout = 2e-3;
  SimTime max_retry_timeout = 64e-3;
  int max_send_attempts = 10;
};

class FaultyNetwork : public NetworkModel {
 public:
  /// `should_drop(from, to)` decides each attempt's fate; it must consume
  /// randomness only for attempts between live endpoints (determinism).
  /// Returning false for every call makes this a pass-through.
  using DropHook = std::function<bool(MachineId from, MachineId to)>;

  FaultyNetwork(std::unique_ptr<NetworkModel> inner, FaultyNetConfig config,
                DropHook should_drop);

  std::string name() const override;
  void reset() override;

  /// Observability is delegated to the inner model: the per-attempt "net.xfer"
  /// spans come from `inner_` (each doomed attempt occupied the medium and is
  /// worth a span of its own), while this wrapper emits only "net.drop" /
  /// "net.retx" instants through its own pointer.  The base-class tracer stays
  /// null so the wrapper does not add a duplicate whole-delivery span.
  void set_observer(obs::Tracer* tracer, obs::MetricsRegistry* metrics) override;

  NetworkModel& inner() { return *inner_; }

  std::uint64_t messages_dropped() const { return messages_dropped_; }
  std::uint64_t message_retries() const { return message_retries_; }

 protected:
  SimTime transfer_impl(MachineId from, MachineId to, std::size_t bytes,
                        SimTime now) override;

  /// A lossy transport cannot ack a broadcast as one unit, so a multicast
  /// decomposes into per-destination reliable unicasts, in `tos` order —
  /// each consumes drop-stream randomness exactly as a plain send would.
  SimTime multicast_impl(MachineId from, std::span<const MachineId> tos,
                         std::size_t bytes, SimTime now) override;

 private:
  std::unique_ptr<NetworkModel> inner_;
  FaultyNetConfig config_;
  DropHook should_drop_;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t message_retries_ = 0;
  obs::Tracer* fault_tracer_ = nullptr;
  obs::Counter* drop_counter_ = nullptr;
  obs::Counter* retx_counter_ = nullptr;
};

}  // namespace jade
