// Hypercube network model — the "iPSC/860" platform substrate.
//
// The Intel iPSC/860 connected up to 128 i860 nodes in a binary hypercube
// with wormhole-style routing: message latency is a fixed startup cost plus
// a small per-hop cost plus size over link bandwidth.  Unlike the shared
// Ethernet, different node pairs communicate concurrently; the serializing
// resource is each node's network interface, which handles one send and one
// receive at a time.
#pragma once

#include <vector>

#include "jade/net/network.hpp"

namespace jade {

struct HypercubeConfig {
  /// Message startup latency (software + DMA setup), seconds.
  SimTime startup = 75e-6;
  /// Additional latency per hop through the cube, seconds.
  SimTime per_hop = 11e-6;
  /// Link bandwidth (iPSC/860: ~2.8 MB/s realized), bytes/second.
  double bytes_per_second = 2.8e6;
};

class HypercubeNet : public NetworkModel {
 public:
  /// `machines` need not be a power of two; hop counts use the XOR metric on
  /// node indices regardless (the spare corner of the cube is simply unused).
  HypercubeNet(int machines, HypercubeConfig config = {});

  std::string name() const override { return "hypercube"; }
  void reset() override;

  static int hop_count(MachineId from, MachineId to);

 protected:
  SimTime transfer_impl(MachineId from, MachineId to, std::size_t bytes,
                        SimTime now) override;

  /// Spanning-tree multicast along disjoint cube edges: the sender NIC pays
  /// startup + transmit once; each destination then pays its own route
  /// latency and receiver-NIC occupancy.
  SimTime multicast_impl(MachineId from, std::span<const MachineId> tos,
                         std::size_t bytes, SimTime now) override;

 private:
  HypercubeConfig config_;
  std::vector<SimTime> send_busy_until_;
  std::vector<SimTime> recv_busy_until_;
};

}  // namespace jade
