#include "jade/net/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "jade/support/error.hpp"

namespace jade {

MeshNet::MeshNet(int machines, MeshConfig config)
    : config_(config),
      send_busy_until_(static_cast<std::size_t>(machines), 0),
      recv_busy_until_(static_cast<std::size_t>(machines), 0) {
  JADE_ASSERT(machines > 0);
  width_ = static_cast<int>(std::ceil(std::sqrt(machines)));
}

int MeshNet::hop_count(MachineId from, MachineId to) const {
  const int fx = from % width_, fy = from / width_;
  const int tx = to % width_, ty = to / width_;
  return std::abs(fx - tx) + std::abs(fy - ty);
}

SimTime MeshNet::transfer_impl(MachineId from, MachineId to,
                               std::size_t bytes, SimTime now) {
  JADE_ASSERT(from >= 0 && static_cast<std::size_t>(from) <
                               send_busy_until_.size());
  JADE_ASSERT(to >= 0 &&
              static_cast<std::size_t>(to) < recv_busy_until_.size());
  if (from == to) return now;

  const SimTime transmit =
      static_cast<SimTime>(bytes) / config_.bytes_per_second;
  const SimTime send_start = std::max(now, send_busy_until_[from]);
  const SimTime send_done = send_start + config_.startup + transmit;
  send_busy_until_[from] = send_done;

  const SimTime route = config_.per_hop * hop_count(from, to);
  const SimTime arrive =
      std::max(send_done + route, recv_busy_until_[to]);
  recv_busy_until_[to] = arrive;

  record(bytes, config_.startup + transmit);
  return arrive;
}

SimTime MeshNet::multicast_impl(MachineId from,
                                std::span<const MachineId> tos,
                                std::size_t bytes, SimTime now) {
  JADE_ASSERT(from >= 0 &&
              static_cast<std::size_t>(from) < send_busy_until_.size());
  const SimTime transmit =
      static_cast<SimTime>(bytes) / config_.bytes_per_second;
  const SimTime send_start = std::max(now, send_busy_until_[from]);
  const SimTime send_done = send_start + config_.startup + transmit;
  send_busy_until_[from] = send_done;

  SimTime last = now;
  for (MachineId to : tos) {
    JADE_ASSERT(to >= 0 && to != from &&
                static_cast<std::size_t>(to) < recv_busy_until_.size());
    const SimTime route = config_.per_hop * hop_count(from, to);
    const SimTime arrive = std::max(send_done + route, recv_busy_until_[to]);
    recv_busy_until_[to] = arrive;
    last = std::max(last, arrive);
  }
  record(bytes, config_.startup + transmit);
  return last;
}

void MeshNet::reset() {
  std::fill(send_busy_until_.begin(), send_busy_until_.end(), 0.0);
  std::fill(recv_busy_until_.begin(), recv_busy_until_.end(), 0.0);
  stats_.reset();
}

}  // namespace jade
