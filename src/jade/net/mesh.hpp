// 2-D mesh network model with dimension-order (XY) routing.
//
// Rounds out the interconnect family: the era's other major topology (the
// DASH prototype's remote-access fabric was a mesh; Paragon and the Cray
// T3D generation used 2-D/3-D meshes).  Machines occupy a near-square grid;
// a message travels |dx| + |dy| hops, and each machine's NIC serializes its
// sends and receives, as in the hypercube model.
#pragma once

#include <vector>

#include "jade/net/network.hpp"

namespace jade {

struct MeshConfig {
  SimTime startup = 60e-6;
  SimTime per_hop = 15e-6;
  double bytes_per_second = 3.5e6;
};

class MeshNet : public NetworkModel {
 public:
  explicit MeshNet(int machines, MeshConfig config = {});

  std::string name() const override { return "mesh"; }
  void reset() override;

  int width() const { return width_; }
  int hop_count(MachineId from, MachineId to) const;

 protected:
  SimTime transfer_impl(MachineId from, MachineId to, std::size_t bytes,
                        SimTime now) override;

  /// Dimension-order multicast: the sender NIC pays startup + transmit
  /// once; each destination pays its own XY route and receiver NIC.
  SimTime multicast_impl(MachineId from, std::span<const MachineId> tos,
                         std::size_t bytes, SimTime now) override;

 private:
  MeshConfig config_;
  int width_;
  std::vector<SimTime> send_busy_until_;
  std::vector<SimTime> recv_busy_until_;
};

}  // namespace jade
