#include "jade/net/network.hpp"

#include "jade/support/error.hpp"

namespace jade {

IdealNet::IdealNet(SimTime latency, double bytes_per_second)
    : latency_(latency), bandwidth_(bytes_per_second) {
  JADE_ASSERT(bytes_per_second > 0);
}

SimTime IdealNet::transfer_impl(MachineId from, MachineId to,
                                std::size_t bytes, SimTime now) {
  if (from == to) return now;
  const SimTime transmit = static_cast<SimTime>(bytes) / bandwidth_;
  record(bytes, transmit);
  return now + latency_ + transmit;
}

std::unique_ptr<NetworkModel> make_ideal_net(SimTime latency,
                                             double bytes_per_second) {
  return std::make_unique<IdealNet>(latency, bytes_per_second);
}

}  // namespace jade
