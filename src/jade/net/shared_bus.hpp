// Shared-bus (Ethernet) network model — the "Mica" platform substrate.
//
// Mica was "an array of Sparc ELC boards connected by Ethernet from Sun
// Microsystems Laboratories" using PVM as transport.  The defining property
// is a single shared medium: only one frame is on the wire at a time, and
// each message pays a fixed protocol/stack overhead.  Under load the bus
// serializes, which is what flattens Mica's speedup curve in the paper's
// Figure 10.
#pragma once

#include "jade/net/network.hpp"

namespace jade {

struct SharedBusConfig {
  /// One-way propagation + interrupt latency per message (seconds).
  SimTime latency = 1.0e-3;
  /// Wire bandwidth (10 Mbit Ethernet ~ 1.25 MB/s; PVM realizes less).
  double bytes_per_second = 1.0e6;
  /// Fixed per-message protocol overhead occupying the medium (PVM/UDP
  /// encode + kernel crossings), seconds.
  SimTime per_message_overhead = 0.8e-3;
};

class SharedBusNet : public NetworkModel {
 public:
  explicit SharedBusNet(SharedBusConfig config = {});

  std::string name() const override { return "shared-bus"; }
  void reset() override;

  /// Virtual time until which the medium is occupied (exposed for tests).
  SimTime busy_until() const { return busy_until_; }

 protected:
  SimTime transfer_impl(MachineId from, MachineId to, std::size_t bytes,
                        SimTime now) override;

  /// Ethernet is a broadcast medium: one frame occupies the wire once and
  /// every listener hears it, so a multicast costs the same as one unicast.
  SimTime multicast_impl(MachineId from, std::span<const MachineId> tos,
                         std::size_t bytes, SimTime now) override;

 private:
  SharedBusConfig config_;
  SimTime busy_until_ = 0;
};

}  // namespace jade
