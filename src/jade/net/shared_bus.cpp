#include "jade/net/shared_bus.hpp"

#include <algorithm>

namespace jade {

SharedBusNet::SharedBusNet(SharedBusConfig config) : config_(config) {}

SimTime SharedBusNet::transfer_impl(MachineId from, MachineId to,
                                    std::size_t bytes, SimTime now) {
  if (from == to) return now;  // local delivery bypasses the wire
  const SimTime start = std::max(now, busy_until_);
  const SimTime occupancy = config_.per_message_overhead +
                            static_cast<SimTime>(bytes) /
                                config_.bytes_per_second;
  busy_until_ = start + occupancy;
  record(bytes, occupancy);
  return busy_until_ + config_.latency;
}

SimTime SharedBusNet::multicast_impl(MachineId /*from*/,
                                     std::span<const MachineId> /*tos*/,
                                     std::size_t bytes, SimTime now) {
  const SimTime start = std::max(now, busy_until_);
  const SimTime occupancy = config_.per_message_overhead +
                            static_cast<SimTime>(bytes) /
                                config_.bytes_per_second;
  busy_until_ = start + occupancy;
  record(bytes, occupancy);
  return busy_until_ + config_.latency;
}

void SharedBusNet::reset() {
  busy_until_ = 0;
  stats_.reset();
}

}  // namespace jade
