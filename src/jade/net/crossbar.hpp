// Crossbar network model — a high-speed switched fabric.
//
// Used for the heterogeneous-workstation and HRV presets: point-to-point
// links through a non-blocking switch, so distinct machine pairs transfer
// concurrently and the per-machine NIC is the only serializing resource.
// (The HRV workstation connected its SPARC and i860 functional units with
// high-speed internal interconnect; a crossbar with generous bandwidth is
// the closest laptop-runnable equivalent.)
#pragma once

#include <vector>

#include "jade/net/network.hpp"

namespace jade {

struct CrossbarConfig {
  SimTime latency = 20e-6;           ///< switch traversal latency, seconds
  double bytes_per_second = 40e6;    ///< per-link bandwidth
  SimTime per_message_overhead = 10e-6;
};

class CrossbarNet : public NetworkModel {
 public:
  CrossbarNet(int machines, CrossbarConfig config = {});

  std::string name() const override { return "crossbar"; }
  void reset() override;

 protected:
  SimTime transfer_impl(MachineId from, MachineId to, std::size_t bytes,
                        SimTime now) override;

  /// The switch replicates a multicast to every output port: the sender NIC
  /// pays one message occupancy; each receiver NIC drains its own copy.
  SimTime multicast_impl(MachineId from, std::span<const MachineId> tos,
                         std::size_t bytes, SimTime now) override;

 private:
  CrossbarConfig config_;
  std::vector<SimTime> send_busy_until_;
  std::vector<SimTime> recv_busy_until_;
};

}  // namespace jade
