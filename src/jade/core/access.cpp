#include "jade/core/access.hpp"

#include "jade/support/error.hpp"

namespace jade {

namespace access {
const char* bits_name(std::uint8_t bits) {
  switch (bits & kAll) {
    case 0: return "-";
    case kRead: return "r";
    case kWrite: return "w";
    case kRead | kWrite: return "rw";
    case kCommute: return "c";
    case kRead | kCommute: return "rc";
    case kWrite | kCommute: return "wc";
    case kRead | kWrite | kCommute: return "rwc";
  }
  return "?";
}
}  // namespace access

AccessRequest& AccessDecl::request_for(const ObjectRef& o) {
  JADE_ASSERT_MSG(static_cast<bool>(o),
                  "access declaration names a null shared reference");
  for (AccessRequest& r : requests_)
    if (r.obj == o.id()) return r;
  requests_.push_back(AccessRequest{o.id(), 0, 0, 0});
  return requests_.back();
}

void AccessDecl::add(const ObjectRef& o, std::uint8_t immediate,
                     std::uint8_t deferred) {
  AccessRequest& r = request_for(o);
  r.add_immediate |= immediate;
  // An immediate right supersedes a deferred request for the same bits.
  r.add_deferred |= deferred;
  r.add_deferred &= static_cast<std::uint8_t>(~r.add_immediate);
}

void AccessDecl::drop(const ObjectRef& o, std::uint8_t bits) {
  AccessRequest& r = request_for(o);
  r.remove |= bits;
}

}  // namespace jade
