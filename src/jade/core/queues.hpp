// The serializer: per-object declaration queues in serial program order.
//
// This implements the paper's concurrency-detection mechanism (Sections 2,
// 3.3, 4.2).  Every shared object has a queue of declaration records ordered
// by the position of the declaring task in the *serial* execution of the
// program:
//
//   * a task created by the root is appended at the tail;
//   * a child task's record is inserted immediately before its parent's
//     record — in the serial execution the child's body runs at its creation
//     point, inside the parent, before anything the parent does afterwards
//     and before any later sibling;
//
// A record is *enabled* when no earlier record in its queue conflicts with
// it (readers share, writers are exclusive, commuting updates share with
// each other).  A task starts when all its immediate records are enabled;
// deferred records reserve the queue position without gating the start.
// Retiring rights (no_rd/no_wr, or task completion) unlinks or weakens
// records, which can enable successors — that is all the synchronization
// Jade ever needs, and it is what makes every execution equivalent to the
// serial one.
//
// The serializer is engine-agnostic and single-threaded by contract: callers
// (the engines) serialize calls with their own lock or handoff discipline.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "jade/core/access.hpp"
#include "jade/core/object.hpp"
#include "jade/support/intrusive_list.hpp"
#include "jade/support/time.hpp"

namespace jade {

class TaskContext;
class TaskNode;
struct TenantCtl;

/// One task's declared access to one object, linked into that object's
/// declaration queue.
struct DeclRecord : IntrusiveNode {
  TaskNode* task = nullptr;
  ObjectId obj = kInvalidObject;
  std::uint8_t immediate = 0;  ///< rights the task may exercise now
  std::uint8_t deferred = 0;   ///< rights reserved for later conversion

  /// How this record blocks *other* tasks: deferred rights block successors
  /// exactly like immediate ones (the owner may convert them at any time).
  std::uint8_t effective() const {
    return static_cast<std::uint8_t>(immediate | deferred);
  }

  /// True while this record contributes to its task's start_pending /
  /// block_pending counter (i.e. the task is waiting for it to enable).
  bool counted = false;
  /// Bits whose enablement the waiting task requires (start: immediate;
  /// acquire/with-cont: the requested mode).
  std::uint8_t wait_bits = 0;
  /// Rights the task has actually exercised (accessor acquisitions so far).
  /// A declared-but-unexercised write is what makes a successor speculable:
  /// the bytes it would contest have not been touched yet.
  std::uint8_t exercised = 0;
};

enum class TaskState : std::uint8_t {
  kPending,   ///< created; waiting for immediate records to enable
  kReady,     ///< all immediate records enabled; not yet executing
  kRunning,   ///< body executing (possibly blocked in with-cont/acquire)
  kCompleted,
};

/// The semantic state of one task.  Engine-specific execution state hangs
/// off the generic fields at the bottom.
class TaskNode {
 public:
  std::uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  TaskNode* parent() const { return parent_; }
  bool is_root() const { return parent_ == nullptr; }
  TaskState state() const { return state_; }

  /// The server tenant this task runs for, or nullptr for a host task.
  /// Inherited from the parent unless create_task received an explicit
  /// tenant (a *program root* — the entry task of one tenant's graph).
  TenantCtl* tenant() const { return tenant_; }
  /// True for the entry task of a tenant's graph.  Program roots are exempt
  /// from the hierarchy coverage rule the way root children are: they start
  /// a fresh program whose declarations their (host) parent never made.
  bool program_root() const { return program_root_; }

  /// True while an engine runs this task speculatively (SchedPolicy::spec):
  /// its body executes against snapshot-isolated buffers, bypassing the
  /// serializer, while its records keep their queue positions untouched.
  bool speculating() const { return speculating_; }

  /// The record this task holds for `obj`, or nullptr.  Most tasks declare
  /// a handful of objects, so this is a linear scan of an inline array —
  /// faster than a hash probe at the sizes that occur in practice, and free
  /// of per-record node allocations.
  DeclRecord* find_record(ObjectId obj);

  /// Number of records (for tests/benches).
  std::size_t record_count() const { return ordered_records_.size(); }

  /// Records in declaration order — deterministic, unlike map order, which
  /// matters wherever iteration order affects simulated timing.
  const std::vector<DeclRecord*>& ordered_records() const {
    return ordered_records_;
  }

  template <typename F>
  void for_each_record(F&& f) const {
    for (const DeclRecord* rec : ordered_records_) f(*rec);
  }

  // --- engine-owned fields -------------------------------------------------
  std::function<void(TaskContext&)> body;
  /// Explicit placement from withonly_on (Section 4.5), or -1.
  MachineId placement = -1;
  /// Machine the engine assigned the task to (SimEngine), or -1.
  MachineId assigned_machine = -1;
  /// Accumulated declared work (charge() units), for cost accounting.
  double charged_work = 0;
  /// Opaque per-engine execution state.
  void* engine_data = nullptr;

 private:
  friend class Serializer;

  /// Declarations at or below this count live inline in the TaskNode (no
  /// allocation at all); beyond it they come from the serializer's arena.
  /// 8 covers the overwhelming majority of tasks in the paper's workloads
  /// (Cholesky external updates declare 4 objects).
  static constexpr std::size_t kInlineRecords = 8;

  std::uint64_t id_ = 0;
  std::string name_;
  TaskNode* parent_ = nullptr;
  TaskState state_ = TaskState::kPending;
  std::uint32_t start_pending_ = 0;  ///< immediate records not yet enabled
  std::uint32_t block_pending_ = 0;  ///< records a running task waits on
  TenantCtl* tenant_ = nullptr;
  bool program_root_ = false;
  bool speculating_ = false;
  std::array<DeclRecord, kInlineRecords> inline_records_;
  std::uint32_t inline_used_ = 0;
  std::vector<DeclRecord*> ordered_records_;
};

/// Receives serializer notifications.  Called synchronously from within
/// serializer operations; implementations must not re-enter the serializer.
class SerializerListener {
 public:
  virtual ~SerializerListener() = default;
  /// All immediate records enabled; the engine may schedule the task.
  virtual void on_task_ready(TaskNode* task) = 0;
  /// A running task that blocked (with-cont conversion or accessor
  /// acquisition) may proceed.
  virtual void on_task_unblocked(TaskNode* task) = 0;
};

class Serializer {
 public:
  Serializer(SerializerListener* listener, bool enforce_hierarchy = true);
  ~Serializer();

  Serializer(const Serializer&) = delete;
  Serializer& operator=(const Serializer&) = delete;

  /// The implicit main task (Section 3.3's "original task"); it owns every
  /// object and its children append at queue tails.
  TaskNode* root() { return root_; }

  /// Creates a task with the given specification, as a child of `parent`
  /// (which must be running, or be the root).  Enforces the hierarchy rule:
  /// the child's rights per object must be covered by the parent's record.
  /// Emits on_task_ready before returning if nothing blocks the task.
  ///
  /// A non-null `tenant` makes the task a *program root* of that tenant;
  /// otherwise the task inherits the parent's tenant (if any).  Tenant tasks
  /// may only declare accesses to their own or shared objects (checked via
  /// the tenant oracle before any state changes — a TenantIsolationError
  /// leaves the serializer untouched).
  TaskNode* create_task(TaskNode* parent,
                        const std::vector<AccessRequest>& requests,
                        std::function<void(TaskContext&)> body,
                        std::string name = "", TenantCtl* tenant = nullptr);

  /// Marks a ready task as executing.
  void task_started(TaskNode* task);

  /// Applies a with-cont specification update to a running task: converts
  /// deferred rights to immediate and/or retires rights.  Returns true when
  /// the task must block until on_task_unblocked fires (some converted
  /// record is not yet enabled).
  bool update_spec(TaskNode* task, const std::vector<AccessRequest>& requests);

  /// Validates an accessor acquisition for `mode` bits and determines
  /// whether the task must wait (its own earlier-created children may hold
  /// conflicting records ahead of it).  Returns true when the task must
  /// block until on_task_unblocked fires.  Throws UndeclaredAccessError if
  /// the task never declared (or has retired / not yet converted) the right.
  bool acquire(TaskNode* task, ObjectId obj, std::uint8_t mode);

  /// Retires all of the task's records and marks it completed.
  void complete_task(TaskNode* task);

  /// Fault injection (ft/): a running attempt of `task` was killed before
  /// completing.  Rewinds the task to kReady so the engine can re-dispatch
  /// it: counted records are uncounted, block_pending_ clears, and every
  /// record keeps its queue position and full declared bits (the caller
  /// guarantees the task never weakened them — only leaf tasks that never
  /// ran a with-cont are restartable).  Because a leaf's records stay
  /// linked, everything that was waiting on it still waits; the serial
  /// order is unchanged and a re-execution is indistinguishable from a
  /// slower first execution.
  void abort_attempt(TaskNode* task);

  // --- speculative execution (SchedPolicy::spec) ---------------------------
  //
  // A pending task may run *speculatively* when every record it waits on is
  // blocked only by predecessors that cannot have changed the contested
  // bytes yet: pure readers (which never change bytes), or write
  // declarations whose write right is still unexercised.  The engine
  // snapshots the declared objects, runs the body against the snapshots,
  // and decides at enable time — the serializer is the commit check:
  // commit order is exactly the serial enable order, and per-queue write
  // epochs (bumped on every exercised write acquisition) tell the engine
  // whether a conflicting write materialized since the snapshot.
  // Speculation never touches the queues: records stay linked and
  // uncounted/counted exactly as a non-speculating pending task's would,
  // so with spec off nothing here executes and behavior is byte-identical.

  /// True when `task` (pending) qualifies for speculative dispatch: every
  /// counted record waits on a non-commute right and every conflicting
  /// predecessor is a pure reader or an unexercised non-commute writer.
  /// Objects contested by an unexercised writer are appended to
  /// `contested` (when non-null) — the conflict-history throttle's key.
  bool spec_eligible(TaskNode* task, std::vector<ObjectId>* contested) const;

  /// Marks a pending task as running speculatively (serializer state is
  /// otherwise untouched; the flag only reroutes engine notifications).
  void spec_start(TaskNode* task);

  /// Abandons a speculation.  The task keeps whatever state it reached
  /// (kPending or kReady) and is dispatched normally from there.
  void spec_abort(TaskNode* task);

  /// Commits a speculation whose task the serializer has enabled (kReady):
  /// transitions it to running exactly as task_started would.  The caller
  /// then applies the buffered writes and calls complete_task, so the
  /// canonical bytes land before any successor is enabled.
  void spec_commit(TaskNode* task);

  /// Number of exercised write/commute acquisitions on `obj`'s queue so
  /// far (0 if the object was never declared).  An engine captures epochs
  /// at snapshot time and re-checks them at commit time.
  std::uint64_t write_epoch(ObjectId obj) const;

  /// Records an engine-applied write to `obj` outside acquire() — a
  /// committed speculation's buffered write — so concurrent speculations
  /// that snapshotted the old bytes fail their epoch check.
  void bump_write_epoch(ObjectId obj) { ++queue_for(obj).write_epoch; }

  /// Tasks created and not yet completed (excluding the root).
  std::uint64_t outstanding() const { return outstanding_; }

  /// Tasks created but not yet started — the engine's throttling signal
  /// (Section 3.3, Figure 7e: "the original task is creating tasks faster
  /// than they are being consumed").  Deliberately excludes running tasks:
  /// suspended creators must not count toward the backlog they wait on.
  std::uint64_t backlog() const { return unstarted_; }

  /// Total tasks ever created (excluding the root).
  std::uint64_t tasks_created() const { return next_task_id_ - 1; }

  /// Snapshot of an object's queue as (task id, effective bits) pairs, in
  /// serial order — used by tests and the task-graph bench.
  std::vector<std::pair<std::uint64_t, std::uint8_t>> queue_snapshot(
      ObjectId obj) const;

  /// Installs the ownership oracle consulted when a *tenant* task declares
  /// an access: given an object id, return the owning tenant (kSharedTenant
  /// for host objects).  Called with the engine's serializer discipline held.
  void set_tenant_oracle(std::function<TenantId(ObjectId)> oracle) {
    tenant_oracle_ = std::move(oracle);
  }

  /// Discards every task, record, and queue and recreates a fresh running
  /// root, restoring the state of a newly constructed serializer (task ids
  /// restart at 1, so an identical graph replays with identical ids).  The
  /// engines call this between sequential runs on one reused instance; no
  /// outstanding-task precondition — a failed run's leftovers are dropped.
  void reset();

 private:
  /// Per-object queue with counters enabling O(1) answers in the common
  /// cases.  Without them, widely-read objects (e.g. the index structures
  /// every Cholesky task declares rd on) make enabledness checks and
  /// post-completion rescans linear in the number of outstanding tasks —
  /// quadratic overall.
  struct ObjectQueue {
    IntrusiveList<DeclRecord> records;
    /// Records whose effective bits include write or commute (block reads).
    std::size_t cnt_wc = 0;
    /// Records whose effective bits include read or write (block commutes).
    std::size_t cnt_rw = 0;
    /// Records some task is currently waiting on (counted == true).
    std::size_t cnt_counted = 0;
    /// Exercised write/commute acquisitions (plus committed speculative
    /// writes) on this object — the speculation commit check's clock.
    std::uint64_t write_epoch = 0;
  };

  ObjectQueue& queue_for(ObjectId obj);

  void link_before(ObjectQueue& q, DeclRecord* pos, DeclRecord* rec);
  void link_back(ObjectQueue& q, DeclRecord* rec);
  void unlink(ObjectQueue& q, DeclRecord* rec);
  void count_effect(ObjectQueue& q, std::uint8_t bits, int delta);
  void set_counted(ObjectQueue& q, DeclRecord* rec, bool counted);

  /// True when no record earlier in the queue conflicts with `bits`.
  bool is_enabled(ObjectQueue& q, DeclRecord* rec, std::uint8_t bits) const;

  /// Re-evaluates counted records in `q` after a record weakened or left;
  /// fires ready/unblocked notifications for tasks whose counters reach 0.
  void reevaluate(ObjectQueue& q);

  /// Removes bits from a record; unlinks it when no bits remain.  Returns
  /// true if the queue changed in a way that can enable successors.
  bool weaken_record(ObjectQueue& q, DeclRecord* rec, std::uint8_t bits);

  void check_coverage(TaskNode* parent, const AccessRequest& req) const;

  /// Hands out the task's next DeclRecord: an inline TaskNode slot while
  /// they last, then a fresh arena slot.  Either way the address is stable
  /// for the serializer's lifetime (TaskNodes are heap-pinned, the arena is
  /// a deque), which the intrusive queue links require.
  DeclRecord* new_record(TaskNode* task);

  void make_root();

  SerializerListener* listener_;
  bool enforce_hierarchy_;
  std::function<TenantId(ObjectId)> tenant_oracle_;
  TaskNode* root_;
  std::vector<std::unique_ptr<TaskNode>> tasks_;
  /// Overflow DeclRecords for tasks declaring more than kInlineRecords
  /// objects.  Records are bump-allocated and live until the serializer
  /// dies, matching the TaskNode lifetime policy (completed records are
  /// unlinked, so dead records cost memory, never time).
  std::deque<DeclRecord> record_arena_;
  std::unordered_map<ObjectId, ObjectQueue> queues_;
  std::uint64_t next_task_id_ = 1;
  std::uint64_t outstanding_ = 0;
  std::uint64_t unstarted_ = 0;
  /// Task currently inside update_spec/acquire; its own unblock
  /// notification is suppressed (the return value carries it).
  TaskNode* in_update_ = nullptr;
};

}  // namespace jade
