#include "jade/core/object.hpp"

#include <vector>

#include "jade/support/error.hpp"

namespace jade {

ObjectId ObjectTable::add(TypeDescriptor type, std::string name) {
  const ObjectId id = next_id_++;
  if (name.empty()) name = "obj#" + std::to_string(id);
  infos_.push_back(ObjectInfo{id, std::move(type), std::move(name)});
  return id;
}

const ObjectInfo& ObjectTable::info(ObjectId id) const {
  JADE_ASSERT_MSG(valid(id), "unknown shared object id");
  return infos_[id - 1];
}

void ObjectTable::set_tenant(ObjectId id, TenantId tenant) {
  JADE_ASSERT_MSG(valid(id), "unknown shared object id");
  infos_[id - 1].tenant = tenant;
}

}  // namespace jade
