// PartitionedArray — the paper's data-decomposition idiom as a utility.
//
// Section 2: the programmer specifies "a decomposition of the data into the
// atomic units that the program will access".  Almost every coarse-grain
// Jade program starts by cutting a large array into per-part shared objects
// (matrix columns, molecule groups, frame buffers).  PartitionedArray
// packages that: it allocates `parts` shared objects covering `size`
// elements, with scatter/gather to host vectors and index arithmetic, so
// applications declare accesses per part:
//
//   PartitionedArray<double> x(rt, n, parts, "x");
//   ctx.withonly([&](AccessDecl& d) { d.rd_wr(x.part(p)); }, ...);
#pragma once

#include <string>
#include <vector>

#include "jade/core/runtime.hpp"

namespace jade {

template <typename T>
class PartitionedArray {
 public:
  /// Allocates `parts` shared objects covering `size` elements, split as
  /// evenly as possible (earlier parts take the remainder).  Part homes
  /// follow the runtime's default placement (round-robin on SimEngine).
  PartitionedArray(Runtime& rt, std::size_t size, std::size_t parts,
                   const std::string& name = "part") {
    JADE_ASSERT_MSG(parts >= 1 && parts <= size,
                    "parts must be in [1, size]");
    starts_.reserve(parts + 1);
    for (std::size_t p = 0; p <= parts; ++p)
      starts_.push_back(size * p / parts);
    refs_.reserve(parts);
    for (std::size_t p = 0; p < parts; ++p)
      refs_.push_back(rt.alloc<T>(starts_[p + 1] - starts_[p],
                                  name + std::to_string(p)));
  }

  std::size_t size() const { return starts_.back(); }
  std::size_t parts() const { return refs_.size(); }

  /// The shared object holding part `p`.
  const SharedRef<T>& part(std::size_t p) const { return refs_[p]; }
  const std::vector<SharedRef<T>>& all_parts() const { return refs_; }

  /// First element index of part `p`; part p covers [begin(p), end(p)).
  std::size_t begin(std::size_t p) const { return starts_[p]; }
  std::size_t end(std::size_t p) const { return starts_[p + 1]; }
  std::size_t part_size(std::size_t p) const {
    return starts_[p + 1] - starts_[p];
  }

  /// Which part element index `i` lives in.
  std::size_t part_of(std::size_t i) const {
    JADE_ASSERT(i < size());
    // Parts are near-equal; start from the proportional guess and fix up.
    std::size_t p = i * parts() / size();
    while (starts_[p] > i) --p;
    while (starts_[p + 1] <= i) ++p;
    return p;
  }

  /// Host-side scatter of `data` (size() elements) into the parts.
  void put(Runtime& rt, std::span<const T> data) const {
    JADE_ASSERT(data.size() == size());
    for (std::size_t p = 0; p < parts(); ++p)
      rt.put(refs_[p], data.subspan(begin(p), part_size(p)));
  }

  /// Host-side gather of all parts into one vector.
  std::vector<T> get(Runtime& rt) const {
    std::vector<T> out(size());
    for (std::size_t p = 0; p < parts(); ++p) {
      const auto v = rt.get(refs_[p]);
      std::copy(v.begin(), v.end(),
                out.begin() + static_cast<std::ptrdiff_t>(begin(p)));
    }
    return out;
  }

 private:
  std::vector<std::size_t> starts_;
  std::vector<SharedRef<T>> refs_;
};

}  // namespace jade
