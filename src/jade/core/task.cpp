#include "jade/core/task.hpp"

#include "jade/engine/engine.hpp"

namespace jade {

void TaskContext::withonly(const SpecFn& spec, BodyFn body, std::string name) {
  withonly_on(-1, spec, std::move(body), std::move(name));
}

void TaskContext::withonly_on(MachineId machine, const SpecFn& spec,
                              BodyFn body, std::string name) {
  // The access declaration section runs *now*, in the creating task — it is
  // ordinary code and may inspect any data the creator can see, which is how
  // Jade expresses data-dependent concurrency.
  AccessDecl decl;
  spec(decl);
  engine_->spawn(node_, decl.requests(), std::move(body), std::move(name),
                 machine);
}

void TaskContext::withonly_tenant(TenantCtl* tenant, const SpecFn& spec,
                                  BodyFn body, std::string name) {
  AccessDecl decl;
  spec(decl);
  engine_->spawn(node_, decl.requests(), std::move(body), std::move(name), -1,
                 tenant);
}

void TaskContext::with_cont(const SpecFn& spec) {
  AccessDecl decl;
  spec(decl);
  engine_->with_cont(node_, decl.requests());
}

std::byte* TaskContext::acquire(ObjectId obj, std::uint8_t mode) {
  return engine_->acquire_bytes(node_, obj, mode);
}

void TaskContext::charge(double units) { engine_->charge(node_, units); }

int TaskContext::machine_count() const { return engine_->machine_count(); }

MachineId TaskContext::machine() const { return engine_->machine_of(node_); }

}  // namespace jade
