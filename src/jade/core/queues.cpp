#include "jade/core/queues.hpp"

#include <sstream>

#include "jade/core/tenant.hpp"
#include "jade/support/error.hpp"

namespace jade {

DeclRecord* TaskNode::find_record(ObjectId obj) {
  for (DeclRecord* rec : ordered_records_)
    if (rec->obj == obj) return rec;
  return nullptr;
}

Serializer::Serializer(SerializerListener* listener, bool enforce_hierarchy)
    : listener_(listener), enforce_hierarchy_(enforce_hierarchy) {
  JADE_ASSERT(listener != nullptr);
  make_root();
}

void Serializer::make_root() {
  auto root = std::make_unique<TaskNode>();
  root->id_ = 0;
  root->name_ = "root";
  root->state_ = TaskState::kRunning;
  root_ = root.get();
  tasks_.push_back(std::move(root));
}

void Serializer::reset() {
  tasks_.clear();
  record_arena_.clear();
  queues_.clear();
  next_task_id_ = 1;
  outstanding_ = 0;
  unstarted_ = 0;
  in_update_ = nullptr;
  make_root();
}

Serializer::~Serializer() = default;

Serializer::ObjectQueue& Serializer::queue_for(ObjectId obj) {
  return queues_[obj];
}

DeclRecord* Serializer::new_record(TaskNode* task) {
  if (task->inline_used_ < TaskNode::kInlineRecords)
    return &task->inline_records_[task->inline_used_++];
  return &record_arena_.emplace_back();
}

void Serializer::check_coverage(TaskNode* parent,
                                const AccessRequest& req) const {
  const std::uint8_t need =
      static_cast<std::uint8_t>(req.add_immediate | req.add_deferred);
  DeclRecord* rec = parent->find_record(req.obj);
  const std::uint8_t have = rec ? rec->effective() : 0;
  if (need & static_cast<std::uint8_t>(~have)) {
    std::ostringstream os;
    os << "task '" << parent->name() << "' (id " << parent->id()
       << ") creates a child declaring '" << access::bits_name(need)
       << "' on object " << req.obj << " but holds only '"
       << access::bits_name(have)
       << "' — a parent's specification must cover its children's accesses";
    throw HierarchyViolationError(os.str());
  }
}

TaskNode* Serializer::create_task(TaskNode* parent,
                                  const std::vector<AccessRequest>& requests,
                                  std::function<void(TaskContext&)> body,
                                  std::string name, TenantCtl* tenant) {
  JADE_ASSERT(parent != nullptr);
  JADE_ASSERT_MSG(parent->state_ == TaskState::kRunning,
                  "tasks can only be created from a running task");

  TenantCtl* ctl = tenant != nullptr ? tenant : parent->tenant_;
  if (ctl != nullptr && tenant_oracle_) {
    // Isolation pre-pass, before any state changes: a tenant task may only
    // declare accesses to its own or shared objects.  Failing here leaves
    // the serializer exactly as it was — only the offending tenant suffers.
    for (const AccessRequest& req : requests) {
      const TenantId owner = tenant_oracle_(req.obj);
      if (owner != kSharedTenant && owner != ctl->id) {
        std::ostringstream os;
        os << "tenant " << ctl->id << " task '" << name
           << "' declares an access to object " << req.obj
           << " owned by tenant " << owner
           << " — tenants may only access their own or shared objects";
        throw TenantIsolationError(os.str());
      }
    }
  }

  auto owned = std::make_unique<TaskNode>();
  TaskNode* task = owned.get();
  task->id_ = next_task_id_++;
  task->name_ = name.empty() ? "task#" + std::to_string(task->id_)
                             : std::move(name);
  task->parent_ = parent;
  task->tenant_ = ctl;
  task->program_root_ = tenant != nullptr;
  task->body = std::move(body);
  tasks_.push_back(std::move(owned));

  for (const AccessRequest& req : requests) {
    if (req.remove != 0) {
      throw SpecUpdateError(
          "no_rd/no_wr/no_cm are with-cont statements; they cannot appear in "
          "a withonly declaration");
    }
    const std::uint8_t bits =
        static_cast<std::uint8_t>(req.add_immediate | req.add_deferred);
    if (bits == 0) continue;
    // Program roots are exempt from the coverage rule the way root children
    // are: they begin a fresh program whose accesses their host parent (the
    // server dispatcher, which declares nothing) never made.
    if (enforce_hierarchy_ && !parent->is_root() && !parent->program_root_)
      check_coverage(parent, req);
    JADE_ASSERT_MSG(task->find_record(req.obj) == nullptr,
                    "duplicate declaration for one object in one withonly");

    DeclRecord* rec = new_record(task);
    rec->task = task;
    rec->obj = req.obj;
    rec->immediate = req.add_immediate;
    rec->deferred = req.add_deferred;

    ObjectQueue& q = queue_for(req.obj);
    DeclRecord* parent_rec = parent->find_record(req.obj);
    if (parent_rec != nullptr && parent_rec->linked()) {
      link_before(q, parent_rec, rec);
    } else {
      link_back(q, rec);
    }
    task->ordered_records_.push_back(rec);
  }

  // Determine which immediate records are not yet enabled.
  for (DeclRecord* rec : task->ordered_records_) {
    if (rec->immediate == 0) continue;
    ObjectQueue& q = queue_for(rec->obj);
    if (!is_enabled(q, rec, rec->immediate)) {
      set_counted(q, rec, true);
      rec->wait_bits = rec->immediate;
      ++task->start_pending_;
    }
  }

  ++outstanding_;
  ++unstarted_;
  if (ctl != nullptr) {
    ctl->tasks_created.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t live =
        ctl->live.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = ctl->max_live.load(std::memory_order_relaxed);
    while (live > peak &&
           !ctl->max_live.compare_exchange_weak(peak, live,
                                                std::memory_order_relaxed)) {
    }
  }
  if (task->start_pending_ == 0) {
    task->state_ = TaskState::kReady;
    listener_->on_task_ready(task);
  }
  return task;
}

void Serializer::task_started(TaskNode* task) {
  JADE_ASSERT_MSG(task->state_ == TaskState::kReady,
                  "task_started on a task that is not ready");
  task->state_ = TaskState::kRunning;
  JADE_ASSERT(unstarted_ > 0);
  --unstarted_;
}

bool Serializer::update_spec(TaskNode* task,
                             const std::vector<AccessRequest>& requests) {
  JADE_ASSERT_MSG(task->state_ == TaskState::kRunning,
                  "with-cont outside a running task");
  JADE_ASSERT(task->block_pending_ == 0);
  in_update_ = task;

  std::vector<ObjectId> touched_queues;
  for (const AccessRequest& req : requests) {
    DeclRecord* rec = task->find_record(req.obj);
    if (rec == nullptr) {
      std::ostringstream os;
      os << "with-cont names object " << req.obj << " which task '"
         << task->name()
         << "' never declared; new rights cannot be added mid-task (their "
            "queue position would violate the serial order)";
      throw SpecUpdateError(os.str());
    }

    // Retirements first, so `no_rd(o); ...` frees successors even when the
    // same update also converts other bits of the same object.
    if (req.remove != 0) {
      if (weaken_record(queue_for(req.obj), rec, req.remove))
        touched_queues.push_back(req.obj);
    }

    const std::uint8_t held = rec->effective();
    const std::uint8_t want_imm = req.add_immediate;
    const std::uint8_t want_def = req.add_deferred;
    if ((want_imm | want_def) & static_cast<std::uint8_t>(~held)) {
      std::ostringstream os;
      os << "with-cont on object " << req.obj << " requests '"
         << access::bits_name(
                static_cast<std::uint8_t>(want_imm | want_def))
         << "' but task '" << task->name() << "' holds only '"
         << access::bits_name(held)
         << "' — with-cont may only convert previously deferred rights or "
            "retire rights";
      throw SpecUpdateError(os.str());
    }

    // Convert deferred -> immediate (rd/wr/cm on a df_* right); converting
    // an already-immediate bit is a harmless no-op.
    rec->deferred &= static_cast<std::uint8_t>(~want_imm);
    rec->immediate |= want_imm;
    // Downgrade immediate -> deferred (documented extension: release the
    // right now, reconvert later; other tasks are unaffected since the
    // effective bits do not change).
    const std::uint8_t downgrade =
        static_cast<std::uint8_t>(want_def & rec->immediate);
    rec->immediate &= static_cast<std::uint8_t>(~downgrade);
    rec->deferred |= downgrade;

    if (want_imm != 0) {
      ObjectQueue& q = queue_for(req.obj);
      JADE_ASSERT(!rec->counted);
      if (rec->linked() && !is_enabled(q, rec, rec->immediate)) {
        set_counted(q, rec, true);
        rec->wait_bits = rec->immediate;
        ++task->block_pending_;
      }
    }
  }

  for (ObjectId obj : touched_queues) reevaluate(queue_for(obj));

  in_update_ = nullptr;
  return task->block_pending_ > 0;
}

bool Serializer::acquire(TaskNode* task, ObjectId obj, std::uint8_t mode) {
  JADE_ASSERT_MSG(task->state_ == TaskState::kRunning,
                  "accessor acquired outside a running task");
  JADE_ASSERT(mode != 0);
  if (task->is_root()) {
    // The main task implicitly owns all data, but may only touch an object
    // directly when that cannot race with the task graph: any access while
    // no created task holds a declaration, or a read while only readers do
    // (the object is immutable for as long as those records live — this is
    // how Figure 6's driver loop reads r[j] while update tasks hold rd(r)).
    auto it = queues_.find(obj);
    if (it == queues_.end() || it->second.records.empty()) return false;
    if (mode == access::kRead && it->second.cnt_wc == 0) return false;
    throw UndeclaredAccessError(
        "the main task may not perform a '" +
        std::string(access::bits_name(mode)) + "' access to object " +
        std::to_string(obj) +
        " while created tasks hold conflicting declarations; access it "
        "from a task with a declared right instead");
  }
  DeclRecord* rec = task->find_record(obj);
  if (rec == nullptr || (mode & static_cast<std::uint8_t>(~rec->immediate))) {
    std::ostringstream os;
    os << "task '" << task->name() << "' performs an undeclared '"
       << access::bits_name(mode) << "' access to object " << obj;
    if (rec != nullptr && (rec->deferred & mode)) {
      os << " (the right was declared deferred; convert it with a with-cont "
            "before accessing)";
    } else if (rec != nullptr) {
      os << " (task holds only '" << access::bits_name(rec->immediate)
         << "')";
    }
    throw UndeclaredAccessError(os.str());
  }

  ObjectQueue& q = queue_for(obj);
  // Book the exercise before the enabledness check: a blocked acquisition
  // will touch the bytes as soon as it unblocks, so treating it as touched
  // already is the conservative direction for the speculation commit check
  // (spurious aborts, never missed conflicts).
  rec->exercised |= mode;
  if (mode & (access::kWrite | access::kCommute)) ++q.write_epoch;
  if (!rec->linked() || is_enabled(q, rec, mode)) return false;

  // Records ahead of us can only belong to our own earlier-created children
  // (everything else was ahead at our start and has been waited out); block
  // until they retire.
  JADE_ASSERT(!rec->counted);
  set_counted(q, rec, true);
  rec->wait_bits = mode;
  ++task->block_pending_;
  return true;
}

void Serializer::complete_task(TaskNode* task) {
  JADE_ASSERT_MSG(task->state_ == TaskState::kRunning,
                  "complete_task on a task that is not running");
  JADE_ASSERT_MSG(task->block_pending_ == 0,
                  "complete_task on a blocked task");
  task->state_ = TaskState::kCompleted;

  std::vector<ObjectId> touched;
  for (DeclRecord* rec : task->ordered_records_) {
    if (rec->linked()) {
      unlink(queue_for(rec->obj), rec);
      touched.push_back(rec->obj);
    }
  }
  for (ObjectId obj : touched) reevaluate(queue_for(obj));
  if (!task->is_root()) --outstanding_;

  if (TenantCtl* ctl = task->tenant_) {
    ctl->tasks_completed.fetch_add(1, std::memory_order_relaxed);
    // `live` can never transiently hit 0 while the tenant still has work:
    // every creator of a tenant task is itself a live tenant task (or the
    // program root being created right now, counted before this runs).
    if (ctl->live.fetch_sub(1, std::memory_order_relaxed) == 1 &&
        ctl->on_quiesce) {
      ctl->on_quiesce(*ctl);
    }
  }
}

void Serializer::abort_attempt(TaskNode* task) {
  JADE_ASSERT_MSG(task->state_ == TaskState::kRunning,
                  "abort_attempt on a task that is not running");
  JADE_ASSERT(!task->is_root());
  for (DeclRecord* rec : task->ordered_records_) {
    if (rec->counted) {
      set_counted(queue_for(rec->obj), rec, false);
      rec->wait_bits = 0;
    }
  }
  task->block_pending_ = 0;
  task->state_ = TaskState::kReady;
  ++unstarted_;
}

bool Serializer::spec_eligible(TaskNode* task,
                               std::vector<ObjectId>* contested) const {
  if (task->state_ != TaskState::kPending || task->speculating_) return false;
  if (contested != nullptr) contested->clear();
  for (DeclRecord* rec : task->ordered_records_) {
    if (!rec->counted) continue;
    // A waiting commute right needs the token machinery; never speculate it.
    if (rec->wait_bits & access::kCommute) return false;
    auto it = queues_.find(rec->obj);
    JADE_ASSERT(it != queues_.end());
    // Walking `records` is read-only; map values are stable.
    auto& q = const_cast<ObjectQueue&>(it->second);
    bool contested_here = false;
    for (DeclRecord* p = q.records.front(); p != nullptr && p != rec;
         p = q.records.next_of(p)) {
      if (!access::conflicts(p->effective(), rec->wait_bits)) continue;
      const std::uint8_t eff = p->effective();
      // A commuting predecessor writes at an unpredictable point in its
      // token-ordered turn; bytes can change under the snapshot silently.
      if (eff & access::kCommute) return false;
      if (eff & access::kWrite) {
        // An exercised write already changed (or is changing) the bytes;
        // the snapshot would start out stale.  Unexercised writes are the
        // speculation target: bet they complete without writing, and let
        // the write-epoch check catch the bet going wrong.
        if (p->exercised & (access::kWrite | access::kCommute)) return false;
        // A *speculating* writer ahead is a doomed bet: its shadow write is
        // invisible now but bumps the epoch at commit.  Wait it out.
        if (p->task->speculating()) return false;
        contested_here = true;
      }
      // A pure-read predecessor only delays the task; it cannot change the
      // bytes, so it never invalidates a snapshot.
    }
    if (contested_here && contested != nullptr)
      contested->push_back(rec->obj);
  }
  return true;
}

void Serializer::spec_start(TaskNode* task) {
  JADE_ASSERT_MSG(task->state_ == TaskState::kPending,
                  "spec_start on a task that is not pending");
  JADE_ASSERT(!task->speculating_);
  task->speculating_ = true;
}

void Serializer::spec_abort(TaskNode* task) {
  JADE_ASSERT_MSG(task->speculating_, "spec_abort on a non-speculation");
  task->speculating_ = false;
}

void Serializer::spec_commit(TaskNode* task) {
  JADE_ASSERT_MSG(task->speculating_, "spec_commit on a non-speculation");
  JADE_ASSERT_MSG(task->state_ == TaskState::kReady,
                  "spec_commit before the serializer enabled the task");
  task->speculating_ = false;
  task_started(task);
}

std::uint64_t Serializer::write_epoch(ObjectId obj) const {
  auto it = queues_.find(obj);
  return it == queues_.end() ? 0 : it->second.write_epoch;
}

bool Serializer::is_enabled(ObjectQueue& q, DeclRecord* rec,
                            std::uint8_t bits) const {
  // O(1) fast paths via the queue counters (self-contributions excluded).
  const std::uint8_t eff = rec->linked() ? rec->effective() : 0;
  if (bits & access::kWrite) {
    // A write conflicts with any predecessor: enabled iff first.
    return q.records.front() == rec;
  }
  if (bits == access::kRead) {
    const std::size_t self = (eff & (access::kWrite | access::kCommute)) ? 1 : 0;
    if (q.cnt_wc == self) return true;  // no writer/commuter anywhere
  } else if (bits == access::kCommute) {
    const std::size_t self = (eff & (access::kRead | access::kWrite)) ? 1 : 0;
    if (q.cnt_rw == self) return true;  // only pure commuters anywhere
  }
  for (DeclRecord* p = q.records.front(); p != nullptr && p != rec;
       p = q.records.next_of(p)) {
    if (access::conflicts(p->effective(), bits)) return false;
  }
  return true;
}

void Serializer::reevaluate(ObjectQueue& q) {
  if (q.cnt_counted == 0) return;  // nobody is waiting on this queue
  std::uint8_t prior = 0;
  std::vector<TaskNode*> now_ready;
  std::vector<TaskNode*> now_unblocked;
  for (DeclRecord* p = q.records.front(); p != nullptr;
       p = q.records.next_of(p)) {
    // Once the scanned prefix holds a write — or both a read and a commute —
    // every remaining waiter conflicts with it (see access::conflicts), so
    // the scan can stop.  This keeps retirement O(changed prefix) instead of
    // O(queue length): a deep chain of writers on one object costs O(1) per
    // completion rather than a full-queue walk.
    if ((prior & access::kWrite) ||
        ((prior & access::kRead) && (prior & access::kCommute))) {
      break;
    }
    if (p->counted && !access::conflicts(prior, p->wait_bits)) {
      set_counted(q, p, false);
      TaskNode* t = p->task;
      if (t->state_ == TaskState::kPending) {
        JADE_ASSERT(t->start_pending_ > 0);
        if (--t->start_pending_ == 0) {
          t->state_ = TaskState::kReady;
          now_ready.push_back(t);
        }
      } else {
        JADE_ASSERT(t->state_ == TaskState::kRunning);
        JADE_ASSERT(t->block_pending_ > 0);
        if (--t->block_pending_ == 0 && t != in_update_) {
          now_unblocked.push_back(t);
        }
      }
    }
    prior |= p->effective();
  }
  // Notify after the scan so listener code observes a consistent queue.
  for (TaskNode* t : now_ready) listener_->on_task_ready(t);
  for (TaskNode* t : now_unblocked) listener_->on_task_unblocked(t);
}

bool Serializer::weaken_record(ObjectQueue& q, DeclRecord* rec,
                               std::uint8_t bits) {
  const std::uint8_t before = rec->effective();
  rec->immediate &= static_cast<std::uint8_t>(~bits);
  rec->deferred &= static_cast<std::uint8_t>(~bits);
  const std::uint8_t after = rec->effective();
  if (after == before) return false;
  if (rec->linked()) {
    count_effect(q, before, -1);
    if (after == 0) {
      JADE_ASSERT(!rec->counted);
      IntrusiveList<DeclRecord>::unlink(rec);
    } else {
      count_effect(q, after, +1);
    }
  }
  return true;
}

void Serializer::link_before(ObjectQueue& q, DeclRecord* pos,
                             DeclRecord* rec) {
  q.records.insert_before(pos, rec);
  count_effect(q, rec->effective(), +1);
}

void Serializer::link_back(ObjectQueue& q, DeclRecord* rec) {
  q.records.push_back(rec);
  count_effect(q, rec->effective(), +1);
}

void Serializer::unlink(ObjectQueue& q, DeclRecord* rec) {
  JADE_ASSERT(!rec->counted);
  count_effect(q, rec->effective(), -1);
  IntrusiveList<DeclRecord>::unlink(rec);
}

void Serializer::count_effect(ObjectQueue& q, std::uint8_t bits, int delta) {
  if (bits & (access::kWrite | access::kCommute)) {
    q.cnt_wc = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(q.cnt_wc) + delta);
  }
  if (bits & (access::kRead | access::kWrite)) {
    q.cnt_rw = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(q.cnt_rw) + delta);
  }
}

void Serializer::set_counted(ObjectQueue& q, DeclRecord* rec, bool counted) {
  JADE_ASSERT(rec->counted != counted);
  rec->counted = counted;
  q.cnt_counted = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(q.cnt_counted) + (counted ? 1 : -1));
}

std::vector<std::pair<std::uint64_t, std::uint8_t>>
Serializer::queue_snapshot(ObjectId obj) const {
  std::vector<std::pair<std::uint64_t, std::uint8_t>> out;
  auto it = queues_.find(obj);
  if (it == queues_.end()) return out;
  // for_each is non-const; queues_ map values are stable, const_cast is safe
  // for a read-only walk.
  auto& q = const_cast<ObjectQueue&>(it->second);
  for (DeclRecord* p = q.records.front(); p != nullptr;
       p = q.records.next_of(p)) {
    out.emplace_back(p->task->id(), p->effective());
  }
  return out;
}

}  // namespace jade
