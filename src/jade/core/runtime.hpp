// Runtime — the public entry point of the library.
//
// A Runtime owns an execution engine, lets the host program allocate and
// initialize shared objects, runs a Jade program (a root body that creates
// tasks with withonly), and reads results back.  The same program runs
// unmodified on any engine/platform — the paper's portability claim:
// "Programs written in Jade run on all of these platforms without
// modification."
//
//   jade::RuntimeConfig cfg;
//   cfg.engine = jade::EngineKind::kSim;
//   cfg.cluster = jade::presets::mica(8);
//   jade::Runtime rt(cfg);
//   auto v = rt.alloc<double>(1024, "v");
//   rt.run([&](jade::TaskContext& ctx) {
//     ctx.withonly([&](jade::AccessDecl& d) { d.rd_wr(v); },
//                  [=](jade::TaskContext& t) { ... t.read_write(v) ... });
//   });
//   std::vector<double> result = rt.get(v);
#pragma once

#include <cstring>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "jade/cluster/options.hpp"
#include "jade/core/object.hpp"
#include "jade/core/task.hpp"
#include "jade/engine/engine.hpp"
#include "jade/ft/fault_plan.hpp"
#include "jade/mach/machine.hpp"
#include "jade/model/planner.hpp"
#include "jade/sched/policies.hpp"

namespace jade {

enum class EngineKind : std::uint8_t {
  kSerial,   ///< reference implementation of the serial semantics
  kThread,   ///< shared-memory worker pool (real parallelism)
  kSim,      ///< virtual-time simulated cluster (the evaluation platform)
  kCluster,  ///< multi-process cluster: forked workers over Unix sockets
};

struct RuntimeConfig {
  EngineKind engine = EngineKind::kSerial;

  /// ThreadEngine: worker count.
  int threads = 4;

  /// SimEngine: the platform to simulate.
  ClusterConfig cluster;

  /// ClusterEngine: real worker processes (docs/CLUSTER.md).  Task bodies
  /// must be registered (jade::cluster::BodyRegistry) to cross the process
  /// boundary.
  cluster::Options cluster_proc;

  /// Scheduling policy (SimEngine; ThreadEngine uses throttle only).
  SchedPolicy sched;

  /// Policy/placement decision seam (docs/MODEL.md).  Before the engine is
  /// built, `planner->plan_policy(cluster, sched)` resolves the effective
  /// SchedPolicy (the default HeuristicPlanner passes `sched` through
  /// untouched); during the run the engine consults the planner for every
  /// placement decision.  Null selects the shared HeuristicPlanner —
  /// byte-identical to the legacy hard-wired heuristics.
  std::shared_ptr<const model::Planner> planner;

  /// Reject child tasks whose accesses the parent did not declare
  /// (Section 4.4).  Disable only in benchmarks measuring check overhead.
  bool enforce_hierarchy = true;

  /// Fault injection & recovery (SimEngine on message-passing platforms
  /// only; see docs/FAULT_TOLERANCE.md).  Disabled by default.
  FaultConfig fault;

  /// Observability (src/jade/obs): structured tracing, Chrome-trace export.
  /// Off by default and zero-cost when off; see docs/OBSERVABILITY.md.
  ObsConfig obs;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Allocates a zero-initialized shared array of `count` T's.  `home`
  /// places the initial copy on a simulated machine (-1: round-robin).
  template <typename T>
  SharedRef<T> alloc(std::size_t count, std::string name = "",
                     MachineId home = -1) {
    static_assert(std::is_trivially_copyable_v<T>);
    const ObjectId id = engine_->allocate(
        TypeDescriptor::array_of<T>(count), std::move(name), home);
    return SharedRef<T>(id, count);
  }

  /// Allocates and initializes in one step.
  template <typename T>
  SharedRef<T> alloc_init(std::span<const T> data, std::string name = "",
                          MachineId home = -1) {
    SharedRef<T> ref = alloc<T>(data.size(), std::move(name), home);
    put(ref, data);
    return ref;
  }

  /// Host-side write of an object's contents (outside run()).
  template <typename T>
  void put(const SharedRef<T>& ref, std::span<const T> data) {
    JADE_ASSERT(data.size() == ref.count());
    engine_->put_bytes(ref.id(),
                       {reinterpret_cast<const std::byte*>(data.data()),
                        data.size() * sizeof(T)});
  }

  /// Host-side read of an object's contents (outside run()).
  template <typename T>
  std::vector<T> get(const SharedRef<T>& ref) {
    std::vector<std::byte> raw = engine_->get_bytes(ref.id());
    JADE_ASSERT(raw.size() == ref.byte_size());
    std::vector<T> out(ref.count());
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Runs a Jade program to completion (the root body is the paper's
  /// "original task that starts the program execution").
  void run(std::function<void(TaskContext&)> root_body);

  const RuntimeStats& stats() const { return engine_->stats(); }

  /// Virtual seconds the program took (SimEngine; 0 for other engines).
  SimTime sim_duration() const { return engine_->stats().finish_time; }

  int machine_count() const { return engine_->machine_count(); }

  Engine& engine() { return *engine_; }
  const RuntimeConfig& config() const { return config_; }

  // --- observability (src/jade/obs) ----------------------------------------

  /// The metrics registry (always available; engines publish the canonical
  /// counter set at the end of run()).
  obs::MetricsRegistry& metrics() { return engine_->metrics(); }
  const obs::MetricsRegistry& metrics() const { return engine_->metrics(); }

  /// The trace recorder, or nullptr when config.obs.trace is off.
  const obs::TraceRecorder* trace() const { return engine_->trace(); }

  /// Snapshot of the recorded events (empty when tracing is off).
  std::vector<obs::TraceEvent> trace_events() const;

  /// Exports the recorded trace in Chrome trace-event JSON (load in
  /// chrome://tracing or https://ui.perfetto.dev).  Throws ConfigError when
  /// tracing was not enabled.
  void write_chrome_trace(std::ostream& out) const;
  void write_chrome_trace(const std::string& path) const;

 private:
  RuntimeConfig config_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace jade
