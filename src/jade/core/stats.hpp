// RuntimeStats — the counter bag every layer reports into.
//
// Lives in core/ (not engine/) because the runtime services below the
// engines — the coherence protocol in store/, the recovery coordinator in
// ft/ — maintain their counters directly; the engines own the struct
// instance and publish it into the metrics registry at the end of run().
#pragma once

#include <cstdint>
#include <vector>

#include "jade/support/time.hpp"

namespace jade {

/// Counters every engine maintains (those that apply to it).
struct RuntimeStats {
  std::uint64_t tasks_created = 0;
  std::uint64_t tasks_inlined = 0;   ///< executed in the creator (throttling)
  std::uint64_t tasks_migrated = 0;  ///< executed off the creating machine
  std::uint64_t throttle_suspensions = 0;
  std::uint64_t throttle_giveups = 0;  ///< creator resumed to avoid deadlock

  // --- work-stealing dispatch (ThreadEngine) -------------------------------
  std::uint64_t tasks_stolen = 0;      ///< executed off the enabling thread
  std::uint64_t worker_parks = 0;      ///< times a thread went to sleep idle
  std::uint64_t compensating_workers = 0;  ///< threads spawned for blockers

  std::uint64_t messages = 0;        ///< simulated network messages
  std::uint64_t bytes_sent = 0;
  std::uint64_t payload_bytes = 0;   ///< object-data bytes (bytes_sent minus
                                     ///< control traffic)
  std::uint64_t object_moves = 0;    ///< exclusive transfers (write access)
  std::uint64_t object_copies = 0;   ///< replications (read access)
  std::uint64_t invalidations = 0;
  std::uint64_t scalars_converted = 0;  ///< heterogeneous format conversion

  // --- communication-protocol optimizations (SimEngine, CommConfig) --------
  std::uint64_t requests_combined = 0;  ///< requests that rode a shared fetch
  std::uint64_t replicas_reused = 0;    ///< stale replicas revalidated in place
  std::uint64_t invalidations_coalesced = 0;  ///< unicasts folded into mcasts
  std::uint64_t conversions_cached = 0;  ///< cross-endian conversions skipped
  std::uint64_t bytes_avoided = 0;       ///< wire bytes the optimizations saved

  // --- speculative execution (SchedPolicy::spec) ---------------------------
  std::uint64_t spec_started = 0;    ///< speculative dispatches
  std::uint64_t spec_committed = 0;  ///< speculations whose writes became
                                     ///< canonical at serial enable time
  std::uint64_t spec_aborted = 0;    ///< speculations discarded on conflict
  std::uint64_t spec_denied = 0;     ///< candidates rejected by the
                                     ///< conflict-history throttle
  std::uint64_t spec_wasted_bytes = 0;  ///< shadow-buffer bytes discarded
  double spec_wasted_work = 0;          ///< charge() units of aborted specs

  double total_charged_work = 0;     ///< sum of charge() units
  SimTime finish_time = 0;           ///< virtual completion time (SimEngine)
  std::vector<double> machine_busy_seconds;  ///< per machine (SimEngine)

  // --- fault tolerance (SimEngine with FaultConfig.enabled) ----------------
  std::uint64_t machine_crashes = 0;
  std::uint64_t tasks_killed = 0;     ///< running attempts lost to crashes
  std::uint64_t tasks_requeued = 0;   ///< killed attempts re-run on survivors
  std::uint64_t messages_dropped = 0;
  std::uint64_t message_retries = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t false_suspicions = 0;  ///< live machines suspected (congestion)
  std::uint64_t objects_rehomed = 0;   ///< ownership re-elected to a replica
  std::uint64_t objects_restored = 0;  ///< reloaded from stable storage
  std::uint64_t objects_lost = 0;      ///< sole copy died, no stable storage
  double wasted_charged_work = 0;      ///< charge() units of killed attempts
  SimTime detection_latency_total = 0; ///< sum over crashes of detect - crash
};

}  // namespace jade
