// TaskContext — what a task body sees.
//
// The paper's language constructs map onto this class:
//
//   withonly { spec } do (params) { body }   ->  ctx.withonly(spec, body)
//   with { spec } cont;                      ->  ctx.with_cont(spec)
//   reading/writing a shared object          ->  ctx.read(ref) / ctx.write(ref)
//
// Parameters are captured by the body closure (by value, like the paper's
// explicit parameter list).  Accessors return spans: acquiring one performs
// the dynamic access check and the global→local translation once, and the
// task then amortizes that cost over any number of element accesses
// (Section 3.3).
#pragma once

#include <functional>
#include <span>
#include <string>

#include "jade/core/access.hpp"
#include "jade/core/object.hpp"
#include "jade/core/queues.hpp"
#include "jade/support/time.hpp"

namespace jade {

class Engine;
struct TenantCtl;

class TaskContext {
 public:
  using SpecFn = std::function<void(AccessDecl&)>;
  using BodyFn = std::function<void(TaskContext&)>;

  TaskContext(Engine* engine, TaskNode* node) : engine_(engine), node_(node) {}

  /// Creates a child task.  `spec` runs immediately (in this task, at this
  /// point of the serial order) to build the child's access specification;
  /// `body` runs whenever the child's declared accesses allow.
  void withonly(const SpecFn& spec, BodyFn body, std::string name = "");

  /// Like withonly, but pins the child to a specific machine — the paper's
  /// low-level placement control (Section 4.5), used e.g. to put a video
  /// capture task on the machine with the camera.
  void withonly_on(MachineId machine, const SpecFn& spec, BodyFn body,
                   std::string name = "");

  /// Like withonly, but makes the child a *program root* of `tenant` — the
  /// entry task of one server tenant's graph.  The server dispatcher uses
  /// this to launch admitted sessions; ordinary programs never need it.
  void withonly_tenant(TenantCtl* tenant, const SpecFn& spec, BodyFn body,
                       std::string name = "");

  /// Updates this task's access specification mid-body (Section 4.2):
  /// rd/wr/cm convert previously deferred rights (blocking until the serial
  /// order allows them); no_rd/no_wr/no_cm retire rights, releasing
  /// successor tasks immediately.
  void with_cont(const SpecFn& spec);

  /// Checked read accessor; requires an immediate rd right.
  template <typename T>
  std::span<const T> read(const SharedRef<T>& ref) {
    auto* p = acquire(ref.id(), access::kRead);
    return {reinterpret_cast<const T*>(p), ref.count()};
  }

  /// Checked write accessor; requires an immediate wr right.  (A wr-only
  /// right licenses stores; declare rd_wr and use read_write() to also
  /// observe previous contents.)
  template <typename T>
  std::span<T> write(const SharedRef<T>& ref) {
    auto* p = acquire(ref.id(), access::kWrite);
    return {reinterpret_cast<T*>(p), ref.count()};
  }

  /// Checked read+write accessor; requires immediate rd and wr rights.
  template <typename T>
  std::span<T> read_write(const SharedRef<T>& ref) {
    auto* p = acquire(ref.id(), access::kRead | access::kWrite);
    return {reinterpret_cast<T*>(p), ref.count()};
  }

  /// Checked commuting-update accessor; requires an immediate cm right
  /// (Section 4.3 extension).  The task may read-modify-write the object;
  /// the runtime orders commuting tasks arbitrarily but exclusively.
  template <typename T>
  std::span<T> commute(const SharedRef<T>& ref) {
    auto* p = acquire(ref.id(), access::kCommute);
    return {reinterpret_cast<T*>(p), ref.count()};
  }

  /// Declares `units` of abstract work done by this task.  Engines that
  /// model time (SimEngine) advance the virtual clock by units divided by
  /// the executing machine's speed; other engines only account it.
  void charge(double units);

  /// Number of machines executing the program (Section 4.5 exposes this for
  /// grain-size decisions).
  int machine_count() const;

  /// The machine this task is executing on (0 outside SimEngine).
  MachineId machine() const;

  TaskNode* node() { return node_; }
  Engine& engine() { return *engine_; }

 private:
  std::byte* acquire(ObjectId obj, std::uint8_t mode);

  Engine* engine_;
  TaskNode* node_;
};

}  // namespace jade
