// Access specifications.
//
// The access declaration section of a withonly-do construct is "an arbitrary
// piece of code containing access specification statements" (Section 2) —
// here, a user callback receiving an AccessDecl&.  Because the callback is
// ordinary code, specifications may depend on run-time values, which is how
// Jade expresses dynamic, data-dependent concurrency (e.g. `rd_wr(
// c[r[j]].column)` in the sparse Cholesky example).
//
// Statements:
//   rd / wr / rd_wr      — immediate read / write / read+write rights
//   df_rd / df_wr / ...  — deferred rights (Section 4.2): reserve the serial
//                          position now, synchronize only on conversion
//   cm / df_cm           — commuting-update right (Section 4.3 extension):
//                          commuting tasks may reorder among themselves
//   no_rd / no_wr / no_cm — with-cont only: retire a right early
#pragma once

#include <cstdint>
#include <vector>

#include "jade/core/object.hpp"

namespace jade {

/// Right bits.  A record's behaviour toward *other* tasks depends on the
/// union of its immediate and deferred bits; what the owner may actually do
/// depends on the immediate bits only.
namespace access {
inline constexpr std::uint8_t kRead = 1;
inline constexpr std::uint8_t kWrite = 2;
inline constexpr std::uint8_t kCommute = 4;  ///< unordered read-modify-write
inline constexpr std::uint8_t kAll = kRead | kWrite | kCommute;

/// True when a later declaration with bits `later` must wait for an earlier
/// declaration with bits `earlier` (the conflict matrix of Section 2:
/// readers share; writers are exclusive; commuters share with commuters).
constexpr bool conflicts(std::uint8_t earlier, std::uint8_t later) {
  if (earlier == 0 || later == 0) return false;
  const bool earlier_writes = earlier & (kWrite | kCommute);
  const bool later_writes = later & (kWrite | kCommute);
  if (!earlier_writes && !later_writes) return false;  // read-read
  // Commute-commute pairs do not conflict unless one also reads/writes.
  const bool both_commute_only = earlier == kCommute && later == kCommute;
  if (both_commute_only) return false;
  return true;
}

const char* bits_name(std::uint8_t bits);  ///< "r", "w", "rw", "c", ...
}  // namespace access

/// One object's worth of requested specification change.
struct AccessRequest {
  ObjectId obj = kInvalidObject;
  std::uint8_t add_immediate = 0;  ///< rd/wr/rd_wr/cm bits
  std::uint8_t add_deferred = 0;   ///< df_* bits
  std::uint8_t remove = 0;         ///< no_* bits (with-cont only)
};

/// Builder handed to access-declaration callbacks.  Multiple statements for
/// the same object merge into one request.
class AccessDecl {
 public:
  void rd(const ObjectRef& o) { add(o, access::kRead, 0); }
  void wr(const ObjectRef& o) { add(o, access::kWrite, 0); }
  void rd_wr(const ObjectRef& o) {
    add(o, access::kRead | access::kWrite, 0);
  }
  void cm(const ObjectRef& o) { add(o, access::kCommute, 0); }

  void df_rd(const ObjectRef& o) { add(o, 0, access::kRead); }
  void df_wr(const ObjectRef& o) { add(o, 0, access::kWrite); }
  void df_rd_wr(const ObjectRef& o) {
    add(o, 0, access::kRead | access::kWrite);
  }
  void df_cm(const ObjectRef& o) { add(o, 0, access::kCommute); }

  void no_rd(const ObjectRef& o) { drop(o, access::kRead); }
  void no_wr(const ObjectRef& o) { drop(o, access::kWrite); }
  void no_cm(const ObjectRef& o) { drop(o, access::kCommute); }

  const std::vector<AccessRequest>& requests() const { return requests_; }
  bool empty() const { return requests_.empty(); }

 private:
  void add(const ObjectRef& o, std::uint8_t immediate, std::uint8_t deferred);
  void drop(const ObjectRef& o, std::uint8_t bits);
  AccessRequest& request_for(const ObjectRef& o);

  std::vector<AccessRequest> requests_;
};

}  // namespace jade
