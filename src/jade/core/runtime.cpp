#include "jade/core/runtime.hpp"

#include "jade/cluster/cluster_engine.hpp"
#include "jade/engine/serial_engine.hpp"
#include "jade/engine/sim_engine.hpp"
#include "jade/engine/thread_engine.hpp"
#include "jade/obs/chrome_trace.hpp"
#include "jade/support/error.hpp"

namespace jade {

namespace {
std::unique_ptr<Engine> make_engine(const RuntimeConfig& config) {
  // The policy seam (docs/MODEL.md): the planner first resolves the
  // effective SchedPolicy for this (platform, base-knobs) pair — the default
  // HeuristicPlanner is the identity — then the engine consults the same
  // planner for every placement decision during the run.
  std::shared_ptr<const model::Planner> planner =
      config.planner != nullptr ? config.planner : model::default_planner();
  const SchedPolicy sched = planner->plan_policy(config.cluster, config.sched);
  switch (config.engine) {
    case EngineKind::kSerial:
      return std::make_unique<SerialEngine>(config.enforce_hierarchy);
    case EngineKind::kThread:
      return std::make_unique<ThreadEngine>(config.threads, sched.throttle,
                                            config.enforce_hierarchy,
                                            sched.spec, planner);
    case EngineKind::kSim:
      config.cluster.validate();
      return std::make_unique<SimEngine>(config.cluster, sched,
                                         config.enforce_hierarchy,
                                         config.fault, planner);
    case EngineKind::kCluster:
      return std::make_unique<cluster::ClusterEngine>(
          config.cluster_proc, sched, config.enforce_hierarchy, planner);
  }
  throw ConfigError("unknown EngineKind");
}
}  // namespace

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config)), engine_(make_engine(config_)) {
  if (config_.obs.trace) engine_->enable_tracing(config_.obs);
}

Runtime::~Runtime() = default;

void Runtime::run(std::function<void(TaskContext&)> root_body) {
  engine_->run(std::move(root_body));
}

std::vector<obs::TraceEvent> Runtime::trace_events() const {
  const obs::TraceRecorder* rec = engine_->trace();
  return rec != nullptr ? rec->snapshot() : std::vector<obs::TraceEvent>{};
}

void Runtime::write_chrome_trace(std::ostream& out) const {
  const obs::TraceRecorder* rec = engine_->trace();
  if (rec == nullptr)
    throw ConfigError(
        "write_chrome_trace: tracing is off (set RuntimeConfig::obs.trace)");
  const std::vector<obs::TraceEvent> events = rec->snapshot();
  obs::write_chrome_trace(out, events, {});
}

void Runtime::write_chrome_trace(const std::string& path) const {
  const obs::TraceRecorder* rec = engine_->trace();
  if (rec == nullptr)
    throw ConfigError(
        "write_chrome_trace: tracing is off (set RuntimeConfig::obs.trace)");
  obs::write_chrome_trace_file(path, *rec, {});
}

}  // namespace jade
