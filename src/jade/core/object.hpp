// Shared objects and typed references.
//
// Jade supports "the abstraction of a single shared memory that all tasks
// can access; each piece of data ... allocated in this memory is called a
// shared object" (Section 2).  The C `shared` type qualifier becomes
// SharedRef<T>: a globally valid identifier for an object, never a raw
// pointer — exactly as in the paper, where "each reference to a shared
// object is in reality a globally valid identifier for that object"
// (Section 3.3).  Dereferencing happens only through checked task accessors,
// which perform the global→local translation and the access check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>

#include "jade/types/type_desc.hpp"

namespace jade {

/// Globally valid identifier of a shared object.  0 is never a valid id.
using ObjectId = std::uint64_t;
inline constexpr ObjectId kInvalidObject = 0;

/// Identifier of a server tenant (src/jade/server); 0 means "shared" —
/// owned by the host program, readable/declarable by every tenant.
using TenantId = std::uint32_t;
inline constexpr TenantId kSharedTenant = 0;

class Runtime;
namespace server {
class Session;
}  // namespace server
namespace cluster {
struct RefMaker;
}  // namespace cluster

/// Type-erased reference to a shared object; the common currency of access
/// declarations.
class ObjectRef {
 public:
  ObjectRef() = default;

  ObjectId id() const { return id_; }
  explicit operator bool() const { return id_ != kInvalidObject; }
  bool operator==(const ObjectRef&) const = default;

 protected:
  explicit ObjectRef(ObjectId id) : id_(id) {}
  friend class Runtime;

  ObjectId id_ = kInvalidObject;
};

/// Typed reference to a shared object holding `count` elements of scalar
/// type T.  Copyable and trivially passable into task bodies (the paper's
/// "parameters" section); holds no pointer.
template <typename T>
class SharedRef : public ObjectRef {
 public:
  SharedRef() = default;

  std::size_t count() const { return count_; }
  std::size_t byte_size() const { return count_ * sizeof(T); }

 private:
  friend class Runtime;
  friend class server::Session;
  friend struct cluster::RefMaker;
  SharedRef(ObjectId id, std::size_t count) : ObjectRef(id), count_(count) {}

  std::size_t count_ = 0;
};

/// Metadata the runtime keeps per shared object.
struct ObjectInfo {
  ObjectId id = kInvalidObject;
  TypeDescriptor type;
  std::string name;  ///< optional, for traces and errors
  /// Owning tenant (kSharedTenant: host-owned, visible to every tenant).
  /// Tenant tasks may only declare accesses to their own or shared objects;
  /// the serializer enforces this at task creation.
  TenantId tenant = kSharedTenant;

  std::size_t byte_size() const { return type.byte_size(); }
};

/// Dense registry of shared-object metadata; engines embed one.  Stored in
/// a deque so `info()` references stay valid while other threads allocate
/// (ThreadEngine tasks may allocate mid-run; callers synchronize `add`, but
/// references previously handed out must never move).
class ObjectTable {
 public:
  ObjectId add(TypeDescriptor type, std::string name);
  const ObjectInfo& info(ObjectId id) const;
  bool valid(ObjectId id) const { return id >= 1 && id < next_id_; }
  std::size_t count() const { return infos_.size(); }

  /// Tags an object with its owning tenant (server sessions call this right
  /// after allocation, before the object can appear in any declaration).
  void set_tenant(ObjectId id, TenantId tenant);

 private:
  std::deque<ObjectInfo> infos_;
  ObjectId next_id_ = 1;
};

}  // namespace jade
