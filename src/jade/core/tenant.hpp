// Tenant control blocks — the unit of multi-program isolation.
//
// The paper's Jade programs are one-shot runs: one root task, one graph, one
// exit.  The server front end (src/jade/server) admits many independent
// programs ("tenants") onto one shared engine; each gets a TenantCtl woven
// through its TaskNodes by the serializer.  The block carries:
//
//   * identity — the TenantId that also tags the tenant's shared objects,
//     so the serializer can reject cross-tenant declarations at task
//     creation (the single chokepoint through which every access right
//     enters a task graph);
//   * accounting — created/completed/cancelled/live task counters, updated
//     under the engine's serializer discipline;
//   * quota — a live-task window (hi/lo watermarks) enforced through the
//     shared ThrottleGate, giving each tenant a fair share of the engine's
//     exploited concurrency;
//   * lifecycle — the cancelled flag engines poll to unwind a torn-down
//     tenant's in-flight tasks, and the quiesce hook that fires when the
//     tenant's last task completes.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>

#include "jade/core/object.hpp"

namespace jade {

/// Internal unwind marker: thrown inside a cancelled tenant's task body (by
/// the engine, at a spawn or wait edge) to pop the body without running the
/// rest of it.  Engines catch it and complete the task normally — it is a
/// teardown signal, not a failure — so the serializer's queues stay
/// consistent for every other tenant.  Never escapes an engine.
struct TenantUnwind {};

/// Shared control block of one tenant.  The serializer and the engines
/// mutate it under the engine's serializer discipline (ThreadEngine: mu_;
/// SimEngine/SerialEngine: single-threaded); the server and host threads
/// read the atomics without that lock, which is why they are atomics.
struct TenantCtl {
  explicit TenantCtl(TenantId id) : id(id) {}

  TenantCtl(const TenantCtl&) = delete;
  TenantCtl& operator=(const TenantCtl&) = delete;

  const TenantId id;

  /// Forced teardown: engines skip the bodies of not-yet-started tasks and
  /// unwind spawning/waiting ones (TenantUnwind).  Tasks still *complete*
  /// through the serializer, so successors — this tenant's and everyone
  /// else's — are released exactly as if the bodies had run.
  std::atomic<bool> cancelled{false};

  // --- accounting (serializer-side writes) ---------------------------------
  std::atomic<std::uint64_t> tasks_created{0};
  std::atomic<std::uint64_t> tasks_completed{0};
  /// Bodies skipped or unwound by cancellation (engine-side writes).
  std::atomic<std::uint64_t> tasks_cancelled{0};
  /// Created-but-incomplete tasks — the quota gate's signal.
  std::atomic<std::uint64_t> live{0};
  /// High-water mark of `live`; fairness tests assert against it.
  std::atomic<std::uint64_t> max_live{0};

  // --- quota (server-side writes, gate-side reads) -------------------------
  /// Live-task window: a tenant task creating a child while live > quota_hi
  /// suspends until live <= quota_lo (or the engine's deadlock escape
  /// fires).  0 disables the gate for this tenant.
  std::atomic<std::uint64_t> quota_hi{0};
  std::atomic<std::uint64_t> quota_lo{0};

  /// Fires when `live` drops to 0 (under the engine's serializer lock).
  /// Must only record state and notify — never re-enter the engine.
  std::function<void(TenantCtl&)> on_quiesce;

  /// First exception that escaped one of this tenant's task bodies; the
  /// engine records it, cancels the tenant, and keeps serving everyone else.
  void record_failure(std::exception_ptr err) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!failure_) failure_ = std::move(err);
  }
  std::exception_ptr failure() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failure_;
  }

 private:
  mutable std::mutex mu_;
  std::exception_ptr failure_;
};

}  // namespace jade
