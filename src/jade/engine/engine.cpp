// Engine is an interface; shared helpers live here.
#include "jade/engine/engine.hpp"

namespace jade {

void Engine::enable_tracing(const ObsConfig& config) {
  if (!config.trace) {
    tracer_.detach();
    recorder_.reset();
    return;
  }
  recorder_ = std::make_unique<obs::TraceRecorder>(config.trace_capacity);
  tracer_.attach(recorder_.get(), [this] { return trace_now(); });
  tracer_.set_wall_clock(config.wall_clock);
}

void Engine::publish_runtime_stats() {
  const RuntimeStats& s = stats_;
  obs::MetricsRegistry& m = metrics_;
  m.counter("engine.tasks_created").set(s.tasks_created);
  m.counter("engine.tasks_inlined").set(s.tasks_inlined);
  m.counter("engine.tasks_migrated").set(s.tasks_migrated);
  m.counter("engine.throttle_suspensions").set(s.throttle_suspensions);
  m.counter("engine.throttle_giveups").set(s.throttle_giveups);
  m.counter("engine.tasks_stolen").set(s.tasks_stolen);
  m.counter("engine.worker_parks").set(s.worker_parks);
  m.counter("engine.compensating_workers").set(s.compensating_workers);
  m.counter("net.messages").set(s.messages);
  m.counter("net.bytes_sent").set(s.bytes_sent);
  m.counter("net.payload_bytes").set(s.payload_bytes);
  m.counter("comm.requests_combined").set(s.requests_combined);
  m.counter("comm.replicas_reused").set(s.replicas_reused);
  m.counter("comm.invalidations_coalesced").set(s.invalidations_coalesced);
  m.counter("comm.conversions_cached").set(s.conversions_cached);
  m.counter("comm.bytes_avoided").set(s.bytes_avoided);
  m.counter("spec.started").set(s.spec_started);
  m.counter("spec.committed").set(s.spec_committed);
  m.counter("spec.aborted").set(s.spec_aborted);
  m.counter("spec.denied").set(s.spec_denied);
  m.counter("spec.wasted_bytes").set(s.spec_wasted_bytes);
  m.gauge("spec.wasted_work").set(s.spec_wasted_work);
  m.counter("store.object_moves").set(s.object_moves);
  m.counter("store.object_copies").set(s.object_copies);
  m.counter("store.invalidations").set(s.invalidations);
  m.counter("store.scalars_converted").set(s.scalars_converted);
  m.gauge("engine.total_charged_work").set(s.total_charged_work);
  m.gauge("engine.finish_time").set(s.finish_time);
  m.counter("ft.machine_crashes").set(s.machine_crashes);
  m.counter("ft.tasks_killed").set(s.tasks_killed);
  m.counter("ft.tasks_requeued").set(s.tasks_requeued);
  m.counter("ft.messages_dropped").set(s.messages_dropped);
  m.counter("ft.message_retries").set(s.message_retries);
  m.counter("ft.heartbeats_sent").set(s.heartbeats_sent);
  m.counter("ft.false_suspicions").set(s.false_suspicions);
  m.counter("ft.objects_rehomed").set(s.objects_rehomed);
  m.counter("ft.objects_restored").set(s.objects_restored);
  m.counter("ft.objects_lost").set(s.objects_lost);
  m.gauge("ft.wasted_charged_work").set(s.wasted_charged_work);
  m.gauge("ft.detection_latency_total").set(s.detection_latency_total);
}

}  // namespace jade
