// Engine is an interface; shared helpers live here.
#include "jade/engine/engine.hpp"
