// SimEngine service wiring: the adapters that plug the engine-agnostic
// runtime services (store/coherence.hpp, ft/recovery_coordinator.hpp) into
// the simulated platform, and the constructor that assembles them.  The
// engine's lifecycle logic lives in sim_engine.cpp.
#include "jade/engine/sim_engine.hpp"

#include "jade/net/faulty.hpp"
#include "jade/support/error.hpp"

namespace jade {

// --- service adapters -------------------------------------------------------

/// The coherence protocol's transport: the simulation clock plus the
/// (possibly fault-decorated) network model.  Every protocol message goes
/// through network_, so the seeded drop stream is consumed in the same
/// order as always.
struct SimEngine::Transport final : CoherenceTransport {
  explicit Transport(SimEngine& engine) : e(engine) {}

  SimTime now() const override { return e.sim_.now(); }
  SimTime unicast(MachineId from, MachineId to, std::size_t bytes,
                  SimTime at) override {
    return e.network_->schedule_transfer(from, to, bytes, at);
  }
  SimTime multicast(MachineId from, std::span<const MachineId> targets,
                    std::size_t bytes, SimTime at) override {
    return e.network_->schedule_multicast(from, targets, bytes, at);
  }

  SimEngine& e;
};

/// Engine mechanism driven by the recovery coordinator: event scheduling,
/// the drained test, and the task/context machinery around crash handling.
struct SimEngine::FtHooks final : RecoveryHooks {
  explicit FtHooks(SimEngine& engine) : e(engine) {}

  void schedule_at(SimTime when, std::function<void()> fn) override {
    e.sim_.schedule(when, std::move(fn));
  }
  void schedule_in(SimTime delay, std::function<void()> fn) override {
    e.sim_.schedule_in(delay, std::move(fn));
  }
  bool drained() const override {
    return e.root_done_ && e.serializer_.outstanding() == 0;
  }
  void mark_machine_dark(MachineId m) override {
    e.machines_[static_cast<std::size_t>(m)].free_contexts = 0;
    // Speculations die with the machine, before the restartable-victims
    // scan: a speculating task is kPending, not a normal attempt, and its
    // shadow buffers never outlive their host.
    e.abort_speculations_on(m);
  }
  std::vector<TaskNode*> restartable_victims(MachineId m) override {
    // Creation order (deterministic): sim_tasks_ appends at spawn.
    std::vector<TaskNode*> victims;
    for (SimTask& t : e.sim_tasks_) {
      if (t.machine != m || !t.attempt.restartable) continue;
      if (t.node->state() == TaskState::kCompleted) continue;
      if (t.process == nullptr ||
          t.process->state() == Process::State::kDone ||
          t.process->abandoned())
        continue;
      victims.push_back(t.node);
    }
    return victims;
  }
  AttemptState& attempt_state(TaskNode* task) override {
    return e.st(task).attempt;
  }
  void abort_attempt_execution(TaskNode* task) override {
    e.abort_attempt_execution(task);
  }
  void wake_context_waiters(MachineId m) override {
    auto& waiters = e.machines_[static_cast<std::size_t>(m)].context_waiters;
    while (!waiters.empty()) {
      TaskNode* next = waiters.front();
      waiters.pop_front();
      e.sim_.resume(e.st(next).process);
    }
  }
  void requeue_task(TaskNode* task) override { e.ready_.push_back(task); }
  void resume_task(TaskNode* task) override {
    e.sim_.resume(e.st(task).process);
  }
  void release_throttled() override { e.maybe_release_throttled(); }
  void after_recovery() override {
    e.try_dispatch();
    e.maybe_release_throttled();
  }

  SimEngine& e;
};

// --- construction -----------------------------------------------------------

SimEngine::SimEngine(ClusterConfig cluster, SchedPolicy sched,
                     bool enforce_hierarchy, FaultConfig fault,
                     std::shared_ptr<const model::Planner> planner)
    : cluster_(std::move(cluster)),
      sched_(sched),
      planner_(planner != nullptr ? std::move(planner)
                                  : model::default_planner()),
      network_(cluster_.make_network()),
      directory_(cluster_.machine_count()),
      serializer_(this, enforce_hierarchy),
      throttle_(sched_.throttle),
      spec_gov_(sched_.spec) {
  cluster_.validate();
  if (sched_.contexts_per_machine < 1)
    throw ConfigError("contexts_per_machine must be >= 1");
  serializer_.set_tenant_oracle(
      [this](ObjectId obj) { return objects_.info(obj).tenant; });
  // With replica reuse on, a dropped-but-current replica is as good as a
  // present one for the locality heuristics.
  directory_.set_reuse_scoring(sched_.comm.reuse_replicas);
  machines_.reserve(cluster_.machines.size());
  for (const MachineDesc& desc : cluster_.machines) {
    Machine m;
    m.desc = desc;
    m.free_contexts = sched_.contexts_per_machine;
    machines_.push_back(std::move(m));
  }
  stats_.machine_busy_seconds.assign(machines_.size(), 0.0);

  transport_ = std::make_unique<Transport>(*this);
  std::vector<Endian> endians;
  endians.reserve(machines_.size());
  for (const Machine& m : machines_) endians.push_back(m.desc.endian);
  CoherenceConfig ccfg;
  ccfg.comm = sched_.comm;
  ccfg.control_message_bytes = cluster_.control_message_bytes;
  ccfg.conversion_seconds_per_scalar = cluster_.conversion_seconds_per_scalar;
  coherence_ = std::make_unique<CoherenceProtocol>(
      *transport_, directory_, objects_, std::move(endians), ccfg, stats_,
      &tracer_);

  if (fault.enabled) {
    if (cluster_.shared_memory())
      throw ConfigError(
          "fault injection requires a message-passing platform: on shared "
          "memory there is no network to lose messages on and no per-machine "
          "object copies to recover");
    ft_hooks_ = std::make_unique<FtHooks>(*this);
    ft_ = std::make_unique<RecoveryCoordinator>(
        fault, machine_count(), *ft_hooks_, *transport_, directory_,
        *coherence_, stats_, tracer_, cluster_.control_message_bytes);
    FaultyNetConfig net_cfg;
    net_cfg.drop_probability = fault.drop_probability;
    net_cfg.initial_retry_timeout = fault.initial_retry_timeout;
    net_cfg.max_retry_timeout = fault.max_retry_timeout;
    net_cfg.max_send_attempts = fault.max_send_attempts;
    auto faulty = std::make_unique<FaultyNetwork>(
        std::move(network_), net_cfg,
        [this](MachineId from, MachineId to) {
          return ft_->injector().should_drop(from, to);
        });
    faulty_net_ = faulty.get();
    network_ = std::move(faulty);
  }

  queue_wait_hist_ = &metrics_.histogram("engine.task_queue_wait");
  fetch_wait_hist_ = &metrics_.histogram("engine.fetch_wait");
  exec_hist_ = &metrics_.histogram("engine.task_execution");
}

SimTime SimEngine::trace_now() const { return sim_.now(); }

void SimEngine::enable_tracing(const ObsConfig& cfg) {
  Engine::enable_tracing(cfg);
  obs::Tracer* t = cfg.trace ? &tracer_ : nullptr;
  network_->set_observer(t, cfg.trace ? &metrics_ : nullptr);
  directory_.set_observer(t, [this] { return sim_.now(); });
}

SimEngine::~SimEngine() = default;

}  // namespace jade
