#include "jade/engine/thread_engine.hpp"

#include "jade/support/error.hpp"
#include "jade/support/log.hpp"

namespace jade {

namespace {
/// Thrown inside a blocked task to unwind it when another task has already
/// failed; never escapes the engine.
struct EngineAborting {};
}  // namespace

ThreadEngine::ThreadEngine(int workers, ThrottleConfig throttle,
                           bool enforce_hierarchy)
    : workers_requested_(workers),
      throttle_(throttle),
      serializer_(this, enforce_hierarchy) {
  JADE_ASSERT_MSG(workers >= 1, "ThreadEngine needs at least one worker");
}

ThreadEngine::~ThreadEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

ObjectId ThreadEngine::allocate(TypeDescriptor type, std::string name,
                                MachineId /*home*/) {
  std::lock_guard<std::mutex> lock(mu_);
  const ObjectId id = objects_.add(std::move(type), std::move(name));
  buffers_[id].assign(objects_.info(id).byte_size(), std::byte{0});
  return id;
}

void ThreadEngine::put_bytes(ObjectId obj, std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& buf = buffers_.at(obj);
  JADE_ASSERT(data.size() == buf.size());
  std::copy(data.begin(), data.end(), buf.begin());
}

std::vector<std::byte> ThreadEngine::get_bytes(ObjectId obj) {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.at(obj);
}

const ObjectInfo& ThreadEngine::object_info(ObjectId obj) const {
  return objects_.info(obj);
}

void ThreadEngine::run(std::function<void(TaskContext&)> root_body) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    JADE_ASSERT_MSG(!ran_, "a Runtime supports a single run()");
    ran_ = true;
  }
  workers_.reserve(static_cast<std::size_t>(workers_requested_));
  for (int i = 0; i < workers_requested_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
  serializer_.root()->assigned_machine = 0;

  {
    std::lock_guard<std::mutex> lock(mu_);
    total_threads_ = workers_requested_ + 1;
  }
  // The caller's thread is the original task (Figure 7(a)).
  bool root_failed = false;
  try {
    TaskContext ctx(this, serializer_.root());
    root_body(ctx);
  } catch (const EngineAborting&) {
    root_failed = true;
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
    root_failed = true;
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (!root_failed) serializer_.complete_task(serializer_.root());
  // Drain: help execute ready tasks rather than idling.
  while (serializer_.outstanding() > 0 && !first_error_) {
    if (!ready_.empty()) {
      TaskNode* task = ready_.front();
      ready_.pop_front();
      execute(task, lock, 0);
    } else {
      ++sleeping_threads_;
      if (sleeping_threads_ >= total_threads_) state_cv_.notify_all();
      state_cv_.wait(lock, [this] {
        return serializer_.outstanding() == 0 || !ready_.empty() ||
               first_error_ != nullptr;
      });
      --sleeping_threads_;
    }
  }
  stop_ = true;
  lock.unlock();
  work_cv_.notify_all();
  state_cv_.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  publish_runtime_stats();
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadEngine::worker_loop(int worker_id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    ++sleeping_threads_;
    ++idle_workers_;
    if (sleeping_threads_ >= total_threads_) state_cv_.notify_all();
    work_cv_.wait(lock, [this] { return stop_ || !ready_.empty(); });
    --idle_workers_;
    --sleeping_threads_;
    if (stop_) return;
    TaskNode* task = ready_.front();
    ready_.pop_front();
    execute(task, lock, worker_id);
  }
}

void ThreadEngine::ensure_spare_worker() {
  if (idle_workers_ > 0 || stop_) return;
  JADE_ASSERT_MSG(workers_.size() < 4096,
                  "runaway compensating-worker growth");
  // A compensating worker stands in for the worker slot it replaces; its
  // reported machine id stays within [0, machine_count()).
  const int worker_id = static_cast<int>(workers_.size()) % workers_requested_;
  workers_.emplace_back([this, worker_id] { worker_loop(worker_id); });
  ++total_threads_;
}

void ThreadEngine::enable_tracing(const ObsConfig& cfg) {
  Engine::enable_tracing(cfg);
  trace_epoch_ = std::chrono::steady_clock::now();
}

void ThreadEngine::execute(TaskNode* task,
                           std::unique_lock<std::mutex>& lock, int worker_id) {
  serializer_.task_started(task);
  task->assigned_machine = worker_id;
  if (tracer_.enabled()) {
    tracer_.instant(obs::Subsystem::kEngine, "task.dispatched", task->id(),
                    worker_id);
    tracer_.span_begin(obs::Subsystem::kEngine, "task", task->id(), worker_id,
                       task->name());
  }
  JADE_TRACE("exec-start " << task->name());
  lock.unlock();
  TaskContext ctx(this, task);
  bool failed = false;
  try {
    task->body(ctx);
  } catch (const EngineAborting&) {
    failed = true;  // unwound because another task already failed
  } catch (...) {
    lock.lock();
    if (!first_error_) first_error_ = std::current_exception();
    lock.unlock();
    failed = true;
  }
  task->body = nullptr;
  lock.lock();
  if (auto held = commute_held_.find(task); held != commute_held_.end()) {
    for (ObjectId obj : held->second) commute_holder_.erase(obj);
    commute_held_.erase(held);
  }
  if (failed) {
    // Leave the task incomplete; run() aborts on first_error_.
    state_cv_.notify_all();
    work_cv_.notify_all();
    return;
  }
  serializer_.complete_task(task);
  tracer_.span_end(obs::Subsystem::kEngine, "task", task->id(), worker_id,
                   task->charged_work);
  JADE_TRACE("exec-done " << task->name() << " backlog=" << serializer_.backlog()
             << " ready=" << ready_.size());
  // Completion may have readied tasks (on_task_ready notified workers); it
  // also may unblock throttled creators or the draining root.
  state_cv_.notify_all();
}

void ThreadEngine::spawn(TaskNode* parent,
                         const std::vector<AccessRequest>& requests,
                         TaskContext::BodyFn body, std::string name,
                         MachineId /*placement*/) {
  std::unique_lock<std::mutex> lock(mu_);
  TaskNode* task = serializer_.create_task(parent, requests, std::move(body),
                                           std::move(name));
  ++stats_.tasks_created;
  if (tracer_.enabled())
    tracer_.instant(obs::Subsystem::kEngine, "task.created", task->id(),
                    machine_of(parent), 0, task->name());

  if (!throttle_.enabled) return;
  if (serializer_.backlog() <= throttle_.high_water) return;
  // Too much exploited concurrency: make the creator help until the backlog
  // drains (inlining ready tasks is deadlock-free under serial semantics —
  // a task never waits on a later task).  If every running task ends up
  // waiting here with nothing ready, the backlog can only drain through the
  // creators themselves — give up throttling rather than deadlock.
  ++stats_.throttle_suspensions;
  tracer_.instant(obs::Subsystem::kEngine, "throttle.suspend", parent->id(),
                  machine_of(parent),
                  static_cast<double>(serializer_.backlog()));
  JADE_TRACE("throttle-enter " << parent->name()
             << " backlog=" << serializer_.backlog());
  while (serializer_.backlog() > throttle_.low_water) {
    if (first_error_) throw EngineAborting{};
    if (sleeping_threads_ + 1 >= total_threads_ && ready_.empty()) {
      // Every other thread is parked with nothing ready: the backlog can
      // only drain through this creator, so it must keep creating.
      JADE_TRACE("throttle-giveup " << parent->name());
      return;
    }
    ensure_spare_worker();
    ++sleeping_threads_;
    if (sleeping_threads_ >= total_threads_) state_cv_.notify_all();
    state_cv_.wait(lock, [this] {
      return serializer_.backlog() <= throttle_.low_water ||
             first_error_ != nullptr ||
             (sleeping_threads_ >= total_threads_ && ready_.empty());
    });
    --sleeping_threads_;
  }
  tracer_.instant(obs::Subsystem::kEngine, "throttle.resume", parent->id(),
                  machine_of(parent),
                  static_cast<double>(serializer_.backlog()));
}

void ThreadEngine::with_cont(TaskNode* task,
                             const std::vector<AccessRequest>& requests) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool must_block = serializer_.update_spec(task, requests);
  // no_cm also returns the engine-level exclusivity token early, so other
  // commuters proceed before this task completes.
  for (const AccessRequest& req : requests) {
    if (!(req.remove & access::kCommute)) continue;
    auto it = commute_holder_.find(req.obj);
    if (it != commute_holder_.end() && it->second == task) {
      commute_holder_.erase(it);
      auto& held = commute_held_[task];
      held.erase(std::find(held.begin(), held.end(), req.obj));
    }
  }
  if (must_block) wait_unblocked(task, lock);
  // Retirements may have readied successors and woken throttled creators.
  state_cv_.notify_all();
}

std::byte* ThreadEngine::acquire_bytes(TaskNode* task, ObjectId obj,
                                       std::uint8_t mode) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool must_block = serializer_.acquire(task, obj, mode);
  if (must_block) wait_unblocked(task, lock);
  if (mode & access::kCommute) {
    // Commuters run in any order but touch the object exclusively; sleep
    // until the holder completes (or retires via no_cm).  Note: a task
    // holding a commute accessor must not block on a deferred conversion,
    // or holder and waiter could form a cycle the serial order does not
    // rank (see DESIGN.md).
    for (;;) {
      auto it = commute_holder_.find(obj);
      if (it == commute_holder_.end()) {
        commute_holder_.emplace(obj, task);
        commute_held_[task].push_back(obj);
        break;
      }
      if (it->second == task) break;
      if (first_error_) throw EngineAborting{};
      ensure_spare_worker();
      ++sleeping_threads_;
      if (sleeping_threads_ >= total_threads_) state_cv_.notify_all();
      state_cv_.wait(lock, [&] {
        auto h = commute_holder_.find(obj);
        return h == commute_holder_.end() || h->second == task ||
               first_error_ != nullptr;
      });
      --sleeping_threads_;
    }
  }
  return buffers_.at(obj).data();
}

void ThreadEngine::wait_unblocked(TaskNode* task,
                                  std::unique_lock<std::mutex>& lock) {
  // Sleep until the serializer delivers the unblock.  A compensating
  // worker keeps ready tasks flowing; every wait edge points to a record
  // strictly ahead in some queue, so the waits-for graph is acyclic and
  // the unblock always arrives (or the run aborts on first_error_).
  JADE_TRACE("unblk-enter " << task->name());
  ensure_spare_worker();
  ++sleeping_threads_;
  if (sleeping_threads_ >= total_threads_) state_cv_.notify_all();
  state_cv_.wait(lock, [this, task] {
    return unblocked_.contains(task) || first_error_ != nullptr;
  });
  --sleeping_threads_;
  if (!unblocked_.contains(task)) throw EngineAborting{};
  unblocked_.erase(task);
  JADE_TRACE("unblk-exit " << task->name());
}

void ThreadEngine::charge(TaskNode* task, double units) {
  std::lock_guard<std::mutex> lock(mu_);
  task->charged_work += units;
  stats_.total_charged_work += units;
}

void ThreadEngine::on_task_ready(TaskNode* task) {
  // Called with mu_ held (from within a serializer call we made).
  ready_.push_back(task);
  work_cv_.notify_one();
  state_cv_.notify_all();  // helpers in throttle/drain loops watch ready_
}

void ThreadEngine::on_task_unblocked(TaskNode* task) {
  unblocked_.insert(task);
  state_cv_.notify_all();
}

}  // namespace jade
