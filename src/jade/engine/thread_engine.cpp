#include "jade/engine/thread_engine.hpp"

#include <algorithm>
#include <optional>

#include "jade/core/tenant.hpp"
#include "jade/support/error.hpp"
#include "jade/support/log.hpp"

namespace jade {

namespace {
/// Thrown inside a blocked task to unwind it when another task has already
/// failed; never escapes the engine.
struct EngineAborting {};
}  // namespace

thread_local ThreadEngine* ThreadEngine::tls_engine_ = nullptr;
thread_local ThreadEngine::ThreadSlot* ThreadEngine::tls_slot_ = nullptr;
thread_local ThreadEngine::SpecAttempt* ThreadEngine::tls_spec_ = nullptr;

ThreadEngine::TlsBinding::TlsBinding(ThreadEngine* engine, ThreadSlot* slot)
    : prev_engine_(tls_engine_), prev_slot_(tls_slot_) {
  tls_engine_ = engine;
  tls_slot_ = slot;
}

ThreadEngine::TlsBinding::~TlsBinding() {
  tls_engine_ = prev_engine_;
  tls_slot_ = prev_slot_;
}

ThreadEngine::ThreadEngine(int workers, ThrottleConfig throttle,
                           bool enforce_hierarchy, SpecConfig spec,
                           std::shared_ptr<const model::Planner> planner)
    : workers_requested_(workers),
      planner_(planner != nullptr ? std::move(planner)
                                  : model::default_planner()),
      throttle_(throttle),
      serializer_(this, enforce_hierarchy),
      spec_gov_(spec) {
  JADE_ASSERT_MSG(workers >= 1, "ThreadEngine needs at least one worker");
  // Pre-sized so publishing a slot is a single release store of slot_count_
  // (stealers scan the prefix without locking).
  slots_.resize(kMaxSlots);
  // Ownership oracle for tenant isolation: called from create_task under
  // mu_; objects_mu_ is a leaf below it.
  serializer_.set_tenant_oracle([this](ObjectId obj) {
    std::lock_guard<std::mutex> lock(objects_mu_);
    return objects_.info(obj).tenant;
  });
}

ThreadEngine::~ThreadEngine() {
  stop_.store(true, std::memory_order_seq_cst);
  unpark_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_cv_.notify_all();
  }
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

// --- objects ---------------------------------------------------------------
// None of these touch mu_: object metadata has its own mutex and the byte
// buffers are behind the BufferTable's shard locks.

ObjectId ThreadEngine::allocate(TypeDescriptor type, std::string name,
                                MachineId /*home*/) {
  ObjectId id;
  std::size_t size;
  {
    std::lock_guard<std::mutex> lock(objects_mu_);
    id = objects_.add(std::move(type), std::move(name));
    size = objects_.info(id).byte_size();
  }
  buffers_.create(id, size);
  return id;
}

void ThreadEngine::put_bytes(ObjectId obj, std::span<const std::byte> data) {
  buffers_.put(obj, data);
}

std::vector<std::byte> ThreadEngine::get_bytes(ObjectId obj) {
  // BufferTable::get copies after dropping its shard lock; a host-side
  // readback of a large object never stalls the schedulers.
  return buffers_.get(obj);
}

const ObjectInfo& ThreadEngine::object_info(ObjectId obj) const {
  std::lock_guard<std::mutex> lock(objects_mu_);
  // Deque-backed table: the reference survives the unlock and any number of
  // concurrent allocations.
  return objects_.info(obj);
}

void ThreadEngine::set_object_tenant(ObjectId obj, TenantId tenant) {
  std::lock_guard<std::mutex> lock(objects_mu_);
  objects_.set_tenant(obj, tenant);
}

void ThreadEngine::release_object(ObjectId obj) {
  // Metadata stays (stale ids keep failing loudly); only the bytes go.
  buffers_.destroy(obj);
}

void ThreadEngine::notify_external() {
  std::lock_guard<std::mutex> lock(mu_);
  if (cv_waiters_ > 0) state_cv_.notify_all();
}

// --- slots and parking -----------------------------------------------------

ThreadEngine::ThreadSlot* ThreadEngine::add_slot(MachineId machine) {
  const int idx = slot_count_.load(std::memory_order_relaxed);
  JADE_ASSERT_MSG(idx < kMaxSlots, "runaway compensating-worker growth");
  slots_[static_cast<std::size_t>(idx)] =
      std::make_unique<ThreadSlot>(idx, machine);
  ThreadSlot* slot = slots_[static_cast<std::size_t>(idx)].get();
  slot_count_.store(idx + 1, std::memory_order_release);
  return slot;
}

void ThreadEngine::wake_one() {
  // seq_cst pairs with the idle thread's (register, then re-check
  // ready_count_) sequence: either we see it registered here, or it sees
  // our ready_count_ increment there.  Zero idle threads is the hot case
  // and costs one load.
  if (idle_count_.load(std::memory_order_seq_cst) == 0) return;
  ThreadSlot* victim = nullptr;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    if (!idle_stack_.empty()) {
      victim = idle_stack_.back();
      idle_stack_.pop_back();
      idle_count_.fetch_sub(1, std::memory_order_seq_cst);
    }
  }
  if (victim) victim->parker.unpark();
}

void ThreadEngine::unpark_all() {
  std::vector<ThreadSlot*> grabbed;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    grabbed.swap(idle_stack_);
    idle_count_.store(0, std::memory_order_seq_cst);
  }
  for (ThreadSlot* slot : grabbed) slot->parker.unpark();
}

bool ThreadEngine::idle_cancel(ThreadSlot* slot) {
  std::lock_guard<std::mutex> lock(idle_mu_);
  auto it = std::find(idle_stack_.begin(), idle_stack_.end(), slot);
  if (it == idle_stack_.end()) return false;
  idle_stack_.erase(it);
  idle_count_.fetch_sub(1, std::memory_order_seq_cst);
  return true;
}

void ThreadEngine::maybe_notify_all_asleep_locked() {
  if (throttle_waiters_ > 0 &&
      sleeping_threads_.load(std::memory_order_seq_cst) >=
          total_threads_.load(std::memory_order_seq_cst) &&
      ready_count_.load(std::memory_order_seq_cst) == 0)
    state_cv_.notify_all();
}

void ThreadEngine::notify_if_all_asleep() {
  if (sleeping_threads_.load(std::memory_order_seq_cst) >=
          total_threads_.load(std::memory_order_seq_cst) &&
      ready_count_.load(std::memory_order_seq_cst) == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    maybe_notify_all_asleep_locked();
  }
}

void ThreadEngine::idle_park(ThreadSlot* slot,
                             bool (ThreadEngine::*extra_wake)()) {
  // Register first, re-check after: a producer either finds us on the idle
  // stack (and unparks us) or published its work before our re-check.
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle_stack_.push_back(slot);
    idle_count_.fetch_add(1, std::memory_order_seq_cst);
  }
  sleeping_threads_.fetch_add(1, std::memory_order_seq_cst);
  bool wake_now = stop_.load(std::memory_order_seq_cst) ||
                  ready_count_.load(std::memory_order_seq_cst) > 0 ||
                  (spec_gov_.enabled() &&
                   spec_epoch_.load(std::memory_order_seq_cst) !=
                       slot->spec_seen_epoch);
  if (!wake_now && extra_wake) {
    std::lock_guard<std::mutex> lock(mu_);
    wake_now = (this->*extra_wake)();
  }
  if (wake_now && idle_cancel(slot)) {
    sleeping_threads_.fetch_sub(1, std::memory_order_seq_cst);
    return;
  }
  // Either nothing to do, or a producer already claimed us and an unpark is
  // in flight — park consumes it and we rescan immediately.
  if (!wake_now) notify_if_all_asleep();
  ++slot->parks;
  slot->parker.park();
  sleeping_threads_.fetch_sub(1, std::memory_order_seq_cst);
}

// --- dispatch --------------------------------------------------------------

void ThreadEngine::on_task_ready(TaskNode* task) {
  // Called with mu_ held, from inside a serializer call this engine made —
  // always on a bound engine thread.  The task lands in that thread's own
  // deque (LIFO locality for dependence chains); one idle thread, if any,
  // is woken to steal.
  ThreadSlot* slot = tls_slot_;
  JADE_ASSERT_MSG(tls_engine_ == this && slot != nullptr,
                  "serializer callback on an unbound thread");
  if (task->speculating()) {
    // The task already ran (or is running) speculatively; it needs a
    // commit/abort decision, not a dispatch.
    spec_decide_.push_back(task);
    return;
  }
  slot->deque.push(task);
  slot->max_queue_depth =
      std::max(slot->max_queue_depth, slot->deque.size_estimate());
  ready_count_.fetch_add(1, std::memory_order_seq_cst);
  if (slot->local_grants > 0) {
    --slot->local_grants;  // the pushing thread will pop this one itself
    return;
  }
  wake_one();
}

void ThreadEngine::on_task_unblocked(TaskNode* task) {
  unblocked_.insert(task);
  if (cv_waiters_ > 0) state_cv_.notify_all();
}

TaskNode* ThreadEngine::find_task(ThreadSlot* self) {
  if (std::optional<TaskNode*> task = self->deque.pop()) {
    ready_count_.fetch_sub(1, std::memory_order_seq_cst);
    return *task;
  }
  const int n = slot_count_.load(std::memory_order_acquire);
  // Two sweeps: ready_count_ > 0 after a failed sweep means an enqueue or a
  // hand-off is in flight; one yield-and-retry usually catches it.  Still
  // nothing → caller parks (its registered re-check closes the race).
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (int k = 1; k < n; ++k) {
      ThreadSlot* victim = slots_[static_cast<std::size_t>(
                                      (self->index + k) % n)]
                               .get();
      if (std::optional<TaskNode*> task = victim->deque.steal()) {
        ready_count_.fetch_sub(1, std::memory_order_seq_cst);
        ++self->stolen;
        if (tracer_.enabled())
          tracer_.instant(obs::Subsystem::kEngine, "steal", (*task)->id(),
                          self->machine, victim->machine);
        return *task;
      }
    }
    if (ready_count_.load(std::memory_order_seq_cst) <= 0) break;
    std::this_thread::yield();
  }
  return nullptr;
}

bool ThreadEngine::spin_for_work(ThreadSlot* slot) {
  (void)slot;
  constexpr int kIdleSpins = 32;
  for (int i = 0; i < kIdleSpins; ++i) {
    if (stop_.load(std::memory_order_acquire) ||
        ready_count_.load(std::memory_order_seq_cst) > 0)
      return true;
    std::this_thread::yield();
  }
  return false;
}

void ThreadEngine::worker_loop(ThreadSlot* slot) {
  TlsBinding bind(this, slot);
  while (!stop_.load(std::memory_order_acquire)) {
    if (TaskNode* task = find_task(slot)) {
      execute(task, slot);
      continue;
    }
    // No ready work: run ahead speculatively rather than going idle.
    if (try_speculate(slot)) continue;
    if (spin_for_work(slot)) continue;
    idle_park(slot, nullptr);
  }
}

void ThreadEngine::ensure_spare_worker() {
  if (idle_count_.load(std::memory_order_seq_cst) > 0 ||
      stop_.load(std::memory_order_relaxed))
    return;
  // A compensating worker stands in for the worker slot it replaces; its
  // reported machine id stays within [0, machine_count()).
  const MachineId machine =
      static_cast<MachineId>(workers_.size()) % workers_requested_;
  ThreadSlot* slot = add_slot(machine);
  ++stats_.compensating_workers;
  total_threads_.fetch_add(1, std::memory_order_seq_cst);
  workers_.emplace_back([this, slot] { worker_loop(slot); });
}

void ThreadEngine::record_error(std::exception_ptr err) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = err;
    if (cv_waiters_ > 0) state_cv_.notify_all();
  }
  unpark_all();  // the drain thread re-checks first_error_ before parking
}

void ThreadEngine::release_commute_tokens_locked(TaskNode* task) {
  // Copy: release() mutates the held list.  No waiter hand-off — sleepers
  // race for freed tokens under state_cv_, so next_holder is always null.
  const std::vector<ObjectId> held = commute_.held(task);
  for (ObjectId obj : held) commute_.release(obj, task);
}

bool ThreadEngine::drain_should_exit() {
  return serializer_.outstanding() == 0 || first_error_ != nullptr;
}

void ThreadEngine::enable_tracing(const ObsConfig& cfg) {
  Engine::enable_tracing(cfg);
  trace_epoch_ = std::chrono::steady_clock::now();
}

void ThreadEngine::run(std::function<void(TaskContext&)> root_body) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ran_) {
      // Sequential reuse: the previous run joined its pool and left the
      // scheduling state quiescent.  Reset it for a fresh graph; objects
      // and buffers persist (allocate-once semantics).
      JADE_ASSERT_MSG(workers_.empty(),
                      "run() re-entered while a previous run is active");
      serializer_.reset();
      unblocked_.clear();
      commute_ = CommuteTokenTable{};
      throttle_.reset_counters();
      spec_gov_.reset_counters();
      spec_candidates_.clear();
      spec_decide_.clear();
      spec_attempts_.clear();
      first_error_ = nullptr;
      stats_ = RuntimeStats{};
      const int nslots = slot_count_.load(std::memory_order_relaxed);
      for (int i = 0; i < nslots; ++i)
        slots_[static_cast<std::size_t>(i)].reset();
      slot_count_.store(0, std::memory_order_relaxed);
      ready_count_.store(0, std::memory_order_seq_cst);
      {
        std::lock_guard<std::mutex> idle(idle_mu_);
        idle_stack_.clear();
        idle_count_.store(0, std::memory_order_seq_cst);
      }
      sleeping_threads_.store(0, std::memory_order_seq_cst);
      stop_.store(false, std::memory_order_seq_cst);
    }
    ran_ = true;
  }
  ThreadSlot* root_slot = add_slot(0);
  total_threads_.store(workers_requested_ + 1, std::memory_order_seq_cst);
  workers_.reserve(static_cast<std::size_t>(workers_requested_));
  for (int i = 0; i < workers_requested_; ++i) {
    ThreadSlot* slot = add_slot(i);
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
  serializer_.root()->assigned_machine = 0;

  // The caller's thread is the original task (Figure 7(a)); afterwards it
  // drains the pool as one more stealing worker.
  bool root_failed = false;
  {
    TlsBinding bind(this, root_slot);
    try {
      TaskContext ctx(this, serializer_.root());
      root_body(ctx);
    } catch (const EngineAborting&) {
      root_failed = true;
    } catch (...) {
      record_error(std::current_exception());
      root_failed = true;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      // The root never passes through execute(): return any commute tokens
      // its body took, or commuting tasks would wait on them forever.
      release_commute_tokens_locked(serializer_.root());
      if (!root_failed) {
        serializer_.complete_task(serializer_.root());
        drain_spec_decides_locked(root_slot);
      }
      if (cv_waiters_ > 0) state_cv_.notify_all();
    }
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (drain_should_exit()) break;
      }
      if (TaskNode* task = find_task(root_slot)) {
        execute(task, root_slot);
        continue;
      }
      if (try_speculate(root_slot)) continue;
      idle_park(root_slot, &ThreadEngine::drain_should_exit);
    }
  }
  stop_.store(true, std::memory_order_seq_cst);
  unpark_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cv_waiters_ > 0) state_cv_.notify_all();
  }
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();

  // Fold the per-thread stat cells now that every owner thread is joined.
  // Compensating workers aggregate into the machine slot they stood in for.
  const int nslots = slot_count_.load(std::memory_order_acquire);
  std::vector<std::uint64_t> executed(
      static_cast<std::size_t>(workers_requested_), 0);
  std::vector<std::uint64_t> stolen(executed.size(), 0);
  std::vector<std::size_t> depth(executed.size(), 0);
  for (int i = 0; i < nslots; ++i) {
    ThreadSlot* s = slots_[static_cast<std::size_t>(i)].get();
    stats_.total_charged_work += s->charged;
    stats_.tasks_stolen += s->stolen;
    stats_.worker_parks += s->parks;
    const auto m = static_cast<std::size_t>(s->machine);
    executed[m] += s->executed;
    stolen[m] += s->stolen;
    depth[m] = std::max(depth[m], s->max_queue_depth);
  }
  for (std::size_t m = 0; m < executed.size(); ++m) {
    const std::string prefix = "engine.worker" + std::to_string(m);
    metrics_.counter(prefix + ".executed").set(executed[m]);
    metrics_.counter(prefix + ".stolen").set(stolen[m]);
    metrics_.gauge(prefix + ".max_queue_depth")
        .set(static_cast<double>(depth[m]));
  }
  stats_.throttle_suspensions = throttle_.suspensions();
  stats_.throttle_giveups = throttle_.giveups();
  stats_.spec_started = spec_gov_.started();
  stats_.spec_committed = spec_gov_.committed();
  stats_.spec_aborted = spec_gov_.aborted();
  stats_.spec_denied = spec_gov_.denied();
  stats_.spec_wasted_bytes = spec_gov_.wasted_bytes();
  stats_.spec_wasted_work = spec_gov_.wasted_work();
  publish_runtime_stats();
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadEngine::execute(TaskNode* task, ThreadSlot* slot) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    serializer_.task_started(task);
    // Starting a task shrinks the backlog; suspended creators watch it.
    if (throttle_waiters_ > 0 && throttle_.backlog_drained(serializer_.backlog()))
      state_cv_.notify_all();
  }
  task->assigned_machine = slot->machine;
  if (tracer_.enabled()) {
    // Work stealing has no directory to score: the "placement" is which
    // worker claimed the task.  The planner still produces the structured
    // explanation — candidates are the live worker slots with their queue
    // depths — so every engine's sched.place event has one shape.
    const int live = slot_count_.load(std::memory_order_acquire);
    std::vector<int> depths(static_cast<std::size_t>(live), 0);
    for (int s = 0; s < live; ++s)
      depths[static_cast<std::size_t>(s)] =
          static_cast<int>(slots_[static_cast<std::size_t>(s)]
                               ->deque.size_estimate());
    PlacementExplain explain;
    planner_->explain_claim(depths, slot->machine, &explain);
    tracer_.instant(obs::Subsystem::kSched, "sched.place", task->id(),
                    slot->machine,
                    static_cast<double>(explain.candidates.size()),
                    model::format_placement_explain(explain));
    tracer_.instant(obs::Subsystem::kEngine, "task.dispatched", task->id(),
                    slot->machine);
    tracer_.span_begin(obs::Subsystem::kEngine, "task", task->id(),
                       slot->machine, task->name());
  }
  JADE_TRACE("exec-start " << task->name());
  TaskContext ctx(this, task);
  bool failed = false;
  TenantCtl* ctl = task->tenant();
  if (ctl != nullptr && ctl->cancelled.load(std::memory_order_relaxed)) {
    // Forced teardown, dispatch edge: skip the body entirely and complete
    // through the serializer as if it had run — successors (this tenant's
    // and everyone else's) are released in the normal order.
    ctl->tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
  } else {
    try {
      task->body(ctx);
    } catch (const EngineAborting&) {
      failed = true;  // unwound because another task already failed
    } catch (const TenantUnwind&) {
      // Teardown caught the body at a spawn/wait edge; complete normally.
      if (ctl != nullptr)
        ctl->tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      if (ctl != nullptr) {
        // Per-tenant failure containment: the failure stays the tenant's
        // (recorded, tenant cancelled); the engine keeps serving others.
        ctl->record_failure(std::current_exception());
        ctl->cancelled.store(true, std::memory_order_relaxed);
      } else {
        record_error(std::current_exception());
        failed = true;
      }
    }
  }
  task->body = nullptr;
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    release_commute_tokens_locked(task);
    if (!failed) {
      // Completion retires the task's records; newly enabled tasks land in
      // this thread's deque via on_task_ready, which wakes a stealer for
      // each — except the first, which this thread pops itself on the next
      // find_task (see ThreadSlot::local_grants).
      slot->local_grants = 1;
      serializer_.complete_task(task);
      slot->local_grants = 0;
      drain_spec_decides_locked(slot);
      drained = serializer_.outstanding() == 0;
    }
    // Blocked tasks (commute token, dependency waits) re-check their
    // predicates; skipped entirely when nothing is blocked.
    if (cv_waiters_ > 0) state_cv_.notify_all();
  }
  if (drained) unpark_all();  // the drain thread may be parked
  if (failed) return;         // leave incomplete; run() aborts on first_error_
  ++slot->executed;
  tracer_.span_end(obs::Subsystem::kEngine, "task", task->id(), slot->machine,
                   task->charged_work);
  JADE_TRACE("exec-done " << task->name()
             << " backlog=" << slot->deque.size_estimate());
}

// --- TaskContext backend ---------------------------------------------------

void ThreadEngine::spawn(TaskNode* parent,
                         const std::vector<AccessRequest>& requests,
                         TaskContext::BodyFn body, std::string name,
                         MachineId /*placement*/, TenantCtl* tenant) {
  // A speculative body cannot create real tasks; abort and re-run normally.
  if (parent->speculating()) throw SpeculationUnwind{};
  // The creator's own tenant (not the child's): the dispatcher launching a
  // program root for tenant T is a host task and is never gated or unwound —
  // a blocked dispatcher would stall every other tenant.
  TenantCtl* pctl = parent->tenant();
  if (pctl != nullptr && pctl->cancelled.load(std::memory_order_relaxed))
    throw TenantUnwind{};
  std::unique_lock<std::mutex> lock(mu_);
  TaskNode* task = serializer_.create_task(parent, requests, std::move(body),
                                           std::move(name), tenant);
  ++stats_.tasks_created;
  if (spec_gov_.enabled() && task->state() == TaskState::kPending &&
      task->tenant() == nullptr) {
    spec_candidates_.push_back(task);
    // Candidates bypass ready_count_, so run the same register-then-recheck
    // wake protocol by hand: bump the epoch (parking threads re-check it),
    // then unpark one already-parked thread to scan.
    spec_epoch_.fetch_add(1, std::memory_order_seq_cst);
    wake_one();
  }
  const bool global_needed =
      throttle_.should_throttle(serializer_.backlog());
  const bool tenant_needed =
      pctl != nullptr && throttle_.tenant_gated(*pctl);
  const bool wait_needed = global_needed || tenant_needed;
  if (!wait_needed) lock.unlock();
  if (tracer_.enabled())
    tracer_.instant(obs::Subsystem::kEngine, "task.created", task->id(),
                    machine_of(parent), 0, task->name());
  if (!wait_needed) return;

  // Too much exploited concurrency — globally (Section 3.3) or against this
  // tenant's quota window: suspend the creator until the pressure drains.
  // If every other thread ends up asleep with nothing ready, the backlog
  // can only drain through the creators themselves — give up throttling
  // rather than deadlock.
  throttle_.note_suspension();
  tracer_.instant(obs::Subsystem::kEngine, "throttle.suspend", parent->id(),
                  machine_of(parent),
                  static_cast<double>(serializer_.backlog()));
  JADE_TRACE("throttle-enter " << parent->name()
             << " backlog=" << serializer_.backlog());
  const auto clear = [&] {
    const bool global_clear =
        !global_needed || throttle_.backlog_drained(serializer_.backlog());
    const bool tenant_clear =
        !tenant_needed ||
        pctl->cancelled.load(std::memory_order_relaxed) ||
        throttle_.tenant_drained(*pctl);
    return global_clear && tenant_clear;
  };
  while (!clear()) {
    if (first_error_) throw EngineAborting{};
    if (sleeping_threads_.load(std::memory_order_seq_cst) + 1 >=
            total_threads_.load(std::memory_order_seq_cst) &&
        ready_count_.load(std::memory_order_seq_cst) == 0) {
      // Every other thread is asleep with nothing ready: only this creator
      // can make progress, so it must keep creating.
      throttle_.note_giveup();
      tracer_.instant(obs::Subsystem::kEngine, "throttle.giveup",
                      parent->id(), machine_of(parent),
                      static_cast<double>(serializer_.backlog()));
      JADE_TRACE("throttle-giveup " << parent->name());
      return;
    }
    ensure_spare_worker();
    ++cv_waiters_;
    ++throttle_waiters_;
    sleeping_threads_.fetch_add(1, std::memory_order_seq_cst);
    maybe_notify_all_asleep_locked();
    state_cv_.wait(lock, [&] {
      return clear() || first_error_ != nullptr ||
             (sleeping_threads_.load(std::memory_order_seq_cst) >=
                  total_threads_.load(std::memory_order_seq_cst) &&
              ready_count_.load(std::memory_order_seq_cst) == 0);
    });
    sleeping_threads_.fetch_sub(1, std::memory_order_seq_cst);
    --cv_waiters_;
    --throttle_waiters_;
  }
  tracer_.instant(obs::Subsystem::kEngine, "throttle.resume", parent->id(),
                  machine_of(parent),
                  static_cast<double>(serializer_.backlog()));
  // The tenant may have been torn down while its creator slept; unwind at
  // this edge rather than running the rest of the body.
  if (pctl != nullptr && pctl->cancelled.load(std::memory_order_relaxed))
    throw TenantUnwind{};
}

void ThreadEngine::with_cont(TaskNode* task,
                             const std::vector<AccessRequest>& requests) {
  // Changing a declaration mid-speculation would fork the serial order the
  // snapshot was captured against; abort and re-run normally.
  if (task->speculating()) throw SpeculationUnwind{};
  std::unique_lock<std::mutex> lock(mu_);
  const bool must_block = serializer_.update_spec(task, requests);
  // no_cm also returns the engine-level exclusivity token early, so other
  // commuters proceed before this task completes.
  for (const AccessRequest& req : requests) {
    if (!(req.remove & access::kCommute)) continue;
    commute_.release(req.obj, task);  // no-op when task is not the holder
  }
  // Weakened rights may have enabled a speculating successor.
  drain_spec_decides_locked(tls_slot_);
  if (must_block) wait_unblocked(task, lock);
  // A returned commute token (or retired rights) may unblock waiters.
  if (cv_waiters_ > 0) state_cv_.notify_all();
}

std::byte* ThreadEngine::acquire_bytes(TaskNode* task, ObjectId obj,
                                       std::uint8_t mode) {
  if (task->speculating()) return spec_acquire_bytes(task, obj, mode);
  {
    std::unique_lock<std::mutex> lock(mu_);
    const bool must_block = serializer_.acquire(task, obj, mode);
    if (must_block) wait_unblocked(task, lock);
    if (mode & access::kCommute) {
      // Commuters run in any order but touch the object exclusively; sleep
      // until the holder completes (or retires via no_cm).  Note: a task
      // holding a commute accessor must not block on a deferred conversion,
      // or holder and waiter could form a cycle the serial order does not
      // rank (see DESIGN.md).
      TenantCtl* ctl = task->tenant();
      for (;;) {
        if (ctl != nullptr && ctl->cancelled.load(std::memory_order_relaxed))
          throw TenantUnwind{};
        if (commute_.try_acquire(obj, task)) break;
        if (first_error_) throw EngineAborting{};
        ensure_spare_worker();
        ++cv_waiters_;
        sleeping_threads_.fetch_add(1, std::memory_order_seq_cst);
        maybe_notify_all_asleep_locked();
        state_cv_.wait(lock, [&] {
          TaskNode* h = commute_.holder(obj);
          return h == nullptr || h == task || first_error_ != nullptr ||
                 (ctl != nullptr &&
                  ctl->cancelled.load(std::memory_order_relaxed));
        });
        sleeping_threads_.fetch_sub(1, std::memory_order_seq_cst);
        --cv_waiters_;
      }
    }
  }
  // Global→local translation is pure buffer-table work: by the time the
  // serial order admits the access, the pointer is immutable.
  return buffers_.data(obj);
}

void ThreadEngine::wait_unblocked(TaskNode* task,
                                  std::unique_lock<std::mutex>& lock) {
  // Sleep until the serializer delivers the unblock.  A compensating
  // worker keeps ready tasks flowing; every wait edge points to a record
  // strictly ahead in some queue, so the waits-for graph is acyclic and
  // the unblock always arrives (or the run aborts on first_error_).
  JADE_TRACE("unblk-enter " << task->name());
  ensure_spare_worker();
  ++cv_waiters_;
  sleeping_threads_.fetch_add(1, std::memory_order_seq_cst);
  maybe_notify_all_asleep_locked();
  state_cv_.wait(lock, [this, task] {
    return unblocked_.contains(task) || first_error_ != nullptr;
  });
  sleeping_threads_.fetch_sub(1, std::memory_order_seq_cst);
  --cv_waiters_;
  if (!unblocked_.contains(task)) throw EngineAborting{};
  unblocked_.erase(task);
  JADE_TRACE("unblk-exit " << task->name());
}

// --- speculation (SchedPolicy::spec) ----------------------------------------

bool ThreadEngine::try_speculate(ThreadSlot* slot) {
  if (!spec_gov_.enabled()) return false;
  TaskNode* picked = nullptr;
  SpecAttempt* att = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // This scan observes every candidate registered so far; only a later
    // registration should keep this thread from parking.
    slot->spec_seen_epoch = spec_epoch_.load(std::memory_order_seq_cst);
    if (first_error_ != nullptr || !spec_gov_.can_start()) return false;
    std::vector<ObjectId> contested;
    std::size_t i = 0;
    std::size_t examined = 0;
    while (i < spec_candidates_.size() &&
           examined < spec_gov_.config().window) {
      TaskNode* task = spec_candidates_[i];
      if (task->state() != TaskState::kPending || task->speculating()) {
        spec_candidates_.erase(spec_candidates_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ++examined;
      if (!serializer_.spec_eligible(task, &contested)) {
        ++i;  // may become eligible once a predecessor weakens
        continue;
      }
      bool throttled = false;
      for (ObjectId obj : contested) {
        if (spec_gov_.object_throttled(obj)) {
          throttled = true;
          break;
        }
      }
      if (throttled) {
        // This object keeps conflicting; stop betting on it.  The task is
        // dropped from the candidate list for good — it runs normally.
        spec_gov_.note_denied();
        spec_candidates_.erase(spec_candidates_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        continue;
      }
      spec_candidates_.erase(spec_candidates_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      picked = task;
      break;
    }
    if (picked == nullptr) return false;
    serializer_.spec_start(picked);
    spec_gov_.note_start();
    auto attempt = std::make_unique<SpecAttempt>();
    attempt->task = picked;
    attempt->charge_base = picked->charged_work;
    attempt->contested = std::move(contested);
    // Epoch+bytes capture is atomic w.r.t. conflicting writers while mu_ is
    // held: a conflicting predecessor's first touch must pass through
    // Serializer::acquire (under mu_, bumping the epoch), and successors are
    // blocked behind this task's own linked records.  Pure-commute rights
    // are excluded: exercising one aborts the attempt.
    for (const DeclRecord* rec : picked->ordered_records()) {
      if (rec->immediate == 0 || rec->immediate == access::kCommute) continue;
      attempt->epochs.emplace_back(rec->obj,
                                   serializer_.write_epoch(rec->obj));
      attempt->shadows.emplace_back(rec->obj, buffers_.get(rec->obj));
    }
    att = attempt.get();
    spec_attempts_[picked] = std::move(attempt);
    if (tracer_.enabled())
      tracer_.instant(obs::Subsystem::kEngine, "spec.dispatch", picked->id(),
                      slot->machine,
                      static_cast<double>(att->contested.size()));
  }
  run_speculation(picked, att, slot);
  return true;
}

void ThreadEngine::run_speculation(TaskNode* task, SpecAttempt* att,
                                   ThreadSlot* slot) {
  task->assigned_machine = slot->machine;
  JADE_TRACE("spec-start " << task->name());
  TaskContext ctx(this, task);
  SpecAttempt* prev_spec = tls_spec_;
  tls_spec_ = att;
  bool failed = false;
  try {
    task->body(ctx);
  } catch (const SpeculationUnwind&) {
    failed = true;
  } catch (...) {
    // A speculative body's failure may be an artifact of snapshot staleness;
    // abort silently — a genuine error reproduces on the normal re-run.
    failed = true;
  }
  tls_spec_ = prev_spec;
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    att->failed = failed;
    att->body_done = true;
    if (task->state() == TaskState::kReady) {
      // The serializer enabled the task while the body ran; the queued
      // decision was a no-op then, so decide here, at the body's end.
      decide_speculation_locked(task, slot);
      drain_spec_decides_locked(slot);
      drained = serializer_.outstanding() == 0;
      if (cv_waiters_ > 0) state_cv_.notify_all();
    }
  }
  if (drained) unpark_all();  // the drain thread may be parked
}

void ThreadEngine::drain_spec_decides_locked(ThreadSlot* slot) {
  while (!spec_decide_.empty()) {
    TaskNode* task = spec_decide_.front();
    spec_decide_.pop_front();
    if (!task->speculating()) continue;  // already decided
    decide_speculation_locked(task, slot);
  }
}

void ThreadEngine::decide_speculation_locked(TaskNode* task,
                                             ThreadSlot* slot) {
  auto it = spec_attempts_.find(task);
  JADE_ASSERT(it != spec_attempts_.end());
  SpecAttempt& att = *it->second;
  if (!att.body_done) return;  // run_speculation re-decides at the body end
  JADE_ASSERT(task->state() == TaskState::kReady);
  bool ok = !att.failed;
  bool conflict = false;
  if (ok) {
    // The serializer is the commit check: the task is enabled in serial
    // order, and unchanged write epochs prove no conflicting write
    // materialized since the snapshot.
    for (const auto& [obj, epoch] : att.epochs) {
      if (serializer_.write_epoch(obj) != epoch) {
        ok = false;
        conflict = true;
        break;
      }
    }
  }
  if (ok) {
    commit_speculation_locked(task, att, slot);
  } else {
    abort_speculation_locked(task, att, /*charge_history=*/conflict);
  }
  spec_attempts_.erase(it);
}

void ThreadEngine::commit_speculation_locked(TaskNode* task, SpecAttempt& att,
                                             ThreadSlot* slot) {
  serializer_.spec_commit(task);  // kReady -> kRunning, in serial order
  spec_gov_.note_commit();
  // The buffered writes become the canonical bytes *before* complete_task
  // can enable any successor — exactly where a normal run's writes would
  // already be.
  for (ObjectId obj : att.dirty) {
    for (const auto& [sobj, bytes] : att.shadows) {
      if (sobj != obj) continue;
      buffers_.put(obj, bytes);
      break;
    }
    serializer_.bump_write_epoch(obj);
  }
  JADE_TRACE("spec-commit " << task->name());
  if (tracer_.enabled()) {
    tracer_.instant(obs::Subsystem::kEngine, "spec.commit", task->id(),
                    slot->machine, static_cast<double>(att.dirty.size()));
    // The task's span materializes at its serial position (zero width: the
    // work itself ran earlier, speculatively).
    tracer_.span_begin(obs::Subsystem::kEngine, "task", task->id(),
                       slot->machine, task->name());
    tracer_.span_end(obs::Subsystem::kEngine, "task", task->id(),
                     slot->machine, task->charged_work);
  }
  task->body = nullptr;
  ++slot->executed;
  serializer_.complete_task(task);
  // Starting+completing the task shrank the backlog; suspended creators
  // watch it.
  if (throttle_waiters_ > 0 &&
      throttle_.backlog_drained(serializer_.backlog()))
    state_cv_.notify_all();
}

void ThreadEngine::abort_speculation_locked(TaskNode* task, SpecAttempt& att,
                                            bool charge_history) {
  std::uint64_t wasted_bytes = 0;
  for (const auto& [obj, bytes] : att.shadows) wasted_bytes += bytes.size();
  const double wasted_work = task->charged_work - att.charge_base;
  spec_gov_.note_abort(
      charge_history ? att.contested : std::vector<ObjectId>{}, wasted_bytes,
      wasted_work);
  // The attempt's charge never happened; the per-thread cell keeps it as
  // wasted-work contribution to the global total (mirroring ft kills).
  task->charged_work = att.charge_base;
  serializer_.spec_abort(task);
  JADE_TRACE("spec-abort " << task->name());
  if (tracer_.enabled())
    tracer_.instant(obs::Subsystem::kEngine, "spec.abort", task->id(),
                    machine_of(task), wasted_work);
  task->assigned_machine = -1;
  // An already-enabled task re-enters the normal dispatch path.
  if (task->state() == TaskState::kReady) on_task_ready(task);
}

std::byte* ThreadEngine::spec_acquire_bytes(TaskNode* task, ObjectId obj,
                                            std::uint8_t mode) {
  SpecAttempt* att = tls_spec_;
  JADE_ASSERT_MSG(att != nullptr && att->task == task,
                  "speculative access outside its executing thread");
  DeclRecord* rec = task->find_record(obj);
  // Undeclared or commuting access: abort the speculation; the normal
  // re-run raises the real error (or takes the commute token) at the same
  // deterministic point.
  if (rec == nullptr ||
      (mode & static_cast<std::uint8_t>(~rec->immediate)) ||
      (mode & access::kCommute)) {
    throw SpeculationUnwind{};
  }
  for (auto& [sobj, bytes] : att->shadows) {
    if (sobj != obj) continue;
    if (mode & access::kWrite) {
      if (std::find(att->dirty.begin(), att->dirty.end(), obj) ==
          att->dirty.end()) {
        att->dirty.push_back(obj);
      }
    }
    return bytes.data();
  }
  throw SpeculationUnwind{};  // no shadow (pure-commute record)
}

void ThreadEngine::charge(TaskNode* task, double units) {
  // No lock: the executing thread owns the running task's accounting and
  // its slot's stat cell; the global total is folded at the end of run().
  task->charged_work += units;
  if (tls_engine_ == this && tls_slot_ != nullptr) {
    tls_slot_->charged += units;
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.total_charged_work += units;
  }
}

}  // namespace jade
