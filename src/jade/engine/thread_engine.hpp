// ThreadEngine — Jade on a shared-memory multiprocessor.
//
// Models the paper's SGI 4D/240S / DASH implementation: the hardware (here,
// the host's cache-coherent memory) provides the shared address space, so
// the runtime "only needs to synchronize the computation" (Section 1).  A
// pool of worker threads executes ready tasks; all serializer state is
// protected by one engine mutex — Jade targets coarse-grain tasks, so the
// lock is uncontended by design (Section 8 discusses the grain-size limit).
//
// Throttling (Section 3.3): when too many tasks are outstanding, the
// creating task executes ready tasks inline instead of creating more — the
// paper's "legally inline any task without risking deadlock".
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "jade/engine/engine.hpp"
#include "jade/sched/policies.hpp"

namespace jade {

class ThreadEngine : public Engine, private SerializerListener {
 public:
  ThreadEngine(int workers, ThrottleConfig throttle, bool enforce_hierarchy);
  ~ThreadEngine() override;

  ObjectId allocate(TypeDescriptor type, std::string name,
                    MachineId home) override;
  void put_bytes(ObjectId obj, std::span<const std::byte> data) override;
  std::vector<std::byte> get_bytes(ObjectId obj) override;
  const ObjectInfo& object_info(ObjectId obj) const override;

  void run(std::function<void(TaskContext&)> root_body) override;

  void spawn(TaskNode* parent, const std::vector<AccessRequest>& requests,
             TaskContext::BodyFn body, std::string name,
             MachineId placement) override;
  void with_cont(TaskNode* task,
                 const std::vector<AccessRequest>& requests) override;
  std::byte* acquire_bytes(TaskNode* task, ObjectId obj,
                           std::uint8_t mode) override;
  void charge(TaskNode* task, double units) override;
  int machine_count() const override { return workers_requested_; }
  /// The worker the task is (or was last) executing on; 0 for the root task
  /// and for tasks not yet picked up.  Compensating workers report the id of
  /// the worker slot they stand in for, keeping the result in
  /// [0, machine_count()).
  MachineId machine_of(TaskNode* task) const override {
    return task->assigned_machine >= 0 ? task->assigned_machine : 0;
  }

  void enable_tracing(const ObsConfig& cfg) override;

 protected:
  /// Wall seconds since tracing was enabled (there is no virtual clock on
  /// real hardware); traces are therefore not run-to-run deterministic.
  SimTime trace_now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         trace_epoch_)
        .count();
  }

 private:
  void on_task_ready(TaskNode* task) override;
  void on_task_unblocked(TaskNode* task) override;

  void worker_loop(int worker_id);
  /// Runs one task to completion; called with `lock` held, releases it while
  /// the body executes.  `worker_id` identifies the executing thread's
  /// machine slot (0 = the root/drain thread).
  void execute(TaskNode* task, std::unique_lock<std::mutex>& lock,
               int worker_id);
  /// Blocks the calling task until on_task_unblocked fires for it.
  void wait_unblocked(TaskNode* task, std::unique_lock<std::mutex>& lock);
  /// Called (with the lock held) before a task blocks mid-body: if no idle
  /// worker remains, spawns a compensating worker so ready tasks always
  /// have an empty-stack executor.  Tasks are never executed inline on a
  /// blocked task's stack — inlining lets a helped task block on a task
  /// buried beneath it on the same stack, a deadlock no wakeup can fix.
  void ensure_spare_worker();

  const int workers_requested_;
  const ThrottleConfig throttle_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers: ready task or stop
  std::condition_variable state_cv_;  ///< blocked tasks / throttled creators
  ObjectTable objects_;
  std::unordered_map<ObjectId, std::vector<std::byte>> buffers_;
  Serializer serializer_;
  std::deque<TaskNode*> ready_;
  std::unordered_set<TaskNode*> unblocked_;
  /// Commuting-update exclusivity (Section 4.3 extension): commuters may
  /// execute in any order but their accesses are mutually exclusive.  A
  /// task takes an object's token at its first commute accessor and holds
  /// it until completion.  Tasks taking tokens on several objects must do
  /// so in a consistent global order (as with any lock).
  std::unordered_map<ObjectId, TaskNode*> commute_holder_;
  std::unordered_map<TaskNode*, std::vector<ObjectId>> commute_held_;
  std::vector<std::thread> workers_;
  /// Worker threads + the root thread, once run() starts (grows when
  /// compensating workers are spawned).
  int total_threads_ = 0;
  /// Workers currently idle in worker_loop (empty stack, ready to execute).
  int idle_workers_ = 0;
  /// Threads currently blocked in any engine wait (idle workers, throttle
  /// sleeps, dependency waits).  When every thread would be asleep with
  /// nothing ready, a throttled creator is the only progress source and
  /// must give up throttling instead of sleeping (see spawn()).  Nested
  /// helping makes per-*task* counts wrong — a helped task sleeping on the
  /// root's stack also parks the root — so this counts *threads*.
  int sleeping_threads_ = 0;
  bool stop_ = false;
  bool ran_ = false;
  std::chrono::steady_clock::time_point trace_epoch_{};
  /// First exception that escaped a task body (or a spec violation raised
  /// inside one); rethrown from run() after the pool shuts down.
  std::exception_ptr first_error_;
};

}  // namespace jade
