// ThreadEngine — Jade on a shared-memory multiprocessor.
//
// Models the paper's SGI 4D/240S / DASH implementation: the hardware (here,
// the host's cache-coherent memory) provides the shared address space, so
// the runtime "only needs to synchronize the computation" (Section 1).
//
// The execution path is decomposed so the one global mutex guards only what
// is global by contract — the Serializer, which is single-threaded by
// design — and nothing else (docs/PERFORMANCE.md spells out the hierarchy):
//
//   * Ready-task dispatch runs through per-thread Chase–Lev work-stealing
//     deques (support/work_steal_deque.hpp).  A task enabled by thread T is
//     pushed to T's own deque and executed LIFO for locality; idle threads
//     steal FIFO.  Wakeups are targeted — a producer unparks exactly one
//     idle thread (support/parker.hpp) instead of broadcasting.
//   * Object bytes live in a sharded BufferTable (engine/buffer_table.hpp)
//     with stable per-object allocations, so data access (acquire_bytes)
//     and host I/O (put_bytes/get_bytes) never contend with scheduling.
//   * charge() is two plain writes: the running task is owned by its
//     executing thread, and the global total folds per-thread cells into
//     RuntimeStats at the end of run().
//
// Throttling (Section 3.3): when too many tasks are outstanding, the
// creating task suspends until the backlog drains — with the paper's
// deadlock escape (when every other thread is asleep with nothing ready,
// the creator gives up throttling, since only it can make progress).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "jade/engine/buffer_table.hpp"
#include "jade/engine/engine.hpp"
#include "jade/model/planner.hpp"
#include "jade/sched/governor.hpp"
#include "jade/sched/policies.hpp"
#include "jade/support/parker.hpp"
#include "jade/support/work_steal_deque.hpp"

namespace jade {

class ThreadEngine : public Engine, private SerializerListener {
 public:
  ThreadEngine(int workers, ThrottleConfig throttle, bool enforce_hierarchy,
               SpecConfig spec = {},
               std::shared_ptr<const model::Planner> planner = nullptr);
  ~ThreadEngine() override;

  ObjectId allocate(TypeDescriptor type, std::string name,
                    MachineId home) override;
  void put_bytes(ObjectId obj, std::span<const std::byte> data) override;
  std::vector<std::byte> get_bytes(ObjectId obj) override;
  const ObjectInfo& object_info(ObjectId obj) const override;
  void set_object_tenant(ObjectId obj, TenantId tenant) override;
  void release_object(ObjectId obj) override;

  void run(std::function<void(TaskContext&)> root_body) override;

  void spawn(TaskNode* parent, const std::vector<AccessRequest>& requests,
             TaskContext::BodyFn body, std::string name, MachineId placement,
             TenantCtl* tenant) override;
  void with_cont(TaskNode* task,
                 const std::vector<AccessRequest>& requests) override;
  std::byte* acquire_bytes(TaskNode* task, ObjectId obj,
                           std::uint8_t mode) override;
  void charge(TaskNode* task, double units) override;
  int machine_count() const override { return workers_requested_; }
  /// The worker the task is (or was last) executing on; 0 for the root task
  /// and for tasks not yet picked up.  Compensating workers report the id of
  /// the worker slot they stand in for, keeping the result in
  /// [0, machine_count()).
  MachineId machine_of(TaskNode* task) const override {
    return task->assigned_machine >= 0 ? task->assigned_machine : 0;
  }

  void enable_tracing(const ObsConfig& cfg) override;

  /// Wakes every state_cv_ waiter so it re-evaluates its predicate against
  /// externally changed state (a tenant cancelled by the server while its
  /// creators are parked on the throttle or a commute token).
  void notify_external() override;

 protected:
  /// Wall seconds since tracing was enabled (there is no virtual clock on
  /// real hardware); traces are therefore not run-to-run deterministic.
  SimTime trace_now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         trace_epoch_)
        .count();
  }

 private:
  /// Everything one engine thread owns: its ready deque, its parking spot,
  /// and stat cells only that thread writes (folded into RuntimeStats and
  /// the metrics registry when run() ends).  Slot 0 is the root/drain
  /// thread; 1..workers are the pool; later slots are compensating workers.
  struct ThreadSlot {
    ThreadSlot(int index, MachineId machine) : index(index), machine(machine) {}

    const int index;          ///< dense per-thread index into slots_
    const MachineId machine;  ///< reported machine id, in [0, machine_count)
    WorkStealDeque<TaskNode*> deque;
    Parker parker;

    /// Set (under mu_) around complete_task: the completing thread is about
    /// to call find_task, so the first task its completion enables needs no
    /// wakeup — it will be popped locally.  Without this, every step of a
    /// dependence chain wakes a stealer that migrates the chain, and two
    /// threads ping-pong it with a futex round-trip per task.
    std::uint32_t local_grants = 0;

    /// spec_epoch_ value at this thread's last candidate scan.  idle_park
    /// refuses to park while the global epoch is ahead of it, so a candidate
    /// registered after the scan gets one more look before the thread
    /// sleeps (same register-then-recheck protocol as ready_count_).
    std::uint64_t spec_seen_epoch = 0;

    // Owner-thread-only cells (no sharing until the post-join fold).
    double charged = 0;
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    std::uint64_t parks = 0;
    std::size_t max_queue_depth = 0;
  };

  /// RAII binding of the calling thread to (engine, slot): serializer
  /// callbacks and charge() route through these thread-locals.  Saved and
  /// restored so a task body that runs a nested Runtime behaves.
  class TlsBinding {
   public:
    TlsBinding(ThreadEngine* engine, ThreadSlot* slot);
    ~TlsBinding();

   private:
    ThreadEngine* prev_engine_;
    ThreadSlot* prev_slot_;
  };

  /// One speculative attempt's private state (SchedPolicy::spec).  Created
  /// under mu_ when the speculation starts; the executing thread reads the
  /// shadow buffers lock-free through tls_spec_ (nothing else touches them
  /// until body_done, which is only set under mu_); destroyed under mu_ at
  /// commit/abort.
  struct SpecAttempt {
    TaskNode* task = nullptr;
    bool body_done = false;
    bool failed = false;
    double charge_base = 0;
    /// Snapshot-isolated staging copies of the declared immediate objects.
    std::vector<std::pair<ObjectId, std::vector<std::byte>>> shadows;
    std::vector<ObjectId> dirty;  ///< shadows written by the body, in order
    /// Serializer write epoch per snapshotted object at capture time;
    /// unchanged epochs at decision time are the commit proof.
    std::vector<std::pair<ObjectId, std::uint64_t>> epochs;
    /// Objects contested by a not-yet-exercised predecessor writer (the
    /// bet); they charge the governor's conflict history on a data abort.
    std::vector<ObjectId> contested;
  };

  void on_task_ready(TaskNode* task) override;
  void on_task_unblocked(TaskNode* task) override;

  void worker_loop(ThreadSlot* slot);
  /// Runs one ready task to completion on `slot`'s thread.  Takes mu_ only
  /// around the serializer transitions; the body runs with no lock held.
  void execute(TaskNode* task, ThreadSlot* slot);
  /// Pops the thread's own deque, then tries to steal; nullptr when no task
  /// could be obtained (the caller decides whether to park).
  TaskNode* find_task(ThreadSlot* self);
  /// Bounded yield-spin between an empty find_task and parking: returns
  /// true as soon as work appears (or stop), false when the budget runs out
  /// and the caller should park.  While spinning the thread is not idle, so
  /// producers skip the futex wake — in a producer-limited phase this
  /// replaces a park/unpark round-trip per task with a scheduler yield,
  /// which also hands the core back to the producer on small machines.
  bool spin_for_work(ThreadSlot* slot);
  /// Parks `slot` until a producer wakes it.  Registers in the idle set
  /// first and re-checks for work (and `extra_wake`, when given) after
  /// registering, so a concurrent producer cannot be missed.
  void idle_park(ThreadSlot* slot, bool (ThreadEngine::*extra_wake)());
  /// Removes `slot` from the idle set; false when a producer already
  /// claimed it (an unpark is in flight and must be consumed).
  bool idle_cancel(ThreadSlot* slot);
  /// Unparks one idle thread, if any (the targeted-wake fast path).
  void wake_one();
  /// Unparks every idle thread (stop, first error, graph drained).
  void unpark_all();
  /// Rare-edge notifier: when every engine thread is now asleep with
  /// nothing ready, blocked-in-body threads (throttle waiters) must
  /// re-evaluate their give-up predicate.
  void notify_if_all_asleep();
  /// Same check, for callers already holding mu_.
  void maybe_notify_all_asleep_locked();
  /// Drain-thread wake condition, checked under mu_ after idle
  /// registration: the run is over or failing.
  bool drain_should_exit();

  /// Blocks the calling task until on_task_unblocked fires for it; called
  /// with mu_ held.
  void wait_unblocked(TaskNode* task, std::unique_lock<std::mutex>& lock);
  /// Called (with mu_ held) before a task blocks mid-body: if no idle
  /// thread remains, spawns a compensating worker so ready tasks always
  /// have an empty-stack executor.  Tasks are never executed inline on a
  /// blocked task's stack — inlining lets a helped task block on a task
  /// buried beneath it on the same stack, a deadlock no wakeup can fix.
  void ensure_spare_worker();
  /// Records the first failure, wakes every waiter/parked thread.
  void record_error(std::exception_ptr err);
  /// Returns every commute token `task` still holds (mu_ held).  Called at
  /// task completion — including the root's, which never passes through
  /// execute() but may have taken tokens in its body.
  void release_commute_tokens_locked(TaskNode* task);

  // --- speculation (run-ahead when a worker finds no ready task) -----------

  /// Picks an eligible pending candidate and runs it speculatively on this
  /// thread; false when speculation is off, over budget, or nothing
  /// qualifies (the caller proceeds to spin/park).
  bool try_speculate(ThreadSlot* slot);
  /// Runs the speculative body (no lock held) and, if the serializer enabled
  /// the task meanwhile, decides commit/abort at the body's end.
  void run_speculation(TaskNode* task, SpecAttempt* att, ThreadSlot* slot);
  /// Drains spec_decide_ (tasks that turned kReady while speculating); call
  /// after every serializer-mutating section, with mu_ held.
  void drain_spec_decides_locked(ThreadSlot* slot);
  void decide_speculation_locked(TaskNode* task, ThreadSlot* slot);
  void commit_speculation_locked(TaskNode* task, SpecAttempt& att,
                                 ThreadSlot* slot);
  void abort_speculation_locked(TaskNode* task, SpecAttempt& att,
                                bool charge_history);
  /// acquire_bytes for a speculatively executing body: translate into the
  /// attempt's shadow buffers, lock-free (the attempt is pinned to this
  /// thread via tls_spec_).
  std::byte* spec_acquire_bytes(TaskNode* task, ObjectId obj,
                                std::uint8_t mode);

  /// Registers the next ThreadSlot (single-threaded at run() start, under
  /// mu_ afterwards) and publishes it to stealing threads.
  ThreadSlot* add_slot(MachineId machine);

  static constexpr int kMaxSlots = 4097;  ///< 4096 workers + the root thread

  /// The calling thread's binding, installed by TlsBinding.  Engine-tagged
  /// so a nested Runtime inside a task body cannot misroute callbacks.
  static thread_local ThreadEngine* tls_engine_;
  static thread_local ThreadSlot* tls_slot_;
  /// The speculation the calling thread is currently executing, if any
  /// (installed around the body in run_speculation).
  static thread_local SpecAttempt* tls_spec_;

  const int workers_requested_;
  /// Policy seam (docs/MODEL.md): work stealing places tasks implicitly
  /// (the claiming worker is the placement), so the planner's role here is
  /// the policy knobs it planned up front plus the structured claim
  /// explanation emitted into traces.  Default: the shared HeuristicPlanner.
  std::shared_ptr<const model::Planner> planner_;
  /// Water-mark predicates + suspension/give-up counters (shared
  /// implementation with SimEngine); counters fold into stats_ at the end
  /// of run().  Mutated only under mu_.
  ThrottleGate throttle_;

  // --- serializer domain: guarded by mu_ -----------------------------------
  // mu_ serializes all Serializer calls (single-threaded by contract) plus
  // the blocked-task coordination that is driven by serializer callbacks:
  // unblock delivery, commute-token ownership, throttle waits, first_error_.
  std::mutex mu_;
  std::condition_variable state_cv_;  ///< blocked tasks / throttled creators
  Serializer serializer_;
  std::unordered_set<TaskNode*> unblocked_;
  /// Speculation budget + per-object conflict-history throttle (shared
  /// implementation with SimEngine, sched/governor.hpp).  Mutated under mu_.
  SpeculationGovernor spec_gov_;
  /// Pending tasks registered at spawn as possible speculation targets.
  std::deque<TaskNode*> spec_candidates_;
  /// Bumped (under mu_) when a candidate is registered.  Candidates do not
  /// raise ready_count_, so without this a thread that found no work before
  /// the registration would park and never learn about the bet — the
  /// spawner may be deep inside a long task body and in the worst case
  /// every other thread sleeps through the whole speculation window.
  std::atomic<std::uint64_t> spec_epoch_{0};
  /// Speculating tasks the serializer enabled (diverted by on_task_ready);
  /// decided by drain_spec_decides_locked.
  std::deque<TaskNode*> spec_decide_;
  std::unordered_map<TaskNode*, std::unique_ptr<SpecAttempt>> spec_attempts_;
  /// Commuting-update exclusivity (Section 4.3 extension): commuters may
  /// execute in any order but their accesses are mutually exclusive.  A
  /// task takes an object's token at its first commute accessor and holds
  /// it until completion.  Tasks taking tokens on several objects must do
  /// so in a consistent global order (as with any lock).  Shared
  /// implementation with SimEngine (sched/governor.hpp); here waiters sleep
  /// on state_cv_ and race for a freed token, so the table's FIFO wait
  /// queues stay unused.
  CommuteTokenTable commute_;
  /// Threads currently waiting on state_cv_; notifications are skipped
  /// entirely when zero, so unblocked hot paths never broadcast.
  int cv_waiters_ = 0;
  /// Creators currently suspended in the throttle loop (subset of
  /// cv_waiters_); task_started only notifies when one exists.
  int throttle_waiters_ = 0;
  std::vector<std::thread> workers_;
  /// True once run() has executed; the next run() resets the scheduling
  /// state for a fresh graph (objects and buffers persist).
  bool ran_ = false;
  /// First exception that escaped a task body (or a spec violation raised
  /// inside one); rethrown from run() after the pool shuts down.
  std::exception_ptr first_error_;

  // --- object domain: independent of scheduling ----------------------------
  mutable std::mutex objects_mu_;  ///< ObjectTable structure only
  ObjectTable objects_;
  BufferTable buffers_;  ///< internally sharded

  // --- dispatch domain: lock-free deques + a small idle-set mutex ----------
  /// Per-thread slots, created at run() start and by ensure_spare_worker.
  /// The array is pre-sized so slot publication is a single release store
  /// of slot_count_; stealing threads scan [0, slot_count_).
  std::vector<std::unique_ptr<ThreadSlot>> slots_;
  std::atomic<int> slot_count_{0};
  /// Ready tasks across all deques.  The single global fact the dispatch
  /// path maintains; parking and the throttle give-up predicate need it.
  std::atomic<std::int64_t> ready_count_{0};
  /// Idle (parked or about-to-park) threads, popped by producers for
  /// targeted wakes.  idle_mu_ is a leaf lock: acquired with or without
  /// mu_, never the other way around.
  std::mutex idle_mu_;
  std::vector<ThreadSlot*> idle_stack_;
  std::atomic<int> idle_count_{0};
  /// Threads asleep in any engine wait (parked idle, throttle sleeps,
  /// dependency waits).  When every thread would be asleep with nothing
  /// ready, a throttled creator is the only progress source and must give
  /// up throttling instead of sleeping (see spawn()).  Nested helping
  /// makes per-*task* counts wrong — a helped task sleeping on the root's
  /// stack also parks the root — so this counts *threads*.
  std::atomic<int> sleeping_threads_{0};
  /// Worker threads + the root thread, once run() starts (grows when
  /// compensating workers are spawned).
  std::atomic<int> total_threads_{0};
  std::atomic<bool> stop_{false};

  std::chrono::steady_clock::time_point trace_epoch_{};
};

}  // namespace jade
