#include "jade/engine/serial_engine.hpp"

#include "jade/support/error.hpp"

namespace jade {

SerialEngine::SerialEngine(bool enforce_hierarchy)
    : serializer_(this, enforce_hierarchy) {}

ObjectId SerialEngine::allocate(TypeDescriptor type, std::string name,
                                MachineId /*home*/) {
  const ObjectId id = objects_.add(std::move(type), std::move(name));
  buffers_[id].assign(objects_.info(id).byte_size(), std::byte{0});
  return id;
}

void SerialEngine::put_bytes(ObjectId obj, std::span<const std::byte> data) {
  auto& buf = buffers_.at(obj);
  JADE_ASSERT(data.size() == buf.size());
  std::copy(data.begin(), data.end(), buf.begin());
}

std::vector<std::byte> SerialEngine::get_bytes(ObjectId obj) {
  return buffers_.at(obj);
}

const ObjectInfo& SerialEngine::object_info(ObjectId obj) const {
  return objects_.info(obj);
}

void SerialEngine::run(std::function<void(TaskContext&)> root_body) {
  JADE_ASSERT_MSG(!ran_, "a Runtime supports a single run()");
  ran_ = true;
  TaskNode* root = serializer_.root();
  if (tracer_.enabled()) {
    tracer_.instant(obs::Subsystem::kEngine, "task.created", root->id(), 0, 0,
                    root->name());
    tracer_.span_begin(obs::Subsystem::kEngine, "task", root->id(), 0,
                       root->name());
  }
  TaskContext ctx(this, root);
  root_body(ctx);
  serializer_.complete_task(root);
  tracer_.span_end(obs::Subsystem::kEngine, "task", root->id(), 0,
                   root->charged_work);
  JADE_ASSERT_MSG(serializer_.outstanding() == 0,
                  "serial run left outstanding tasks");
  publish_runtime_stats();
}

void SerialEngine::spawn(TaskNode* parent,
                         const std::vector<AccessRequest>& requests,
                         TaskContext::BodyFn body, std::string name,
                         MachineId /*placement*/) {
  TaskNode* task = serializer_.create_task(parent, requests, std::move(body),
                                           std::move(name));
  ++stats_.tasks_created;
  if (tracer_.enabled())
    tracer_.instant(obs::Subsystem::kEngine, "task.created", task->id(), 0, 0,
                    task->name());
  // Serial invariant: every earlier task has already completed, so nothing
  // can be blocking this one.
  JADE_ASSERT_MSG(task->state() == TaskState::kReady,
                  "serial execution created a non-ready task");
  execute(task);
}

void SerialEngine::execute(TaskNode* task) {
  serializer_.task_started(task);
  if (tracer_.enabled())
    tracer_.span_begin(obs::Subsystem::kEngine, "task", task->id(), 0,
                       task->name());
  TaskContext ctx(this, task);
  task->body(ctx);
  task->body = nullptr;  // release captured state promptly
  serializer_.complete_task(task);
  tracer_.span_end(obs::Subsystem::kEngine, "task", task->id(), 0,
                   task->charged_work);
}

void SerialEngine::with_cont(TaskNode* task,
                             const std::vector<AccessRequest>& requests) {
  const bool must_block = serializer_.update_spec(task, requests);
  JADE_ASSERT_MSG(!must_block, "serial execution cannot block in with-cont");
}

std::byte* SerialEngine::acquire_bytes(TaskNode* task, ObjectId obj,
                                       std::uint8_t mode) {
  const bool must_block = serializer_.acquire(task, obj, mode);
  JADE_ASSERT_MSG(!must_block, "serial execution cannot block in acquire");
  return buffers_.at(obj).data();
}

void SerialEngine::charge(TaskNode* task, double units) {
  task->charged_work += units;
  stats_.total_charged_work += units;
}

void SerialEngine::on_task_unblocked(TaskNode* /*task*/) {
  throw InternalError("serial engine received an unblock notification");
}

}  // namespace jade
