#include "jade/engine/serial_engine.hpp"

#include "jade/core/tenant.hpp"
#include "jade/support/error.hpp"

namespace jade {

SerialEngine::SerialEngine(bool enforce_hierarchy)
    : serializer_(this, enforce_hierarchy) {
  serializer_.set_tenant_oracle(
      [this](ObjectId obj) { return objects_.info(obj).tenant; });
}

ObjectId SerialEngine::allocate(TypeDescriptor type, std::string name,
                                MachineId /*home*/) {
  const ObjectId id = objects_.add(std::move(type), std::move(name));
  buffers_[id].assign(objects_.info(id).byte_size(), std::byte{0});
  return id;
}

void SerialEngine::put_bytes(ObjectId obj, std::span<const std::byte> data) {
  auto& buf = buffers_.at(obj);
  JADE_ASSERT(data.size() == buf.size());
  std::copy(data.begin(), data.end(), buf.begin());
}

std::vector<std::byte> SerialEngine::get_bytes(ObjectId obj) {
  return buffers_.at(obj);
}

const ObjectInfo& SerialEngine::object_info(ObjectId obj) const {
  return objects_.info(obj);
}

void SerialEngine::set_object_tenant(ObjectId obj, TenantId tenant) {
  objects_.set_tenant(obj, tenant);
}

void SerialEngine::release_object(ObjectId obj) {
  auto it = buffers_.find(obj);
  if (it != buffers_.end()) buffers_.erase(it);
}

void SerialEngine::run(std::function<void(TaskContext&)> root_body) {
  // Reset for sequential runs on one reused engine: a fresh graph, fresh
  // stats, persistent objects/buffers.  Identical state on the first run,
  // so single-run behavior (and traces) are unchanged.
  serializer_.reset();
  stats_ = RuntimeStats{};
  TaskNode* root = serializer_.root();
  if (tracer_.enabled()) {
    tracer_.instant(obs::Subsystem::kEngine, "task.created", root->id(), 0, 0,
                    root->name());
    tracer_.span_begin(obs::Subsystem::kEngine, "task", root->id(), 0,
                       root->name());
  }
  TaskContext ctx(this, root);
  root_body(ctx);
  serializer_.complete_task(root);
  tracer_.span_end(obs::Subsystem::kEngine, "task", root->id(), 0,
                   root->charged_work);
  JADE_ASSERT_MSG(serializer_.outstanding() == 0,
                  "serial run left outstanding tasks");
  publish_runtime_stats();
}

void SerialEngine::spawn(TaskNode* parent,
                         const std::vector<AccessRequest>& requests,
                         TaskContext::BodyFn body, std::string name,
                         MachineId /*placement*/, TenantCtl* tenant) {
  TaskNode* task = serializer_.create_task(parent, requests, std::move(body),
                                           std::move(name), tenant);
  ++stats_.tasks_created;
  if (tracer_.enabled())
    tracer_.instant(obs::Subsystem::kEngine, "task.created", task->id(), 0, 0,
                    task->name());
  // Serial invariant: every earlier task has already completed, so nothing
  // can be blocking this one.
  JADE_ASSERT_MSG(task->state() == TaskState::kReady,
                  "serial execution created a non-ready task");
  execute(task);
}

void SerialEngine::execute(TaskNode* task) {
  serializer_.task_started(task);
  if (tracer_.enabled())
    tracer_.span_begin(obs::Subsystem::kEngine, "task", task->id(), 0,
                       task->name());
  TaskContext ctx(this, task);
  TenantCtl* ctl = task->tenant();
  if (ctl != nullptr && ctl->cancelled.load(std::memory_order_relaxed)) {
    // Forced teardown: skip the body, complete normally.
    ctl->tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
  } else if (ctl != nullptr) {
    try {
      task->body(ctx);
    } catch (const TenantUnwind&) {
      ctl->tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      // Per-tenant failure containment: record, cancel, keep serving.
      ctl->record_failure(std::current_exception());
      ctl->cancelled.store(true, std::memory_order_relaxed);
    }
  } else {
    task->body(ctx);
  }
  task->body = nullptr;  // release captured state promptly
  serializer_.complete_task(task);
  tracer_.span_end(obs::Subsystem::kEngine, "task", task->id(), 0,
                   task->charged_work);
}

void SerialEngine::with_cont(TaskNode* task,
                             const std::vector<AccessRequest>& requests) {
  const bool must_block = serializer_.update_spec(task, requests);
  JADE_ASSERT_MSG(!must_block, "serial execution cannot block in with-cont");
}

std::byte* SerialEngine::acquire_bytes(TaskNode* task, ObjectId obj,
                                       std::uint8_t mode) {
  const bool must_block = serializer_.acquire(task, obj, mode);
  JADE_ASSERT_MSG(!must_block, "serial execution cannot block in acquire");
  return buffers_.at(obj).data();
}

void SerialEngine::charge(TaskNode* task, double units) {
  task->charged_work += units;
  stats_.total_charged_work += units;
}

void SerialEngine::on_task_unblocked(TaskNode* /*task*/) {
  throw InternalError("serial engine received an unblock notification");
}

}  // namespace jade
