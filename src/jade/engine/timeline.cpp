#include "jade/engine/timeline.hpp"

#include <algorithm>
#include <sstream>

#include "jade/support/error.hpp"

namespace jade {

std::string render_gantt(const std::vector<TaskTimeline>& timeline,
                         int machines, SimTime end, int width) {
  JADE_ASSERT(machines >= 1 && width >= 8);
  if (end <= 0) end = 1;
  std::vector<std::string> rows(static_cast<std::size_t>(machines),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  auto col = [&](SimTime t) {
    const auto c = static_cast<int>(t / end * width);
    return std::clamp(c, 0, width - 1);
  };
  for (const TaskTimeline& t : timeline) {
    if (t.machine < 0 || t.machine >= machines) continue;
    std::string& row = rows[static_cast<std::size_t>(t.machine)];
    for (int c = col(t.dispatched); c <= col(t.body_start); ++c)
      if (row[static_cast<std::size_t>(c)] == ' ')
        row[static_cast<std::size_t>(c)] = '.';
    for (int c = col(t.body_start); c <= col(t.completed); ++c)
      row[static_cast<std::size_t>(c)] = '#';
  }
  std::ostringstream os;
  os << "time 0 .. " << end << " s   ('#' executing, '.' fetching)\n";
  for (int m = 0; m < machines; ++m)
    os << "m" << m << " |" << rows[static_cast<std::size_t>(m)] << "|\n";
  return os.str();
}

std::vector<double> machine_utilization(
    const std::vector<TaskTimeline>& timeline, int machines, SimTime end) {
  std::vector<double> busy(static_cast<std::size_t>(machines), 0.0);
  for (const TaskTimeline& t : timeline)
    if (t.machine >= 0 && t.machine < machines)
      busy[static_cast<std::size_t>(t.machine)] += t.execution();
  if (end > 0)
    for (double& b : busy) b /= end;
  return busy;
}

}  // namespace jade
