#include "jade/engine/sim_engine.hpp"

#include <algorithm>

#include "jade/core/tenant.hpp"
#include "jade/net/faulty.hpp"
#include "jade/support/error.hpp"
#include "jade/support/log.hpp"

namespace jade {

namespace {
constexpr std::uint8_t kExclusiveBits = access::kWrite | access::kCommute;
}  // namespace

SimEngine::SimTask& SimEngine::st(TaskNode* task) {
  JADE_ASSERT_MSG(task->engine_data != nullptr,
                  "task has no simulation state");
  return *static_cast<SimTask*>(task->engine_data);
}

// --- objects ---------------------------------------------------------------

ObjectId SimEngine::allocate(TypeDescriptor type, std::string name,
                             MachineId home) {
  const ObjectId id = objects_.add(std::move(type), std::move(name));
  MachineId home_m;
  if (home >= 0) {
    JADE_ASSERT_MSG(home < machine_count(), "placement machine out of range");
    home_m = home;
  } else {
    home_m = next_home_;
    next_home_ = (next_home_ + 1) % machine_count();
  }
  directory_.add_object(objects_.info(id), home_m);
  return id;
}

void SimEngine::put_bytes(ObjectId obj, std::span<const std::byte> data) {
  JADE_ASSERT(data.size() == objects_.info(obj).byte_size());
  std::copy(data.begin(), data.end(), directory_.data(obj));
  // A host write starts a new data version (invalidates conversion cache
  // entries and any stale-replica reuse from a previous state).
  directory_.mark_dirty(obj);
}

std::vector<std::byte> SimEngine::get_bytes(ObjectId obj) {
  auto view = directory_.data_view(obj);
  return {view.begin(), view.end()};
}

const ObjectInfo& SimEngine::object_info(ObjectId obj) const {
  return objects_.info(obj);
}

void SimEngine::set_object_tenant(ObjectId obj, TenantId tenant) {
  objects_.set_tenant(obj, tenant);
}

// --- notifications ---------------------------------------------------------

void SimEngine::on_task_ready(TaskNode* task) {
  if (task->speculating()) {
    // The serializer just enabled a task that is running speculatively:
    // this is its commit point, not a dispatch.  Queued rather than decided
    // inline — listener callbacks must not re-enter the serializer.
    spec_decide_.push_back(task);
    return;
  }
  ready_.push_back(task);
}

void SimEngine::on_task_unblocked(TaskNode* task) {
  to_unblock_.push_back(task);
}

void SimEngine::post_serializer() {
  // Commit checks first, in serial enable order: a commit retires the
  // task's records, which can enable (and commit) further speculations.
  while (!spec_decide_.empty()) {
    TaskNode* task = spec_decide_.front();
    spec_decide_.pop_front();
    decide_speculation(task);
  }
  try_dispatch();
  while (!to_unblock_.empty()) {
    std::vector<TaskNode*> batch;
    batch.swap(to_unblock_);
    for (TaskNode* t : batch) deliver_unblock(t);
  }
}

void SimEngine::deliver_unblock(TaskNode* task) {
  SimTask& t = st(task);
  JADE_ASSERT_MSG(t.wait == Wait::kUnblock,
                  "unblock delivered to a task not waiting on dependencies");
  sim_.resume(t.process);
}

// --- dispatch --------------------------------------------------------------

void SimEngine::try_dispatch() {
  // Task-driven dispatch in FIFO order: each ready task picks its best
  // machine — most declared bytes already resident (locality), then the
  // creating machine, then the least-loaded (pure balancing).  On
  // shared-memory platforms data movement is free, so locality is moot and
  // only load balancing applies.
  const bool locality = sched_.locality && !cluster_.shared_memory();
  bool progress = true;
  while (progress && !ready_.empty()) {
    progress = false;
    std::vector<int> free(machines_.size());
    int total_free = 0;
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      free[m] = machines_[m].free_contexts;
      total_free += free[m];
    }
    if (total_free == 0) break;  // nothing can be placed; skip the scan
    // Bounded scheduler window: only the oldest kWindow ready tasks are
    // considered, keeping dispatch cost independent of backlog size (the
    // backlog can be huge when a creator floods tasks, Figure 7(e)).
    constexpr std::size_t kWindow = 64;
    const std::size_t window = std::min(ready_.size(), kWindow);
    for (std::size_t i = 0; i < window; ++i) {
      TaskNode* task = ready_[i];
      MachineId m;
      if (task->placement >= 0) {
        // Explicit placement (Section 4.5) overrides the heuristics.  A task
        // pinned to a crashed machine can never run anywhere; surface that
        // rather than stalling the simulation.
        if (ft_enabled() && !ft_->injector().machine_up(task->placement))
          throw UnrecoverableError(
              "task '" + task->name() + "' is pinned to machine " +
              std::to_string(task->placement) + ", which has crashed");
        m = free[static_cast<std::size_t>(task->placement)] > 0
                ? task->placement
                : -1;
      } else if (tracer_.enabled()) {
        // Tracing: also capture why — every candidate machine with its
        // locality score, so a placement can be audited from the trace.
        PlacementExplain explain;
        m = planner_->place_task(
            directory_,
            {st(task).objects, free, locality, st(task).creator_machine},
            &explain);
        if (m >= 0) {
          tracer_.instant(obs::Subsystem::kSched, "sched.place", task->id(),
                          m, static_cast<double>(explain.candidates.size()),
                          model::format_placement_explain(explain));
        }
      } else {
        m = planner_->place_task(
            directory_,
            {st(task).objects, free, locality, st(task).creator_machine});
      }
      if (m < 0) continue;
      ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
      assign(task, m);
      progress = true;
      break;  // ready_ and free context counts changed; restart the scan
    }
  }
  // Speculation rides on leftovers: only after every ready task that could
  // be placed has been placed do idle contexts take speculative work.
  try_spec_dispatch();
}

void SimEngine::assign(TaskNode* task, MachineId m) {
  Machine& mach = machines_[m];
  JADE_ASSERT(mach.free_contexts > 0);
  --mach.free_contexts;
  SimTask& t = st(task);
  t.machine = m;
  t.dispatched = sim_.now();
  task->assigned_machine = m;
  if (m != t.creator_machine) ++stats_.tasks_migrated;
  queue_wait_hist_->observe(sim_.now() - t.created);
  tracer_.instant(obs::Subsystem::kEngine, "task.dispatched", task->id(), m);
  if (tracer_.enabled())
    tracer_.span_begin(obs::Subsystem::kEngine, "task", task->id(), m,
                       task->name());
  JADE_TRACE("t=" << sim_.now() << " dispatch " << task->name()
                  << " -> machine " << m << " (" << mach.desc.name << ")");
  t.process = sim_.spawn(task->name(), [this, task] { task_process(task); });
}

// --- task lifecycle --------------------------------------------------------

void SimEngine::task_process(TaskNode* task) {
  SimTask& t = st(task);
  serializer_.task_started(task);
  ++active_tasks_;
  t.attempt.charge_base = task->charged_work;

  // Prefetch: move/copy every object named by an immediate right to this
  // machine; all transfers go out at once so their latencies overlap
  // (and overlap other tasks' execution — latency hiding, Figure 7(f)).
  // Deferred read declarations ride along as non-blocking hints: their
  // payloads are resident (or in flight) before the task's first with-cont,
  // but task start does not wait for them.
  if (!cluster_.shared_memory()) {
    std::vector<FetchItem> items;
    for (const DeclRecord* rec : task->ordered_records()) {
      if (rec->immediate != 0) {
        items.push_back(
            {rec->obj, (rec->immediate & kExclusiveBits) != 0, true});
      } else if (sched_.comm.prefetch_deferred &&
                 (rec->deferred & access::kRead) &&
                 (rec->deferred & kExclusiveBits) == 0) {
        items.push_back({rec->obj, false, false});
      }
    }
    park_until_fetched(t, fetch_objects(t, std::move(items)));
  }

  occupy_runtime(t, cluster_.task_dispatch_overhead);
  t.body_start = sim_.now();
  tracer_.instant(obs::Subsystem::kEngine, "task.body_start", task->id(),
                  t.machine);

  TaskContext ctx(this, task);
  TenantCtl* ctl = task->tenant();
  if (ctl != nullptr && ctl->cancelled.load(std::memory_order_relaxed)) {
    // Forced teardown: skip the body, complete normally so the serializer
    // unwinds and successors of this task unblock.
    ctl->tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
  } else if (ctl != nullptr) {
    try {
      task->body(ctx);
    } catch (const TenantUnwind&) {
      ctl->tasks_cancelled.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      // A sim process unwound by Simulation::abort (ft kill / teardown)
      // must keep unwinding — only genuine body failures are contained.
      if (sim_.tearing_down() ||
          (sim_.current() != nullptr && sim_.current()->abandoned())) {
        throw;
      }
      // Per-tenant failure containment: record, cancel, keep simulating.
      ctl->record_failure(std::current_exception());
      ctl->cancelled.store(true, std::memory_order_relaxed);
    }
  } else {
    task->body(ctx);
  }

  finish_task(task);
}

void SimEngine::finish_task(TaskNode* task) {
  SimTask& t = st(task);
  JADE_TRACE("t=" << sim_.now() << " complete " << task->name()
                  << " on machine " << t.machine);
  if (sched_.record_timeline) {
    timeline_.push_back(TaskTimeline{task->id(), task->name(), t.machine,
                                     t.created, t.dispatched, t.body_start,
                                     sim_.now(), task->charged_work});
  }
  exec_hist_->observe(sim_.now() - t.body_start);
  tracer_.span_end(obs::Subsystem::kEngine, "task", task->id(), t.machine,
                   task->charged_work);
  task->body = nullptr;  // only now is a re-execution impossible
  t.attempt.snapshots.clear();
  if (ft_enabled()) {
    // Stray fault-layer events (a final heartbeat round, a scheduled crash
    // that no longer matters) may advance the clock after the program is
    // done; the program's finish time is the last task completion.
    stats_.finish_time = sim_.now();
    if (task->is_root()) root_done_ = true;
  }
  --active_tasks_;
  serializer_.complete_task(task);
  post_serializer();
  // Hand every held commute token on, in acquisition order.
  const std::vector<ObjectId> held = commute_.held(task);
  for (ObjectId obj : held) {
    TaskNode* next = nullptr;
    commute_.release(obj, task, &next);
    if (next != nullptr) sim_.resume(st(next).process);
  }
  release_context(t);
  maybe_release_throttled();
}

void SimEngine::occupy_cpu(SimTask& t, SimTime seconds) {
  if (seconds <= 0) return;
  Machine& m = machines_[t.machine];
  const SimTime start = std::max(sim_.now(), m.cpu_free_until);
  const SimTime end = start + seconds;
  m.cpu_free_until = end;
  m.busy_seconds += seconds;
  t.wait = Wait::kCpu;
  sim_.resume_at(sim_.current(), end);
  sim_.park();
  t.wait = Wait::kNone;
}

void SimEngine::occupy_runtime(SimTask& t, SimTime seconds) {
  if (seconds <= 0) return;
  Machine& m = machines_[t.machine];
  const SimTime start = std::max(sim_.now(), m.runtime_free_until);
  const SimTime end = start + seconds;
  m.runtime_free_until = end;
  t.wait = Wait::kCpu;
  sim_.resume_at(sim_.current(), end);
  sim_.park();
  t.wait = Wait::kNone;
}

void SimEngine::release_context(SimTask& t) {
  Machine& m = machines_[t.machine];
  if (ft_enabled() && !ft_->injector().machine_up(t.machine)) {
    // Dead machine: a slot may still pass between resident tasks that ride
    // out the crash, but it never re-enters the free pool (the dispatcher
    // must not place new work here).
    if (!m.context_waiters.empty()) {
      TaskNode* next = m.context_waiters.front();
      m.context_waiters.pop_front();
      sim_.resume(st(next).process);
    }
    return;
  }
  if (!m.context_waiters.empty()) {
    // The slot passes directly to a task re-entering after a block.
    TaskNode* next = m.context_waiters.front();
    m.context_waiters.pop_front();
    sim_.resume(st(next).process);
  } else {
    ++m.free_contexts;
    try_dispatch();
  }
}

void SimEngine::reacquire_context(SimTask& t) {
  Machine& m = machines_[t.machine];
  if (ft_enabled() && !ft_->injector().machine_up(t.machine)) {
    // A non-restartable task re-entering on its crashed machine: it must
    // still run to completion (its spawns already escaped), so it executes
    // on the ghost of the machine without slot bookkeeping.
    return;
  }
  if (m.free_contexts > 0) {
    --m.free_contexts;
    return;
  }
  JADE_TRACE("t=" << sim_.now() << " " << t.node->name()
                  << " waits for a context on machine " << t.machine);
  m.context_waiters.push_back(t.node);
  park_inactive(t, Wait::kContext);
}

void SimEngine::park_inactive(SimTask& t, Wait kind) {
  t.wait = kind;
  --active_tasks_;
  // If this park leaves no runnable task, a suspended creator is the only
  // source of progress and must be released now.
  maybe_release_throttled();
  sim_.park();
  ++active_tasks_;
  t.wait = Wait::kNone;
}

void SimEngine::maybe_release_throttled() {
  if (throttled_.empty()) return;
  if (active_tasks_ == 0) {
    // Nothing else is runnable: a suspended creator is the only source of
    // progress and must run even if its gate (global or tenant) is still
    // up — the deadlock-freedom escape.  One is enough.
    TaskNode* t = throttled_.front();
    throttled_.pop_front();
    sim_.resume(st(t).process);
    return;
  }
  const bool global_clear =
      !throttle_.enabled() || throttle_.backlog_drained(serializer_.backlog());
  if (!global_clear) return;
  // FIFO among the eligible: a creator parked on its tenant's live-task
  // window stays parked until that window drains (or the tenant is
  // cancelled / unlimited — it then parked on the global gate alone).
  for (auto it = throttled_.begin(); it != throttled_.end();) {
    TenantCtl* ctl = (*it)->tenant();
    const bool tenant_clear =
        ctl == nullptr || ctl->cancelled.load(std::memory_order_relaxed) ||
        ctl->quota_hi.load(std::memory_order_relaxed) == 0 ||
        throttle_.tenant_drained(*ctl);
    if (!tenant_clear) {
      ++it;
      continue;
    }
    TaskNode* t = *it;
    it = throttled_.erase(it);
    sim_.resume(st(t).process);
  }
}

// --- TaskContext backend ---------------------------------------------------

void SimEngine::spawn(TaskNode* parent,
                      const std::vector<AccessRequest>& requests,
                      TaskContext::BodyFn body, std::string name,
                      MachineId placement, TenantCtl* tenant) {
  // A speculative body must not create tasks: creation escapes the
  // snapshot-isolated attempt.  Abort the speculation; the normal re-run
  // spawns for real.
  if (parent->speculating()) throw SpeculationUnwind{};
  SimTask& pt = st(parent);
  // A cancelled tenant's creators unwind at the next spawn instead of
  // flooding more work into the backlog; the unwind is caught in
  // task_process, which completes the task normally.
  TenantCtl* pctl = parent->tenant();
  if (pctl != nullptr && pctl->cancelled.load(std::memory_order_relaxed)) {
    throw TenantUnwind{};
  }
  // Spawning makes the parent unkillable *before* it can park below: a
  // replay of a task that already created a child would create it twice.
  pt.attempt.restartable = false;
  // Executing the withonly construct costs the creator time (building the
  // specification, inserting queue records) on the runtime lane.
  occupy_runtime(pt, cluster_.task_create_overhead);

  TaskNode* task =
      serializer_.create_task(parent, requests, std::move(body),
                              std::move(name), tenant);
  task->placement = placement;
  sim_tasks_.emplace_back();
  SimTask& t = sim_tasks_.back();
  t.node = task;
  t.creator_machine = pt.machine;
  t.created = sim_.now();
  for (const AccessRequest& req : requests)
    if (req.add_immediate | req.add_deferred) t.objects.push_back(req.obj);
  task->engine_data = &t;
  ++stats_.tasks_created;
  if (spec_gov_.enabled() && task->state() == TaskState::kPending &&
      task->tenant() == nullptr && task->placement < 0) {
    spec_candidates_.push_back(task);
  }
  if (tracer_.enabled())
    tracer_.instant(obs::Subsystem::kEngine, "task.created", task->id(),
                    pt.machine, 0, task->name());
  post_serializer();

  const bool global_gate = throttle_.should_throttle(serializer_.backlog());
  const bool tenant_gate = pctl != nullptr && throttle_.tenant_gated(*pctl);
  if ((global_gate || tenant_gate) && active_tasks_ > 1) {
    // Excess concurrency: suspend the creating task (Figure 7(e)) until the
    // unstarted backlog drains — globally or, for a quota-bearing tenant,
    // until its own live-task window drains.  Skipped when this creator is
    // the only active task — then it is the sole source of progress.
    throttle_.note_suspension();
    JADE_TRACE("t=" << sim_.now() << " throttle suspends " << parent->name()
                    << " (backlog=" << serializer_.backlog() << ")");
    tracer_.instant(obs::Subsystem::kEngine, "throttle.suspend", parent->id(),
                    pt.machine,
                    static_cast<double>(serializer_.backlog()));
    throttled_.push_back(parent);
    release_context(pt);
    park_inactive(pt, Wait::kThrottle);
    reacquire_context(pt);
    tracer_.instant(obs::Subsystem::kEngine, "throttle.resume", parent->id(),
                    pt.machine,
                    static_cast<double>(serializer_.backlog()));
    if (pctl != nullptr && pctl->cancelled.load(std::memory_order_relaxed)) {
      throw TenantUnwind{};
    }
  }
}

void SimEngine::with_cont(TaskNode* task,
                          const std::vector<AccessRequest>& requests) {
  // A with-cont mutates the serializer's queues; a speculation must not.
  if (task->speculating()) throw SpeculationUnwind{};
  SimTask& t = st(task);
  // A with-cont retires or converts rights — visible to other tasks the
  // moment it executes, and not undoable.  The task rides out crashes.
  t.attempt.restartable = false;
  const bool must_block = serializer_.update_spec(task, requests);
  post_serializer();
  // no_cm hands the exclusivity token to the next waiting commuter now
  // rather than at completion.
  for (const AccessRequest& req : requests) {
    if (!(req.remove & access::kCommute)) continue;
    TaskNode* next = nullptr;
    if (!commute_.release(req.obj, task, &next)) continue;
    if (next != nullptr) sim_.resume(st(next).process);
  }
  if (must_block) {
    // Release the machine slot while waiting: the tasks we wait on may need
    // it (they precede us in the serial order).
    JADE_TRACE("t=" << sim_.now() << " " << task->name()
                    << " blocks in with-cont");
    release_context(t);
    park_inactive(t, Wait::kUnblock);
    reacquire_context(t);
  }
  fetch_for(t, requests);
}

void SimEngine::fetch_for(SimTask& t,
                          const std::vector<AccessRequest>& reqs) {
  if (cluster_.shared_memory()) return;
  std::vector<FetchItem> items;
  for (const AccessRequest& req : reqs) {
    if (req.add_immediate == 0) continue;
    DeclRecord* rec = t.node->find_record(req.obj);
    if (rec == nullptr || rec->immediate == 0) continue;
    items.push_back({req.obj, (rec->immediate & kExclusiveBits) != 0, true});
  }
  park_until_fetched(t, fetch_objects(t, std::move(items)));
}

void SimEngine::park_until_fetched(SimTask& t, SimTime ready_at) {
  if (ready_at <= sim_.now()) return;
  fetch_wait_hist_->observe(ready_at - sim_.now());
  t.wait = Wait::kFetch;
  sim_.resume_at(sim_.current(), ready_at);
  sim_.park();
  t.wait = Wait::kNone;
}

std::byte* SimEngine::acquire_bytes(TaskNode* task, ObjectId obj,
                                    std::uint8_t mode) {
  if (task->speculating()) return spec_acquire_bytes(task, obj, mode);
  SimTask& t = st(task);
  const bool must_block = serializer_.acquire(task, obj, mode);
  if (must_block) {
    JADE_TRACE("t=" << sim_.now() << " " << task->name()
                    << " blocks in acquire of obj " << obj);
    release_context(t);
    park_inactive(t, Wait::kUnblock);
    reacquire_context(t);
  }
  if (mode & access::kCommute) {
    TaskNode* holder = commute_.holder(obj);
    if (holder != nullptr && holder != task) {
      // Another commuter holds the object; queue for the token.  The
      // machine slot is released meanwhile — the holder may be later in the
      // serial order and need it.
      JADE_TRACE("t=" << sim_.now() << " " << task->name()
                      << " waits for commute token on obj " << obj);
      release_context(t);
      commute_.enqueue_waiter(obj, task);
      // the releaser hands us the token before resuming us
      park_inactive(t, Wait::kCommute);
      reacquire_context(t);
    } else if (holder == nullptr) {
      commute_.try_acquire(obj, task);
    }
  }
  // A child may have moved the object since our prefetch; re-ensure
  // residence (cheap when it is still here).
  if (!cluster_.shared_memory()) {
    const bool exclusive = (mode & kExclusiveBits) != 0;
    park_until_fetched(t, transfer_object(t, obj, exclusive));
  }
  // Snapshot before handing out a mutable pointer: if a crash kills this
  // attempt mid-write, the pre-image is restored and the re-execution sees
  // exactly what the first attempt saw.  Taken here — after serializer
  // admission and commute-token acquisition — so a commuter snapshots the
  // object *with its predecessors' updates applied*.
  if (ft_enabled() && st(task).attempt.restartable && (mode & kExclusiveBits))
    ft_->snapshot_before_write(st(task).attempt, obj);
  // The write makes every other copy stale: drop replicas that raced in via
  // prefetch and open a new data version (after the snapshot, so a killed
  // attempt restores the pre-write version).
  if (!cluster_.shared_memory() && (mode & kExclusiveBits))
    coherence_->first_write_invalidate(st(task).machine, obj,
                                       st(task).attempt.dirtied);
  return directory_.data(obj);
}

void SimEngine::charge(TaskNode* task, double units) {
  JADE_ASSERT_MSG(units >= 0, "charge() units must be non-negative");
  SimTask& t = st(task);
  task->charged_work += units;
  stats_.total_charged_work += units;
  occupy_cpu(t, units / machines_[t.machine].desc.ops_per_second);
}

MachineId SimEngine::machine_of(TaskNode* task) const {
  return static_cast<const SimTask*>(task->engine_data)->machine;
}

// --- object motion (store/coherence.hpp does the protocol) -----------------

void SimEngine::ensure_recoverable(ObjectId obj) const {
  if (!directory_.lost(obj)) return;
  throw UnrecoverableError(
      "object " + std::to_string(obj) + " ('" + objects_.info(obj).name +
      "') is unrecoverable: its only copy died with machine " +
      std::to_string(directory_.owner(obj)) +
      " and stable storage is disabled");
}

SimTime SimEngine::transfer_object(SimTask& t, ObjectId obj, bool exclusive) {
  if (cluster_.shared_memory()) return sim_.now();

  if (ft_enabled()) {
    // The owner may be dead (crashed but not yet detected/recovered).  A
    // local replica satisfies a read; anything else waits for the recovery
    // protocol to re-home or restore the object — or learns it is gone.
    while (true) {
      ensure_recoverable(obj);
      const MachineId owner = directory_.owner(obj);
      if (ft_->injector().machine_up(owner)) break;
      if (!exclusive && directory_.present(obj, t.machine)) break;
      JADE_TRACE("t=" << sim_.now() << " " << t.node->name()
                      << " waits for recovery of obj " << obj
                      << " (owner " << owner << " is down)");
      ft_->add_recovery_waiter(owner, t.node);
      park_inactive(t, Wait::kRecovery);
    }
  }

  return coherence_->transfer(obj, t.machine, exclusive);
}

SimTime SimEngine::fetch_objects(SimTask& t, std::vector<FetchItem> items) {
  if (cluster_.shared_memory() || items.empty()) return sim_.now();

  if (ft_enabled()) {
    // Wait until every blocking item's owner is up (or a local replica
    // satisfies its read).  Waking from one park can find another item's
    // owner newly crashed, so loop until a full pass makes no park.
    bool parked = true;
    while (parked) {
      parked = false;
      for (const FetchItem& item : items) {
        if (!item.blocking) continue;
        ensure_recoverable(item.obj);
        const MachineId owner = directory_.owner(item.obj);
        if (ft_->injector().machine_up(owner)) continue;
        if (!item.exclusive && directory_.present(item.obj, t.machine))
          continue;
        JADE_TRACE("t=" << sim_.now() << " " << t.node->name()
                        << " waits for recovery of obj " << item.obj
                        << " (owner " << owner << " is down)");
        ft_->add_recovery_waiter(owner, t.node);
        park_inactive(t, Wait::kRecovery);
        parked = true;
        break;
      }
    }
    // Prefetch hints are best-effort: drop the ones recovery would have to
    // wait for.
    std::erase_if(items, [this](const FetchItem& item) {
      if (item.blocking) return false;
      return directory_.lost(item.obj) ||
             !ft_->injector().machine_up(directory_.owner(item.obj));
    });
  }

  // After the fault pre-pass every remaining transfer resolves without
  // parking (no time passes between here and the protocol's scheduling).
  return coherence_->fetch(t.machine, std::move(items));
}

// --- run -------------------------------------------------------------------

void SimEngine::run(std::function<void(TaskContext&)> root_body) {
  if (ran_) {
    // Sequential runs on one reused engine: reset the scheduling state for
    // a fresh graph.  Objects, the directory and replicas persist; the
    // virtual clock stays monotonic across runs.  Fault injection schedules
    // its event sequence against a single run and cannot be replayed.
    if (ft_enabled())
      throw ConfigError(
          "a fault-injected SimEngine supports a single run(); construct a "
          "fresh Runtime per fault experiment");
    serializer_.reset();
    sim_tasks_.clear();
    ready_.clear();
    to_unblock_.clear();
    throttled_.clear();
    spec_candidates_.clear();
    spec_decide_.clear();
    commute_ = CommuteTokenTable{};
    throttle_.reset_counters();
    spec_gov_.reset_counters();
    timeline_.clear();
    stats_ = RuntimeStats{};
    stats_.machine_busy_seconds.assign(machines_.size(), 0.0);
    for (Machine& m : machines_) {
      JADE_ASSERT_MSG(m.context_waiters.empty(),
                      "engine reuse with parked context waiters");
      m.free_contexts = sched_.contexts_per_machine;
      m.busy_seconds = 0;
      // cpu_free_until / runtime_free_until are kept: virtual time is
      // monotonic across runs.
    }
    active_tasks_ = 0;
    root_done_ = false;
  }
  ran_ = true;

  // The original task starts on machine 0, occupying one of its contexts
  // (Figure 7(a): the first machine runs the main task).
  JADE_ASSERT(machines_[0].free_contexts > 0);
  --machines_[0].free_contexts;
  sim_tasks_.emplace_back();
  SimTask& rt = sim_tasks_.back();
  rt.node = serializer_.root();
  rt.machine = 0;
  rt.creator_machine = 0;
  rt.attempt.restartable = false;  // the original task; machine 0 never
                                   // crashes
  serializer_.root()->engine_data = &rt;
  serializer_.root()->assigned_machine = 0;

  rt.process = sim_.spawn("root", [this, body = std::move(root_body)] {
    ++active_tasks_;
    TaskNode* root = serializer_.root();
    if (tracer_.enabled()) {
      tracer_.instant(obs::Subsystem::kEngine, "task.created", root->id(), 0,
                      0, root->name());
      tracer_.instant(obs::Subsystem::kEngine, "task.dispatched", root->id(),
                      0);
      tracer_.span_begin(obs::Subsystem::kEngine, "task", root->id(), 0,
                         root->name());
      tracer_.instant(obs::Subsystem::kEngine, "task.body_start", root->id(),
                      0);
    }
    TaskContext ctx(this, root);
    body(ctx);
    finish_task(root);
  });

  if (ft_enabled()) ft_->schedule_events();

  sim_.run();

  JADE_ASSERT_MSG(serializer_.outstanding() == 0,
                  "simulation drained with outstanding tasks");
  if (!ft_enabled()) stats_.finish_time = sim_.now();
  if (faulty_net_ != nullptr) {
    stats_.messages_dropped = faulty_net_->messages_dropped();
    stats_.message_retries = faulty_net_->message_retries();
  }
  for (std::size_t m = 0; m < machines_.size(); ++m)
    stats_.machine_busy_seconds[m] = machines_[m].busy_seconds;
  stats_.throttle_suspensions = throttle_.suspensions();
  stats_.throttle_giveups = throttle_.giveups();
  stats_.spec_started = spec_gov_.started();
  stats_.spec_committed = spec_gov_.committed();
  stats_.spec_aborted = spec_gov_.aborted();
  stats_.spec_denied = spec_gov_.denied();
  stats_.spec_wasted_bytes = spec_gov_.wasted_bytes();
  stats_.spec_wasted_work = spec_gov_.wasted_work();
  publish_runtime_stats();
}

// --- speculative execution (SchedPolicy::spec) ------------------------------

void SimEngine::try_spec_dispatch() {
  if (!spec_gov_.enabled()) return;
  const bool locality = sched_.locality && !cluster_.shared_memory();
  std::vector<ObjectId> contested;
  while (spec_gov_.can_start() && !spec_candidates_.empty()) {
    std::vector<int> free(machines_.size());
    int total_free = 0;
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      free[m] = machines_[m].free_contexts;
      total_free += free[m];
    }
    if (total_free == 0) return;
    bool started = false;
    std::size_t i = 0;
    std::size_t examined = 0;
    while (i < spec_candidates_.size() && examined < sched_.spec.window) {
      TaskNode* task = spec_candidates_[i];
      if (task->state() != TaskState::kPending || task->speculating()) {
        spec_candidates_.erase(spec_candidates_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        continue;
      }
      ++examined;
      if (!serializer_.spec_eligible(task, &contested)) {
        ++i;  // may become eligible once a predecessor weakens
        continue;
      }
      bool throttled = false;
      for (ObjectId obj : contested) {
        if (spec_gov_.object_throttled(obj)) {
          throttled = true;
          break;
        }
      }
      if (throttled) {
        // This object keeps conflicting; stop betting on it.  The task is
        // dropped from the candidate list for good — it runs normally.
        spec_gov_.note_denied();
        spec_candidates_.erase(spec_candidates_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        continue;
      }
      if (ft_enabled()) {
        // Never speculate across a crashed owner or a lost object: the
        // normal path's recovery parking / unrecoverable error must not be
        // bypassed by a snapshot of possibly-doomed bytes.
        bool risky = false;
        for (ObjectId obj : st(task).objects) {
          if (directory_.lost(obj) ||
              !ft_->injector().machine_up(directory_.owner(obj))) {
            risky = true;
            break;
          }
        }
        if (risky) {
          ++i;
          continue;
        }
      }
      const MachineId m = planner_->place_task(
          directory_,
          {st(task).objects, free, locality, st(task).creator_machine});
      if (m < 0) {
        ++i;
        continue;
      }
      spec_candidates_.erase(spec_candidates_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      start_speculation(task, m, contested);
      started = true;
      break;
    }
    if (!started) return;
  }
}

void SimEngine::start_speculation(TaskNode* task, MachineId m,
                                  std::vector<ObjectId> contested) {
  serializer_.spec_start(task);
  spec_gov_.note_start();
  Machine& mach = machines_[static_cast<std::size_t>(m)];
  JADE_ASSERT(mach.free_contexts > 0);
  --mach.free_contexts;
  SimTask& t = st(task);
  t.machine = m;
  t.dispatched = sim_.now();
  task->assigned_machine = m;
  t.spec.active = true;
  t.spec.body_done = false;
  t.spec.failed = false;
  t.spec.shadows.clear();
  t.spec.dirty.clear();
  t.spec.epochs.clear();
  t.spec.contested = std::move(contested);
  t.spec.charge_base = task->charged_work;
  // Snapshot-isolated staging copies of every declared immediate object,
  // with the serializer's write epoch at capture time.  Pure-commute rights
  // are excluded: exercising one aborts the attempt.  Single-threaded
  // simulation makes the bytes+epoch capture atomic by construction.
  for (const DeclRecord* rec : task->ordered_records()) {
    if (rec->immediate == 0 || rec->immediate == access::kCommute) continue;
    auto view = directory_.data_view(rec->obj);
    t.spec.epochs.emplace_back(rec->obj, serializer_.write_epoch(rec->obj));
    t.spec.shadows.emplace_back(
        rec->obj, std::vector<std::byte>(view.begin(), view.end()));
  }
  JADE_TRACE("t=" << sim_.now() << " speculate " << task->name()
                  << " -> machine " << m);
  tracer_.instant(obs::Subsystem::kEngine, "spec.dispatch", task->id(), m,
                  static_cast<double>(t.spec.contested.size()));
  t.process =
      sim_.spawn(task->name(), [this, task] { spec_process(task); });
}

void SimEngine::spec_process(TaskNode* task) {
  SimTask& t = st(task);
  occupy_runtime(t, cluster_.task_dispatch_overhead);
  t.body_start = sim_.now();
  TaskContext ctx(this, task);
  try {
    task->body(ctx);
  } catch (const SpeculationUnwind&) {
    t.spec.failed = true;
  } catch (...) {
    if (sim_.tearing_down() ||
        (sim_.current() != nullptr && sim_.current()->abandoned())) {
      throw;
    }
    // A speculative body's failure may be an artifact of snapshot staleness;
    // abort silently — a genuine error reproduces on the normal re-run.
    t.spec.failed = true;
  }
  t.spec.body_done = true;
  release_context(t);
  if (task->state() == TaskState::kReady) {
    // The serializer enabled the task while the body ran; the queued
    // decision was a no-op then, so decide here, at the body's end.
    decide_speculation(task);
    post_serializer();
  }
}

void SimEngine::decide_speculation(TaskNode* task) {
  SimTask& t = st(task);
  JADE_ASSERT(t.spec.active);
  if (!t.spec.body_done) return;  // spec_process re-decides at body end
  JADE_ASSERT(task->state() == TaskState::kReady);
  bool ok = !t.spec.failed;
  bool conflict = false;
  if (ok && ft_enabled()) {
    for (ObjectId obj : t.objects) {
      if (directory_.lost(obj) ||
          !ft_->injector().machine_up(directory_.owner(obj))) {
        ok = false;
        break;
      }
    }
  }
  if (ok) {
    // The serializer is the commit check: the task is enabled in serial
    // order, and unchanged write epochs prove no conflicting write
    // materialized since the snapshot.
    for (const auto& [obj, epoch] : t.spec.epochs) {
      if (serializer_.write_epoch(obj) != epoch) {
        ok = false;
        conflict = true;
        break;
      }
    }
  }
  if (ok) {
    commit_speculation(task);
  } else {
    abort_speculation(task, /*charge_history=*/conflict);
  }
}

void SimEngine::commit_speculation(TaskNode* task) {
  SimTask& t = st(task);
  serializer_.spec_commit(task);  // kReady -> kRunning, in serial order
  spec_gov_.note_commit();
  t.spec.active = false;
  // The buffered writes become the canonical bytes *before* complete_task
  // can enable any successor — exactly where a normal run's writes would
  // already be.  Stale replicas drop and the data version advances the
  // same way a normal first write's invalidation does.
  for (ObjectId obj : t.spec.dirty) {
    for (auto& [sobj, bytes] : t.spec.shadows) {
      if (sobj != obj) continue;
      std::copy(bytes.begin(), bytes.end(), directory_.data(obj));
      break;
    }
    serializer_.bump_write_epoch(obj);
    if (!cluster_.shared_memory())
      coherence_->first_write_invalidate(t.machine, obj, t.attempt.dirtied);
  }
  JADE_TRACE("t=" << sim_.now() << " spec-commit " << task->name());
  tracer_.instant(obs::Subsystem::kEngine, "spec.commit", task->id(),
                  t.machine, static_cast<double>(t.spec.dirty.size()));
  if (sched_.record_timeline) {
    timeline_.push_back(TaskTimeline{task->id(), task->name(), t.machine,
                                     t.created, t.dispatched, t.body_start,
                                     sim_.now(), task->charged_work});
  }
  queue_wait_hist_->observe(t.dispatched - t.created);
  exec_hist_->observe(sim_.now() - t.body_start);
  if (tracer_.enabled()) {
    // The task's span materializes at its serial position (zero width: the
    // work itself ran earlier, speculatively).
    tracer_.span_begin(obs::Subsystem::kEngine, "task", task->id(), t.machine,
                       task->name());
    tracer_.span_end(obs::Subsystem::kEngine, "task", task->id(), t.machine,
                     task->charged_work);
  }
  task->body = nullptr;
  t.spec.shadows.clear();
  t.spec.epochs.clear();
  if (ft_enabled()) stats_.finish_time = sim_.now();
  serializer_.complete_task(task);
  t.process = nullptr;
  t.machine = -1;
  maybe_release_throttled();
  // The caller (post_serializer's decide loop) dispatches the fallout.
}

void SimEngine::abort_speculation(TaskNode* task, bool charge_history) {
  SimTask& t = st(task);
  std::uint64_t wasted_bytes = 0;
  for (const auto& [obj, bytes] : t.spec.shadows) wasted_bytes += bytes.size();
  const double wasted_work = task->charged_work - t.spec.charge_base;
  spec_gov_.note_abort(
      charge_history ? t.spec.contested : std::vector<ObjectId>{},
      wasted_bytes, wasted_work);
  task->charged_work = t.spec.charge_base;
  serializer_.spec_abort(task);
  JADE_TRACE("t=" << sim_.now() << " spec-abort " << task->name());
  tracer_.instant(obs::Subsystem::kEngine, "spec.abort", task->id(), t.machine,
                  wasted_work);
  t.spec.active = false;
  t.spec.body_done = false;
  t.spec.failed = false;
  t.spec.shadows.clear();
  t.spec.dirty.clear();
  t.spec.epochs.clear();
  t.spec.contested.clear();
  t.process = nullptr;
  t.machine = -1;
  t.wait = Wait::kNone;
  task->assigned_machine = -1;
  // An already-enabled task re-enters the normal dispatch path; a pending
  // one routes through on_task_ready normally now the flag is down.
  if (task->state() == TaskState::kReady) ready_.push_back(task);
}

void SimEngine::abort_speculations_on(MachineId m) {
  if (!spec_gov_.enabled()) return;
  // Creation order (deterministic): sim_tasks_ appends at spawn.  The
  // shadow buffers of a resident speculation die with the machine — even a
  // finished body's, since its writeback never happened.
  for (SimTask& t : sim_tasks_) {
    if (!t.spec.active || t.machine != m) continue;
    Process* p = t.process;
    abort_speculation(t.node, /*charge_history=*/false);
    if (p != nullptr && p->state() != Process::State::kDone) sim_.abort(p);
  }
}

std::byte* SimEngine::spec_acquire_bytes(TaskNode* task, ObjectId obj,
                                         std::uint8_t mode) {
  SimTask& t = st(task);
  JADE_ASSERT(t.spec.active);
  DeclRecord* rec = task->find_record(obj);
  // Undeclared or commuting access: abort the speculation; the normal
  // re-run raises the real error (or takes the commute token) at the same
  // deterministic point.
  if (rec == nullptr ||
      (mode & static_cast<std::uint8_t>(~rec->immediate)) ||
      (mode & access::kCommute)) {
    throw SpeculationUnwind{};
  }
  for (auto& [sobj, bytes] : t.spec.shadows) {
    if (sobj != obj) continue;
    if (mode & access::kWrite) {
      if (std::find(t.spec.dirty.begin(), t.spec.dirty.end(), obj) ==
          t.spec.dirty.end()) {
        t.spec.dirty.push_back(obj);
      }
    }
    return bytes.data();
  }
  throw SpeculationUnwind{};  // no shadow (pure-commute record)
}

// --- fault tolerance (ft/recovery_coordinator.hpp does the protocol) -------

void SimEngine::abort_attempt_execution(TaskNode* task) {
  SimTask& t = st(task);
  Process* p = t.process;
  const bool started = p->state() != Process::State::kCreated;
  if (started) {
    // Undo the wait-specific bookkeeping before aborting the process.
    switch (t.wait) {
      case Wait::kFetch:
      case Wait::kCpu:
        // Self-resume pending (becomes a no-op once aborted); these waits
        // count as active.
        --active_tasks_;
        break;
      case Wait::kUnblock: {
        auto it = std::find(to_unblock_.begin(), to_unblock_.end(), task);
        if (it != to_unblock_.end()) to_unblock_.erase(it);
        break;
      }
      case Wait::kCommute:
        commute_.remove_waiter(task);
        break;
      case Wait::kContext: {
        auto& waiters =
            machines_[static_cast<std::size_t>(t.machine)].context_waiters;
        auto it = std::find(waiters.begin(), waiters.end(), task);
        JADE_ASSERT(it != waiters.end());
        waiters.erase(it);
        break;
      }
      case Wait::kRecovery:
        ft_->remove_recovery_waiter(task);
        break;
      case Wait::kThrottle:
      case Wait::kNone:
        // Restartable tasks never spawn, so they never throttle-park; and a
        // parked process always has a wait kind.
        JADE_ASSERT_MSG(false, "killed task in an impossible wait state");
    }
  }
  // Hand held commute tokens to the next waiters, newest first.  (A waiter
  // that is itself being killed in this sweep gets its resume abandoned and
  // the token released again when its own kill runs.)
  while (!commute_.held(task).empty()) {
    const ObjectId obj = commute_.held(task).back();
    TaskNode* next = nullptr;
    const bool released = commute_.release(obj, task, &next);
    JADE_ASSERT(released);
    if (next != nullptr) sim_.resume(st(next).process);
  }
  // Rewind the serializer: a started attempt is kRunning (task_started is
  // the first thing a task process does); an assigned-but-unstarted one is
  // still kReady and needs no rewind.
  if (started) serializer_.abort_attempt(task);
  sim_.abort(p);

  t.process = nullptr;
  t.machine = -1;
  t.wait = Wait::kNone;
  task->assigned_machine = -1;
}

}  // namespace jade
