#include "jade/engine/sim_engine.hpp"

#include <algorithm>
#include <map>

#include "jade/ft/recovery.hpp"
#include "jade/support/error.hpp"
#include "jade/support/log.hpp"
#include "jade/types/wire.hpp"

namespace jade {

namespace {
constexpr std::uint8_t kExclusiveBits = access::kWrite | access::kCommute;

/// Runtime control-message kinds on the simulated wire.
enum class MsgKind : std::uint8_t {
  kObjectRequest = 1,   ///< please send object X (move or copy)
  kObjectData = 2,      ///< header preceding an object payload
  kInvalidate = 3,      ///< drop your replica of object X
  kObjectGrant = 4,     ///< access granted, no payload: the requester's
                        ///< replica is current (revalidation / upgrade)
};

/// Encodes a control message exactly as the transport would (the typed
/// PVM-style protocol of Section 7); its wire size is what the network
/// model is charged with.  A floor models transport framing minima.
std::size_t control_message_size(MsgKind kind, ObjectId obj, MachineId from,
                                 MachineId to, std::uint64_t payload,
                                 std::size_t floor) {
  WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_u64(obj);
  w.put_u32(static_cast<std::uint32_t>(from));
  w.put_u32(static_cast<std::uint32_t>(to));
  w.put_u64(payload);
  return std::max(w.size(), floor);
}

/// A combined request for several objects held by one owner: one header,
/// then the object-id list.
std::size_t batch_request_size(std::span<const ObjectId> objs,
                               MachineId requester, MachineId owner,
                               std::size_t floor) {
  WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgKind::kObjectRequest));
  w.put_u32(static_cast<std::uint32_t>(objs.size()));
  w.put_u32(static_cast<std::uint32_t>(requester));
  w.put_u32(static_cast<std::uint32_t>(owner));
  for (ObjectId o : objs) w.put_u64(o);
  return std::max(w.size(), floor);
}

/// A coalesced invalidation: one control message naming every holder that
/// must drop its replica (the topology fans it out as a multicast).
std::size_t invalidate_message_size(ObjectId obj, MachineId from,
                                    std::span<const MachineId> targets,
                                    std::size_t floor) {
  WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(MsgKind::kInvalidate));
  w.put_u64(obj);
  w.put_u32(static_cast<std::uint32_t>(from));
  w.put_u32(static_cast<std::uint32_t>(targets.size()));
  for (MachineId t : targets) w.put_u32(static_cast<std::uint32_t>(t));
  return std::max(w.size(), floor);
}
}  // namespace

SimEngine::SimEngine(ClusterConfig cluster, SchedPolicy sched,
                     bool enforce_hierarchy, FaultConfig fault)
    : cluster_(std::move(cluster)),
      sched_(sched),
      network_(cluster_.make_network()),
      directory_(cluster_.machine_count()),
      serializer_(this, enforce_hierarchy),
      fault_(std::move(fault)) {
  cluster_.validate();
  if (sched_.contexts_per_machine < 1)
    throw ConfigError("contexts_per_machine must be >= 1");
  // With replica reuse on, a dropped-but-current replica is as good as a
  // present one for the locality heuristics.
  directory_.set_reuse_scoring(sched_.comm.reuse_replicas);
  machines_.reserve(cluster_.machines.size());
  for (const MachineDesc& desc : cluster_.machines) {
    Machine m;
    m.desc = desc;
    m.free_contexts = sched_.contexts_per_machine;
    machines_.push_back(std::move(m));
  }
  stats_.machine_busy_seconds.assign(machines_.size(), 0.0);

  if (fault_.enabled) {
    if (cluster_.shared_memory())
      throw ConfigError(
          "fault injection requires a message-passing platform: on shared "
          "memory there is no network to lose messages on and no per-machine "
          "object copies to recover");
    const FaultPlan plan = FaultPlan::make(fault_, machine_count());
    injector_ = std::make_unique<FaultInjector>(plan, machine_count());
    detector_ = std::make_unique<FailureDetector>(
        machine_count(), fault_.heartbeat_interval,
        fault_.heartbeat_miss_threshold);
    FaultyNetConfig net_cfg;
    net_cfg.drop_probability = fault_.drop_probability;
    net_cfg.initial_retry_timeout = fault_.initial_retry_timeout;
    net_cfg.max_retry_timeout = fault_.max_retry_timeout;
    net_cfg.max_send_attempts = fault_.max_send_attempts;
    auto faulty = std::make_unique<FaultyNetwork>(
        std::move(network_), net_cfg,
        [this](MachineId from, MachineId to) {
          return injector_->should_drop(from, to);
        });
    faulty_net_ = faulty.get();
    network_ = std::move(faulty);
    pending_recovery_.resize(machines_.size());
    recovery_waiters_.resize(machines_.size());
  }

  queue_wait_hist_ = &metrics_.histogram("engine.task_queue_wait");
  fetch_wait_hist_ = &metrics_.histogram("engine.fetch_wait");
  exec_hist_ = &metrics_.histogram("engine.task_execution");
}

SimTime SimEngine::trace_now() const { return sim_.now(); }

void SimEngine::enable_tracing(const ObsConfig& cfg) {
  Engine::enable_tracing(cfg);
  obs::Tracer* t = cfg.trace ? &tracer_ : nullptr;
  network_->set_observer(t, cfg.trace ? &metrics_ : nullptr);
  directory_.set_observer(t, [this] { return sim_.now(); });
}

SimEngine::~SimEngine() = default;

SimEngine::SimTask& SimEngine::st(TaskNode* task) {
  JADE_ASSERT_MSG(task->engine_data != nullptr,
                  "task has no simulation state");
  return *static_cast<SimTask*>(task->engine_data);
}

// --- objects ---------------------------------------------------------------

ObjectId SimEngine::allocate(TypeDescriptor type, std::string name,
                             MachineId home) {
  const ObjectId id = objects_.add(std::move(type), std::move(name));
  MachineId home_m;
  if (home >= 0) {
    JADE_ASSERT_MSG(home < machine_count(), "placement machine out of range");
    home_m = home;
  } else {
    home_m = next_home_;
    next_home_ = (next_home_ + 1) % machine_count();
  }
  directory_.add_object(objects_.info(id), home_m);
  return id;
}

void SimEngine::put_bytes(ObjectId obj, std::span<const std::byte> data) {
  JADE_ASSERT(data.size() == objects_.info(obj).byte_size());
  std::copy(data.begin(), data.end(), directory_.data(obj));
  // A host write starts a new data version (invalidates conversion cache
  // entries and any stale-replica reuse from a previous state).
  directory_.mark_dirty(obj);
}

std::vector<std::byte> SimEngine::get_bytes(ObjectId obj) {
  auto view = directory_.data_view(obj);
  return {view.begin(), view.end()};
}

const ObjectInfo& SimEngine::object_info(ObjectId obj) const {
  return objects_.info(obj);
}

// --- notifications ---------------------------------------------------------

void SimEngine::on_task_ready(TaskNode* task) { ready_.push_back(task); }

void SimEngine::on_task_unblocked(TaskNode* task) {
  to_unblock_.push_back(task);
}

void SimEngine::post_serializer() {
  try_dispatch();
  while (!to_unblock_.empty()) {
    std::vector<TaskNode*> batch;
    batch.swap(to_unblock_);
    for (TaskNode* t : batch) deliver_unblock(t);
  }
}

void SimEngine::deliver_unblock(TaskNode* task) {
  SimTask& t = st(task);
  JADE_ASSERT_MSG(t.wait == Wait::kUnblock,
                  "unblock delivered to a task not waiting on dependencies");
  sim_.resume(t.process);
}

// --- dispatch --------------------------------------------------------------

void SimEngine::try_dispatch() {
  // Task-driven dispatch in FIFO order: each ready task picks its best
  // machine — most declared bytes already resident (locality), then the
  // creating machine, then the least-loaded (pure balancing).  On
  // shared-memory platforms data movement is free, so locality is moot and
  // only load balancing applies.
  const bool locality = sched_.locality && !cluster_.shared_memory();
  bool progress = true;
  while (progress && !ready_.empty()) {
    progress = false;
    std::vector<int> free(machines_.size());
    int total_free = 0;
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      free[m] = machines_[m].free_contexts;
      total_free += free[m];
    }
    if (total_free == 0) return;  // nothing can be placed; skip the scan
    // Bounded scheduler window: only the oldest kWindow ready tasks are
    // considered, keeping dispatch cost independent of backlog size (the
    // backlog can be huge when a creator floods tasks, Figure 7(e)).
    constexpr std::size_t kWindow = 64;
    const std::size_t window = std::min(ready_.size(), kWindow);
    for (std::size_t i = 0; i < window; ++i) {
      TaskNode* task = ready_[i];
      MachineId m;
      if (task->placement >= 0) {
        // Explicit placement (Section 4.5) overrides the heuristics.  A task
        // pinned to a crashed machine can never run anywhere; surface that
        // rather than stalling the simulation.
        if (ft_enabled() && !injector_->machine_up(task->placement))
          throw UnrecoverableError(
              "task '" + task->name() + "' is pinned to machine " +
              std::to_string(task->placement) + ", which has crashed");
        m = free[static_cast<std::size_t>(task->placement)] > 0
                ? task->placement
                : -1;
      } else if (tracer_.enabled()) {
        // Tracing: also capture why — every candidate machine with its
        // locality score, so a placement can be audited from the trace.
        PlacementExplain explain;
        m = pick_machine_for_task(directory_, st(task).objects, free,
                                  locality, st(task).creator_machine,
                                  &explain);
        if (m >= 0) {
          std::string detail = "chosen=" + std::to_string(explain.chosen);
          for (const PlacementExplain::Candidate& c : explain.candidates) {
            detail += " m" + std::to_string(c.machine) + ":bytes=" +
                      std::to_string(c.resident_bytes) +
                      ",free=" + std::to_string(c.free_contexts);
          }
          tracer_.instant(obs::Subsystem::kSched, "sched.place", task->id(),
                          m, static_cast<double>(explain.candidates.size()),
                          std::move(detail));
        }
      } else {
        m = pick_machine_for_task(directory_, st(task).objects, free,
                                  locality, st(task).creator_machine);
      }
      if (m < 0) continue;
      ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(i));
      assign(task, m);
      progress = true;
      break;  // ready_ and free context counts changed; restart the scan
    }
  }
}

void SimEngine::assign(TaskNode* task, MachineId m) {
  Machine& mach = machines_[m];
  JADE_ASSERT(mach.free_contexts > 0);
  --mach.free_contexts;
  SimTask& t = st(task);
  t.machine = m;
  t.dispatched = sim_.now();
  task->assigned_machine = m;
  if (m != t.creator_machine) ++stats_.tasks_migrated;
  queue_wait_hist_->observe(sim_.now() - t.created);
  tracer_.instant(obs::Subsystem::kEngine, "task.dispatched", task->id(), m);
  if (tracer_.enabled())
    tracer_.span_begin(obs::Subsystem::kEngine, "task", task->id(), m,
                       task->name());
  JADE_TRACE("t=" << sim_.now() << " dispatch " << task->name()
                  << " -> machine " << m << " (" << mach.desc.name << ")");
  t.process = sim_.spawn(task->name(), [this, task] { task_process(task); });
}

// --- task lifecycle --------------------------------------------------------

void SimEngine::task_process(TaskNode* task) {
  SimTask& t = st(task);
  serializer_.task_started(task);
  ++active_tasks_;
  t.attempt_charge_base = task->charged_work;

  // Prefetch: move/copy every object named by an immediate right to this
  // machine; all transfers go out at once so their latencies overlap
  // (and overlap other tasks' execution — latency hiding, Figure 7(f)).
  // Deferred read declarations ride along as non-blocking hints: their
  // payloads are resident (or in flight) before the task's first with-cont,
  // but task start does not wait for them.
  if (!cluster_.shared_memory()) {
    std::vector<FetchItem> items;
    for (const DeclRecord* rec : task->ordered_records()) {
      if (rec->immediate != 0) {
        items.push_back(
            {rec->obj, (rec->immediate & kExclusiveBits) != 0, true});
      } else if (sched_.comm.prefetch_deferred &&
                 (rec->deferred & access::kRead) &&
                 (rec->deferred & kExclusiveBits) == 0) {
        items.push_back({rec->obj, false, false});
      }
    }
    park_until_fetched(t, fetch_objects(t, std::move(items)));
  }

  occupy_runtime(t, cluster_.task_dispatch_overhead);
  t.body_start = sim_.now();
  tracer_.instant(obs::Subsystem::kEngine, "task.body_start", task->id(),
                  t.machine);

  TaskContext ctx(this, task);
  task->body(ctx);

  finish_task(task);
}

void SimEngine::finish_task(TaskNode* task) {
  SimTask& t = st(task);
  JADE_TRACE("t=" << sim_.now() << " complete " << task->name()
                  << " on machine " << t.machine);
  if (sched_.record_timeline) {
    timeline_.push_back(TaskTimeline{task->id(), task->name(), t.machine,
                                     t.created, t.dispatched, t.body_start,
                                     sim_.now(), task->charged_work});
  }
  exec_hist_->observe(sim_.now() - t.body_start);
  tracer_.span_end(obs::Subsystem::kEngine, "task", task->id(), t.machine,
                   task->charged_work);
  task->body = nullptr;  // only now is a re-execution impossible
  t.snapshots.clear();
  if (ft_enabled()) {
    // Stray fault-layer events (a final heartbeat round, a scheduled crash
    // that no longer matters) may advance the clock after the program is
    // done; the program's finish time is the last task completion.
    stats_.finish_time = sim_.now();
    if (task->is_root()) root_done_ = true;
  }
  --active_tasks_;
  serializer_.complete_task(task);
  post_serializer();
  for (ObjectId obj : t.commute_tokens) release_commute_token(obj);
  t.commute_tokens.clear();
  release_context(t);
  maybe_release_throttled();
}

void SimEngine::release_commute_token(ObjectId obj) {
  auto& waiters = commute_waiters_[obj];
  if (!waiters.empty()) {
    TaskNode* next = waiters.front();
    waiters.pop_front();
    commute_holder_[obj] = next;
    st(next).commute_tokens.push_back(obj);
    sim_.resume(st(next).process);
  } else {
    commute_holder_.erase(obj);
  }
}

void SimEngine::occupy_cpu(SimTask& t, SimTime seconds) {
  if (seconds <= 0) return;
  Machine& m = machines_[t.machine];
  const SimTime start = std::max(sim_.now(), m.cpu_free_until);
  const SimTime end = start + seconds;
  m.cpu_free_until = end;
  m.busy_seconds += seconds;
  t.wait = Wait::kCpu;
  sim_.resume_at(sim_.current(), end);
  sim_.park();
  t.wait = Wait::kNone;
}

void SimEngine::occupy_runtime(SimTask& t, SimTime seconds) {
  if (seconds <= 0) return;
  Machine& m = machines_[t.machine];
  const SimTime start = std::max(sim_.now(), m.runtime_free_until);
  const SimTime end = start + seconds;
  m.runtime_free_until = end;
  t.wait = Wait::kCpu;
  sim_.resume_at(sim_.current(), end);
  sim_.park();
  t.wait = Wait::kNone;
}

void SimEngine::release_context(SimTask& t) {
  Machine& m = machines_[t.machine];
  if (ft_enabled() && !injector_->machine_up(t.machine)) {
    // Dead machine: a slot may still pass between resident tasks that ride
    // out the crash, but it never re-enters the free pool (the dispatcher
    // must not place new work here).
    if (!m.context_waiters.empty()) {
      TaskNode* next = m.context_waiters.front();
      m.context_waiters.pop_front();
      sim_.resume(st(next).process);
    }
    return;
  }
  if (!m.context_waiters.empty()) {
    // The slot passes directly to a task re-entering after a block.
    TaskNode* next = m.context_waiters.front();
    m.context_waiters.pop_front();
    sim_.resume(st(next).process);
  } else {
    ++m.free_contexts;
    try_dispatch();
  }
}

void SimEngine::reacquire_context(SimTask& t) {
  Machine& m = machines_[t.machine];
  if (ft_enabled() && !injector_->machine_up(t.machine)) {
    // A non-restartable task re-entering on its crashed machine: it must
    // still run to completion (its spawns already escaped), so it executes
    // on the ghost of the machine without slot bookkeeping.
    return;
  }
  if (m.free_contexts > 0) {
    --m.free_contexts;
    return;
  }
  JADE_TRACE("t=" << sim_.now() << " " << t.node->name()
                  << " waits for a context on machine " << t.machine);
  m.context_waiters.push_back(t.node);
  park_inactive(t, Wait::kContext);
}

void SimEngine::park_inactive(SimTask& t, Wait kind) {
  t.wait = kind;
  --active_tasks_;
  // If this park leaves no runnable task, a suspended creator is the only
  // source of progress and must be released now.
  maybe_release_throttled();
  sim_.park();
  ++active_tasks_;
  t.wait = Wait::kNone;
}

void SimEngine::maybe_release_throttled() {
  if (!sched_.throttle.enabled) return;
  while (!throttled_.empty() &&
         (serializer_.backlog() <= sched_.throttle.low_water ||
          active_tasks_ == 0)) {
    TaskNode* t = throttled_.front();
    throttled_.pop_front();
    sim_.resume(st(t).process);
    if (active_tasks_ == 0) break;  // one is enough to restore progress
  }
}

// --- TaskContext backend ---------------------------------------------------

void SimEngine::spawn(TaskNode* parent,
                      const std::vector<AccessRequest>& requests,
                      TaskContext::BodyFn body, std::string name,
                      MachineId placement) {
  SimTask& pt = st(parent);
  // Spawning makes the parent unkillable *before* it can park below: a
  // replay of a task that already created a child would create it twice.
  pt.restartable = false;
  // Executing the withonly construct costs the creator time (building the
  // specification, inserting queue records) on the runtime lane.
  occupy_runtime(pt, cluster_.task_create_overhead);

  TaskNode* task =
      serializer_.create_task(parent, requests, std::move(body),
                              std::move(name));
  task->placement = placement;
  sim_tasks_.emplace_back();
  SimTask& t = sim_tasks_.back();
  t.node = task;
  t.creator_machine = pt.machine;
  t.created = sim_.now();
  for (const AccessRequest& req : requests)
    if (req.add_immediate | req.add_deferred) t.objects.push_back(req.obj);
  task->engine_data = &t;
  ++stats_.tasks_created;
  if (tracer_.enabled())
    tracer_.instant(obs::Subsystem::kEngine, "task.created", task->id(),
                    pt.machine, 0, task->name());
  post_serializer();

  if (sched_.throttle.enabled &&
      serializer_.backlog() > sched_.throttle.high_water &&
      active_tasks_ > 1) {
    // Excess concurrency: suspend the creating task (Figure 7(e)) until the
    // unstarted backlog drains.  Skipped when this creator is the only
    // active task — then it is the sole source of progress.
    ++stats_.throttle_suspensions;
    JADE_TRACE("t=" << sim_.now() << " throttle suspends " << parent->name()
                    << " (backlog=" << serializer_.backlog() << ")");
    tracer_.instant(obs::Subsystem::kEngine, "throttle.suspend", parent->id(),
                    pt.machine,
                    static_cast<double>(serializer_.backlog()));
    throttled_.push_back(parent);
    release_context(pt);
    park_inactive(pt, Wait::kThrottle);
    reacquire_context(pt);
    tracer_.instant(obs::Subsystem::kEngine, "throttle.resume", parent->id(),
                    pt.machine,
                    static_cast<double>(serializer_.backlog()));
  }
}

void SimEngine::with_cont(TaskNode* task,
                          const std::vector<AccessRequest>& requests) {
  SimTask& t = st(task);
  // A with-cont retires or converts rights — visible to other tasks the
  // moment it executes, and not undoable.  The task rides out crashes.
  t.restartable = false;
  const bool must_block = serializer_.update_spec(task, requests);
  post_serializer();
  // no_cm hands the exclusivity token to the next waiting commuter now
  // rather than at completion.
  for (const AccessRequest& req : requests) {
    if (!(req.remove & access::kCommute)) continue;
    auto held = std::find(t.commute_tokens.begin(), t.commute_tokens.end(),
                          req.obj);
    if (held == t.commute_tokens.end()) continue;
    t.commute_tokens.erase(held);
    release_commute_token(req.obj);
  }
  if (must_block) {
    // Release the machine slot while waiting: the tasks we wait on may need
    // it (they precede us in the serial order).
    JADE_TRACE("t=" << sim_.now() << " " << task->name()
                    << " blocks in with-cont");
    release_context(t);
    park_inactive(t, Wait::kUnblock);
    reacquire_context(t);
  }
  fetch_for(t, requests);
}

void SimEngine::fetch_for(SimTask& t,
                          const std::vector<AccessRequest>& reqs) {
  if (cluster_.shared_memory()) return;
  std::vector<FetchItem> items;
  for (const AccessRequest& req : reqs) {
    if (req.add_immediate == 0) continue;
    DeclRecord* rec = t.node->find_record(req.obj);
    if (rec == nullptr || rec->immediate == 0) continue;
    items.push_back({req.obj, (rec->immediate & kExclusiveBits) != 0, true});
  }
  park_until_fetched(t, fetch_objects(t, std::move(items)));
}

void SimEngine::park_until_fetched(SimTask& t, SimTime ready_at) {
  if (ready_at <= sim_.now()) return;
  fetch_wait_hist_->observe(ready_at - sim_.now());
  t.wait = Wait::kFetch;
  sim_.resume_at(sim_.current(), ready_at);
  sim_.park();
  t.wait = Wait::kNone;
}

std::byte* SimEngine::acquire_bytes(TaskNode* task, ObjectId obj,
                                    std::uint8_t mode) {
  SimTask& t = st(task);
  const bool must_block = serializer_.acquire(task, obj, mode);
  if (must_block) {
    JADE_TRACE("t=" << sim_.now() << " " << task->name()
                    << " blocks in acquire of obj " << obj);
    release_context(t);
    park_inactive(t, Wait::kUnblock);
    reacquire_context(t);
  }
  if (mode & access::kCommute) {
    auto it = commute_holder_.find(obj);
    if (it != commute_holder_.end() && it->second != task) {
      // Another commuter holds the object; queue for the token.  The
      // machine slot is released meanwhile — the holder may be later in the
      // serial order and need it.
      JADE_TRACE("t=" << sim_.now() << " " << task->name()
                      << " waits for commute token on obj " << obj);
      release_context(t);
      commute_waiters_[obj].push_back(task);
      // the releaser hands us the token before resuming us
      park_inactive(t, Wait::kCommute);
      reacquire_context(t);
    } else if (it == commute_holder_.end()) {
      commute_holder_.emplace(obj, task);
      t.commute_tokens.push_back(obj);
    }
  }
  // A child may have moved the object since our prefetch; re-ensure
  // residence (cheap when it is still here).
  if (!cluster_.shared_memory()) {
    const bool exclusive = (mode & kExclusiveBits) != 0;
    park_until_fetched(t, transfer_object(t, obj, t.machine, exclusive));
  }
  // Snapshot before handing out a mutable pointer: if a crash kills this
  // attempt mid-write, the pre-image is restored and the re-execution sees
  // exactly what the first attempt saw.  Taken here — after serializer
  // admission and commute-token acquisition — so a commuter snapshots the
  // object *with its predecessors' updates applied*.
  if (ft_enabled() && st(task).restartable && (mode & kExclusiveBits))
    maybe_snapshot(st(task), obj);
  // The write makes every other copy stale: drop replicas that raced in via
  // prefetch and open a new data version (after the snapshot, so a killed
  // attempt restores the pre-write version).
  if (!cluster_.shared_memory() && (mode & kExclusiveBits))
    first_write_invalidate(st(task), obj);
  return directory_.data(obj);
}

void SimEngine::charge(TaskNode* task, double units) {
  JADE_ASSERT_MSG(units >= 0, "charge() units must be non-negative");
  SimTask& t = st(task);
  task->charged_work += units;
  stats_.total_charged_work += units;
  occupy_cpu(t, units / machines_[t.machine].desc.ops_per_second);
}

MachineId SimEngine::machine_of(TaskNode* task) const {
  return static_cast<const SimTask*>(task->engine_data)->machine;
}

// --- object motion ---------------------------------------------------------

SimTime SimEngine::available_at(ObjectId obj, MachineId m) const {
  auto it =
      available_at_.find(obj * kMaxMachines + static_cast<std::uint64_t>(m));
  return it == available_at_.end() ? 0 : it->second;
}

void SimEngine::set_available_at(ObjectId obj, MachineId m, SimTime at) {
  available_at_[obj * kMaxMachines + static_cast<std::uint64_t>(m)] = at;
}

SimTime SimEngine::conversion_cost(ObjectId obj, MachineId src,
                                   MachineId dst) {
  // Heterogeneous format conversion: when the byte orders differ we really
  // run the per-scalar conversion (twice: sender->wire, wire->receiver; the
  // two swaps compose to the identity on the host's canonical buffer, but
  // the work and the code path are real) and charge its time.  The sender
  // caches the converted image per data version, so repeated cross-endian
  // transfers of clean data convert once.
  const ObjectInfo& info = objects_.info(obj);
  const Endian se = machines_[src].desc.endian;
  const Endian de = machines_[dst].desc.endian;
  if (se == de || info.type.order_invariant()) return 0;
  if (sched_.comm.cache_conversions) {
    auto it = converted_cache_.find(obj);
    if (it != converted_cache_.end() &&
        it->second == directory_.data_version(obj)) {
      ++stats_.conversions_cached;
      return 0;
    }
  }
  std::span<std::byte> data{directory_.data(obj), info.byte_size()};
  const std::size_t n = convert_representation(data, info.type,
                                               Endian::kLittle, Endian::kBig);
  convert_representation(data, info.type, Endian::kBig, Endian::kLittle);
  stats_.scalars_converted += n;
  if (sched_.comm.cache_conversions)
    converted_cache_[obj] = directory_.data_version(obj);
  return static_cast<SimTime>(n) * cluster_.conversion_seconds_per_scalar;
}

void SimEngine::send_invalidations(ObjectId obj, MachineId from,
                                   const std::vector<MachineId>& targets,
                                   SimTime now) {
  // Fire-and-forget — the serializer already guarantees no earlier reader
  // is still active on any target.
  if (targets.empty()) return;
  stats_.invalidations += targets.size();
  if (sched_.comm.coalesce_invalidations && targets.size() > 1) {
    const std::size_t bytes = invalidate_message_size(
        obj, from, targets, cluster_.control_message_bytes);
    network_->schedule_multicast(from, targets, bytes, now);
    stats_.messages += 1;
    stats_.bytes_sent += bytes;
    stats_.invalidations_coalesced += targets.size() - 1;
    std::size_t naive = 0;
    for (MachineId h : targets)
      naive += control_message_size(MsgKind::kInvalidate, obj, from, h, 0,
                                    cluster_.control_message_bytes);
    if (naive > bytes) stats_.bytes_avoided += naive - bytes;
  } else {
    for (MachineId h : targets) {
      const std::size_t bytes =
          control_message_size(MsgKind::kInvalidate, obj, from, h, 0,
                               cluster_.control_message_bytes);
      network_->schedule_transfer(from, h, bytes, now);
      ++stats_.messages;
      stats_.bytes_sent += bytes;
    }
  }
}

void SimEngine::first_write_invalidate(SimTask& t, ObjectId obj) {
  const MachineId m = t.machine;
  std::vector<MachineId> dropped;
  if (!directory_.sole_holder(obj, m)) {
    // Replicas appeared between the exclusive transfer and this write
    // (another task's deferred-read prefetch raced in); drop them before
    // the write makes them stale.
    dropped = directory_.invalidate_replicas(obj);
  }
  const bool first =
      std::find(t.dirtied.begin(), t.dirtied.end(), obj) == t.dirtied.end();
  if (first) {
    directory_.mark_dirty(obj);
    t.dirtied.push_back(obj);
  } else if (!dropped.empty()) {
    // A replica copied between two of this attempt's writes holds a torn
    // image; advance the version again so it can never revalidate.
    directory_.mark_dirty(obj);
  }
  send_invalidations(obj, m, dropped, sim_.now());
}

SimTime SimEngine::transfer_object(SimTask& t, ObjectId obj, MachineId to,
                                   bool exclusive) {
  if (cluster_.shared_memory()) return sim_.now();

  if (ft_enabled()) {
    // The owner may be dead (crashed but not yet detected/recovered).  A
    // local replica satisfies a read; anything else waits for the recovery
    // protocol to re-home or restore the object — or learns it is gone.
    while (true) {
      if (directory_.lost(obj))
        throw UnrecoverableError(
            "object " + std::to_string(obj) + " ('" +
            objects_.info(obj).name +
            "') is unrecoverable: its only copy died with machine " +
            std::to_string(directory_.owner(obj)) +
            " and stable storage is disabled");
      const MachineId owner = directory_.owner(obj);
      if (injector_->machine_up(owner)) break;
      if (!exclusive && directory_.present(obj, to)) break;
      JADE_TRACE("t=" << sim_.now() << " " << t.node->name()
                      << " waits for recovery of obj " << obj
                      << " (owner " << owner << " is down)");
      recovery_waiters_[static_cast<std::size_t>(owner)].push_back(t.node);
      park_inactive(t, Wait::kRecovery);
    }
  }

  const SimTime now = sim_.now();
  const ObjectInfo& info = objects_.info(obj);
  const MachineId from = directory_.owner(obj);
  // The object travels behind a data header; requests, grants, and
  // invalidations are standalone control messages.
  const std::size_t payload =
      info.byte_size() +
      control_message_size(MsgKind::kObjectData, obj, from, to,
                           info.byte_size(), cluster_.control_message_bytes);
  const std::size_t request_bytes =
      control_message_size(MsgKind::kObjectRequest, obj, to, from, 0,
                           cluster_.control_message_bytes);
  const std::size_t grant_bytes =
      control_message_size(MsgKind::kObjectGrant, obj, from, to, 0,
                           cluster_.control_message_bytes);

  if (!exclusive) {
    if (directory_.present(obj, to)) {
      const SimTime avail = available_at(obj, to);
      // An earlier request's payload is still in flight; this reader shares
      // it instead of issuing its own.
      if (avail > now) ++stats_.requests_combined;
      return std::max(now, avail);
    }
    if (sched_.comm.reuse_replicas && directory_.reusable(obj, to)) {
      // Revalidation: the dropped replica still matches the current data
      // version, so a control round-trip re-admits it — no payload.
      const SimTime req_arr =
          network_->schedule_transfer(to, from, request_bytes, now);
      const SimTime grant_arr =
          network_->schedule_transfer(from, to, grant_bytes, req_arr);
      stats_.messages += 2;
      stats_.bytes_sent += request_bytes + grant_bytes;
      ++stats_.replicas_reused;
      stats_.bytes_avoided += info.byte_size();
      if (tracer_.enabled()) {
        tracer_.span_begin_at(now, obs::Subsystem::kStore, "store.fetch", obj,
                              from, "revalidate " + info.name);
        tracer_.span_end_at(grant_arr, obs::Subsystem::kStore, "store.fetch",
                            obj, to, static_cast<double>(info.byte_size()));
      }
      directory_.revalidate_to(obj, to);
      set_available_at(obj, to, grant_arr);
      JADE_TRACE("t=" << now << " revalidate " << info.name << " on " << to
                      << " granted t=" << grant_arr);
      return grant_arr;
    }
    // Copy: request to the owner, data back; the owner keeps its version so
    // machines read concurrently (object replication, Section 5).
    const SimTime req_arr =
        network_->schedule_transfer(to, from, request_bytes, now);
    SimTime data_arr = network_->schedule_transfer(from, to, payload,
                                                   req_arr);
    stats_.messages += 2;
    stats_.bytes_sent += request_bytes + payload;
    stats_.payload_bytes += info.byte_size();
    data_arr += conversion_cost(obj, from, to);
    if (tracer_.enabled()) {
      tracer_.span_begin_at(now, obs::Subsystem::kStore, "store.fetch", obj,
                            from, "copy " + info.name);
      tracer_.span_end_at(data_arr, obs::Subsystem::kStore, "store.fetch",
                          obj, to, static_cast<double>(info.byte_size()));
    }
    directory_.replicate_to(obj, to);
    ++stats_.object_copies;
    set_available_at(obj, to, data_arr);
    JADE_TRACE("t=" << now << " copy " << info.name << " " << from << "->"
                    << to << " arrives t=" << data_arr);
    return data_arr;
  }

  // Exclusive (write/commute) access: the object *moves*; every other copy
  // is deallocated (Figure 7(c)).
  SimTime avail = std::max(now, available_at(obj, to));
  if (from != to) {
    if (sched_.comm.reuse_replicas &&
        (directory_.present(obj, to) || directory_.reusable(obj, to))) {
      // Upgrade in place: the destination already holds (or can revalidate)
      // the current bytes, so only ownership travels — request and grant,
      // no payload move.
      const SimTime req_arr =
          network_->schedule_transfer(to, from, request_bytes, now);
      const SimTime grant_arr =
          network_->schedule_transfer(from, to, grant_bytes, req_arr);
      stats_.messages += 2;
      stats_.bytes_sent += request_bytes + grant_bytes;
      ++stats_.replicas_reused;
      stats_.bytes_avoided += info.byte_size();
      if (!directory_.present(obj, to)) directory_.revalidate_to(obj, to);
      avail = std::max(avail, grant_arr);
      if (tracer_.enabled()) {
        tracer_.span_begin_at(now, obs::Subsystem::kStore, "store.fetch", obj,
                              from, "upgrade " + info.name);
        tracer_.span_end_at(avail, obs::Subsystem::kStore, "store.fetch",
                            obj, to, static_cast<double>(info.byte_size()));
      }
      JADE_TRACE("t=" << now << " upgrade " << info.name << " in place on "
                      << to << " granted t=" << grant_arr);
    } else {
      const SimTime req_arr =
          network_->schedule_transfer(to, from, request_bytes, now);
      SimTime data_arr = network_->schedule_transfer(from, to, payload,
                                                     req_arr);
      stats_.messages += 2;
      stats_.bytes_sent += request_bytes + payload;
      stats_.payload_bytes += info.byte_size();
      data_arr += conversion_cost(obj, from, to);
      avail = data_arr;
      ++stats_.object_moves;
      if (tracer_.enabled()) {
        tracer_.span_begin_at(now, obs::Subsystem::kStore, "store.fetch", obj,
                              from, "move " + info.name);
        tracer_.span_end_at(data_arr, obs::Subsystem::kStore, "store.fetch",
                            obj, to, static_cast<double>(info.byte_size()));
      }
      JADE_TRACE("t=" << now << " move " << info.name << " " << from << "->"
                      << to << " arrives t=" << data_arr);
    }
  }
  std::vector<MachineId> targets;
  for (MachineId h : directory_.holders(obj))
    if (h != to && h != from) targets.push_back(h);
  send_invalidations(obj, from, targets, now);
  directory_.move_to(obj, to);
  set_available_at(obj, to, avail);
  return avail;
}

SimTime SimEngine::fetch_objects(SimTask& t, std::vector<FetchItem> items) {
  if (cluster_.shared_memory() || items.empty()) return sim_.now();

  if (ft_enabled()) {
    // Wait until every blocking item's owner is up (or a local replica
    // satisfies its read).  Waking from one park can find another item's
    // owner newly crashed, so loop until a full pass makes no park.
    bool parked = true;
    while (parked) {
      parked = false;
      for (const FetchItem& item : items) {
        if (!item.blocking) continue;
        if (directory_.lost(item.obj))
          throw UnrecoverableError(
              "object " + std::to_string(item.obj) + " ('" +
              objects_.info(item.obj).name +
              "') is unrecoverable: its only copy died with machine " +
              std::to_string(directory_.owner(item.obj)) +
              " and stable storage is disabled");
        const MachineId owner = directory_.owner(item.obj);
        if (injector_->machine_up(owner)) continue;
        if (!item.exclusive && directory_.present(item.obj, t.machine))
          continue;
        JADE_TRACE("t=" << sim_.now() << " " << t.node->name()
                        << " waits for recovery of obj " << item.obj
                        << " (owner " << owner << " is down)");
        recovery_waiters_[static_cast<std::size_t>(owner)].push_back(t.node);
        park_inactive(t, Wait::kRecovery);
        parked = true;
        break;
      }
    }
    // Prefetch hints are best-effort: drop the ones recovery would have to
    // wait for.
    std::erase_if(items, [this](const FetchItem& item) {
      if (item.blocking) return false;
      return directory_.lost(item.obj) ||
             !injector_->machine_up(directory_.owner(item.obj));
    });
  }

  // Everything from here is synchronous (scheduling only; no time passes),
  // so the classification below cannot be invalidated by a concurrent event.
  const MachineId to = t.machine;
  SimTime ready = sim_.now();

  if (!sched_.comm.combine_requests) {
    for (const FetchItem& item : items) {
      const SimTime at = transfer_object(t, item.obj, to, item.exclusive);
      if (item.blocking) ready = std::max(ready, at);
    }
    return ready;
  }

  // Group the items that need a round-trip to a remote owner; everything
  // else (already present for a read, or owned here) resolves locally.
  // std::map keys the batches in machine order — deterministic.
  std::map<MachineId, std::vector<FetchItem>> batches;
  for (const FetchItem& item : items) {
    const MachineId from = directory_.owner(item.obj);
    const bool local =
        from == to || (!item.exclusive && directory_.present(item.obj, to));
    if (local) {
      const SimTime at = transfer_object(t, item.obj, to, item.exclusive);
      if (item.blocking) ready = std::max(ready, at);
    } else {
      batches[from].push_back(item);
    }
  }

  for (auto& [from, batch] : batches) {
    SimTime at;
    if (batch.size() == 1) {
      at = transfer_object(t, batch.front().obj, to, batch.front().exclusive);
    } else {
      at = fetch_batch(t, from, batch);
    }
    for (const FetchItem& item : batch)
      if (item.blocking) ready = std::max(ready, at);
  }
  return ready;
}

SimTime SimEngine::fetch_batch(SimTask& t, MachineId from,
                               const std::vector<FetchItem>& batch) {
  const SimTime now = sim_.now();
  const MachineId to = t.machine;
  const std::size_t floor = cluster_.control_message_bytes;

  // Classify each item once: a reusable (or, for an upgrade, present)
  // replica is served by the grant alone; the rest ride the reply payload.
  std::vector<ObjectId> objs;
  std::vector<bool> reuse;
  std::size_t total_payload = 0;
  std::size_t naive_control = 0;
  objs.reserve(batch.size());
  reuse.reserve(batch.size());
  for (const FetchItem& item : batch) {
    const ObjectInfo& info = objects_.info(item.obj);
    objs.push_back(item.obj);
    const bool r =
        sched_.comm.reuse_replicas &&
        (directory_.reusable(item.obj, to) ||
         (item.exclusive && directory_.present(item.obj, to)));
    reuse.push_back(r);
    if (!r) total_payload += info.byte_size();
    // What the per-object protocol would have spent on control traffic.
    naive_control +=
        control_message_size(MsgKind::kObjectRequest, item.obj, to, from, 0,
                             floor) +
        control_message_size(MsgKind::kObjectData, item.obj, from, to,
                             info.byte_size(), floor);
  }

  const std::size_t request_bytes = batch_request_size(objs, to, from, floor);
  const std::size_t reply_header = control_message_size(
      total_payload == 0 ? MsgKind::kObjectGrant : MsgKind::kObjectData,
      objs.front(), from, to, total_payload, floor);
  const std::size_t reply_bytes = reply_header + total_payload;

  const SimTime req_arr =
      network_->schedule_transfer(to, from, request_bytes, now);
  SimTime data_arr =
      network_->schedule_transfer(from, to, reply_bytes, req_arr);
  stats_.messages += 2;
  stats_.bytes_sent += request_bytes + reply_bytes;
  stats_.payload_bytes += total_payload;
  stats_.requests_combined += batch.size() - 1;
  const std::size_t batched_control = request_bytes + reply_header;
  if (naive_control > batched_control)
    stats_.bytes_avoided += naive_control - batched_control;

  // The sender converts every payload-carrying member before the reply
  // goes out; the conversions serialize into the batch's arrival.
  for (std::size_t i = 0; i < batch.size(); ++i)
    if (!reuse[i]) data_arr += conversion_cost(batch[i].obj, from, to);

  SimTime last = data_arr;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const FetchItem& item = batch[i];
    const ObjectInfo& info = objects_.info(item.obj);
    const char* verb = item.exclusive ? (reuse[i] ? "upgrade " : "move ")
                                      : (reuse[i] ? "revalidate " : "copy ");
    if (tracer_.enabled()) {
      tracer_.span_begin_at(now, obs::Subsystem::kStore, "store.fetch",
                            item.obj, from, verb + info.name);
      tracer_.span_end_at(data_arr, obs::Subsystem::kStore, "store.fetch",
                          item.obj, to,
                          static_cast<double>(info.byte_size()));
    }
    // A payload already in flight to this machine may arrive after the
    // batch's grant; the object is usable only once both have landed.
    const SimTime avail = std::max(data_arr, available_at(item.obj, to));
    if (!item.exclusive) {
      if (reuse[i]) {
        directory_.revalidate_to(item.obj, to);
        ++stats_.replicas_reused;
        stats_.bytes_avoided += info.byte_size();
      } else {
        directory_.replicate_to(item.obj, to);
        ++stats_.object_copies;
      }
    } else {
      if (reuse[i]) {
        if (!directory_.present(item.obj, to))
          directory_.revalidate_to(item.obj, to);
        ++stats_.replicas_reused;
        stats_.bytes_avoided += info.byte_size();
      } else {
        ++stats_.object_moves;
      }
      std::vector<MachineId> targets;
      for (MachineId h : directory_.holders(item.obj))
        if (h != to && h != from) targets.push_back(h);
      send_invalidations(item.obj, from, targets, now);
      directory_.move_to(item.obj, to);
    }
    set_available_at(item.obj, to, avail);
    last = std::max(last, avail);
    JADE_TRACE("t=" << now << " batch " << verb << info.name << " " << from
                    << "->" << to << " arrives t=" << avail);
  }
  return last;
}

// --- run -------------------------------------------------------------------

void SimEngine::run(std::function<void(TaskContext&)> root_body) {
  JADE_ASSERT_MSG(!ran_, "a Runtime supports a single run()");
  ran_ = true;

  // The original task starts on machine 0, occupying one of its contexts
  // (Figure 7(a): the first machine runs the main task).
  JADE_ASSERT(machines_[0].free_contexts > 0);
  --machines_[0].free_contexts;
  sim_tasks_.emplace_back();
  SimTask& rt = sim_tasks_.back();
  rt.node = serializer_.root();
  rt.machine = 0;
  rt.creator_machine = 0;
  rt.restartable = false;  // the original task; machine 0 never crashes
  serializer_.root()->engine_data = &rt;
  serializer_.root()->assigned_machine = 0;

  rt.process = sim_.spawn("root", [this, body = std::move(root_body)] {
    ++active_tasks_;
    TaskNode* root = serializer_.root();
    if (tracer_.enabled()) {
      tracer_.instant(obs::Subsystem::kEngine, "task.created", root->id(), 0,
                      0, root->name());
      tracer_.instant(obs::Subsystem::kEngine, "task.dispatched", root->id(),
                      0);
      tracer_.span_begin(obs::Subsystem::kEngine, "task", root->id(), 0,
                         root->name());
      tracer_.instant(obs::Subsystem::kEngine, "task.body_start", root->id(),
                      0);
    }
    TaskContext ctx(this, root);
    body(ctx);
    finish_task(root);
  });

  if (ft_enabled()) schedule_fault_events();

  sim_.run();

  JADE_ASSERT_MSG(serializer_.outstanding() == 0,
                  "simulation drained with outstanding tasks");
  if (!ft_enabled()) stats_.finish_time = sim_.now();
  if (faulty_net_ != nullptr) {
    stats_.messages_dropped = faulty_net_->messages_dropped();
    stats_.message_retries = faulty_net_->message_retries();
  }
  for (std::size_t m = 0; m < machines_.size(); ++m)
    stats_.machine_busy_seconds[m] = machines_[m].busy_seconds;
  publish_runtime_stats();
}

// --- fault injection & recovery --------------------------------------------

bool SimEngine::drained() const {
  return root_done_ && serializer_.outstanding() == 0;
}

void SimEngine::schedule_fault_events() {
  for (const CrashEvent& c : injector_->crashes()) {
    sim_.schedule(c.time, [this, m = c.machine] { handle_crash(m); });
  }
  sim_.schedule(fault_.heartbeat_interval, [this] { send_heartbeats(); });
  sim_.schedule(fault_.heartbeat_interval, [this] { detector_sweep(); });
}

void SimEngine::send_heartbeats() {
  if (drained()) return;
  for (MachineId m = 1; m < machine_count(); ++m) {
    if (!injector_->machine_up(m)) continue;
    const SimTime arrival = network_->schedule_transfer(
        m, 0, fault_.heartbeat_bytes, sim_.now());
    ++stats_.heartbeats_sent;
    stats_.messages += 1;
    stats_.bytes_sent += fault_.heartbeat_bytes;
    sim_.schedule(arrival, [this, m, arrival] {
      // A heartbeat retransmitted past its sender's detected death is
      // stale; the coordinator has fenced the machine and must not let it
      // clear the suspicion (the detector would then declare it dead a
      // second time and recovery would run twice).
      if (injector_->health(m).detected_at != 0) return;
      detector_->heartbeat_received(m, arrival);
    });
  }
  sim_.schedule_in(fault_.heartbeat_interval, [this] { send_heartbeats(); });
}

void SimEngine::detector_sweep() {
  if (drained()) return;
  for (MachineId suspect : detector_->sweep(sim_.now())) {
    if (injector_->machine_up(suspect)) {
      // Congestion delayed the heartbeats past the threshold.  The
      // coordinator double-checks with a direct probe (modeled as ground
      // truth) and does not kill a live machine's work; the standing
      // suspicion clears when the next heartbeat arrives.
      ++stats_.false_suspicions;
      tracer_.instant(obs::Subsystem::kFt, "ft.false_suspicion",
                      static_cast<std::uint64_t>(suspect), suspect);
      continue;
    }
    recover_machine(suspect);
  }
  sim_.schedule_in(fault_.heartbeat_interval, [this] { detector_sweep(); });
}

void SimEngine::handle_crash(MachineId m) {
  if (drained()) return;  // the program already finished
  injector_->record_crash(m, sim_.now());
  ++stats_.machine_crashes;
  tracer_.instant(obs::Subsystem::kFt, "ft.crash",
                  static_cast<std::uint64_t>(m), m);
  JADE_TRACE("t=" << sim_.now() << " CRASH machine " << m << " ("
                  << machines_[m].desc.name << ")");
  // The machine goes dark: no new work is ever placed on it.
  machines_[static_cast<std::size_t>(m)].free_contexts = 0;
  // Kill every restartable attempt resident on the machine, in creation
  // order (deterministic).  Non-restartable attempts (they spawned children
  // or ran a with-cont — effects that already escaped) ride out the crash
  // and run to completion; see docs/FAULT_TOLERANCE.md for the model.
  std::vector<TaskNode*> victims;
  for (SimTask& t : sim_tasks_) {
    if (t.machine != m || !t.restartable) continue;
    if (t.node->state() == TaskState::kCompleted) continue;
    if (t.process == nullptr ||
        t.process->state() == Process::State::kDone ||
        t.process->abandoned())
      continue;
    victims.push_back(t.node);
  }
  for (TaskNode* task : victims) kill_task_attempt(task);
  for (TaskNode* task : victims)
    pending_recovery_[static_cast<std::size_t>(m)].push_back(task);
  // Surviving (non-restartable) residents parked for a context slot would
  // wait forever: the holders they waited on were just killed and killed
  // attempts never release.  The dead machine has no real slots anyway —
  // wake them all.
  auto& waiters = machines_[static_cast<std::size_t>(m)].context_waiters;
  while (!waiters.empty()) {
    TaskNode* next = waiters.front();
    waiters.pop_front();
    sim_.resume(st(next).process);
  }
  // Replica/ownership surgery waits for *detection*: until the failure
  // detector notices, the cluster keeps routing requests at the dead
  // machine (and transfer_object parks the requesters).
  maybe_release_throttled();
}

void SimEngine::kill_task_attempt(TaskNode* task) {
  SimTask& t = st(task);
  ++stats_.tasks_killed;
  tracer_.instant(obs::Subsystem::kFt, "ft.kill", task->id(), t.machine,
                  task->charged_work - t.attempt_charge_base);
  JADE_TRACE("t=" << sim_.now() << " kill " << task->name() << " on machine "
                  << t.machine);
  // Undo the attempt's writes (reverse acquisition order), the data-version
  // bumps they opened, and the charge.  Clearing `dirtied` makes the re-run
  // bump again from the restored version; nothing can have recorded a
  // reusable replica at the doomed version (it was dropped, not copied).
  for (auto it = t.snapshots.rbegin(); it != t.snapshots.rend(); ++it) {
    std::copy(it->bytes.begin(), it->bytes.end(), directory_.data(it->obj));
    directory_.set_data_version(it->obj, it->data_version);
  }
  t.snapshots.clear();
  t.dirtied.clear();
  const double wasted = task->charged_work - t.attempt_charge_base;
  stats_.wasted_charged_work += wasted;
  task->charged_work = t.attempt_charge_base;

  Process* p = t.process;
  const bool started = p->state() != Process::State::kCreated;
  if (started) {
    // Undo the wait-specific bookkeeping before aborting the process.
    switch (t.wait) {
      case Wait::kFetch:
      case Wait::kCpu:
        // Self-resume pending (becomes a no-op once aborted); these waits
        // count as active.
        --active_tasks_;
        break;
      case Wait::kUnblock: {
        auto it = std::find(to_unblock_.begin(), to_unblock_.end(), task);
        if (it != to_unblock_.end()) to_unblock_.erase(it);
        break;
      }
      case Wait::kCommute:
        for (auto& [obj, waiters] : commute_waiters_) {
          auto it = std::find(waiters.begin(), waiters.end(), task);
          if (it != waiters.end()) waiters.erase(it);
        }
        break;
      case Wait::kContext: {
        auto& waiters =
            machines_[static_cast<std::size_t>(t.machine)].context_waiters;
        auto it = std::find(waiters.begin(), waiters.end(), task);
        JADE_ASSERT(it != waiters.end());
        waiters.erase(it);
        break;
      }
      case Wait::kRecovery:
        for (auto& waiters : recovery_waiters_) {
          auto it = std::find(waiters.begin(), waiters.end(), task);
          if (it != waiters.end()) waiters.erase(it);
        }
        break;
      case Wait::kThrottle:
      case Wait::kNone:
        // Restartable tasks never spawn, so they never throttle-park; and a
        // parked process always has a wait kind.
        JADE_ASSERT_MSG(false, "killed task in an impossible wait state");
    }
  }
  // Hand held commute tokens to the next waiters.  (A waiter that is itself
  // being killed in this sweep gets its resume abandoned and the token
  // released again when its own kill runs.)
  while (!t.commute_tokens.empty()) {
    const ObjectId obj = t.commute_tokens.back();
    t.commute_tokens.pop_back();
    JADE_ASSERT(commute_holder_[obj] == task);
    release_commute_token(obj);
  }
  // Rewind the serializer: a started attempt is kRunning (task_started is
  // the first thing a task process does); an assigned-but-unstarted one is
  // still kReady and needs no rewind.
  if (started) serializer_.abort_attempt(task);
  sim_.abort(p);

  t.process = nullptr;
  t.machine = -1;
  t.wait = Wait::kNone;
  task->assigned_machine = -1;
}

void SimEngine::recover_machine(MachineId m) {
  injector_->record_detected(m, sim_.now());
  stats_.detection_latency_total +=
      sim_.now() - injector_->health(m).crashed_at;
  tracer_.instant(obs::Subsystem::kFt, "ft.recover",
                  static_cast<std::uint64_t>(m), m,
                  sim_.now() - injector_->health(m).crashed_at);
  JADE_TRACE("t=" << sim_.now() << " machine " << m
                  << " declared dead; recovering");

  // Directory surgery, in ObjectId order (deterministic).
  const std::vector<std::uint8_t> up = injector_->up_mask();
  for (const RecoveryAction& a :
       plan_object_recovery(directory_, m, up, fault_.stable_storage)) {
    switch (a.fate) {
      case ObjectFate::kRehomed:
        if (a.owner_moved) {
          directory_.set_owner(a.obj, a.new_home);
          directory_.drop_copy(a.obj, m);
          ++stats_.objects_rehomed;
          // Home re-election costs a control message to the new home; the
          // replica it already holds becomes the authoritative copy.
          const std::size_t bytes = cluster_.control_message_bytes;
          network_->schedule_transfer(0, a.new_home, bytes, sim_.now());
          stats_.messages += 1;
          stats_.bytes_sent += bytes;
        } else {
          directory_.drop_copy(a.obj, m);  // only a replica died
        }
        break;
      case ObjectFate::kRestored: {
        directory_.drop_copy(a.obj, m);
        directory_.restore_to(a.obj, a.new_home);
        const SimTime done =
            sim_.now() + fault_.restore_latency +
            static_cast<SimTime>(directory_.object_bytes(a.obj)) /
                fault_.restore_bytes_per_second;
        set_available_at(a.obj, a.new_home, done);
        ++stats_.objects_restored;
        break;
      }
      case ObjectFate::kLost:
        directory_.drop_copy(a.obj, m);
        directory_.mark_lost(a.obj);
        ++stats_.objects_lost;
        break;
    }
  }

  // Forget cached availability on the dead machine (keys are
  // obj*kMaxMachines + m).
  for (auto it = available_at_.begin(); it != available_at_.end();) {
    if (static_cast<MachineId>(it->first % kMaxMachines) == m)
      it = available_at_.erase(it);
    else
      ++it;
  }

  // Re-queue the killed attempts onto survivors, in kill order.
  auto& pending = pending_recovery_[static_cast<std::size_t>(m)];
  for (TaskNode* task : pending) {
    if (task->placement == m)
      throw UnrecoverableError(
          "task '" + task->name() + "' is pinned to crashed machine " +
          std::to_string(m) + " and cannot be re-run elsewhere");
    ++stats_.tasks_requeued;
    tracer_.instant(obs::Subsystem::kFt, "ft.requeue", task->id(), m);
    ready_.push_back(task);
  }
  pending.clear();

  // Wake the transfers that were parked on this machine's recovery.
  std::deque<TaskNode*> waiters;
  waiters.swap(recovery_waiters_[static_cast<std::size_t>(m)]);
  for (TaskNode* w : waiters) sim_.resume(st(w).process);

  try_dispatch();
  maybe_release_throttled();
}

void SimEngine::maybe_snapshot(SimTask& t, ObjectId obj) {
  for (const SimTask::Snapshot& s : t.snapshots)
    if (s.obj == obj) return;  // first write wins; later acquires are no-ops
  auto view = directory_.data_view(obj);
  t.snapshots.push_back(SimTask::Snapshot{
      obj, directory_.data_version(obj),
      std::vector<std::byte>(view.begin(), view.end())});
}

}  // namespace jade
