// The engine interface: everything the Jade front end (Runtime/TaskContext)
// needs from an execution platform.
//
// Three engines implement it:
//   SerialEngine — executes every task inline at its creation point; this IS
//                  the serial semantics every other execution must match.
//   ThreadEngine — real shared-memory parallelism on a worker pool.
//   SimEngine    — deterministic virtual-time execution on a simulated
//                  (possibly heterogeneous, message-passing) cluster; the
//                  platform for all of the paper's evaluation experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "jade/core/access.hpp"
#include "jade/core/object.hpp"
#include "jade/core/queues.hpp"
#include "jade/core/stats.hpp"
#include "jade/core/task.hpp"
#include "jade/obs/metrics.hpp"
#include "jade/obs/tracer.hpp"
#include "jade/support/time.hpp"

namespace jade {

/// Observability configuration (src/jade/obs): structured tracing is off by
/// default and zero-cost when off (a null sink pointer behind one branch).
struct ObsConfig {
  /// Record a structured event trace (export with Runtime::write_chrome_trace).
  bool trace = false;
  /// Ring-buffer capacity; when full the oldest events are dropped (and
  /// counted — the exporter reports the loss).
  std::size_t trace_capacity = obs::TraceRecorder::kDefaultCapacity;
  /// Stamp events with wall-clock time too.  Off by default: wall clocks
  /// make SimEngine exports non-deterministic.
  bool wall_clock = false;
};

// RuntimeStats moved to jade/core/stats.hpp so the runtime services below
// the engines (store/coherence, ft/recovery_coordinator) can report into it
// without depending on this header.

/// Thrown inside a speculatively executing body (SchedPolicy::spec) when it
/// reaches an operation the snapshot-isolated path cannot perform — spawn,
/// with-cont, a commuting acquisition, an undeclared access.  The engine
/// catches it, aborts the speculation, and the task later runs normally,
/// where a genuine error reproduces deterministically.
struct SpeculationUnwind {};

class Engine {
 public:
  virtual ~Engine() = default;

  // --- objects -------------------------------------------------------------

  /// Creates a shared object (zero-initialized).  `home` places the initial
  /// copy on a specific simulated machine (-1: engine's default placement,
  /// round-robin in SimEngine).  Legal before run() and from inside tasks.
  virtual ObjectId allocate(TypeDescriptor type, std::string name,
                            MachineId home) = 0;

  /// Host-side initialization before run() (or between runs).
  virtual void put_bytes(ObjectId obj, std::span<const std::byte> data) = 0;

  /// Host-side readback after run().
  virtual std::vector<std::byte> get_bytes(ObjectId obj) = 0;

  virtual const ObjectInfo& object_info(ObjectId obj) const = 0;

  /// Tags an object with its owning tenant (see ObjectTable::set_tenant).
  /// Server sessions call this right after allocate(), before the object can
  /// appear in any declaration.
  virtual void set_object_tenant(ObjectId obj, TenantId tenant) = 0;

  /// Releases an object's byte storage after its owner is torn down (server
  /// teardown path).  The id stays allocated — metadata remains so stale
  /// references fail loudly — but the bytes are freed.  Engines that keep no
  /// erasable storage may ignore it; callers must guarantee no live task
  /// still declares the object.
  virtual void release_object(ObjectId obj) { (void)obj; }

  // --- execution -----------------------------------------------------------

  /// Executes `root_body` as the main task and returns when the whole task
  /// graph has drained.
  virtual void run(std::function<void(TaskContext&)> root_body) = 0;

  // --- TaskContext backend -------------------------------------------------

  /// A non-null `tenant` makes the child a program root of that tenant (see
  /// Serializer::create_task); tasks otherwise inherit the parent's tenant.
  virtual void spawn(TaskNode* parent,
                     const std::vector<AccessRequest>& requests,
                     TaskContext::BodyFn body, std::string name,
                     MachineId placement, TenantCtl* tenant = nullptr) = 0;

  virtual void with_cont(TaskNode* task,
                         const std::vector<AccessRequest>& requests) = 0;

  /// Access check + global→local translation; blocks (in the engine's way)
  /// until the serial order admits the access.  The pointer stays valid for
  /// the remainder of the task.
  virtual std::byte* acquire_bytes(TaskNode* task, ObjectId obj,
                                   std::uint8_t mode) = 0;

  virtual void charge(TaskNode* task, double units) = 0;

  virtual int machine_count() const = 0;

  /// Machine `task` is currently executing on (0 where machines don't
  /// exist; the executing worker's id in ThreadEngine).
  virtual MachineId machine_of(TaskNode* task) const = 0;

  /// Pokes the engine from an outside thread after external state it waits
  /// on changed (e.g. the server cancelled a tenant whose tasks are parked
  /// on the throttle gate).  Default: nothing to poke.
  virtual void notify_external() {}

  const RuntimeStats& stats() const { return stats_; }

  // --- observability (src/jade/obs) ----------------------------------------

  /// Installs the trace recorder and connects the tracer to this engine's
  /// clock.  Engines with instrumented subcomponents (SimEngine: network,
  /// directory) override to propagate the tracer.  Call before run().
  virtual void enable_tracing(const ObsConfig& config);

  obs::Tracer& tracer() { return tracer_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// The installed recorder, or nullptr when tracing is off.
  const obs::TraceRecorder* trace() const { return recorder_.get(); }

 protected:
  /// The tracer's clock: virtual time in SimEngine, wall/logical time in
  /// the real engines.  Only consulted while tracing is enabled.
  virtual SimTime trace_now() const { return 0; }

  /// Publishes every RuntimeStats field into `metrics_` under the canonical
  /// dotted names (docs/OBSERVABILITY.md), giving benches and tests one
  /// uniform registry view.  Engines call this at the end of run().
  void publish_runtime_stats();

  RuntimeStats stats_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

}  // namespace jade
