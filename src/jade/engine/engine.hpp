// The engine interface: everything the Jade front end (Runtime/TaskContext)
// needs from an execution platform.
//
// Three engines implement it:
//   SerialEngine — executes every task inline at its creation point; this IS
//                  the serial semantics every other execution must match.
//   ThreadEngine — real shared-memory parallelism on a worker pool.
//   SimEngine    — deterministic virtual-time execution on a simulated
//                  (possibly heterogeneous, message-passing) cluster; the
//                  platform for all of the paper's evaluation experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include <memory>

#include "jade/core/access.hpp"
#include "jade/core/object.hpp"
#include "jade/core/queues.hpp"
#include "jade/core/task.hpp"
#include "jade/obs/metrics.hpp"
#include "jade/obs/tracer.hpp"
#include "jade/support/time.hpp"

namespace jade {

/// Observability configuration (src/jade/obs): structured tracing is off by
/// default and zero-cost when off (a null sink pointer behind one branch).
struct ObsConfig {
  /// Record a structured event trace (export with Runtime::write_chrome_trace).
  bool trace = false;
  /// Ring-buffer capacity; when full the oldest events are dropped (and
  /// counted — the exporter reports the loss).
  std::size_t trace_capacity = obs::TraceRecorder::kDefaultCapacity;
  /// Stamp events with wall-clock time too.  Off by default: wall clocks
  /// make SimEngine exports non-deterministic.
  bool wall_clock = false;
};

/// Counters every engine maintains (those that apply to it).
struct RuntimeStats {
  std::uint64_t tasks_created = 0;
  std::uint64_t tasks_inlined = 0;   ///< executed in the creator (throttling)
  std::uint64_t tasks_migrated = 0;  ///< executed off the creating machine
  std::uint64_t throttle_suspensions = 0;
  std::uint64_t throttle_giveups = 0;  ///< creator resumed to avoid deadlock

  // --- work-stealing dispatch (ThreadEngine) -------------------------------
  std::uint64_t tasks_stolen = 0;      ///< executed off the enabling thread
  std::uint64_t worker_parks = 0;      ///< times a thread went to sleep idle
  std::uint64_t compensating_workers = 0;  ///< threads spawned for blockers

  std::uint64_t messages = 0;        ///< simulated network messages
  std::uint64_t bytes_sent = 0;
  std::uint64_t payload_bytes = 0;   ///< object-data bytes (bytes_sent minus
                                     ///< control traffic)
  std::uint64_t object_moves = 0;    ///< exclusive transfers (write access)
  std::uint64_t object_copies = 0;   ///< replications (read access)
  std::uint64_t invalidations = 0;
  std::uint64_t scalars_converted = 0;  ///< heterogeneous format conversion

  // --- communication-protocol optimizations (SimEngine, CommConfig) --------
  std::uint64_t requests_combined = 0;  ///< requests that rode a shared fetch
  std::uint64_t replicas_reused = 0;    ///< stale replicas revalidated in place
  std::uint64_t invalidations_coalesced = 0;  ///< unicasts folded into mcasts
  std::uint64_t conversions_cached = 0;  ///< cross-endian conversions skipped
  std::uint64_t bytes_avoided = 0;       ///< wire bytes the optimizations saved

  double total_charged_work = 0;     ///< sum of charge() units
  SimTime finish_time = 0;           ///< virtual completion time (SimEngine)
  std::vector<double> machine_busy_seconds;  ///< per machine (SimEngine)

  // --- fault tolerance (SimEngine with FaultConfig.enabled) ----------------
  std::uint64_t machine_crashes = 0;
  std::uint64_t tasks_killed = 0;     ///< running attempts lost to crashes
  std::uint64_t tasks_requeued = 0;   ///< killed attempts re-run on survivors
  std::uint64_t messages_dropped = 0;
  std::uint64_t message_retries = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t false_suspicions = 0;  ///< live machines suspected (congestion)
  std::uint64_t objects_rehomed = 0;   ///< ownership re-elected to a replica
  std::uint64_t objects_restored = 0;  ///< reloaded from stable storage
  std::uint64_t objects_lost = 0;      ///< sole copy died, no stable storage
  double wasted_charged_work = 0;      ///< charge() units of killed attempts
  SimTime detection_latency_total = 0; ///< sum over crashes of detect - crash
};

class Engine {
 public:
  virtual ~Engine() = default;

  // --- objects -------------------------------------------------------------

  /// Creates a shared object (zero-initialized).  `home` places the initial
  /// copy on a specific simulated machine (-1: engine's default placement,
  /// round-robin in SimEngine).  Legal before run() and from inside tasks.
  virtual ObjectId allocate(TypeDescriptor type, std::string name,
                            MachineId home) = 0;

  /// Host-side initialization before run() (or between runs).
  virtual void put_bytes(ObjectId obj, std::span<const std::byte> data) = 0;

  /// Host-side readback after run().
  virtual std::vector<std::byte> get_bytes(ObjectId obj) = 0;

  virtual const ObjectInfo& object_info(ObjectId obj) const = 0;

  // --- execution -----------------------------------------------------------

  /// Executes `root_body` as the main task and returns when the whole task
  /// graph has drained.
  virtual void run(std::function<void(TaskContext&)> root_body) = 0;

  // --- TaskContext backend -------------------------------------------------

  virtual void spawn(TaskNode* parent,
                     const std::vector<AccessRequest>& requests,
                     TaskContext::BodyFn body, std::string name,
                     MachineId placement) = 0;

  virtual void with_cont(TaskNode* task,
                         const std::vector<AccessRequest>& requests) = 0;

  /// Access check + global→local translation; blocks (in the engine's way)
  /// until the serial order admits the access.  The pointer stays valid for
  /// the remainder of the task.
  virtual std::byte* acquire_bytes(TaskNode* task, ObjectId obj,
                                   std::uint8_t mode) = 0;

  virtual void charge(TaskNode* task, double units) = 0;

  virtual int machine_count() const = 0;

  /// Machine `task` is currently executing on (0 where machines don't
  /// exist; the executing worker's id in ThreadEngine).
  virtual MachineId machine_of(TaskNode* task) const = 0;

  const RuntimeStats& stats() const { return stats_; }

  // --- observability (src/jade/obs) ----------------------------------------

  /// Installs the trace recorder and connects the tracer to this engine's
  /// clock.  Engines with instrumented subcomponents (SimEngine: network,
  /// directory) override to propagate the tracer.  Call before run().
  virtual void enable_tracing(const ObsConfig& config);

  obs::Tracer& tracer() { return tracer_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// The installed recorder, or nullptr when tracing is off.
  const obs::TraceRecorder* trace() const { return recorder_.get(); }

 protected:
  /// The tracer's clock: virtual time in SimEngine, wall/logical time in
  /// the real engines.  Only consulted while tracing is enabled.
  virtual SimTime trace_now() const { return 0; }

  /// Publishes every RuntimeStats field into `metrics_` under the canonical
  /// dotted names (docs/OBSERVABILITY.md), giving benches and tests one
  /// uniform registry view.  Engines call this at the end of run().
  void publish_runtime_stats();

  RuntimeStats stats_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

}  // namespace jade
