// SerialEngine — the reference implementation of Jade's serial semantics.
//
// Every task executes inline at its creation point, which is by definition
// the serial elaboration of the program.  Any other engine must produce
// byte-identical shared-object contents; the determinism property tests
// compare against this engine.
//
// The engine still runs the full serializer machinery (queue insertion,
// enabledness, access checks), both to validate specifications exactly as a
// parallel run would and to assert the serial invariant: at creation time a
// task is always immediately ready.
#pragma once

#include <unordered_map>
#include <vector>

#include "jade/engine/engine.hpp"

namespace jade {

class SerialEngine : public Engine, private SerializerListener {
 public:
  explicit SerialEngine(bool enforce_hierarchy);

  ObjectId allocate(TypeDescriptor type, std::string name,
                    MachineId home) override;
  void put_bytes(ObjectId obj, std::span<const std::byte> data) override;
  std::vector<std::byte> get_bytes(ObjectId obj) override;
  const ObjectInfo& object_info(ObjectId obj) const override;
  void set_object_tenant(ObjectId obj, TenantId tenant) override;
  void release_object(ObjectId obj) override;

  void run(std::function<void(TaskContext&)> root_body) override;

  void spawn(TaskNode* parent, const std::vector<AccessRequest>& requests,
             TaskContext::BodyFn body, std::string name, MachineId placement,
             TenantCtl* tenant) override;
  void with_cont(TaskNode* task,
                 const std::vector<AccessRequest>& requests) override;
  std::byte* acquire_bytes(TaskNode* task, ObjectId obj,
                           std::uint8_t mode) override;
  void charge(TaskNode* task, double units) override;
  int machine_count() const override { return 1; }
  MachineId machine_of(TaskNode*) const override { return 0; }

  /// Exposed for white-box tests.
  Serializer& serializer() { return serializer_; }

 protected:
  /// Serial execution has no clock; events are ordered by a logical counter
  /// (one tick per emitted event), which keeps exported traces deterministic.
  SimTime trace_now() const override {
    return static_cast<SimTime>(logical_time_++);
  }

 private:
  void on_task_ready(TaskNode* /*task*/) override {}
  void on_task_unblocked(TaskNode* task) override;

  void execute(TaskNode* task);

  ObjectTable objects_;
  std::unordered_map<ObjectId, std::vector<std::byte>> buffers_;
  Serializer serializer_;
  mutable std::uint64_t logical_time_ = 0;
};

}  // namespace jade
