// SimEngine — Jade on a simulated (possibly heterogeneous, message-passing)
// cluster, in deterministic virtual time.
//
// This is the platform on which every evaluation experiment runs.  Task
// bodies really execute (results are real and compared against the serial
// engine); their *cost* is declared via TaskContext::charge() and converted
// to virtual seconds by the executing machine's speed.  Object motion goes
// through the interconnect model and the object directory, reproducing the
// paper's Section 3.3 walkthrough:
//
//   * a ready task is assigned to a machine by the dynamic load balancer,
//     preferring machines that already hold its objects (locality);
//   * the runtime then moves (write access) or copies (read access) the
//     declared objects to that machine, converting data formats when the
//     machines' byte orders differ;
//   * while one task's objects are in transit the machine executes another
//     resident task — latency hiding via multiple task contexts;
//   * excess task creation suspends the creating task (throttling), which
//     serial semantics makes deadlock-free.
//
// Every task executes as a cooperative sim::Process, so an unmodified body
// can pause mid-execution in a with-cont — the pipelining construct of
// Section 4.2.
//
// The engine itself is the *conductor*: dispatch, machine contexts, task
// processes, and waits.  The protocol work lives in engine-agnostic runtime
// services it drives through small interfaces —
//   * store/coherence.hpp  — object transfers, batched fetches, replica
//     revalidation, invalidation fan-out, format-conversion caching;
//   * ft/recovery_coordinator.hpp — fault plan, failure detection, attempt
//     kill/rollback, directory surgery, re-queueing;
//   * sched/governor.hpp   — commute-token exclusivity and creation
//     throttling, shared with ThreadEngine.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "jade/engine/engine.hpp"
#include "jade/ft/recovery_coordinator.hpp"
#include "jade/mach/machine.hpp"
#include "jade/model/planner.hpp"
#include "jade/net/network.hpp"
#include "jade/obs/timeline_view.hpp"
#include "jade/sched/governor.hpp"
#include "jade/sched/policies.hpp"
#include "jade/sim/simulation.hpp"
#include "jade/store/coherence.hpp"
#include "jade/store/directory.hpp"

namespace jade {

class FaultyNetwork;

class SimEngine : public Engine, private SerializerListener {
 public:
  SimEngine(ClusterConfig cluster, SchedPolicy sched, bool enforce_hierarchy,
            FaultConfig fault = {},
            std::shared_ptr<const model::Planner> planner = nullptr);
  ~SimEngine() override;

  ObjectId allocate(TypeDescriptor type, std::string name,
                    MachineId home) override;
  void put_bytes(ObjectId obj, std::span<const std::byte> data) override;
  std::vector<std::byte> get_bytes(ObjectId obj) override;
  const ObjectInfo& object_info(ObjectId obj) const override;
  void set_object_tenant(ObjectId obj, TenantId tenant) override;

  void run(std::function<void(TaskContext&)> root_body) override;

  /// Also attaches the tracer to the network model and object directory, so
  /// one toggle lights up every subsystem.
  void enable_tracing(const ObsConfig& cfg) override;

  void spawn(TaskNode* parent, const std::vector<AccessRequest>& requests,
             TaskContext::BodyFn body, std::string name, MachineId placement,
             TenantCtl* tenant) override;
  void with_cont(TaskNode* task,
                 const std::vector<AccessRequest>& requests) override;
  std::byte* acquire_bytes(TaskNode* task, ObjectId obj,
                           std::uint8_t mode) override;
  void charge(TaskNode* task, double units) override;
  int machine_count() const override { return cluster_.machine_count(); }
  MachineId machine_of(TaskNode* task) const override;

  /// Virtual time now (for apps/benches that trace progress).
  SimTime now() const { return sim_.now(); }
  const NetworkModel& network() const { return *network_; }
  const ObjectDirectory& directory() const { return directory_; }

  /// Ground truth of the failure model, or nullptr when faults are off.
  const FaultInjector* fault_injector() const {
    return ft_ ? &ft_->injector() : nullptr;
  }

  /// Per-task execution records (empty unless sched.record_timeline).
  const std::vector<TaskTimeline>& timeline() const { return timeline_; }

 protected:
  /// Trace timestamps are virtual time — the whole point of tracing a
  /// deterministic simulation is a deterministic trace.
  SimTime trace_now() const override;

 private:
  /// What a parked task process is waiting for (routes resumes).
  enum class Wait : std::uint8_t {
    kNone,
    kFetch,     ///< object transfers in flight (self-resume scheduled)
    kCpu,       ///< charge() occupancy (self-resume scheduled)
    kUnblock,   ///< serializer dependency (deliver_unblock resumes)
    kContext,   ///< machine task-context slot (release_context resumes)
    kThrottle,  ///< outstanding-task backlog (completion path resumes)
    kCommute,   ///< commute token held by another task
    kRecovery,  ///< object's owner crashed; recovery re-homes, then resumes
  };

  /// Per-task speculation state (SchedPolicy::spec).  Lives beside the
  /// AttemptState rollback image: a speculation never needs pre-write
  /// snapshots because its writes land in the shadow buffers — discarding
  /// them IS the rollback, which is also why a speculative task stays
  /// restartable by construction.
  struct SpecState {
    bool active = false;     ///< a speculative attempt is live (uncommitted)
    bool body_done = false;  ///< the speculative body finished executing
    bool failed = false;     ///< body hit an unsupported op or threw
    /// Snapshot-isolated buffers, one per declared non-pure-commute
    /// immediate object, in declaration order.
    std::vector<std::pair<ObjectId, std::vector<std::byte>>> shadows;
    /// Objects the body wrote (subset of shadows, first-write order).
    std::vector<ObjectId> dirty;
    /// Per-object serializer write epochs captured at snapshot time; the
    /// commit check compares them against the current epochs.
    std::vector<std::pair<ObjectId, std::uint64_t>> epochs;
    /// Objects whose unexercised-writer predecessors the speculation bets
    /// on — the conflict-history throttle's accounting key.
    std::vector<ObjectId> contested;
    double charge_base = 0;  ///< charged_work at speculative dispatch
  };

  struct SimTask {
    TaskNode* node = nullptr;
    Process* process = nullptr;
    MachineId machine = -1;          ///< executing machine once assigned
    MachineId creator_machine = 0;   ///< where the withonly executed
    Wait wait = Wait::kNone;
    std::vector<ObjectId> objects;   ///< declared objects, in decl order
    /// Rollback state of the current attempt; the recovery coordinator
    /// restores/clears it on kill (docs/FAULT_TOLERANCE.md).
    AttemptState attempt;
    SpecState spec;
    // timeline capture (when sched.record_timeline)
    SimTime created = 0;
    SimTime dispatched = 0;
    SimTime body_start = 0;
  };

  struct Machine {
    MachineDesc desc;
    int free_contexts = 0;
    /// Application compute (charge()) serializes on the CPU proper.
    SimTime cpu_free_until = 0;
    /// Runtime bookkeeping (task creation/dispatch) runs on its own lane:
    /// real implementations process task management asynchronously with
    /// compute (interrupt-level message handling / timesharing), so a long
    /// compute slice must not stall the creator for its full duration.
    SimTime runtime_free_until = 0;
    double busy_seconds = 0;
    std::deque<TaskNode*> context_waiters;  ///< unblocked tasks re-entering
  };

  /// Adapts the simulation clock + network model to the coherence
  /// protocol's transport seam (defined in sim_engine.cpp).
  struct Transport;
  /// Engine mechanism the recovery coordinator drives (defined in
  /// sim_engine.cpp).
  struct FtHooks;

  // SerializerListener (fires inside serializer calls; engine drains after).
  void on_task_ready(TaskNode* task) override;
  void on_task_unblocked(TaskNode* task) override;

  SimTask& st(TaskNode* task);

  /// Dispatches + delivers queued unblocks; call after every serializer
  /// mutation.
  void post_serializer();
  void try_dispatch();
  void assign(TaskNode* task, MachineId m);

  // --- speculative execution (SchedPolicy::spec) ---------------------------
  /// Dispatches eligible pending tasks speculatively onto leftover free
  /// contexts, after the ready loop has taken everything it wants.
  void try_spec_dispatch();
  void start_speculation(TaskNode* task, MachineId m,
                         std::vector<ObjectId> contested);
  /// The body of a speculative attempt's sim process: runs the task body
  /// against the shadow buffers, then hands the context back and (if the
  /// serializer enabled the task meanwhile) decides commit/abort.
  void spec_process(TaskNode* task);
  /// Commit check at serial enable time: no-op until the body is done;
  /// then commits (epochs unchanged, body clean) or aborts.
  void decide_speculation(TaskNode* task);
  void commit_speculation(TaskNode* task);
  /// `charge_history` distinguishes a data-conflict abort (throttles the
  /// contested objects) from a crash/failure abort (does not).
  void abort_speculation(TaskNode* task, bool charge_history);
  /// Crash handling: aborts every live speculation resident on `m` before
  /// the recovery coordinator scans for restartable victims.
  void abort_speculations_on(MachineId m);
  std::byte* spec_acquire_bytes(TaskNode* task, ObjectId obj,
                                std::uint8_t mode);

  /// The body of every task's sim process.
  void task_process(TaskNode* task);
  void finish_task(TaskNode* task);

  void release_context(SimTask& t);
  void reacquire_context(SimTask& t);
  /// Parks the current task in a wait that other tasks must resolve
  /// (dependency, commute token, machine context, throttle), maintaining
  /// the runnable-task count and waking a throttled creator if this park
  /// leaves nothing else runnable.
  void park_inactive(SimTask& t, Wait kind);
  void maybe_release_throttled();
  void deliver_unblock(TaskNode* task);

  /// Occupies the machine's compute CPU for `seconds` of virtual time
  /// (parking the current task process until done).
  void occupy_cpu(SimTask& t, SimTime seconds);

  /// Same, on the machine's runtime lane (task management overheads).
  void occupy_runtime(SimTask& t, SimTime seconds);

  /// Single-object transfer to `t.machine` via the coherence protocol.
  /// Immediate (returns now) on shared-memory platforms.  Under fault
  /// injection, parks `t` while the object's owner is crashed but not yet
  /// recovered, and throws UnrecoverableError for lost objects.
  SimTime transfer_object(SimTask& t, ObjectId obj, bool exclusive);

  /// Whole-set fetch to `t.machine` via the coherence protocol (which
  /// batches per remote owner); same platform/fault handling as
  /// transfer_object.
  SimTime fetch_objects(SimTask& t, std::vector<FetchItem> items);

  /// Parks the current task process until `ready_at` (no-op if reached).
  void park_until_fetched(SimTask& t, SimTime ready_at);

  /// Fetches every object in `reqs` that carries immediate rights; parks
  /// until all have arrived.
  void fetch_for(SimTask& t, const std::vector<AccessRequest>& reqs);

  // --- fault tolerance (ft/) ----------------------------------------------
  bool ft_enabled() const { return ft_ != nullptr; }
  /// Throws UnrecoverableError if `obj`'s only copy died with no stable
  /// storage.
  void ensure_recoverable(ObjectId obj) const;
  /// Engine-side half of killing an attempt (RecoveryHooks): unwind the
  /// process's wait bookkeeping, hand held commute tokens on, rewind the
  /// serializer, abort the process.
  void abort_attempt_execution(TaskNode* task);

  ClusterConfig cluster_;
  SchedPolicy sched_;
  /// Placement decisions route through the policy seam (docs/MODEL.md);
  /// defaults to the shared HeuristicPlanner — legacy behavior to the byte.
  std::shared_ptr<const model::Planner> planner_;
  std::unique_ptr<NetworkModel> network_;
  ObjectTable objects_;
  ObjectDirectory directory_;
  Serializer serializer_;
  std::vector<Machine> machines_;

  std::deque<SimTask> sim_tasks_;          ///< stable storage; engine_data
  std::deque<TaskNode*> ready_;            ///< dispatch queue (FIFO base)
  std::vector<TaskNode*> to_unblock_;      ///< queued unblock notifications
  std::deque<TaskNode*> throttled_;        ///< creators suspended (Fig 7e)
  /// Commuting-update exclusivity: commuters run in any order but touch the
  /// object one at a time; the token passes FIFO among waiters.  Shared
  /// implementation with ThreadEngine (sched/governor.hpp).
  CommuteTokenTable commute_;
  /// Task-creation throttling thresholds + counters (shared implementation
  /// with ThreadEngine); counters fold into stats_ at the end of run().
  ThrottleGate throttle_;
  /// Speculation budget + conflict-history throttle + counters (shared
  /// implementation with ThreadEngine); folds into stats_ like throttle_.
  SpeculationGovernor spec_gov_;
  /// Pending tasks in creation order — the speculative dispatcher's
  /// candidate scan window.  Entries are dropped once no longer pending.
  std::deque<TaskNode*> spec_candidates_;
  /// Speculating tasks the serializer enabled, awaiting their commit check
  /// (drained in post_serializer; commit order = serial enable order).
  std::deque<TaskNode*> spec_decide_;
  std::vector<TaskTimeline> timeline_;

  /// Clock + network adapter handed to the runtime services; must outlive
  /// them and sit above sim_ so parked-process unwind still finds it.
  std::unique_ptr<Transport> transport_;
  /// The object-motion protocol (store/coherence.hpp): transfers, batched
  /// fetches, revalidation, invalidations, conversion caching.
  std::unique_ptr<CoherenceProtocol> coherence_;

  // fault tolerance (null when FaultConfig.enabled is false)
  std::unique_ptr<FtHooks> ft_hooks_;
  std::unique_ptr<RecoveryCoordinator> ft_;
  FaultyNetwork* faulty_net_ = nullptr;    ///< view into network_, if wrapped
  bool root_done_ = false;

  /// Wait-time distributions (always registered; observe() is a couple of
  /// adds, far below simulation noise, so they are not gated on tracing).
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* fetch_wait_hist_ = nullptr;
  obs::Histogram* exec_hist_ = nullptr;

  MachineId next_home_ = 0;                ///< round-robin initial placement
  /// Started-but-incomplete tasks not parked in the throttle; when this
  /// would reach zero, throttled creators are the only progress source and
  /// must run.
  int active_tasks_ = 0;
  /// True once run() has executed; the next run() resets the scheduling
  /// state for a fresh graph (objects, directory and replicas persist; the
  /// virtual clock stays monotonic across runs).  Unsupported under fault
  /// injection, whose event schedule is tied to one run.
  bool ran_ = false;

  /// Declared last: destroyed first, so parked task processes unwind while
  /// every engine structure their stacks reference is still alive.
  Simulation sim_;
};

}  // namespace jade
