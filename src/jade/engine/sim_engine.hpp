// SimEngine — Jade on a simulated (possibly heterogeneous, message-passing)
// cluster, in deterministic virtual time.
//
// This is the platform on which every evaluation experiment runs.  Task
// bodies really execute (results are real and compared against the serial
// engine); their *cost* is declared via TaskContext::charge() and converted
// to virtual seconds by the executing machine's speed.  Object motion goes
// through the interconnect model and the object directory, reproducing the
// paper's Section 3.3 walkthrough:
//
//   * a ready task is assigned to a machine by the dynamic load balancer,
//     preferring machines that already hold its objects (locality);
//   * the runtime then moves (write access) or copies (read access) the
//     declared objects to that machine, converting data formats when the
//     machines' byte orders differ;
//   * while one task's objects are in transit the machine executes another
//     resident task — latency hiding via multiple task contexts;
//   * excess task creation suspends the creating task (throttling), which
//     serial semantics makes deadlock-free.
//
// Every task executes as a cooperative sim::Process, so an unmodified body
// can pause mid-execution in a with-cont — the pipelining construct of
// Section 4.2.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "jade/engine/engine.hpp"
#include "jade/engine/timeline.hpp"
#include "jade/ft/failure_detector.hpp"
#include "jade/ft/fault_injector.hpp"
#include "jade/ft/fault_plan.hpp"
#include "jade/mach/machine.hpp"
#include "jade/net/faulty.hpp"
#include "jade/net/network.hpp"
#include "jade/sched/policies.hpp"
#include "jade/sim/simulation.hpp"
#include "jade/store/directory.hpp"

namespace jade {

class SimEngine : public Engine, private SerializerListener {
 public:
  SimEngine(ClusterConfig cluster, SchedPolicy sched, bool enforce_hierarchy,
            FaultConfig fault = {});
  ~SimEngine() override;

  ObjectId allocate(TypeDescriptor type, std::string name,
                    MachineId home) override;
  void put_bytes(ObjectId obj, std::span<const std::byte> data) override;
  std::vector<std::byte> get_bytes(ObjectId obj) override;
  const ObjectInfo& object_info(ObjectId obj) const override;

  void run(std::function<void(TaskContext&)> root_body) override;

  /// Also attaches the tracer to the network model and object directory, so
  /// one toggle lights up every subsystem.
  void enable_tracing(const ObsConfig& cfg) override;

  void spawn(TaskNode* parent, const std::vector<AccessRequest>& requests,
             TaskContext::BodyFn body, std::string name,
             MachineId placement) override;
  void with_cont(TaskNode* task,
                 const std::vector<AccessRequest>& requests) override;
  std::byte* acquire_bytes(TaskNode* task, ObjectId obj,
                           std::uint8_t mode) override;
  void charge(TaskNode* task, double units) override;
  int machine_count() const override { return cluster_.machine_count(); }
  MachineId machine_of(TaskNode* task) const override;

  /// Virtual time now (for apps/benches that trace progress).
  SimTime now() const { return sim_.now(); }
  const NetworkModel& network() const { return *network_; }
  const ObjectDirectory& directory() const { return directory_; }

  /// Ground truth of the failure model, or nullptr when faults are off.
  const FaultInjector* fault_injector() const { return injector_.get(); }

  /// Per-task execution records (empty unless sched.record_timeline).
  const std::vector<TaskTimeline>& timeline() const { return timeline_; }

 protected:
  /// Trace timestamps are virtual time — the whole point of tracing a
  /// deterministic simulation is a deterministic trace.
  SimTime trace_now() const override;

 private:
  /// What a parked task process is waiting for (routes resumes).
  enum class Wait : std::uint8_t {
    kNone,
    kFetch,     ///< object transfers in flight (self-resume scheduled)
    kCpu,       ///< charge() occupancy (self-resume scheduled)
    kUnblock,   ///< serializer dependency (deliver_unblock resumes)
    kContext,   ///< machine task-context slot (release_context resumes)
    kThrottle,  ///< outstanding-task backlog (completion path resumes)
    kCommute,   ///< commute token held by another task
    kRecovery,  ///< object's owner crashed; recovery re-homes, then resumes
  };

  struct SimTask {
    TaskNode* node = nullptr;
    Process* process = nullptr;
    MachineId machine = -1;          ///< executing machine once assigned
    MachineId creator_machine = 0;   ///< where the withonly executed
    Wait wait = Wait::kNone;
    std::vector<ObjectId> objects;   ///< declared objects, in decl order
    std::vector<ObjectId> commute_tokens;  ///< exclusivity tokens held
    // fault tolerance (ft/)
    /// A crash may kill and re-run this task.  Cleared the moment the task
    /// spawns a child or runs a with-cont: those effects escape the task and
    /// cannot be rolled back, so such tasks ride out the crash instead (see
    /// docs/FAULT_TOLERANCE.md, "what can be killed").
    bool restartable = true;
    /// charged_work at attempt start; a killed attempt rolls back to it.
    double attempt_charge_base = 0;
    /// Pre-write images of objects this attempt acquired with wr/cm rights,
    /// in acquisition order; restored in reverse on kill.  The data version
    /// captured alongside is restored too, so a stale replica can never
    /// revalidate against a version a killed attempt created.
    struct Snapshot {
      ObjectId obj;
      std::uint64_t data_version;
      std::vector<std::byte> bytes;
    };
    std::vector<Snapshot> snapshots;
    /// Objects whose data version this attempt bumped (first write); cleared
    /// on kill so the re-run bumps again from the restored version.
    std::vector<ObjectId> dirtied;
    // timeline capture (when sched.record_timeline)
    SimTime created = 0;
    SimTime dispatched = 0;
    SimTime body_start = 0;
  };

  struct Machine {
    MachineDesc desc;
    int free_contexts = 0;
    /// Application compute (charge()) serializes on the CPU proper.
    SimTime cpu_free_until = 0;
    /// Runtime bookkeeping (task creation/dispatch) runs on its own lane:
    /// real implementations process task management asynchronously with
    /// compute (interrupt-level message handling / timesharing), so a long
    /// compute slice must not stall the creator for its full duration.
    SimTime runtime_free_until = 0;
    double busy_seconds = 0;
    std::deque<TaskNode*> context_waiters;  ///< unblocked tasks re-entering
  };

  // SerializerListener (fires inside serializer calls; engine drains after).
  void on_task_ready(TaskNode* task) override;
  void on_task_unblocked(TaskNode* task) override;

  SimTask& st(TaskNode* task);

  /// Dispatches + delivers queued unblocks; call after every serializer
  /// mutation.
  void post_serializer();
  void try_dispatch();
  void assign(TaskNode* task, MachineId m);

  /// The body of every task's sim process.
  void task_process(TaskNode* task);
  void finish_task(TaskNode* task);

  void release_context(SimTask& t);
  void reacquire_context(SimTask& t);
  /// Parks the current task in a wait that other tasks must resolve
  /// (dependency, commute token, machine context, throttle), maintaining
  /// the runnable-task count and waking a throttled creator if this park
  /// leaves nothing else runnable.
  void park_inactive(SimTask& t, Wait kind);
  /// Hands an object's commute token to the next waiter (or frees it).
  void release_commute_token(ObjectId obj);
  void maybe_release_throttled();
  void deliver_unblock(TaskNode* task);

  /// Occupies the machine's compute CPU for `seconds` of virtual time
  /// (parking the current task process until done).
  void occupy_cpu(SimTask& t, SimTime seconds);

  /// Same, on the machine's runtime lane (task management overheads).
  void occupy_runtime(SimTask& t, SimTime seconds);

  /// Ensures `obj` is usable at machine `m` (exclusively if `exclusive`),
  /// scheduling transfers/invalidations/conversions; returns when it is
  /// available there.  Immediate (returns now) on shared-memory platforms.
  /// Under fault injection, parks `t` while the object's owner is crashed
  /// but not yet recovered, and throws UnrecoverableError for lost objects.
  SimTime transfer_object(SimTask& t, ObjectId obj, MachineId m,
                          bool exclusive);

  /// One object of a task's fetch set.
  struct FetchItem {
    ObjectId obj;
    bool exclusive;  ///< move (write/commute rights) rather than copy
    bool blocking;   ///< the task cannot start until it arrives; false for
                     ///< deferred-read prefetch hints
  };

  /// Fetches a whole set of objects to `t.machine`, combining items owned by
  /// the same remote machine into one batched request/reply when
  /// comm.combine_requests is on.  Returns when the last *blocking* item is
  /// available (prefetch hints ride along without gating task start).
  SimTime fetch_objects(SimTask& t, std::vector<FetchItem> items);

  /// One batched request to owner `from` covering every item in `batch`
  /// (none satisfiable locally); the reply carries only the payloads that
  /// replica revalidation cannot serve.
  SimTime fetch_batch(SimTask& t, MachineId from,
                      const std::vector<FetchItem>& batch);

  /// Parks the current task process until `ready_at` (no-op if reached).
  void park_until_fetched(SimTask& t, SimTime ready_at);

  /// Invalidation fan-out for `obj`: one multicast control message when
  /// comm.coalesce_invalidations is on and there is more than one target,
  /// per-target unicasts otherwise.
  void send_invalidations(ObjectId obj, MachineId from,
                          const std::vector<MachineId>& targets, SimTime now);

  /// Virtual seconds of heterogeneous format conversion for moving `obj`
  /// between `src` and `dst`; really performs the per-scalar swaps on a
  /// cache miss, costs nothing when the cached converted image is current.
  SimTime conversion_cost(ObjectId obj, MachineId src, MachineId dst);

  /// Exclusive acquire of `obj` by `t`: drops replicas that raced in since
  /// the exclusive transfer (deferred-read prefetch) and bumps the object's
  /// data version (once per attempt) so dropped copies cannot revalidate.
  void first_write_invalidate(SimTask& t, ObjectId obj);

  /// Fetches every object in `reqs` that carries immediate rights; parks
  /// until all have arrived.
  void fetch_for(SimTask& t, const std::vector<AccessRequest>& reqs);

  SimTime available_at(ObjectId obj, MachineId m) const;
  void set_available_at(ObjectId obj, MachineId m, SimTime at);

  // --- fault tolerance (ft/) ----------------------------------------------
  bool ft_enabled() const { return injector_ != nullptr; }
  /// True once nothing is left to simulate; recurring fault-layer events
  /// (heartbeats, detector sweeps) stop rescheduling themselves.
  bool drained() const;
  /// Schedules the crash events and the first heartbeat/sweep rounds.
  void schedule_fault_events();
  /// Fail-stop of machine `m`: contexts gone, resident restartable task
  /// attempts killed (queued for recovery), replicas forgotten at detection.
  void handle_crash(MachineId m);
  /// Undoes one running attempt of `task`: snapshots restored, charge rolled
  /// back, serializer rewound to kReady, process aborted.
  void kill_task_attempt(TaskNode* task);
  /// Runs the recovery protocol after the detector declares `m` dead:
  /// directory surgery (re-home / restore / mark lost), killed tasks
  /// re-queued onto survivors, transfer waiters resumed.
  void recover_machine(MachineId m);
  /// One heartbeat round: every live machine != 0 sends through the (lossy)
  /// network; arrivals feed the detector.
  void send_heartbeats();
  /// One detector sweep on the coordinator; newly suspected machines are
  /// checked against ground truth (false suspicions counted, real crashes
  /// recovered).
  void detector_sweep();
  /// Snapshots `obj` before this restartable attempt's first write to it.
  void maybe_snapshot(SimTask& t, ObjectId obj);

  ClusterConfig cluster_;
  SchedPolicy sched_;
  std::unique_ptr<NetworkModel> network_;
  ObjectTable objects_;
  ObjectDirectory directory_;
  Serializer serializer_;
  std::vector<Machine> machines_;

  std::deque<SimTask> sim_tasks_;          ///< stable storage; engine_data
  std::deque<TaskNode*> ready_;            ///< dispatch queue (FIFO base)
  std::vector<TaskNode*> to_unblock_;      ///< queued unblock notifications
  std::deque<TaskNode*> throttled_;        ///< creators suspended (Fig 7e)
  /// Commuting-update exclusivity: commuters run in any order but touch the
  /// object one at a time; the token passes FIFO among waiters.
  std::unordered_map<ObjectId, TaskNode*> commute_holder_;
  std::unordered_map<ObjectId, std::deque<TaskNode*>> commute_waiters_;
  std::unordered_map<std::uint64_t, SimTime> available_at_;
  /// Data version of each object's cached cross-endian converted image; a
  /// transfer whose entry matches the current version skips the conversion.
  std::unordered_map<ObjectId, std::uint64_t> converted_cache_;
  std::vector<TaskTimeline> timeline_;

  // fault tolerance (all empty/null when FaultConfig.enabled is false)
  FaultConfig fault_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<FailureDetector> detector_;
  FaultyNetwork* faulty_net_ = nullptr;    ///< view into network_, if wrapped
  /// Killed attempts awaiting re-dispatch, per crashed machine; requeued by
  /// recover_machine in kill (= creation) order.
  std::vector<std::vector<TaskNode*>> pending_recovery_;
  /// Tasks parked in transfer_object because the object's owner is this
  /// (crashed, undetected) machine; recover_machine resumes them.
  std::vector<std::deque<TaskNode*>> recovery_waiters_;
  bool root_done_ = false;

  /// Wait-time distributions (always registered; observe() is a couple of
  /// adds, far below simulation noise, so they are not gated on tracing).
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* fetch_wait_hist_ = nullptr;
  obs::Histogram* exec_hist_ = nullptr;

  MachineId next_home_ = 0;                ///< round-robin initial placement
  /// Started-but-incomplete tasks not parked in the throttle; when this
  /// would reach zero, throttled creators are the only progress source and
  /// must run.
  int active_tasks_ = 0;
  bool ran_ = false;

  /// Declared last: destroyed first, so parked task processes unwind while
  /// every engine structure their stacks reference is still alive.
  Simulation sim_;
};

}  // namespace jade
