// BufferTable — sharded storage for shared-object byte buffers.
//
// The ThreadEngine used to keep object buffers in a map guarded by the one
// engine mutex, so a task touching its data (acquire_bytes) or the host
// reading results back (get_bytes) contended with every scheduling
// operation.  Object data has nothing to do with scheduling: this table
// shards objects across independently locked buckets (ids hash across
// shards, so contention only appears when two threads touch objects in the
// same shard at the same instant), and each buffer is a separately owned
// allocation whose address never changes — a pointer handed to a task stays
// valid with no lock held, exactly the contract acquire_bytes needs.
//
// Consistency of the bytes themselves is the serializer's job (conflicting
// accesses are ordered by declaration queues before any pointer is handed
// out); the shard lock only protects the table structure.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "jade/core/object.hpp"

namespace jade {

class BufferTable {
 public:
  /// Creates the (zero-filled) buffer for a new object; returns its stable
  /// address.  `id` must not already have a buffer.
  std::byte* create(ObjectId id, std::size_t size);

  /// Stable data pointer; the object must exist.
  std::byte* data(ObjectId id) const;

  /// Buffer size in bytes; the object must exist.
  std::size_t size(ObjectId id) const;

  /// Overwrites the buffer from `bytes` (sizes must match).
  void put(ObjectId id, std::span<const std::byte> bytes);

  /// Copies the buffer out.  The copy happens without any lock held: the
  /// pointer is stable and destroy() requires quiescence, so the shard lock
  /// is only needed to find the entry.
  std::vector<std::byte> get(ObjectId id) const;

  /// Frees an object's buffer (no-op when absent).  Caller must guarantee
  /// nobody holds or will request the pointer again — the server teardown
  /// path, after the owning tenant's graph has fully drained.
  void destroy(ObjectId id);

 private:
  struct Entry {
    std::unique_ptr<std::byte[]> bytes;
    std::size_t size = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ObjectId, Entry> map;
  };

  static constexpr std::size_t kShards = 64;  ///< power of two

  Shard& shard_for(ObjectId id) const {
    // Ids are sequential; splash them across shards so neighboring objects
    // (allocated together, used together) do not share a lock.
    std::uint64_t h = id * 0x9E3779B97F4A7C15ull;
    return shards_[(h >> 32) & (kShards - 1)];
  }

  const Entry& entry_for(ObjectId id) const;

  mutable std::array<Shard, kShards> shards_;
};

}  // namespace jade
