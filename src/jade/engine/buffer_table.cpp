#include "jade/engine/buffer_table.hpp"

#include <algorithm>

#include "jade/support/error.hpp"

namespace jade {

std::byte* BufferTable::create(ObjectId id, std::size_t size) {
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto [it, inserted] = s.map.try_emplace(id);
  JADE_ASSERT_MSG(inserted, "object buffer created twice");
  it->second.bytes = std::make_unique<std::byte[]>(size);  // zero-filled
  it->second.size = size;
  return it->second.bytes.get();
}

const BufferTable::Entry& BufferTable::entry_for(ObjectId id) const {
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(id);
  JADE_ASSERT_MSG(it != s.map.end(), "unknown object buffer");
  // Erasure (destroy) only happens once the object is quiescent, so a live
  // caller's reference is stable.
  return it->second;
}

std::byte* BufferTable::data(ObjectId id) const {
  return entry_for(id).bytes.get();
}

std::size_t BufferTable::size(ObjectId id) const {
  return entry_for(id).size;
}

void BufferTable::put(ObjectId id, std::span<const std::byte> bytes) {
  const Entry& e = entry_for(id);
  JADE_ASSERT(bytes.size() == e.size);
  std::copy(bytes.begin(), bytes.end(), e.bytes.get());
}

std::vector<std::byte> BufferTable::get(ObjectId id) const {
  const Entry& e = entry_for(id);  // lock released; pointer/size stable
  return {e.bytes.get(), e.bytes.get() + e.size};
}

void BufferTable::destroy(ObjectId id) {
  Shard& s = shard_for(id);
  std::lock_guard<std::mutex> lock(s.mu);
  s.map.erase(id);
}

}  // namespace jade
